// Quickstart: the smallest end-to-end IPS program.
//
// Creates one IPS instance over an in-memory durable store, defines a table,
// writes the paper's motivating example (Section II-A, Table I: Alice's
// interactions with two basketball teams), and runs the three read APIs —
// top-K, filter and decay — printing what the recommendation engine would
// receive as features.
//
// Ends with the observability surface: the same query traced end to end,
// the per-stage span dump, and the collector's slow-query log
// (docs/METRICS.md catalogues the full metric set).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <optional>

#include "common/clock.h"
#include "common/trace_collector.h"
#include "kvstore/mem_kv_store.h"
#include "server/ips_instance.h"

namespace {

using ips::CountVector;
using ips::QueryResult;

// Action layout for this table.
constexpr ips::ActionIndex kLike = 0;
constexpr ips::ActionIndex kComment = 1;
constexpr ips::ActionIndex kShare = 2;

constexpr ips::SlotId kSportsSlot = 1;
constexpr ips::TypeId kBasketball = 10;

// Feature ids would be hashed content identifiers in production.
constexpr ips::FeatureId kLakers = 1001;
constexpr ips::FeatureId kWarriors = 1002;

void PrintResult(const char* title, const QueryResult& result) {
  std::printf("%s\n", title);
  if (result.features.empty()) {
    std::printf("  (no features)\n");
    return;
  }
  for (const auto& f : result.features) {
    const char* name = f.fid == kLakers ? "Los Angeles Lakers"
                       : f.fid == kWarriors ? "Golden State Warriors"
                                            : "?";
    std::printf(
        "  fid=%llu (%s) likes=%lld comments=%lld shares=%lld "
        "(weighted like score %.2f)\n",
        static_cast<unsigned long long>(f.fid), name,
        static_cast<long long>(f.counts.At(kLike)),
        static_cast<long long>(f.counts.At(kComment)),
        static_cast<long long>(f.counts.At(kShare)), f.WeightedAt(kLike));
  }
}

}  // namespace

int main() {
  // Simulated time makes the run reproducible; production uses SystemClock.
  ips::ManualClock clock(100 * ips::kMillisPerDay);

  // The durable layer. Production runs HBase; the library ships an
  // in-memory store with the same interface.
  ips::MemKvStore kv;

  // One server of the compute-cache layer.
  ips::IpsInstanceOptions options;
  options.isolation_enabled = false;  // simplest synchronous behaviour
  ips::IpsInstance instance(options, &kv, &clock);

  // A table whose count vector is [like, comment, share].
  ips::TableSchema schema = ips::DefaultTableSchema("user_profile");
  schema.actions = {"like", "comment", "share"};
  if (!instance.CreateTable(schema).ok()) return 1;

  const ips::ProfileId alice = 42;
  const ips::TimestampMs now = clock.NowMs();

  // Ten days ago Alice liked, commented on and re-shared a Lakers video.
  instance
      .AddProfile("quickstart", "user_profile", alice,
                  now - 10 * ips::kMillisPerDay, kSportsSlot, kBasketball,
                  kLakers, CountVector{1, 1, 1})
      .ok();
  // Two days ago she liked two Warriors videos.
  instance
      .AddProfile("quickstart", "user_profile", alice,
                  now - 2 * ips::kMillisPerDay, kSportsSlot, kBasketball,
                  kWarriors, CountVector{2, 0, 0})
      .ok();

  // 1) "Alice's most liked basketball team over the last ~10 days" — the
  //    paper's Listing 1 query.
  auto top = instance.GetProfileTopK(
      "quickstart", "user_profile", alice, kSportsSlot, kBasketball,
      ips::TimeRange::Current(11 * ips::kMillisPerDay),
      ips::SortBy::kActionCount, kLike, 1);
  if (top.ok()) PrintResult("Top liked basketball team (11d window):", *top);

  // 2) Filter: teams with at least one comment.
  ips::FilterSpec filter;
  filter.op = ips::FilterOp::kCountAtLeast;
  filter.action = kComment;
  filter.operand = 1;
  auto commented = instance.GetProfileFilter(
      "quickstart", "user_profile", alice, kSportsSlot, kBasketball,
      ips::TimeRange::Current(30 * ips::kMillisPerDay), filter);
  if (commented.ok()) {
    PrintResult("Teams Alice commented on (30d window):", *commented);
  }

  // 3) Decay: recency-weighted ranking. The Lakers interaction is older, so
  //    exponential decay favours the Warriors even more strongly.
  ips::DecaySpec decay;
  decay.function = ips::DecayFunction::kExponential;
  decay.factor = 0.8;
  decay.unit_ms = ips::kMillisPerDay;
  auto decayed = instance.GetProfileDecay(
      "quickstart", "user_profile", alice, kSportsSlot, kBasketball,
      ips::TimeRange::Current(30 * ips::kMillisPerDay), decay);
  if (decayed.ok()) {
    PrintResult("Recency-decayed ranking (factor 0.8/day):", *decayed);
  }

  // The cache layer persisted everything on shutdown; show the footprint.
  auto stats = instance.GetTableStats("user_profile");
  if (stats.ok()) {
    std::printf(
        "\ncache: %zu profile(s), %zu bytes, hit ratio %.2f\n",
        stats->cached_profiles, stats->cache_bytes, stats->hit_ratio);
  }

  // 4) Observability: run the same query again with tracing on. The
  //    collector samples requests (here: every request), keeps the sampled
  //    traces in a ring, feeds per-stage latency histograms into the metrics
  //    registry, and retains the slowest requests as a slow-query log.
  ips::MetricsRegistry metrics;
  ips::TraceCollectorOptions trace_options;
  trace_options.sample_every_n = 1;  // production would use 1000+
  ips::TraceCollector collector(trace_options, &clock, &metrics);

  ips::QuerySpec spec;
  spec.slot = kSportsSlot;
  spec.type = kBasketball;
  spec.time_range = ips::TimeRange::Current(11 * ips::kMillisPerDay);
  spec.sort_by = ips::SortBy::kActionCount;
  spec.sort_action = kLike;
  spec.k = 1;

  auto trace = collector.MaybeStartTrace();
  ips::CallContext ctx;
  ctx.trace = ips::TraceCollector::ContextFor(trace.get());
  instance.Query("quickstart", "user_profile", alice, spec, ctx).ok();

  std::printf("\ntraced spans for that query:\n");
  for (const auto& span : trace->Spans()) {
    std::printf("  %-16s %6lld us (parent %lld)\n", span.name,
                static_cast<long long>((span.end_ns - span.start_ns) / 1000),
                static_cast<long long>(span.parent));
  }
  collector.Finish(std::move(trace));

  // The collector's exports: slow-query log (human) and JSONL / chrome
  // trace (machine; load the latter in chrome://tracing or Perfetto).
  std::printf("\n%s", collector.SlowQueryReport().c_str());
  std::printf("\nJSONL export:\n%s", collector.ExportJsonl().c_str());
  return 0;
}
