// Config-driven feature engineering (Sections I and V-a).
//
// A ranking service declares its features as a hot-reloadable JSON set; the
// FeatureAssembler runs all of them per request, returns the assembled
// sample for model scoring, and flushes the identical sample to a training
// topic — the paper's "assemble them for serving and flush them into
// training data in parallel to avoid training-serving skew". A second
// feature set is then published live (no restart) to show the Section V-a
// iteration loop machine-learning engineers use.
#include <cstdio>

#include "common/clock.h"
#include "kvstore/mem_kv_store.h"
#include "server/feature_assembler.h"

namespace {

using ips::kMillisPerDay;
using ips::kMillisPerMinute;

void PrintSample(const ips::AssembledSample& sample) {
  std::printf("sample for user %llu (%zu feature values):\n",
              static_cast<unsigned long long>(sample.uid),
              sample.TotalValues());
  for (const auto& group : sample.features) {
    std::printf("  %-24s [", group.name.c_str());
    for (size_t i = 0; i < group.fids.size(); ++i) {
      std::printf("%s%llu:%.2f", i == 0 ? "" : ", ",
                  static_cast<unsigned long long>(group.fids[i]),
                  group.values[i]);
    }
    std::printf("]\n");
  }
}

}  // namespace

int main() {
  ips::ManualClock clock(100 * kMillisPerDay);
  ips::MemKvStore kv;
  ips::IpsInstanceOptions options;
  options.isolation_enabled = false;
  ips::IpsInstance instance(options, &kv, &clock);

  ips::TableSchema schema = ips::DefaultTableSchema("user_profile");
  schema.actions = {"click", "like", "share", "comment"};
  if (!instance.CreateTable(schema).ok()) return 1;

  // Seed a user's history: fresh sports content, older tech content.
  const ips::ProfileId user = 9001;
  for (int i = 1; i <= 6; ++i) {
    instance
        .AddProfile("seed", "user_profile", user,
                    clock.NowMs() - i * kMillisPerMinute, /*slot=*/1,
                    /*type=*/1, /*fid=*/100 + i,
                    ips::CountVector{1, i % 2, 0, 0})
        .ok();
    instance
        .AddProfile("seed", "user_profile", user,
                    clock.NowMs() - i * kMillisPerDay, /*slot=*/2,
                    /*type=*/1, /*fid=*/200 + i,
                    ips::CountVector{2, 0, 1, 0})
        .ok();
  }

  // The training stream the model trainer consumes.
  ips::MessageLog training_log(2);
  ips::FeatureAssemblerOptions assembler_options;
  assembler_options.caller = "ranker";
  assembler_options.training_topic = "training-samples";
  ips::FeatureAssembler assembler(assembler_options, &instance,
                                  &training_log);

  // The product's feature set, as configuration.
  ips::ConfigRegistry registry;
  assembler.AttachConfigRegistry(&registry, "features/feed", &schema);
  const char* kV1 = R"({
    "features": [
      {"name": "sports_top_clicks_1h", "table": "user_profile", "slot": 1,
       "window": {"kind": "CURRENT", "span": "1h"},
       "sort": {"by": "count", "action": "click"}, "k": 3},
      {"name": "tech_top_shares_30d", "table": "user_profile", "slot": 2,
       "window": {"kind": "CURRENT", "span": "30d"},
       "sort": {"by": "count", "action": "share"}, "k": 3}
    ]
  })";
  if (!registry.PublishJson("features/feed", kV1).ok()) return 1;
  std::printf("--- feature set v1 (%zu features) ---\n",
              assembler.FeatureCount());
  auto sample = assembler.Assemble(user);
  if (sample.ok()) PrintSample(*sample);

  // A/B iteration (Section V-a): the engineer adds a decayed variant and
  // publishes the new set live; the next request uses it.
  const char* kV2 = R"({
    "features": [
      {"name": "sports_top_clicks_1h", "table": "user_profile", "slot": 1,
       "window": {"kind": "CURRENT", "span": "1h"},
       "sort": {"by": "count", "action": "click"}, "k": 3},
      {"name": "tech_top_shares_30d", "table": "user_profile", "slot": 2,
       "window": {"kind": "CURRENT", "span": "30d"},
       "sort": {"by": "count", "action": "share"}, "k": 3},
      {"name": "tech_decayed_clicks", "table": "user_profile", "slot": 2,
       "window": {"kind": "CURRENT", "span": "30d"},
       "sort": {"by": "count", "action": "click"}, "k": 3,
       "decay": {"function": "EXP", "factor": 0.7, "unit": "1d"}}
    ]
  })";
  if (!registry.PublishJson("features/feed", kV2).ok()) return 1;
  std::printf("\n--- feature set v2 hot-reloaded (%zu features) ---\n",
              assembler.FeatureCount());
  sample = assembler.Assemble(user);
  if (sample.ok()) PrintSample(*sample);

  // What the trainer sees: identical samples, no skew.
  size_t training_records = 0;
  for (size_t p = 0; p < training_log.num_partitions(); ++p) {
    training_records +=
        static_cast<size_t>(training_log.EndOffset("training-samples", p));
  }
  std::printf(
      "\ntraining topic now holds %zu flushed sample(s) — byte-identical "
      "to what serving used\n",
      training_records);
  return 0;
}
