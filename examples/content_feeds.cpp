// Content-feeds scenario (Section I-c): IPS as the feature-extraction hub of
// a news/video feed.
//
// Demonstrates the two properties the paper highlights for this use case:
//  * short-term features make breaking content promotable within a minute
//    of the first interactions (fresh CTR-style counts);
//  * long-term features capture interest drift — a user who read about
//    cooking and then switched to hiking still has both interests in the
//    profile, at different time depths, which is what lets a model blend
//    them ("trail cooking recipes").
//
// The example drives the full ingestion path: raw impression/action/feature
// events -> windowed stream join -> message log -> ingestion job -> IPS.
#include <cstdio>
#include <optional>
#include <string>

#include "cluster/client.h"
#include "cluster/deployment.h"
#include "common/clock.h"
#include "ingest/ingestion_job.h"
#include "ingest/message_log.h"
#include "ingest/stream_join.h"

namespace {

using ips::kMillisPerDay;
using ips::kMillisPerHour;
using ips::kMillisPerMinute;

constexpr ips::SlotId kTopicSlot = 1;
constexpr ips::TypeId kCooking = 1;
constexpr ips::TypeId kHiking = 2;
constexpr ips::TypeId kBreakingNews = 3;

constexpr ips::ActionIndex kClick = 0;
constexpr ips::ActionIndex kLike = 1;

const char* TopicName(ips::FeatureId fid) {
  switch (fid) {
    case 2001:
      return "pasta-recipes";
    case 2002:
      return "sourdough";
    case 3001:
      return "trail-gear";
    case 3002:
      return "alpine-routes";
    case 3003:
      return "trail-cooking";
    case 9001:
      return "BREAKING-earthquake";
    default:
      return "?";
  }
}

void PrintFeatures(const char* title, const ips::QueryResult& result) {
  std::printf("%s\n", title);
  for (const auto& f : result.features) {
    std::printf("  %-22s clicks=%-3lld likes=%-3lld score=%.2f\n",
                TopicName(f.fid), static_cast<long long>(f.counts.At(kClick)),
                static_cast<long long>(f.counts.At(kLike)),
                f.WeightedAt(kClick));
  }
  if (result.features.empty()) std::printf("  (none)\n");
}

}  // namespace

int main() {
  ips::ManualClock clock(200 * kMillisPerDay);

  ips::DeploymentOptions dep_options;
  dep_options.regions = {{"main", 1, /*is_primary=*/true}};
  dep_options.instance.isolation_enabled = false;
  dep_options.instance.compaction.synchronous = true;
  // This example replays weeks of simulated time without running heartbeat
  // loops, so disable discovery expiry (failover is not the topic here).
  dep_options.discovery_ttl_ms = 365 * kMillisPerDay;
  ips::Deployment deployment(dep_options, &clock);

  ips::TableSchema schema = ips::DefaultTableSchema("feed_profile");
  schema.actions = {"click", "like", "share", "comment"};
  if (!deployment.CreateTableEverywhere(schema).ok()) return 1;

  ips::IpsClientOptions client_options;
  client_options.caller = "feed-ranker";
  client_options.local_region = "main";
  ips::IpsClient client(client_options, &deployment);

  // The ingestion pipeline: joiner -> log -> job -> IPS.
  ips::MessageLog log(2);
  ips::StreamJoinOptions join_options;
  join_options.window_ms = kMillisPerMinute;
  ips::StreamJoiner joiner(join_options, [&](const ips::Instance& instance) {
    log.Append("instances", instance.uid, EncodeInstance(instance));
  });
  ips::IngestionJobOptions job_options;
  job_options.table = "feed_profile";
  ips::IngestionJob job(job_options, &log, &client);

  const ips::ProfileId user = 7;
  ips::RequestId rid = 1;
  auto interact = [&](ips::TypeId type, ips::FeatureId item, bool like) {
    const ips::TimestampMs now = clock.NowMs();
    joiner.OnImpression(ips::ImpressionEvent{rid, user, item, now, false});
    joiner.OnFeature(ips::FeatureEvent{rid, user, now, kTopicSlot, type});
    joiner.OnAction(ips::ActionEvent{rid, user, item, now + 500, kClick, 1});
    if (like) {
      joiner.OnAction(
          ips::ActionEvent{rid, user, item, now + 900, kLike, 1});
    }
    ++rid;
    joiner.AdvanceWatermark(now + 2 * kMillisPerMinute);
  };

  // --- Three weeks ago: a cooking phase. -------------------------------
  for (int day = 21; day >= 15; --day) {
    clock.SetMs(200 * kMillisPerDay - day * kMillisPerDay);
    interact(kCooking, 2001, /*like=*/true);
    interact(kCooking, 2002, day % 2 == 0);
  }
  // --- Last week: the user switched to hiking. --------------------------
  for (int day = 6; day >= 1; --day) {
    clock.SetMs(200 * kMillisPerDay - day * kMillisPerDay);
    interact(kHiking, 3001, /*like=*/true);
    if (day <= 3) interact(kHiking, 3002, false);
  }
  clock.SetMs(200 * kMillisPerDay);
  job.PollOnce();

  // Long-term view: both interests visible, hiking fresher.
  auto month = client.GetProfileTopK(
      "feed_profile", user, kTopicSlot, std::nullopt,
      ips::TimeRange::Current(30 * kMillisPerDay), ips::SortBy::kActionCount,
      kClick, 10);
  if (month.ok()) {
    PrintFeatures("Interests over the last 30 days:", *month);
  }

  // Recency-decayed view — what a ranking model would actually consume:
  // hiking dominates but cooking is still present, so a "trail cooking"
  // item scores on both.
  ips::QuerySpec decayed_spec;
  decayed_spec.slot = kTopicSlot;
  decayed_spec.time_range = ips::TimeRange::Current(30 * kMillisPerDay);
  decayed_spec.decay.function = ips::DecayFunction::kExponential;
  decayed_spec.decay.factor = 0.85;
  decayed_spec.decay.unit_ms = kMillisPerDay;
  decayed_spec.sort_action = kClick;
  decayed_spec.k = 10;
  auto decayed = client.Query("feed_profile", user, decayed_spec);
  if (decayed.ok()) {
    PrintFeatures("\nDecay-weighted interests (0.85/day):", *decayed);
  }

  // --- Breaking news: interactions arrive NOW and must be visible fast. --
  interact(kBreakingNews, 9001, /*like=*/true);
  interact(kBreakingNews, 9001, /*like=*/true);
  clock.AdvanceMs(kMillisPerMinute);
  job.PollOnce();  // end-to-end freshness: one pipeline pass, ~a minute

  auto fresh = client.GetProfileTopK(
      "feed_profile", user, kTopicSlot, kBreakingNews,
      ips::TimeRange::Current(kMillisPerHour), ips::SortBy::kActionCount,
      kClick, 5);
  if (fresh.ok()) {
    PrintFeatures(
        "\nBreaking-news features visible within a minute of the action:",
        *fresh);
  }

  // The model can now blend long-term (cooking) and short-term (hiking,
  // breaking) signals — the content-feed behaviour of Section I-c.
  return 0;
}
