// Multi-region deployment and failover (Section III-G, Fig 15).
//
// Builds a two-region deployment — region "lf" is the primary whose
// instances persist to the master KV cluster; region "hl" runs against a
// read-only slave that lags asynchronously. The unified client writes every
// record to all regions and reads only from its local region. The example
// then fails the whole primary region and shows traffic taken over by the
// secondary region, including the weak-consistency window: a node loading
// profile state from the lagging slave may serve slightly stale data, which
// the paper deems negligible for recommendations.
#include <cstdio>
#include <optional>

#include "cluster/client.h"
#include "cluster/deployment.h"
#include "common/clock.h"

namespace {

using ips::CountVector;
using ips::kMillisPerDay;
using ips::kMillisPerMinute;

constexpr ips::SlotId kSlot = 1;

void Report(const char* label, const ips::Result<ips::QueryResult>& result) {
  if (!result.ok()) {
    std::printf("%-46s -> %s\n", label, result.status().ToString().c_str());
    return;
  }
  int64_t clicks = 0;
  for (const auto& f : result->features) clicks += f.counts.At(0);
  std::printf("%-46s -> %zu features, %lld clicks total\n", label,
              result->features.size(), static_cast<long long>(clicks));
}

}  // namespace

int main() {
  ips::ManualClock clock(400 * kMillisPerDay);

  ips::DeploymentOptions options;
  options.regions = {{"lf", 2, /*is_primary=*/true},
                     {"hl", 2, /*is_primary=*/false}};
  options.instance.isolation_enabled = false;
  options.instance.compaction.synchronous = true;
  options.kv.replication_lag_ms = 5'000;  // async master->slave lag
  ips::Deployment deployment(options, &clock);
  if (!deployment.CreateTableEverywhere(
              ips::DefaultTableSchema("user_profile"))
           .ok()) {
    return 1;
  }

  // A client living in region lf (write-all, read-local).
  ips::IpsClientOptions client_options;
  client_options.caller = "ranker";
  client_options.local_region = "lf";
  client_options.failover_regions = {"hl"};
  ips::IpsClient client(client_options, &deployment);

  // 50 users interact; writes fan out to both regions.
  for (ips::ProfileId uid = 1; uid <= 50; ++uid) {
    for (int i = 0; i < 4; ++i) {
      client
          .AddProfile("user_profile", uid,
                      clock.NowMs() - (i + 1) * kMillisPerMinute, kSlot, 1,
                      uid * 100 + i, CountVector{1, 0, 0, 0})
          .ok();
    }
  }
  std::printf("wrote 200 records through the unified client (both regions)\n");

  const auto window = ips::TimeRange::Current(kMillisPerDay);
  Report("read user 7 from local region lf",
         client.GetProfileTopK("user_profile", 7, kSlot, std::nullopt, window,
                               ips::SortBy::kActionCount, 0, 10));

  // Persist primary caches so the durable layer holds everything, then let
  // replication ship it to the secondary region's slave.
  for (auto* node : deployment.NodesInRegion("lf")) {
    node->instance().FlushAll();
  }
  clock.AdvanceMs(6'000);
  deployment.kv().CatchUpAll();

  // --- Region failure. ---------------------------------------------------
  std::printf("\n*** failing region lf (all nodes down, deregistered) ***\n");
  deployment.FailRegion("lf");
  client.RefreshView();  // the periodic Consul refresh picks this up

  Report("read user 7 after failover (served by hl)",
         client.GetProfileTopK("user_profile", 7, kSlot, std::nullopt, window,
                               ips::SortBy::kActionCount, 0, 10));

  // Writes keep landing in the surviving region.
  const bool write_ok =
      client
          .AddProfile("user_profile", 7, clock.NowMs(), kSlot, 1, 777,
                      CountVector{1, 0, 0, 0})
          .ok();
  std::printf("write during region outage: %s\n",
              write_ok ? "accepted by surviving region" : "failed");

  // --- Weak consistency window. ------------------------------------------
  // A brand-new hl node (cold cache) would load user 7 from the *slave*
  // store; until replication catches up it misses the latest write — the
  // stale-read window the paper explicitly tolerates.
  auto* hl_node = deployment.NodesInRegion("hl")[0];
  auto stats = hl_node->instance().GetTableStats("user_profile");
  if (stats.ok()) {
    std::printf(
        "\nhl node cache: %zu profiles cached, hit ratio %.2f "
        "(stale loads possible within the %lld ms replication lag)\n",
        stats->cached_profiles, stats->hit_ratio,
        static_cast<long long>(options.kv.replication_lag_ms));
  }

  // --- Recovery. ---------------------------------------------------------
  std::printf("\n*** recovering region lf ***\n");
  deployment.RecoverRegion("lf");
  client.RefreshView();
  Report("read user 7 after recovery (local again)",
         client.GetProfileTopK("user_profile", 7, kSlot, std::nullopt, window,
                               ips::SortBy::kActionCount, 0, 10));

  std::printf("\nclient error rate over the whole run: %.4f%%\n",
              client.ErrorRate() * 100.0);
  return 0;
}
