// Advertising scenario (Section I-d): flow control and bid-price tracking.
//
// Two IPS tables with different aggregate semantics back an ad server:
//  * "ad_delivery" (SUM) counts impressions/clicks/conversions per campaign
//    per user — the responsively-updated counters that pacing (flow control)
//    reads to spread a campaign's budget over the day;
//  * "ad_bids" (MAX) tracks the latest/highest observed bid per campaign —
//    the volatile auction signal the paper says must update in a timely
//    manner.
//
// Also demonstrates per-caller QPS quotas (Section V-b): an offline back-fill
// job sharing the cluster is throttled without affecting the online caller.
#include <cstdio>
#include <optional>

#include "common/clock.h"
#include "kvstore/mem_kv_store.h"
#include "server/ips_instance.h"

namespace {

using ips::CountVector;
using ips::kMillisPerDay;
using ips::kMillisPerHour;

constexpr ips::SlotId kCampaignSlot = 1;
constexpr ips::TypeId kDisplayAds = 1;

constexpr ips::ActionIndex kImpression = 0;
constexpr ips::ActionIndex kClick = 1;
constexpr ips::ActionIndex kConversion = 2;

}  // namespace

int main() {
  ips::ManualClock clock(300 * kMillisPerDay);
  ips::MemKvStore kv;
  ips::IpsInstanceOptions options;
  options.isolation_enabled = false;
  ips::IpsInstance instance(options, &kv, &clock);

  // Delivery counters: SUM semantics.
  ips::TableSchema delivery = ips::DefaultTableSchema("ad_delivery");
  delivery.actions = {"impression", "click", "conversion"};
  if (!instance.CreateTable(delivery).ok()) return 1;

  // Bid prices: MAX semantics — merging slices keeps the highest bid, so
  // compaction never averages away the auction signal.
  ips::TableSchema bids = ips::DefaultTableSchema("ad_bids");
  bids.actions = {"bid_cents"};
  bids.reduce = ips::ReduceFn::kMax;
  if (!instance.CreateTable(bids).ok()) return 1;

  const ips::ProfileId user = 314159;
  const ips::FeatureId campaign_a = 11, campaign_b = 22;

  // --- A day of ad traffic. --------------------------------------------
  // Campaign A is shown aggressively in the morning; B trickles all day.
  for (int hour = 0; hour < 24; ++hour) {
    const ips::TimestampMs ts = clock.NowMs() - (24 - hour) * kMillisPerHour;
    if (hour < 8) {
      instance
          .AddProfile("ad-server", "ad_delivery", user, ts, kCampaignSlot,
                      kDisplayAds, campaign_a, CountVector{3, 1, 0})
          .ok();
    }
    instance
        .AddProfile("ad-server", "ad_delivery", user, ts, kCampaignSlot,
                    kDisplayAds, campaign_b,
                    CountVector{1, hour % 6 == 0 ? 1 : 0,
                                hour == 20 ? 1 : 0})
        .ok();
    // Volatile bids: every hour each campaign re-bids.
    instance
        .AddProfile("bidder", "ad_bids", user, ts, kCampaignSlot,
                    kDisplayAds, campaign_a,
                    CountVector{40 + (hour * 7) % 25})
        .ok();
    instance
        .AddProfile("bidder", "ad_bids", user, ts, kCampaignSlot,
                    kDisplayAds, campaign_b,
                    CountVector{55 + (hour * 3) % 10})
        .ok();
  }

  // --- Flow control decision -------------------------------------------
  // Pacing reads today's impression counts: a campaign that already hit its
  // per-user frequency cap is suppressed.
  auto today = instance.GetProfileTopK(
      "ad-server", "ad_delivery", user, kCampaignSlot, kDisplayAds,
      ips::TimeRange::Current(kMillisPerDay), ips::SortBy::kActionCount,
      kImpression, 10);
  if (!today.ok()) return 1;
  std::printf("Per-user delivery counters (last 24h):\n");
  constexpr int64_t kFrequencyCap = 20;
  for (const auto& f : today->features) {
    const int64_t impressions = f.counts.At(kImpression);
    const int64_t clicks = f.counts.At(kClick);
    const double ctr =
        impressions > 0
            ? static_cast<double>(clicks) / static_cast<double>(impressions)
            : 0.0;
    std::printf(
        "  campaign %2llu: impressions=%-3lld clicks=%-2lld conv=%lld "
        "ctr=%.2f -> %s\n",
        static_cast<unsigned long long>(f.fid),
        static_cast<long long>(impressions), static_cast<long long>(clicks),
        static_cast<long long>(f.counts.At(kConversion)), ctr,
        impressions >= kFrequencyCap ? "SUPPRESS (frequency cap)"
                                     : "eligible");
  }

  // --- Bid lookup --------------------------------------------------------
  auto bids_result = instance.GetProfileTopK(
      "ad-server", "ad_bids", user, kCampaignSlot, kDisplayAds,
      ips::TimeRange::Current(kMillisPerDay), ips::SortBy::kActionCount, 0,
      10);
  if (!bids_result.ok()) return 1;
  std::printf("\nHighest observed bids (MAX-reduced, last 24h):\n");
  for (const auto& f : bids_result->features) {
    std::printf("  campaign %2llu: %lld cents\n",
                static_cast<unsigned long long>(f.fid),
                static_cast<long long>(f.counts.At(0)));
  }

  // --- Multi-tenancy: quota the back-fill job ---------------------------
  instance.quota().SetQuota("backfill-job", 5.0);  // 5 qps
  int accepted = 0, rejected = 0;
  for (int i = 0; i < 50; ++i) {
    const ips::Status status = instance.AddProfile(
        "backfill-job", "ad_delivery", user + i,
        clock.NowMs() - 30 * kMillisPerDay, kCampaignSlot, kDisplayAds,
        campaign_a, CountVector{1, 0, 0});
    status.ok() ? ++accepted : ++rejected;
  }
  std::printf(
      "\nBack-fill job under a 5-qps quota: %d accepted, %d rejected "
      "(online callers unaffected)\n",
      accepted, rejected);
  // The online caller still gets through immediately:
  const bool online_ok =
      instance
          .AddProfile("ad-server", "ad_delivery", user, clock.NowMs(),
                      kCampaignSlot, kDisplayAds, campaign_b,
                      CountVector{1, 0, 0})
          .ok();
  std::printf("Online ad-server write during the back-fill: %s\n",
              online_ok ? "OK" : "rejected");
  return 0;
}
