#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
#
#   scripts/tier1.sh                 # plain Release build + ctest
#   IPS_SANITIZE=thread scripts/tier1.sh    # same suite under TSan
#   IPS_SANITIZE=address scripts/tier1.sh   # same suite under ASan
#
# Sanitized builds use a separate build directory so they don't thrash the
# incremental plain build.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE="${IPS_SANITIZE:-}"
BUILD_DIR="build"
CMAKE_ARGS=()
if [[ -n "${SANITIZE}" ]]; then
  BUILD_DIR="build-${SANITIZE}"
  CMAKE_ARGS+=("-DIPS_SANITIZE=${SANITIZE}")
fi

cmake -B "${BUILD_DIR}" -S . "${CMAKE_ARGS[@]}"
cmake --build "${BUILD_DIR}" -j "$(nproc)"
cd "${BUILD_DIR}"
ctest --output-on-failure -j "$(nproc)"
