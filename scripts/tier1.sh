#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
#
#   scripts/tier1.sh                        # plain Release build + ctest
#   IPS_SANITIZE=thread scripts/tier1.sh    # same suite under TSan
#   IPS_SANITIZE=address scripts/tier1.sh   # same suite under ASan
#   IPS_SANITIZE=undefined scripts/tier1.sh # same suite under UBSan
#   scripts/tier1.sh --all                  # plain, then ASan, TSan, UBSan
#
# Sanitized builds use a separate build directory so they don't thrash the
# incremental plain build.
set -euo pipefail

cd "$(dirname "$0")/.."

# Cheap lints first: metric/span names in docs/METRICS.md must match the
# source tree, and every committed BENCH_*.json must be well-formed. Fails
# fast before any compile time is spent.
scripts/check_docs.sh
scripts/check_bench.sh

run_suite() {
  local sanitize="$1"
  local build_dir="build"
  local cmake_args=()
  if [[ -n "${sanitize}" ]]; then
    build_dir="build-${sanitize}"
    cmake_args+=("-DIPS_SANITIZE=${sanitize}")
  fi
  echo "=== tier1: ${sanitize:-plain} (${build_dir}) ==="
  cmake -B "${build_dir}" -S . "${cmake_args[@]}"
  cmake --build "${build_dir}" -j "$(nproc)"
  (cd "${build_dir}" && ctest --output-on-failure -j "$(nproc)")
  if [[ -z "${sanitize}" ]]; then
    # Release perf smoke: the serving-path allocation gate must hold in the
    # exact configuration we benchmark (NDEBUG, -O2). ctest already runs it,
    # but an explicit pass here keeps the gate visible when someone trims the
    # ctest set, and prints the alloc/zero-copy evidence into the tier-1 log.
    echo "=== tier1: perf smoke (bench_micro --smoke) ==="
    "${build_dir}/bench/bench_micro" --smoke
    # Read-path coalescing gate: the LoadBroker must keep cutting KV round
    # trips >= 3x at Zipf s=1.0 vs the broker-off ablation, with live
    # single-flight hits. ctest runs it too; this keeps the gate in the log.
    echo "=== tier1: perf smoke (bench_hotkey_skew --smoke) ==="
    "${build_dir}/bench/bench_hotkey_skew" --smoke
    # Overload gate: replaying the recorded trace at 5x capacity, goodput
    # with the admission controller on must beat controller-off >= 2x.
    echo "=== tier1: perf smoke (bench_overload --smoke) ==="
    "${build_dir}/bench/bench_overload" --smoke
    # Write-path coalescing gate: under a concurrent FlushAll storm, the
    # StoreBroker must cut KV write round trips per flushed pid >= 3x vs the
    # broker-off ablation, with cross-shard merges observed.
    echo "=== tier1: perf smoke (bench_flush_storm --smoke) ==="
    "${build_dir}/bench/bench_flush_storm" --smoke
    # Cache-tier gate: with a tiny L1 under eviction churn, the compressed L2
    # victim tier must cut KV read round trips per query >= 2x vs the
    # tier-off ablation, with live cache_l2.hit promotions.
    echo "=== tier1: perf smoke (bench_cache_tiers --smoke) ==="
    "${build_dir}/bench/bench_cache_tiers" --smoke
    # Parallel-drain gate: identical full-pass sets across worker configs,
    # live cross-shard steals in the multi-worker drain, and (on >=4-core
    # hosts) the 1-worker storm must take >= 2x the 4-worker storm.
    echo "=== tier1: perf smoke (bench_compaction_ablation --smoke) ==="
    "${build_dir}/bench/bench_compaction_ablation" --smoke
  fi
  if [[ "${sanitize}" == "thread" ]]; then
    # The drain-concurrency storm (concurrent MaybeTrigger + Drain +
    # SetEnabled flips over the sharded pool) is the test TSan exists for;
    # ctest runs it with the rest of the suite, but an explicit pass keeps
    # the race gate visible in the tier-1 log.
    echo "=== tier1: TSan drain storm (CompactionManagerTest) ==="
    (cd "${build_dir}" && ctest --output-on-failure -R compaction_test)
  fi
}

if [[ "${1:-}" == "--all" ]]; then
  for sanitize in "" address thread undefined; do
    run_suite "${sanitize}"
  done
else
  run_suite "${IPS_SANITIZE:-}"
fi
