#!/usr/bin/env bash
# Bench-artifact lint: every BENCH_*.json committed at the repo root must be
# parseable JSON and self-describing — a top-level "bench" field naming the
# harness that produced it. Catches truncated writes and accidental commits
# of a --smoke artifact clobbering a full run (smoke files say "mode":
# "smoke"; committed artifacts must be full runs).
set -euo pipefail

cd "$(dirname "$0")/.."

shopt -s nullglob
files=(BENCH_*.json)
if [[ ${#files[@]} -eq 0 ]]; then
  echo "check_bench: no BENCH_*.json artifacts committed"
  exit 0
fi

python3 - "${files[@]}" <<'EOF'
import json
import sys

fail = 0
for path in sys.argv[1:]:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench: {path}: invalid JSON: {e}", file=sys.stderr)
        fail = 1
        continue
    if not isinstance(doc, dict) or not isinstance(doc.get("bench"), str):
        print(f"check_bench: {path}: missing top-level string field 'bench'",
              file=sys.stderr)
        fail = 1
        continue
    if doc.get("mode") == "smoke":
        print(f"check_bench: {path}: is a --smoke artifact; commit the full "
              "run instead", file=sys.stderr)
        fail = 1
        continue
    print(f"check_bench: {path}: ok (bench={doc['bench']})")
sys.exit(fail)
EOF
