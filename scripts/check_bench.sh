#!/usr/bin/env bash
# Bench-artifact lint: every BENCH_*.json committed at the repo root must be
# parseable JSON and self-describing — a top-level "bench" field naming the
# harness that produced it. Catches truncated writes and accidental commits
# of a --smoke artifact clobbering a full run (smoke files say "mode":
# "smoke"; committed artifacts must be full runs).
set -euo pipefail

cd "$(dirname "$0")/.."

shopt -s nullglob
files=(BENCH_*.json)
if [[ ${#files[@]} -eq 0 ]]; then
  echo "check_bench: no BENCH_*.json artifacts committed"
  exit 0
fi

python3 - "${files[@]}" <<'EOF'
import json
import sys

fail = 0
for path in sys.argv[1:]:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench: {path}: invalid JSON: {e}", file=sys.stderr)
        fail = 1
        continue
    if not isinstance(doc, dict) or not isinstance(doc.get("bench"), str):
        print(f"check_bench: {path}: missing top-level string field 'bench'",
              file=sys.stderr)
        fail = 1
        continue
    if doc.get("mode") == "smoke":
        print(f"check_bench: {path}: is a --smoke artifact; commit the full "
              "run instead", file=sys.stderr)
        fail = 1
        continue
    if doc["bench"] == "cache_tiers":
        # The committed artifact must itself satisfy the PR acceptance gate:
        # at the highest skew, the L2-on row pays >= 2x fewer KV read round
        # trips per query than L2-off, with live promotions (l2_hits > 0).
        rows = doc.get("rows")
        required = {"theta", "l2", "queries", "kv_round_trips",
                    "rt_per_query", "l2_hits"}
        if (not isinstance(rows, list) or not rows
                or any(not required.issubset(r) for r in rows)):
            print(f"check_bench: {path}: cache_tiers artifact needs "
                  f"non-empty 'rows' each carrying {sorted(required)}",
                  file=sys.stderr)
            fail = 1
            continue
        theta = max(r["theta"] for r in rows)
        off = next((r for r in rows
                    if r["theta"] == theta and not r["l2"]), None)
        on = next((r for r in rows if r["theta"] == theta and r["l2"]), None)
        if off is None or on is None:
            print(f"check_bench: {path}: no off/on pair at theta={theta}",
                  file=sys.stderr)
            fail = 1
            continue
        gate_ok = (on["l2_hits"] > 0 and off["rt_per_query"] > 0
                   and (on["rt_per_query"] == 0
                        or off["rt_per_query"] / on["rt_per_query"] >= 2.0))
        if not gate_ok:
            print(f"check_bench: {path}: cache-tier gate not met at "
                  f"theta={theta}: off rt/q={off['rt_per_query']}, "
                  f"on rt/q={on['rt_per_query']}, l2_hits={on['l2_hits']}",
                  file=sys.stderr)
            fail = 1
            continue
    if doc["bench"] == "compaction_ablation":
        # The committed artifact must satisfy the PR acceptance gate: every
        # drain row carries the full shape, worker configurations performed
        # the identical nonzero set of full passes, the multi-worker drain
        # stole across shards, and — when the artifact was produced on a
        # host with >= 4 cores — the 1-worker storm took >= 2x the
        # multi-worker storm. Artifacts recorded on fewer cores skip the
        # ratio check (parallel drain cannot beat the clock on one core).
        rows = doc.get("drain")
        required = {"policy", "workers", "storm_ms", "full_passes",
                    "partial_passes", "steals"}
        if (not isinstance(rows, list) or len(rows) < 2
                or any(not required.issubset(r) for r in rows)):
            print(f"check_bench: {path}: compaction_ablation artifact needs "
                  f">= 2 'drain' rows each carrying {sorted(required)}",
                  file=sys.stderr)
            fail = 1
            continue
        serial = min(rows, key=lambda r: r["workers"])
        parallel = max(rows, key=lambda r: r["workers"])
        gate_ok = (serial["workers"] == 1 and parallel["workers"] >= 4
                   and serial["full_passes"] > 0
                   and serial["full_passes"] == parallel["full_passes"]
                   and parallel["steals"] > 0)
        cores = doc.get("cores", 0)
        if gate_ok and cores >= 4:
            gate_ok = (parallel["storm_ms"] > 0
                       and serial["storm_ms"] / parallel["storm_ms"] >= 2.0)
        if not gate_ok:
            print(f"check_bench: {path}: parallel-drain gate not met "
                  f"(cores={cores}): 1w={serial}, "
                  f"{parallel['workers']}w={parallel}", file=sys.stderr)
            fail = 1
            continue
        policies = doc.get("policies")
        if (not isinstance(policies, list)
                or not any(p.get("policy") == "decay" for p in policies)):
            print(f"check_bench: {path}: needs a 'policies' row for the "
                  "alternate 'decay' controller", file=sys.stderr)
            fail = 1
            continue
    print(f"check_bench: {path}: ok (bench={doc['bench']})")
sys.exit(fail)
EOF
