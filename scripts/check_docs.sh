#!/usr/bin/env bash
# Docs lint: cross-check the metric/span name catalogue in docs/METRICS.md
# against the source tree.
#
#   1. Every metric or span name literal in src/ must be documented
#      (backticked) in docs/METRICS.md.
#   2. Every documented name must still exist as a literal in src/ — no
#      dangling catalogue entries.
#
# Name extraction is purely lexical, which works because metric and span
# names are always spelled as full string literals with a known subsystem
# prefix (trace_collector.cc keeps the trace.stage.* table in full literals
# for exactly this reason).
set -euo pipefail

cd "$(dirname "$0")/.."

doc="docs/METRICS.md"
if [[ ! -f "${doc}" ]]; then
  echo "check_docs: ${doc} is missing" >&2
  exit 1
fi

# Subsystem prefixes that metric and span names may use.
prefixes='admission|broker|store_broker|cache|cache_l2|client|server|compaction|isolation|config|overload|trace|rpc|kv|codec|feature|assembler|query'
name_re="(${prefixes})\.[a-z0-9_.]+"

src_names=$(grep -rhoE "\"${name_re}\"" src | tr -d '"' | sort -u)
# Doc side: only backticked tokens that look like metric/span names, so
# prose references like `MetricsRegistry` don't count as catalogue entries.
doc_names=$(grep -hoE "\`${name_re}\`" "${doc}" | tr -d '\`' | sort -u)

fail=0
undocumented=$(comm -23 <(echo "${src_names}") <(echo "${doc_names}"))
if [[ -n "${undocumented}" ]]; then
  echo "check_docs: metric/span names in src/ missing from ${doc}:" >&2
  echo "${undocumented}" | sed 's/^/  /' >&2
  fail=1
fi
dangling=$(comm -13 <(echo "${src_names}") <(echo "${doc_names}"))
if [[ -n "${dangling}" ]]; then
  echo "check_docs: names documented in ${doc} but absent from src/:" >&2
  echo "${dangling}" | sed 's/^/  /' >&2
  fail=1
fi

if [[ "${fail}" -ne 0 ]]; then
  exit 1
fi
echo "check_docs: $(echo "${src_names}" | wc -l) metric/span names consistent with ${doc}"
