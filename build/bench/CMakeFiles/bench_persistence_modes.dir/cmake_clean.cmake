file(REMOVE_RECURSE
  "CMakeFiles/bench_persistence_modes.dir/bench_persistence_modes.cc.o"
  "CMakeFiles/bench_persistence_modes.dir/bench_persistence_modes.cc.o.d"
  "bench_persistence_modes"
  "bench_persistence_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_persistence_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
