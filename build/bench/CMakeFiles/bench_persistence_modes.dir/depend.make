# Empty dependencies file for bench_persistence_modes.
# This may be replaced when dependencies are built.
