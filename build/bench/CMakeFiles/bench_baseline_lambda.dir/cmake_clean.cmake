file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_lambda.dir/bench_baseline_lambda.cc.o"
  "CMakeFiles/bench_baseline_lambda.dir/bench_baseline_lambda.cc.o.d"
  "bench_baseline_lambda"
  "bench_baseline_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
