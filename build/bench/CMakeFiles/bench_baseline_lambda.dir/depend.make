# Empty dependencies file for bench_baseline_lambda.
# This may be replaced when dependencies are built.
