# Empty dependencies file for bench_compaction_ablation.
# This may be replaced when dependencies are built.
