file(REMOVE_RECURSE
  "CMakeFiles/bench_compaction_ablation.dir/bench_compaction_ablation.cc.o"
  "CMakeFiles/bench_compaction_ablation.dir/bench_compaction_ablation.cc.o.d"
  "bench_compaction_ablation"
  "bench_compaction_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compaction_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
