file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_availability.dir/bench_fig17_availability.cc.o"
  "CMakeFiles/bench_fig17_availability.dir/bench_fig17_availability.cc.o.d"
  "bench_fig17_availability"
  "bench_fig17_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
