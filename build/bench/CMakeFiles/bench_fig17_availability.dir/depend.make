# Empty dependencies file for bench_fig17_availability.
# This may be replaced when dependencies are built.
