
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig19_write.cc" "bench/CMakeFiles/bench_fig19_write.dir/bench_fig19_write.cc.o" "gcc" "bench/CMakeFiles/bench_fig19_write.dir/bench_fig19_write.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/ips_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/ingest/CMakeFiles/ips_ingest.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ips_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/ips_server.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ips_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/compaction/CMakeFiles/ips_compaction.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/ips_query.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/ips_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/ips_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ips_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ips_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ingest/CMakeFiles/ips_msglog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
