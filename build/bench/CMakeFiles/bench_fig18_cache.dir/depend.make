# Empty dependencies file for bench_fig18_cache.
# This may be replaced when dependencies are built.
