file(REMOVE_RECURSE
  "CMakeFiles/bench_isolation_ablation.dir/bench_isolation_ablation.cc.o"
  "CMakeFiles/bench_isolation_ablation.dir/bench_isolation_ablation.cc.o.d"
  "bench_isolation_ablation"
  "bench_isolation_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_isolation_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
