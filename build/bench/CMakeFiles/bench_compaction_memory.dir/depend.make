# Empty dependencies file for bench_compaction_memory.
# This may be replaced when dependencies are built.
