file(REMOVE_RECURSE
  "CMakeFiles/bench_compaction_memory.dir/bench_compaction_memory.cc.o"
  "CMakeFiles/bench_compaction_memory.dir/bench_compaction_memory.cc.o.d"
  "bench_compaction_memory"
  "bench_compaction_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compaction_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
