# Empty dependencies file for ips_ingest.
# This may be replaced when dependencies are built.
