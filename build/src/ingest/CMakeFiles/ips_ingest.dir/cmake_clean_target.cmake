file(REMOVE_RECURSE
  "libips_ingest.a"
)
