file(REMOVE_RECURSE
  "CMakeFiles/ips_ingest.dir/bulk_import.cc.o"
  "CMakeFiles/ips_ingest.dir/bulk_import.cc.o.d"
  "CMakeFiles/ips_ingest.dir/events.cc.o"
  "CMakeFiles/ips_ingest.dir/events.cc.o.d"
  "CMakeFiles/ips_ingest.dir/ingestion_job.cc.o"
  "CMakeFiles/ips_ingest.dir/ingestion_job.cc.o.d"
  "CMakeFiles/ips_ingest.dir/stream_join.cc.o"
  "CMakeFiles/ips_ingest.dir/stream_join.cc.o.d"
  "CMakeFiles/ips_ingest.dir/workload.cc.o"
  "CMakeFiles/ips_ingest.dir/workload.cc.o.d"
  "libips_ingest.a"
  "libips_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ips_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
