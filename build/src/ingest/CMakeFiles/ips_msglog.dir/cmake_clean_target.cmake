file(REMOVE_RECURSE
  "libips_msglog.a"
)
