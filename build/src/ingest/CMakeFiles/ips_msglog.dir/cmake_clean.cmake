file(REMOVE_RECURSE
  "CMakeFiles/ips_msglog.dir/message_log.cc.o"
  "CMakeFiles/ips_msglog.dir/message_log.cc.o.d"
  "libips_msglog.a"
  "libips_msglog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ips_msglog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
