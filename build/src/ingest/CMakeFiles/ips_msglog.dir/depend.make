# Empty dependencies file for ips_msglog.
# This may be replaced when dependencies are built.
