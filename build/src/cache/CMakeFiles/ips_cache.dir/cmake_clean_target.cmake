file(REMOVE_RECURSE
  "libips_cache.a"
)
