file(REMOVE_RECURSE
  "CMakeFiles/ips_cache.dir/gcache.cc.o"
  "CMakeFiles/ips_cache.dir/gcache.cc.o.d"
  "libips_cache.a"
  "libips_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ips_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
