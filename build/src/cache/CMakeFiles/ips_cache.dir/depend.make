# Empty dependencies file for ips_cache.
# This may be replaced when dependencies are built.
