file(REMOVE_RECURSE
  "CMakeFiles/ips_compaction.dir/compactor.cc.o"
  "CMakeFiles/ips_compaction.dir/compactor.cc.o.d"
  "CMakeFiles/ips_compaction.dir/manager.cc.o"
  "CMakeFiles/ips_compaction.dir/manager.cc.o.d"
  "libips_compaction.a"
  "libips_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ips_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
