# Empty dependencies file for ips_compaction.
# This may be replaced when dependencies are built.
