file(REMOVE_RECURSE
  "libips_compaction.a"
)
