file(REMOVE_RECURSE
  "CMakeFiles/ips_core.dir/feature_stat.cc.o"
  "CMakeFiles/ips_core.dir/feature_stat.cc.o.d"
  "CMakeFiles/ips_core.dir/instance_set.cc.o"
  "CMakeFiles/ips_core.dir/instance_set.cc.o.d"
  "CMakeFiles/ips_core.dir/profile_data.cc.o"
  "CMakeFiles/ips_core.dir/profile_data.cc.o.d"
  "CMakeFiles/ips_core.dir/profile_table.cc.o"
  "CMakeFiles/ips_core.dir/profile_table.cc.o.d"
  "CMakeFiles/ips_core.dir/slice.cc.o"
  "CMakeFiles/ips_core.dir/slice.cc.o.d"
  "CMakeFiles/ips_core.dir/table_schema.cc.o"
  "CMakeFiles/ips_core.dir/table_schema.cc.o.d"
  "CMakeFiles/ips_core.dir/types.cc.o"
  "CMakeFiles/ips_core.dir/types.cc.o.d"
  "libips_core.a"
  "libips_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ips_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
