
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/feature_stat.cc" "src/core/CMakeFiles/ips_core.dir/feature_stat.cc.o" "gcc" "src/core/CMakeFiles/ips_core.dir/feature_stat.cc.o.d"
  "/root/repo/src/core/instance_set.cc" "src/core/CMakeFiles/ips_core.dir/instance_set.cc.o" "gcc" "src/core/CMakeFiles/ips_core.dir/instance_set.cc.o.d"
  "/root/repo/src/core/profile_data.cc" "src/core/CMakeFiles/ips_core.dir/profile_data.cc.o" "gcc" "src/core/CMakeFiles/ips_core.dir/profile_data.cc.o.d"
  "/root/repo/src/core/profile_table.cc" "src/core/CMakeFiles/ips_core.dir/profile_table.cc.o" "gcc" "src/core/CMakeFiles/ips_core.dir/profile_table.cc.o.d"
  "/root/repo/src/core/slice.cc" "src/core/CMakeFiles/ips_core.dir/slice.cc.o" "gcc" "src/core/CMakeFiles/ips_core.dir/slice.cc.o.d"
  "/root/repo/src/core/table_schema.cc" "src/core/CMakeFiles/ips_core.dir/table_schema.cc.o" "gcc" "src/core/CMakeFiles/ips_core.dir/table_schema.cc.o.d"
  "/root/repo/src/core/types.cc" "src/core/CMakeFiles/ips_core.dir/types.cc.o" "gcc" "src/core/CMakeFiles/ips_core.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ips_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
