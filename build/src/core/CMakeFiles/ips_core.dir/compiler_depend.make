# Empty compiler generated dependencies file for ips_core.
# This may be replaced when dependencies are built.
