file(REMOVE_RECURSE
  "libips_core.a"
)
