file(REMOVE_RECURSE
  "CMakeFiles/ips_query.dir/decay.cc.o"
  "CMakeFiles/ips_query.dir/decay.cc.o.d"
  "CMakeFiles/ips_query.dir/feature_spec.cc.o"
  "CMakeFiles/ips_query.dir/feature_spec.cc.o.d"
  "CMakeFiles/ips_query.dir/merger.cc.o"
  "CMakeFiles/ips_query.dir/merger.cc.o.d"
  "CMakeFiles/ips_query.dir/query.cc.o"
  "CMakeFiles/ips_query.dir/query.cc.o.d"
  "CMakeFiles/ips_query.dir/time_range.cc.o"
  "CMakeFiles/ips_query.dir/time_range.cc.o.d"
  "libips_query.a"
  "libips_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ips_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
