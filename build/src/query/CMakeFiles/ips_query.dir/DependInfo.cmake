
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/decay.cc" "src/query/CMakeFiles/ips_query.dir/decay.cc.o" "gcc" "src/query/CMakeFiles/ips_query.dir/decay.cc.o.d"
  "/root/repo/src/query/feature_spec.cc" "src/query/CMakeFiles/ips_query.dir/feature_spec.cc.o" "gcc" "src/query/CMakeFiles/ips_query.dir/feature_spec.cc.o.d"
  "/root/repo/src/query/merger.cc" "src/query/CMakeFiles/ips_query.dir/merger.cc.o" "gcc" "src/query/CMakeFiles/ips_query.dir/merger.cc.o.d"
  "/root/repo/src/query/query.cc" "src/query/CMakeFiles/ips_query.dir/query.cc.o" "gcc" "src/query/CMakeFiles/ips_query.dir/query.cc.o.d"
  "/root/repo/src/query/time_range.cc" "src/query/CMakeFiles/ips_query.dir/time_range.cc.o" "gcc" "src/query/CMakeFiles/ips_query.dir/time_range.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ips_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ips_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
