# Empty compiler generated dependencies file for ips_query.
# This may be replaced when dependencies are built.
