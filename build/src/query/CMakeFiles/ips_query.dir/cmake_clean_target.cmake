file(REMOVE_RECURSE
  "libips_query.a"
)
