# Empty dependencies file for ips_common.
# This may be replaced when dependencies are built.
