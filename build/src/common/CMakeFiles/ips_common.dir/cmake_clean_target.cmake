file(REMOVE_RECURSE
  "libips_common.a"
)
