file(REMOVE_RECURSE
  "CMakeFiles/ips_common.dir/clock.cc.o"
  "CMakeFiles/ips_common.dir/clock.cc.o.d"
  "CMakeFiles/ips_common.dir/config.cc.o"
  "CMakeFiles/ips_common.dir/config.cc.o.d"
  "CMakeFiles/ips_common.dir/histogram.cc.o"
  "CMakeFiles/ips_common.dir/histogram.cc.o.d"
  "CMakeFiles/ips_common.dir/logging.cc.o"
  "CMakeFiles/ips_common.dir/logging.cc.o.d"
  "CMakeFiles/ips_common.dir/metrics.cc.o"
  "CMakeFiles/ips_common.dir/metrics.cc.o.d"
  "CMakeFiles/ips_common.dir/random.cc.o"
  "CMakeFiles/ips_common.dir/random.cc.o.d"
  "CMakeFiles/ips_common.dir/rate_limiter.cc.o"
  "CMakeFiles/ips_common.dir/rate_limiter.cc.o.d"
  "CMakeFiles/ips_common.dir/status.cc.o"
  "CMakeFiles/ips_common.dir/status.cc.o.d"
  "CMakeFiles/ips_common.dir/thread_pool.cc.o"
  "CMakeFiles/ips_common.dir/thread_pool.cc.o.d"
  "libips_common.a"
  "libips_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ips_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
