
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/coding.cc" "src/codec/CMakeFiles/ips_codec.dir/coding.cc.o" "gcc" "src/codec/CMakeFiles/ips_codec.dir/coding.cc.o.d"
  "/root/repo/src/codec/compress.cc" "src/codec/CMakeFiles/ips_codec.dir/compress.cc.o" "gcc" "src/codec/CMakeFiles/ips_codec.dir/compress.cc.o.d"
  "/root/repo/src/codec/profile_codec.cc" "src/codec/CMakeFiles/ips_codec.dir/profile_codec.cc.o" "gcc" "src/codec/CMakeFiles/ips_codec.dir/profile_codec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ips_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ips_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
