file(REMOVE_RECURSE
  "libips_codec.a"
)
