# Empty compiler generated dependencies file for ips_codec.
# This may be replaced when dependencies are built.
