file(REMOVE_RECURSE
  "CMakeFiles/ips_codec.dir/coding.cc.o"
  "CMakeFiles/ips_codec.dir/coding.cc.o.d"
  "CMakeFiles/ips_codec.dir/compress.cc.o"
  "CMakeFiles/ips_codec.dir/compress.cc.o.d"
  "CMakeFiles/ips_codec.dir/profile_codec.cc.o"
  "CMakeFiles/ips_codec.dir/profile_codec.cc.o.d"
  "libips_codec.a"
  "libips_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ips_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
