file(REMOVE_RECURSE
  "CMakeFiles/ips_cluster.dir/client.cc.o"
  "CMakeFiles/ips_cluster.dir/client.cc.o.d"
  "CMakeFiles/ips_cluster.dir/consistent_hash.cc.o"
  "CMakeFiles/ips_cluster.dir/consistent_hash.cc.o.d"
  "CMakeFiles/ips_cluster.dir/deployment.cc.o"
  "CMakeFiles/ips_cluster.dir/deployment.cc.o.d"
  "CMakeFiles/ips_cluster.dir/discovery.cc.o"
  "CMakeFiles/ips_cluster.dir/discovery.cc.o.d"
  "CMakeFiles/ips_cluster.dir/rpc.cc.o"
  "CMakeFiles/ips_cluster.dir/rpc.cc.o.d"
  "libips_cluster.a"
  "libips_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ips_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
