file(REMOVE_RECURSE
  "libips_cluster.a"
)
