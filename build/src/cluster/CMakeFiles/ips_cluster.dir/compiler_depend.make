# Empty compiler generated dependencies file for ips_cluster.
# This may be replaced when dependencies are built.
