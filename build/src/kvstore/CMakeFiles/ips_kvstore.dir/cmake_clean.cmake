file(REMOVE_RECURSE
  "CMakeFiles/ips_kvstore.dir/kv_store.cc.o"
  "CMakeFiles/ips_kvstore.dir/kv_store.cc.o.d"
  "CMakeFiles/ips_kvstore.dir/mem_kv_store.cc.o"
  "CMakeFiles/ips_kvstore.dir/mem_kv_store.cc.o.d"
  "CMakeFiles/ips_kvstore.dir/replicated_kv.cc.o"
  "CMakeFiles/ips_kvstore.dir/replicated_kv.cc.o.d"
  "libips_kvstore.a"
  "libips_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ips_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
