file(REMOVE_RECURSE
  "libips_kvstore.a"
)
