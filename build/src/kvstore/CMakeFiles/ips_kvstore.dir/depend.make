# Empty dependencies file for ips_kvstore.
# This may be replaced when dependencies are built.
