file(REMOVE_RECURSE
  "CMakeFiles/ips_baseline.dir/lambda_profile.cc.o"
  "CMakeFiles/ips_baseline.dir/lambda_profile.cc.o.d"
  "libips_baseline.a"
  "libips_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ips_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
