file(REMOVE_RECURSE
  "libips_baseline.a"
)
