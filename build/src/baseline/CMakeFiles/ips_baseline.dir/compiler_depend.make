# Empty compiler generated dependencies file for ips_baseline.
# This may be replaced when dependencies are built.
