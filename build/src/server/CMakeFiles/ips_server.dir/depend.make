# Empty dependencies file for ips_server.
# This may be replaced when dependencies are built.
