file(REMOVE_RECURSE
  "CMakeFiles/ips_server.dir/feature_assembler.cc.o"
  "CMakeFiles/ips_server.dir/feature_assembler.cc.o.d"
  "CMakeFiles/ips_server.dir/ips_instance.cc.o"
  "CMakeFiles/ips_server.dir/ips_instance.cc.o.d"
  "CMakeFiles/ips_server.dir/persistence.cc.o"
  "CMakeFiles/ips_server.dir/persistence.cc.o.d"
  "CMakeFiles/ips_server.dir/quota.cc.o"
  "CMakeFiles/ips_server.dir/quota.cc.o.d"
  "libips_server.a"
  "libips_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ips_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
