file(REMOVE_RECURSE
  "libips_server.a"
)
