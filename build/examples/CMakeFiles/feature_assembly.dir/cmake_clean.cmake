file(REMOVE_RECURSE
  "CMakeFiles/feature_assembly.dir/feature_assembly.cpp.o"
  "CMakeFiles/feature_assembly.dir/feature_assembly.cpp.o.d"
  "feature_assembly"
  "feature_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
