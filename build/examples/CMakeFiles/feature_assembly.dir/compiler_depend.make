# Empty compiler generated dependencies file for feature_assembly.
# This may be replaced when dependencies are built.
