# Empty dependencies file for content_feeds.
# This may be replaced when dependencies are built.
