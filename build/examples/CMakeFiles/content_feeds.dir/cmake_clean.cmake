file(REMOVE_RECURSE
  "CMakeFiles/content_feeds.dir/content_feeds.cpp.o"
  "CMakeFiles/content_feeds.dir/content_feeds.cpp.o.d"
  "content_feeds"
  "content_feeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/content_feeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
