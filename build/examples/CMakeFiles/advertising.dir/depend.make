# Empty dependencies file for advertising.
# This may be replaced when dependencies are built.
