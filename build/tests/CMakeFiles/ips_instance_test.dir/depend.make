# Empty dependencies file for ips_instance_test.
# This may be replaced when dependencies are built.
