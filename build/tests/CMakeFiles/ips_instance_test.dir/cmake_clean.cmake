file(REMOVE_RECURSE
  "CMakeFiles/ips_instance_test.dir/ips_instance_test.cc.o"
  "CMakeFiles/ips_instance_test.dir/ips_instance_test.cc.o.d"
  "ips_instance_test"
  "ips_instance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ips_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
