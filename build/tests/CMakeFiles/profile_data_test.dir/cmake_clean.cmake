file(REMOVE_RECURSE
  "CMakeFiles/profile_data_test.dir/profile_data_test.cc.o"
  "CMakeFiles/profile_data_test.dir/profile_data_test.cc.o.d"
  "profile_data_test"
  "profile_data_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
