file(REMOVE_RECURSE
  "CMakeFiles/feature_spec_test.dir/feature_spec_test.cc.o"
  "CMakeFiles/feature_spec_test.dir/feature_spec_test.cc.o.d"
  "feature_spec_test"
  "feature_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
