# Empty compiler generated dependencies file for feature_spec_test.
# This may be replaced when dependencies are built.
