# Empty dependencies file for bulk_import_test.
# This may be replaced when dependencies are built.
