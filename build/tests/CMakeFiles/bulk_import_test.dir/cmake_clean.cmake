file(REMOVE_RECURSE
  "CMakeFiles/bulk_import_test.dir/bulk_import_test.cc.o"
  "CMakeFiles/bulk_import_test.dir/bulk_import_test.cc.o.d"
  "bulk_import_test"
  "bulk_import_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulk_import_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
