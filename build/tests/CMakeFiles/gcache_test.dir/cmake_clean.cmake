file(REMOVE_RECURSE
  "CMakeFiles/gcache_test.dir/gcache_test.cc.o"
  "CMakeFiles/gcache_test.dir/gcache_test.cc.o.d"
  "gcache_test"
  "gcache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
