# Empty dependencies file for gcache_test.
# This may be replaced when dependencies are built.
