file(REMOVE_RECURSE
  "CMakeFiles/feature_stat_test.dir/feature_stat_test.cc.o"
  "CMakeFiles/feature_stat_test.dir/feature_stat_test.cc.o.d"
  "feature_stat_test"
  "feature_stat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_stat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
