# Empty dependencies file for feature_stat_test.
# This may be replaced when dependencies are built.
