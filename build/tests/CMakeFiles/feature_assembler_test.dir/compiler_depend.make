# Empty compiler generated dependencies file for feature_assembler_test.
# This may be replaced when dependencies are built.
