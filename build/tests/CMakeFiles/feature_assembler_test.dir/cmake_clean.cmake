file(REMOVE_RECURSE
  "CMakeFiles/feature_assembler_test.dir/feature_assembler_test.cc.o"
  "CMakeFiles/feature_assembler_test.dir/feature_assembler_test.cc.o.d"
  "feature_assembler_test"
  "feature_assembler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_assembler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
