# Empty dependencies file for profile_codec_test.
# This may be replaced when dependencies are built.
