file(REMOVE_RECURSE
  "CMakeFiles/profile_codec_test.dir/profile_codec_test.cc.o"
  "CMakeFiles/profile_codec_test.dir/profile_codec_test.cc.o.d"
  "profile_codec_test"
  "profile_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
