file(REMOVE_RECURSE
  "CMakeFiles/core_types_test.dir/core_types_test.cc.o"
  "CMakeFiles/core_types_test.dir/core_types_test.cc.o.d"
  "core_types_test"
  "core_types_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
