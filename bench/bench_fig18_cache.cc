// Figure 18 reproduction: cache hit ratio and memory usage ratio of an IPS
// node over time.
//
// Paper result: typical cache hit ratio above 90%; memory usage ratio
// stable around 85% (the swap threshold), thanks to the profile split and
// cache management machinery.
//
// Reproduced claims: (a) under Zipf-skewed traffic with a working set
// larger than the cache, the hit ratio settles above 90%; (b) the sharded
// swap threads hold the memory usage ratio at the configured high
// watermark instead of oscillating or overshooting.
#include "bench/bench_util.h"

namespace ips {
namespace {

constexpr int kWindows = 14;
constexpr int kOpsPerWindow = 8'000;

void Run() {
  std::printf(
      "=== Fig 18: cache hit ratio and memory usage over time ===\n"
      "paper: hit ratio >90%%; memory usage stable ~85%%\n\n");

  ManualClock clock(700 * kMillisPerDay);
  DeploymentOptions options = bench::SingleRegion(/*calibrated=*/false);
  options.discovery_ttl_ms = 365 * kMillisPerDay;
  // Cache deliberately smaller than the working set.
  options.instance.cache.memory_limit_bytes = 32u << 20;
  options.instance.cache.high_watermark = 0.85;
  options.instance.cache.low_watermark = 0.80;
  options.instance.cache.start_background_threads = true;
  options.instance.cache.swap_interval_ms = 5;
  options.instance.cache.flush_interval_ms = 10;
  Deployment deployment(options, &clock);
  TableSchema schema = DefaultTableSchema("user_profile");
  if (!deployment.CreateTableEverywhere(schema).ok()) return;

  WorkloadOptions workload_options;
  workload_options.num_users = 20'000;
  workload_options.user_zipf_theta = 0.99;
  workload_options.seed = 18;
  WorkloadGenerator workload(workload_options);

  IpsClientOptions client_options;
  client_options.caller = "ranker";
  client_options.local_region = "lf";
  IpsClient client(client_options, &deployment);
  auto* node = deployment.NodesInRegion("lf")[0];

  // Warm-up: build profile history so entries have realistic footprints.
  bench::Preload(deployment, workload, "user_profile", 120'000,
                 clock.NowMs(), 30 * kMillisPerDay);

  bench::PrintHeader({"window", "hit_pct", "mem_pct", "profiles",
                      "evicted", "flushed"});

  MetricsRegistry* metrics = deployment.metrics();
  double final_hit = 0, final_mem = 0;
  for (int window = 0; window < kWindows; ++window) {
    const int64_t hits_before = metrics->GetCounter("cache.hit")->Value();
    const int64_t misses_before = metrics->GetCounter("cache.miss")->Value();
    for (int op = 0; op < kOpsPerWindow; ++op) {
      ProfileId uid;
      if (op % 11 == 10) {
        auto records = workload.NextAddBatch(clock.NowMs(), &uid);
        client.AddProfiles("user_profile", uid, records).ok();
      } else {
        QuerySpec spec = workload.NextQuerySpec(&uid);
        client.Query("user_profile", uid, spec).ok();
      }
    }
    auto stats = node->instance().GetTableStats("user_profile");
    if (!stats.ok()) return;
    const int64_t hits = metrics->GetCounter("cache.hit")->Value() -
                         hits_before;
    const int64_t misses = metrics->GetCounter("cache.miss")->Value() -
                           misses_before;
    const double window_hit =
        100.0 * static_cast<double>(hits) /
        static_cast<double>(std::max<int64_t>(1, hits + misses));
    final_hit = window_hit;
    final_mem = 100.0 * stats->memory_usage_ratio;

    bench::PrintCell(static_cast<int64_t>(window + 1));
    bench::PrintCell(window_hit);
    bench::PrintCell(final_mem);
    bench::PrintCell(static_cast<int64_t>(stats->cached_profiles));
    bench::PrintCell(metrics->GetCounter("cache.evicted")->Value());
    bench::PrintCell(metrics->GetCounter("cache.flushed")->Value());
    bench::EndRow();
    clock.AdvanceMs(kMillisPerHour);
    deployment.HeartbeatAll();
  }

  std::printf(
      "\nshape checks vs paper:\n"
      "  steady-state hit ratio: %.1f%% (paper: >90%%)\n"
      "  steady-state memory usage: %.1f%% (paper: ~85%%, the swap "
      "threshold)\n",
      final_hit, final_mem);
}

}  // namespace
}  // namespace ips

int main() {
  ips::Run();
  return 0;
}
