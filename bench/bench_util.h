// Shared scaffolding for the reproduction bench binaries (one per paper
// table/figure). Provides the calibrated latency model, deployment presets
// and table-formatted reporting.
//
// Latency model calibration (all simulated, see DESIGN.md):
//   * RPC channel: ~0.4 ms one-way base + exponential tail + size-
//     proportional cost -> ~1 ms round trip for small payloads, ~3 ms
//     for multi-KiB feature responses (Table II's network overhead).
//   * KV store: ~1.2 ms base per op + tail -> a cache miss adds the 2-4 ms
//     the paper reports between hit and miss rows of Table II.
// Absolute numbers are not the target; the paper's *shape* (hit-vs-miss
// deltas, flat p50, bounded p99, who wins by what factor) is.
#ifndef IPS_BENCH_BENCH_UTIL_H_
#define IPS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/client.h"
#include "cluster/deployment.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "ingest/workload.h"

namespace ips {
namespace bench {

/// Channel options matching the Table II network-cost decomposition.
inline ChannelOptions CalibratedChannel() {
  ChannelOptions options;
  options.base_latency_us = 400;
  options.tail_latency_us = 120;
  options.per_kib_us = 150;
  return options;
}

/// KV options making a cache miss cost ~2-4 ms more than a hit.
inline MemKvOptions CalibratedKv() {
  MemKvOptions options;
  options.base_latency_us = 1200;
  options.tail_latency_us = 500;
  options.per_kib_us = 20;
  return options;
}

/// Zero-latency variants for long simulations where wall-clock time, not
/// per-op latency, is the subject (availability, memory studies).
inline ChannelOptions FastChannel() { return ChannelOptions{}; }
inline MemKvOptions FastKv() { return MemKvOptions{}; }

/// One-region deployment preset.
inline DeploymentOptions SingleRegion(bool calibrated_latency) {
  DeploymentOptions options;
  options.regions = {{"lf", 1, /*is_primary=*/true}};
  options.instance.isolation_enabled = false;
  options.instance.compaction.synchronous = false;
  options.instance.compaction.num_threads = 1;
  options.channel =
      calibrated_latency ? CalibratedChannel() : FastChannel();
  options.kv.store_options = calibrated_latency ? CalibratedKv() : FastKv();
  return options;
}

/// Loads `num_users` profiles with `writes_per_user` historical actions so
/// queries have data to chew on. Writes go straight into the node instances
/// (bulk import), bypassing the client-side latency simulation.
inline void Preload(Deployment& deployment, WorkloadGenerator& workload,
                    const std::string& table, size_t num_events,
                    TimestampMs now_ms, int64_t history_span_ms) {
  auto nodes = deployment.NodesInRegion(deployment.region_names()[0]);
  for (size_t i = 0; i < num_events; ++i) {
    ProfileId uid;
    auto records = workload.NextAddBatch(
        now_ms - static_cast<TimestampMs>(
                     workload.rng().Uniform(history_span_ms)),
        &uid);
    for (auto* node : deployment.NodesInRegion("lf")) {
      node->instance().AddProfiles("preload", table, uid, records).ok();
    }
  }
  (void)nodes;
}

/// Fixed-width row printer for the result tables.
inline void PrintHeader(const std::vector<std::string>& columns) {
  for (const auto& c : columns) std::printf("%14s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) std::printf("%14s", "------");
  std::printf("\n");
}

inline void PrintCell(double v) { std::printf("%14.2f", v); }
inline void PrintCell(int64_t v) {
  std::printf("%14lld", static_cast<long long>(v));
}
inline void PrintCell(const char* v) { std::printf("%14s", v); }
inline void EndRow() { std::printf("\n"); }

/// Microseconds -> milliseconds for display.
inline double UsToMs(int64_t us) { return static_cast<double>(us) / 1000.0; }

}  // namespace bench
}  // namespace ips

#endif  // IPS_BENCH_BENCH_UTIL_H_
