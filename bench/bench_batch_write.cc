// Batch write path: per-profile writes vs the batched write path, at batch
// sizes {1, 16, 64, 256}.
//
// Ingestion traffic arrives in bursts of many profiles. The per-profile
// path pays one KV round trip per dirty profile at flush time and one RPC
// round trip per profile at the client; the batched path drains a flush
// group with one KvStore::MultiSet and ships a client batch as one MultiAdd
// RPC per owning node, amortizing the fixed transport and storage costs
// (the write-side mirror of the batch read path).
//
// Two phases isolate the two amortizations:
//   * warm_flush   — single instance over a calibrated KV store: dirty
//                    `batch` cached profiles, then FlushAll with the flush
//                    group capped at 1 (per-profile round trips) vs at the
//                    full batch (one MultiSet per flush group). The MultiSet
//                    op counters prove the round-trip counts.
//   * client_fanout — cluster with calibrated channel latency: sequential
//                    AddProfiles per profile vs ONE client MultiAdd.
//
// `--smoke` runs only the acceptance sizes and exits nonzero unless the
// batched flush at 256 is >= 4x faster than per-profile writes with exactly
// one MultiSet round trip per flush group. Emits BENCH_batch_write.json.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "server/ips_instance.h"

namespace ips {
namespace {

constexpr int64_t kMinute = kMillisPerMinute;
constexpr int64_t kDay = kMillisPerDay;
const std::vector<size_t> kBatchSizes = {1, 16, 64, 256};
constexpr const char* kTable = "user_profile";
constexpr int kRecordsPerProfile = 5;

struct Row {
  size_t batch = 0;
  double seq_ms = 0;
  double batch_ms = 0;
  int64_t kv_multisets_seq = -1;    // warm_flush phase only
  int64_t kv_multisets_batch = -1;  // warm_flush phase only
  double Speedup() const { return batch_ms > 0 ? seq_ms / batch_ms : 0; }
};

std::vector<MultiAddItem> WriteItems(size_t batch, TimestampMs now_ms,
                                     ProfileId first_pid) {
  std::vector<MultiAddItem> items;
  items.reserve(batch);
  for (size_t i = 0; i < batch; ++i) {
    MultiAddItem item;
    item.pid = first_pid + static_cast<ProfileId>(i);
    for (int j = 1; j <= kRecordsPerProfile; ++j) {
      AddRecord r;
      r.timestamp = now_ms - j * kMinute;
      r.slot = 1;
      r.type = 1;
      r.fid = static_cast<FeatureId>(j);
      r.counts = CountVector{1};
      item.records.push_back(r);
    }
    items.push_back(std::move(item));
  }
  return items;
}

IpsInstanceOptions FlushInstanceOptions(size_t flush_batch_max) {
  IpsInstanceOptions options;
  options.isolation_enabled = false;
  options.start_background_threads = false;
  options.cache.start_background_threads = false;
  options.compaction.synchronous = true;
  // One dirty shard so the flush-group cap alone decides how many MultiSet
  // round trips a FlushAll pays.
  options.cache.dirty_shards = 1;
  options.cache.flush_batch_max = flush_batch_max;
  return options;
}

// Dirties `batch` profiles in a fresh instance over `kv`, then times the
// FlushAll drain. Returns elapsed ms; *out_multisets gets the MultiSet
// round-trip count the drain cost.
double TimeFlush(MemKvStore& kv, ManualClock& clock, size_t batch,
                 size_t flush_batch_max, int64_t* out_multisets) {
  IpsInstance instance(FlushInstanceOptions(flush_batch_max), &kv, &clock);
  instance.CreateTable(DefaultTableSchema(kTable)).ok();
  auto result =
      instance.MultiAdd("loader", kTable, WriteItems(batch, clock.NowMs(), 1));
  if (!result.ok()) {
    std::printf("warm_flush MultiAdd failed at %zu\n", batch);
    return 0;
  }
  const int64_t ops_before = kv.MultiSetCalls();
  const int64_t begin = MonotonicNanos();
  instance.FlushAll();
  const double elapsed_ms =
      static_cast<double>(MonotonicNanos() - begin) / 1e6;
  *out_multisets = kv.MultiSetCalls() - ops_before;
  return elapsed_ms;
}

// Phase 1: flush-time amortization. Per-profile round trips (flush group
// capped at one entry) vs one MultiSet covering the whole dirty batch.
std::vector<Row> RunWarmFlush(const std::vector<size_t>& sizes) {
  ManualClock clock(500 * kDay);
  MemKvStore kv(bench::CalibratedKv());
  std::vector<Row> rows;
  for (size_t batch : sizes) {
    Row row;
    row.batch = batch;
    row.seq_ms = TimeFlush(kv, clock, batch, /*flush_batch_max=*/1,
                           &row.kv_multisets_seq);
    row.batch_ms =
        TimeFlush(kv, clock, batch, batch, &row.kv_multisets_batch);
    rows.push_back(row);
  }
  return rows;
}

// Phase 2: client fan-out amortization. Sequential AddProfiles pays one RPC
// round trip per profile; MultiAdd pays one per owning node.
std::vector<Row> RunClientFanout(const std::vector<size_t>& sizes) {
  ManualClock clock(500 * kDay);
  DeploymentOptions options = bench::SingleRegion(/*calibrated=*/true);
  options.regions[0].num_nodes = 2;  // exercise the scatter-gather split
  options.kv.store_options = bench::FastKv();  // isolate the RPC effect
  options.discovery_ttl_ms = 365 * kDay;
  Deployment deployment(options, &clock);
  if (!deployment.CreateTableEverywhere(DefaultTableSchema(kTable)).ok()) {
    return {};
  }
  IpsClientOptions client_options;
  client_options.caller = "ingester";
  client_options.local_region = "lf";
  IpsClient client(client_options, &deployment);

  std::vector<Row> rows;
  ProfileId next_pid = 1;
  for (size_t batch : sizes) {
    const std::vector<MultiAddItem> items =
        WriteItems(batch, clock.NowMs(), next_pid);
    next_pid += static_cast<ProfileId>(2 * batch);
    Row row;
    row.batch = batch;

    int64_t begin = MonotonicNanos();
    for (const MultiAddItem& item : items) {
      client.AddProfiles(kTable, item.pid + static_cast<ProfileId>(batch),
                         item.records)
          .ok();
    }
    row.seq_ms = static_cast<double>(MonotonicNanos() - begin) / 1e6;

    begin = MonotonicNanos();
    auto result = client.MultiAdd(kTable, items);
    row.batch_ms = static_cast<double>(MonotonicNanos() - begin) / 1e6;
    if (!result.ok()) std::printf("client MultiAdd failed at %zu\n", batch);
    rows.push_back(row);
  }
  return rows;
}

void PrintRows(const char* title, const std::vector<Row>& rows,
               bool with_ops) {
  std::printf("\n--- %s ---\n", title);
  if (with_ops) {
    bench::PrintHeader({"batch", "seq_ms", "multi_ms", "speedup",
                        "kv_ops_seq", "kv_ops_multi"});
  } else {
    bench::PrintHeader({"batch", "seq_ms", "multi_ms", "speedup"});
  }
  for (const Row& row : rows) {
    bench::PrintCell(static_cast<int64_t>(row.batch));
    bench::PrintCell(row.seq_ms);
    bench::PrintCell(row.batch_ms);
    bench::PrintCell(row.Speedup());
    if (with_ops) {
      bench::PrintCell(row.kv_multisets_seq);
      bench::PrintCell(row.kv_multisets_batch);
    }
    bench::EndRow();
  }
}

void WriteJson(const std::vector<Row>& flush, const std::vector<Row>& fanout) {
  std::FILE* f = std::fopen("BENCH_batch_write.json", "w");
  if (f == nullptr) {
    std::printf("could not write BENCH_batch_write.json\n");
    return;
  }
  auto write_rows = [&](const char* name, const std::vector<Row>& rows,
                        bool with_ops, const char* trailer) {
    std::fprintf(f, "  \"%s\": [\n", name);
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(f, "    {\"batch\": %zu, \"seq_ms\": %.3f, "
                   "\"multi_ms\": %.3f, \"speedup\": %.2f",
                   row.batch, row.seq_ms, row.batch_ms, row.Speedup());
      if (with_ops) {
        std::fprintf(f, ", \"kv_multisets_seq\": %lld, "
                     "\"kv_multisets_multi\": %lld",
                     static_cast<long long>(row.kv_multisets_seq),
                     static_cast<long long>(row.kv_multisets_batch));
      }
      std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]%s\n", trailer);
  };
  std::fprintf(f, "{\n  \"bench\": \"batch_write\",\n");
  write_rows("warm_flush", flush, /*with_ops=*/true, ",");
  write_rows("client_fanout", fanout, /*with_ops=*/false, "");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_batch_write.json\n");
}

int CheckAcceptance(const std::vector<Row>& flush,
                    const std::vector<Row>& fanout) {
  int rc = 0;
  for (const Row& row : flush) {
    if (row.batch != 256) continue;
    // One MultiSet per flush group. Production builds flush all 256 in one
    // group; sanitized builds clamp the group's lock fan-in, so derive the
    // expected group count from the cap.
    const size_t group_max =
        std::min<size_t>(row.batch, GCache::FlushGroupLockCap());
    const long long expected_groups =
        static_cast<long long>((row.batch + group_max - 1) / group_max);
    std::printf(
        "\nacceptance: batch=256 batched flush %.1fx faster than "
        "per-profile writes (need >= 4), %lld MultiSet round trips for the "
        "flush batch (need %lld: one per flush group) vs %lld "
        "per-profile\n",
        row.Speedup(), static_cast<long long>(row.kv_multisets_batch),
        expected_groups, static_cast<long long>(row.kv_multisets_seq));
    if (row.Speedup() < 4.0) {
      std::printf("FAIL: flush amortization under 4x\n");
      rc = 1;
    }
    if (row.kv_multisets_batch != expected_groups) {
      std::printf("FAIL: batched flush was not one MultiSet per group\n");
      rc = 1;
    }
    if (row.kv_multisets_seq != 256) {
      std::printf("FAIL: per-profile flush did not pay one trip each\n");
      rc = 1;
    }
  }
  for (const Row& row : fanout) {
    if (row.batch != 256) continue;
    std::printf(
        "acceptance: batch=256 client MultiAdd %.1fx faster than 256 "
        "sequential writes (need > 1)\n",
        row.Speedup());
    if (row.Speedup() <= 1.0) {
      std::printf("FAIL: client fan-out amortization missing\n");
      rc = 1;
    }
  }
  return rc;
}

int Run(bool smoke) {
  std::printf(
      "=== Batch write path: per-profile writes vs MultiAdd/MultiSet ===\n"
      "per-profile pays one round trip per dirty profile; the batched path\n"
      "pays one MultiSet per flush group and one MultiAdd RPC per node\n"
      "(mode: %s)\n",
      smoke ? "smoke" : "full");
  const std::vector<size_t> sizes =
      smoke ? std::vector<size_t>{256} : kBatchSizes;
  const std::vector<Row> flush = RunWarmFlush(sizes);
  const std::vector<Row> fanout = RunClientFanout(sizes);
  PrintRows("warm flush: KV round-trip amortization (instance)", flush,
            /*with_ops=*/true);
  PrintRows("client fan-out: RPC amortization (client, 2 nodes)", fanout,
            /*with_ops=*/false);
  const int rc = CheckAcceptance(flush, fanout);
  if (!smoke) WriteJson(flush, fanout);
  return rc;
}

}  // namespace
}  // namespace ips

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int rc = ips::Run(smoke);
  // The full run is a report; only the smoke gate fails the process.
  return smoke ? rc : 0;
}
