// Cache-tier sweep: the compressed L2 victim tier (demote-on-eviction,
// promote-on-miss) vs the tier-off ablation, under Zipfian user popularity
// at s in {0.6, 0.8, 0.99} (ZipfGenerator requires theta in (0, 1); 0.99 is
// YCSB's default skew).
//
// Eight request threads issue single-profile queries against an instance
// whose L1 (GCache) is deliberately tiny, with the background swap thread
// running, so the working set churns through eviction continuously. Without
// the tier every L1 miss pays the calibrated KV round trip. With it, evicted
// profiles are demoted as encoded bytes and a later miss promotes them back
// for the price of a decode — the KV round trip disappears from the steady
// state. The measured series is storage READ round trips per query
// (PointReadCalls + MultiGetCalls deltas over the measured phase; a warmup
// phase first faults the working set in and lets the swap thread demote it,
// so first-touch loads don't pollute the comparison).
//
// `--smoke` runs only s=0.99 and exits nonzero unless the tier cuts KV read
// round trips per query by >= 2x with cache_l2.hit > 0 (the PR acceptance
// gate). The full run emits BENCH_cache_tiers.json.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "common/random.h"
#include "server/ips_instance.h"

namespace ips {
namespace {

constexpr int64_t kMinute = kMillisPerMinute;
constexpr int64_t kDay = kMillisPerDay;
constexpr const char* kTable = "user_profile";
constexpr size_t kNumUsers = 512;
constexpr size_t kThreads = 8;

struct RunResult {
  double theta = 0;
  bool l2 = false;
  size_t queries = 0;
  size_t errors = 0;
  int64_t point_reads = 0;
  int64_t multi_gets = 0;
  int64_t l2_hits = 0;
  int64_t l2_admitted = 0;
  int64_t demoted = 0;
  double l1_hit_ratio = 0;
  double mean_ms = 0;
  double p99_ms = 0;
  double RtPerQuery() const {
    return queries == 0
               ? 0
               : static_cast<double>(point_reads + multi_gets) / queries;
  }
};

QuerySpec BenchSpec() {
  QuerySpec spec;
  spec.slot = 1;
  spec.time_range = TimeRange::Current(kDay);
  spec.sort_by = SortBy::kActionCount;
  spec.k = 10;
  return spec;
}

IpsInstanceOptions BenchInstanceOptions(bool l2_on) {
  IpsInstanceOptions options;
  options.start_background_threads = false;
  options.isolation_enabled = false;
  // The swap thread runs: eviction churn is the regime where the tier earns
  // its keep (demotions are what fill it).
  options.cache.start_background_threads = true;
  options.cache.swap_interval_ms = 2;
  options.cache.flush_interval_ms = 50;
  options.cache.write_granularity_ms = kMinute;
  // Tiny L1: the Zipf head cannot stay resident, so profiles keep cycling
  // through eviction and re-load.
  options.cache.memory_limit_bytes = 8 * 1024;
  options.enable_victim_cache = l2_on;
  // Generous L2: the whole working set fits as encoded bytes — the paper's
  // asymmetry (compressed bytes are ~10x smaller than resident profiles).
  options.victim_cache.memory_limit_bytes = 16 << 20;
  options.victim_cache.admit_min_frequency = 2;
  return options;
}

// Persists kNumUsers profiles through a zero-latency store, then copies the
// bytes into the calibrated store every config reads from.
void SeedStore(MemKvStore& kv) {
  ManualClock clock(500 * kDay);
  MemKvStore fast_kv(bench::FastKv());
  IpsInstanceOptions options = BenchInstanceOptions(/*l2_on=*/false);
  options.cache.start_background_threads = false;
  options.cache.memory_limit_bytes = 64 << 20;  // seeding wants a real cache
  IpsInstance preload(options, &fast_kv, &clock);
  preload.CreateTable(DefaultTableSchema(kTable)).ok();
  // WorkloadGenerator::SampleUser returns ScrambleId(rank) for ranks in
  // [0, num_users) — seed the SAME id space the query threads will sample,
  // or the bench measures NotFound traffic instead of profile reads.
  for (uint64_t rank = 0; rank < kNumUsers; ++rank) {
    const ProfileId pid = ScrambleId(rank);
    for (int i = 1; i <= 3; ++i) {
      preload
          .AddProfile("preload", kTable, pid, clock.NowMs() - i * kMinute, 1,
                      1, static_cast<FeatureId>(i), CountVector{1})
          .ok();
    }
  }
  preload.FlushAll();
  fast_kv.ForEach([&](const std::string& key, const KvEntry& entry) {
    kv.Set(key, entry.value).ok();
  });
}

RunResult RunConfig(MemKvStore& kv, double theta, bool l2_on,
                    size_t queries_per_thread) {
  ManualClock clock(500 * kDay);
  IpsInstance instance(BenchInstanceOptions(l2_on), &kv, &clock);
  instance.CreateTable(DefaultTableSchema(kTable)).ok();
  const QuerySpec spec = BenchSpec();
  MetricsRegistry* metrics = instance.metrics();

  // Warmup: fault the whole working set in twice. Two sweeps, not one, so
  // every pid clears the admission sketch's frequency floor by the time the
  // swap thread demotes it; then give the swap thread a beat to churn the
  // L1 back under its watermark (tier on: the sweep ends up demoted to L2).
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (uint64_t rank = 0; rank < kNumUsers; ++rank) {
      instance.Query("warmup", kTable, ScrambleId(rank), spec).ok();
    }
  }
  for (int i = 0; i < 200; ++i) {
    auto stats = instance.GetTableStats(kTable);
    if (stats.ok() && stats->memory_usage_ratio <= 0.9) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  const int64_t points_before = kv.PointReadCalls();
  const int64_t multi_before = kv.MultiGetCalls();
  const int64_t l2_hits_before = metrics->GetCounter("cache_l2.hit")->Value();
  const int64_t l2_admit_before =
      metrics->GetCounter("cache_l2.admitted")->Value();
  const int64_t demoted_before =
      metrics->GetCounter("cache.demoted")->Value();
  const int64_t hits_before = metrics->GetCounter("cache.hit")->Value();
  const int64_t misses_before = metrics->GetCounter("cache.miss")->Value();

  Histogram latency;
  std::mutex latency_mu;
  std::atomic<size_t> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      WorkloadOptions wopts;
      wopts.num_users = kNumUsers;
      wopts.user_zipf_theta = theta;
      wopts.seed = 2000 + 77 * t;
      WorkloadGenerator workload(wopts);
      std::vector<int64_t> lats;
      lats.reserve(queries_per_thread);
      for (size_t q = 0; q < queries_per_thread; ++q) {
        const ProfileId pid = workload.SampleUser();
        const int64_t begin = MonotonicNanos();
        auto result = instance.Query("bench", kTable, pid, spec);
        lats.push_back((MonotonicNanos() - begin) / 1000);
        if (!result.ok()) errors.fetch_add(1);
      }
      std::lock_guard<std::mutex> lock(latency_mu);
      for (int64_t us : lats) latency.Record(us);
    });
  }
  for (auto& thread : threads) thread.join();

  RunResult r;
  r.theta = theta;
  r.l2 = l2_on;
  r.queries = kThreads * queries_per_thread;
  r.errors = errors.load();
  r.point_reads = kv.PointReadCalls() - points_before;
  r.multi_gets = kv.MultiGetCalls() - multi_before;
  r.l2_hits = metrics->GetCounter("cache_l2.hit")->Value() - l2_hits_before;
  r.l2_admitted =
      metrics->GetCounter("cache_l2.admitted")->Value() - l2_admit_before;
  r.demoted = metrics->GetCounter("cache.demoted")->Value() - demoted_before;
  const int64_t hits = metrics->GetCounter("cache.hit")->Value() - hits_before;
  const int64_t misses =
      metrics->GetCounter("cache.miss")->Value() - misses_before;
  r.l1_hit_ratio = hits + misses > 0
                       ? static_cast<double>(hits) / (hits + misses)
                       : 0;
  r.mean_ms = latency.Mean() / 1000.0;
  r.p99_ms = bench::UsToMs(latency.Percentile(0.99));
  return r;
}

void PrintRow(const RunResult& r) {
  bench::PrintCell(r.theta);
  bench::PrintCell(r.l2 ? "on" : "off");
  bench::PrintCell(static_cast<int64_t>(r.queries));
  bench::PrintCell(static_cast<int64_t>(r.point_reads + r.multi_gets));
  bench::PrintCell(r.RtPerQuery());
  bench::PrintCell(r.l2_hits);
  bench::PrintCell(r.demoted);
  bench::PrintCell(r.l1_hit_ratio);
  bench::PrintCell(r.mean_ms);
  bench::PrintCell(r.p99_ms);
  bench::EndRow();
}

void WriteJson(const std::vector<RunResult>& rows) {
  std::FILE* f = std::fopen("BENCH_cache_tiers.json", "w");
  if (f == nullptr) {
    std::printf("could not write BENCH_cache_tiers.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"cache_tiers\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const RunResult& r = rows[i];
    std::fprintf(
        f,
        "    {\"theta\": %.1f, \"l2\": %s, \"queries\": %zu, "
        "\"kv_round_trips\": %lld, \"rt_per_query\": %.4f, "
        "\"l2_hits\": %lld, \"l2_admitted\": %lld, \"demoted\": %lld, "
        "\"l1_hit_ratio\": %.3f, \"mean_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
        r.theta, r.l2 ? "true" : "false", r.queries,
        static_cast<long long>(r.point_reads + r.multi_gets), r.RtPerQuery(),
        static_cast<long long>(r.l2_hits),
        static_cast<long long>(r.l2_admitted),
        static_cast<long long>(r.demoted), r.l1_hit_ratio, r.mean_ms,
        r.p99_ms, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_cache_tiers.json\n");
}

int Run(bool smoke) {
  std::printf(
      "=== Cache tiers: compressed L2 victim tier vs tier-off ablation "
      "(%s) ===\n"
      "%zu threads, Zipf users over %zu profiles, tiny L1 + live swap "
      "thread;\nseries = KV read round trips per query (measured phase, "
      "post-warmup)\n",
      smoke ? "smoke" : "full", kThreads, kNumUsers);

  MemKvStore kv(bench::CalibratedKv());
  SeedStore(kv);

  const std::vector<double> thetas =
      smoke ? std::vector<double>{0.99} : std::vector<double>{0.6, 0.8, 0.99};
  const size_t queries_per_thread = smoke ? 150 : 300;

  bench::PrintHeader({"zipf_s", "l2", "queries", "kv_rt", "rt_per_q",
                      "l2_hits", "demoted", "l1_hit", "mean_ms", "p99_ms"});
  std::vector<RunResult> rows;
  double accept_ratio = 0;
  int64_t accept_l2_hits = 0;
  size_t total_errors = 0;
  for (double theta : thetas) {
    const RunResult off =
        RunConfig(kv, theta, /*l2_on=*/false, queries_per_thread);
    const RunResult on =
        RunConfig(kv, theta, /*l2_on=*/true, queries_per_thread);
    PrintRow(off);
    PrintRow(on);
    total_errors += off.errors + on.errors;
    // A tier-on steady state can be KV-silent (every miss promotes); cap
    // the reported ratio instead of dividing by zero.
    const double ratio = on.RtPerQuery() > 0
                             ? off.RtPerQuery() / on.RtPerQuery()
                             : (off.RtPerQuery() > 0 ? 1e9 : 0);
    std::printf("%14s s=%.2f: L2 tier cuts KV read round trips per query "
                "%.1fx (%.2f -> %.2f)\n",
                "", theta, ratio, off.RtPerQuery(), on.RtPerQuery());
    if (theta == 0.99) {
      accept_ratio = ratio;
      accept_l2_hits = on.l2_hits;
    }
    rows.push_back(off);
    rows.push_back(on);
  }

  int rc = 0;
  if (total_errors != 0) {
    std::printf("FAIL: %zu queries returned errors\n", total_errors);
    rc = 1;
  }
  std::printf(
      "\nacceptance @ s=0.99: rt reduction %.1fx (need >= 2.0), "
      "cache_l2.hit %lld (need > 0)\n",
      accept_ratio, static_cast<long long>(accept_l2_hits));
  if (accept_ratio < 2.0 || accept_l2_hits <= 0) {
    std::printf("FAIL: cache-tier gate not met\n");
    rc = 1;
  } else {
    std::printf("PASS\n");
  }
  if (!smoke) WriteJson(rows);
  return rc;
}

}  // namespace
}  // namespace ips

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int rc = ips::Run(smoke);
  // The full run is also gated: the acceptance line must hold either way.
  return rc;
}
