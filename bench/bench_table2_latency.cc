// Table II reproduction: client- and server-side query latency, split by
// cache hit vs cache miss.
//
// Paper result (ms):          avg   p50   p99
//   client, cache hit   ~      3-4   ~3    ~8
//   client, cache miss  ~      6-8   ~6   ~12
//   server, cache hit   ~      <1    ~0.4  ~2
//   server, cache miss  ~      3-5   ~3    ~8
// plus: ~3 ms network overhead growing with response size; a hit saves
// roughly 2-4 ms per query.
//
// The claims to reproduce: (a) the hit/miss delta is 2-4 ms (the KV round
// trip), (b) the client-server gap is the network overhead and is payload-
// proportional, (c) server-side hit cost is sub-millisecond.
//
// On top of the end-to-end numbers, every query is traced and the per-stage
// decomposition (rpc.transfer / server.queue / cache.lookup / kv.load /
// codec.decode / feature.compute) is reported per path, with a built-in
// self-check: the mean stage sum must land within 5% of the mean measured
// end-to-end latency for both hit and miss — the substitution table in
// DESIGN.md is only trustworthy if the stages account for the total.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "common/trace.h"
#include "common/trace_collector.h"

namespace ips {
namespace {

constexpr int kQueries = 1500;
constexpr double kSumTolerance = 0.05;

struct Split {
  Histogram client_hit, client_miss, server_hit, server_miss;
};

// Per-path traced decomposition: one histogram per disjoint stage plus the
// per-trace stage sum.
struct StageSplit {
  std::map<std::string, Histogram> stages;
  Histogram stage_sum;
};

void PrintRow(const char* label, Histogram& h) {
  bench::PrintCell(label);
  bench::PrintCell(static_cast<int64_t>(h.count()));
  bench::PrintCell(bench::UsToMs(static_cast<int64_t>(h.Mean())));
  bench::PrintCell(bench::UsToMs(h.Percentile(0.50)));
  bench::PrintCell(bench::UsToMs(h.Percentile(0.99)));
  bench::EndRow();
}

void Run() {
  std::printf(
      "=== Table II: client/server query latency, hit vs miss ===\n"
      "paper: hit saves ~2-4 ms; network overhead ~3 ms, size-"
      "proportional; server-side hit is sub-ms\n\n");

  ManualClock sim_clock(500 * kMillisPerDay);
  DeploymentOptions options = bench::SingleRegion(/*calibrated=*/true);
  options.discovery_ttl_ms = 365 * kMillisPerDay;
  // Small cache so a cold working set reliably misses.
  options.instance.cache.memory_limit_bytes = 24u << 20;
  Deployment deployment(options, &sim_clock);
  TableSchema schema = DefaultTableSchema("user_profile");
  if (!deployment.CreateTableEverywhere(schema).ok()) return;

  WorkloadOptions workload_options;
  workload_options.num_users = 15'000;
  workload_options.user_zipf_theta = 0.99;
  workload_options.seed = 2;
  WorkloadGenerator workload(workload_options);
  bench::Preload(deployment, workload, "user_profile", 50'000,
                 sim_clock.NowMs(), 30 * kMillisPerDay);
  // Flush so cold profiles exist in the KV store and can be re-loaded, then
  // shrink the cache by evicting.
  auto* node = deployment.NodesInRegion("lf")[0];
  node->instance().FlushAll();

  IpsClientOptions client_options;
  client_options.caller = "ranker";
  client_options.local_region = "lf";
  IpsClient client(client_options, &deployment);

  MetricsRegistry* metrics = deployment.metrics();
  Histogram* server_hit = metrics->GetHistogram("server.query_micros_hit");
  Histogram* server_miss = metrics->GetHistogram("server.query_micros_miss");
  server_hit->Reset();
  server_miss->Reset();

  // Trace every query: the decomposition below is computed from the spans,
  // and the collector doubles as slow-query log + stage histogram feed.
  TraceCollectorOptions trace_options;
  trace_options.sample_every_n = 1;
  trace_options.ring_capacity = 32;
  trace_options.slow_log_capacity = 3;
  TraceCollector collector(trace_options, &sim_clock, metrics);
  const size_t num_stages = TraceCollector::DisjointStageCount();
  const std::vector<std::string>& stage_names = TraceCollector::StageNames();

  Split split;
  StageSplit traced_hit, traced_miss;
  for (int q = 0; q < kQueries; ++q) {
    ProfileId uid;
    QuerySpec spec = workload.NextQuerySpec(&uid);
    auto trace = collector.MaybeStartTrace();
    CallContext ctx;
    ctx.trace = TraceCollector::ContextFor(trace.get());
    const int64_t hits_before = metrics->GetCounter("cache.hit")->Value();
    const int64_t begin = MonotonicNanos();
    auto result = client.Query("user_profile", uid, spec, ctx);
    const int64_t micros = (MonotonicNanos() - begin) / 1000;
    if (!result.ok()) continue;
    const bool was_hit =
        metrics->GetCounter("cache.hit")->Value() > hits_before;
    (was_hit ? split.client_hit : split.client_miss).Record(micros);
    if (trace != nullptr) {
      StageSplit& traced = was_hit ? traced_hit : traced_miss;
      int64_t sum_us = 0;
      for (size_t s = 0; s < num_stages; ++s) {
        const int64_t us = trace->StageNs(stage_names[s].c_str()) / 1000;
        traced.stages[stage_names[s]].Record(us);
        sum_us += us;
      }
      traced.stage_sum.Record(sum_us);
      collector.Finish(std::move(trace));
    }
  }

  bench::PrintHeader({"side/path", "count", "avg_ms", "p50_ms", "p99_ms"});
  PrintRow("client/hit", split.client_hit);
  PrintRow("client/miss", split.client_miss);
  PrintRow("server/hit", *server_hit);
  PrintRow("server/miss", *server_miss);

  const double hit_saving_ms =
      bench::UsToMs(split.client_miss.Percentile(0.50) -
                    split.client_hit.Percentile(0.50));
  const double network_ms =
      bench::UsToMs(split.client_hit.Percentile(0.50) -
                    server_hit->Percentile(0.50));
  std::printf(
      "\nshape checks vs paper:\n"
      "  p50 saving from a cache hit: %.2f ms (paper: 2-4 ms)\n"
      "  network overhead (client - server, hit path): %.2f ms "
      "(paper: ~3 ms)\n"
      "  server-side hit p50: %.2f ms (paper: sub-ms compute)\n",
      hit_saving_ms, network_ms,
      bench::UsToMs(server_hit->Percentile(0.50)));

  // ---- Traced per-stage decomposition (Table II, from spans) ----
  std::printf("\n=== traced stage decomposition (avg ms/query) ===\n");
  bench::PrintHeader({"stage", "hit_ms", "miss_ms"});
  for (size_t s = 0; s < num_stages; ++s) {
    const std::string& stage = stage_names[s];
    bench::PrintCell(stage.c_str());
    bench::PrintCell(
        bench::UsToMs(static_cast<int64_t>(traced_hit.stages[stage].Mean())));
    bench::PrintCell(bench::UsToMs(
        static_cast<int64_t>(traced_miss.stages[stage].Mean())));
    bench::EndRow();
  }
  const double hit_sum_ms =
      bench::UsToMs(static_cast<int64_t>(traced_hit.stage_sum.Mean()));
  const double miss_sum_ms =
      bench::UsToMs(static_cast<int64_t>(traced_miss.stage_sum.Mean()));
  const double hit_e2e_ms =
      bench::UsToMs(static_cast<int64_t>(split.client_hit.Mean()));
  const double miss_e2e_ms =
      bench::UsToMs(static_cast<int64_t>(split.client_miss.Mean()));
  bench::PrintCell("stage sum");
  bench::PrintCell(hit_sum_ms);
  bench::PrintCell(miss_sum_ms);
  bench::EndRow();
  bench::PrintCell("measured e2e");
  bench::PrintCell(hit_e2e_ms);
  bench::PrintCell(miss_e2e_ms);
  bench::EndRow();

  // Self-check: the stages must account for the measured total.
  const double hit_cov = hit_e2e_ms > 0 ? hit_sum_ms / hit_e2e_ms : 0;
  const double miss_cov = miss_e2e_ms > 0 ? miss_sum_ms / miss_e2e_ms : 0;
  const bool hit_ok = hit_cov >= 1.0 - kSumTolerance &&
                      hit_cov <= 1.0 + kSumTolerance;
  const bool miss_ok = miss_cov >= 1.0 - kSumTolerance &&
                       miss_cov <= 1.0 + kSumTolerance;
  std::printf(
      "\nstage-sum self-check (tolerance %.0f%%):\n"
      "  hit:  coverage %.1f%% -> %s\n"
      "  miss: coverage %.1f%% -> %s\n",
      kSumTolerance * 100, hit_cov * 100, hit_ok ? "PASS" : "FAIL",
      miss_cov * 100, miss_ok ? "PASS" : "FAIL");

  std::printf("\n%s", collector.SlowQueryReport().c_str());

  // ---- JSON artifact ----
  std::FILE* f = std::fopen("BENCH_table2_latency.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n  \"bench\": \"table2_latency\",\n"
                 "  \"queries\": %d,\n  \"sum_tolerance\": %.2f,\n",
                 kQueries, kSumTolerance);
    std::fprintf(f,
                 "  \"server_us\": {\"hit_p50\": %lld, \"miss_p50\": %lld},\n",
                 static_cast<long long>(server_hit->Percentile(0.50)),
                 static_cast<long long>(server_miss->Percentile(0.50)));
    const struct {
      const char* label;
      Histogram* e2e;
      StageSplit* traced;
      double coverage;
      bool ok;
    } paths[] = {
        {"client_hit", &split.client_hit, &traced_hit, hit_cov, hit_ok},
        {"client_miss", &split.client_miss, &traced_miss, miss_cov, miss_ok},
    };
    std::fprintf(f, "  \"paths\": [\n");
    for (size_t p = 0; p < 2; ++p) {
      const auto& path = paths[p];
      std::fprintf(
          f,
          "    {\"path\": \"%s\", \"count\": %lld,\n"
          "     \"e2e_us\": {\"avg\": %lld, \"p50\": %lld, \"p99\": %lld},\n"
          "     \"stages_avg_us\": {",
          path.label, static_cast<long long>(path.e2e->count()),
          static_cast<long long>(path.e2e->Mean()),
          static_cast<long long>(path.e2e->Percentile(0.50)),
          static_cast<long long>(path.e2e->Percentile(0.99)));
      for (size_t s = 0; s < num_stages; ++s) {
        std::fprintf(
            f, "%s\"%s\": %lld", s == 0 ? "" : ", ",
            stage_names[s].c_str(),
            static_cast<long long>(path.traced->stages[stage_names[s]]
                                       .Mean()));
      }
      std::fprintf(f,
                   "},\n     \"stage_sum_avg_us\": %lld, "
                   "\"coverage\": %.4f, \"within_tolerance\": %s}%s\n",
                   static_cast<long long>(path.traced->stage_sum.Mean()),
                   path.coverage, path.ok ? "true" : "false",
                   p == 0 ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"shape\": {\"hit_saving_p50_ms\": %.2f, "
                 "\"network_overhead_p50_ms\": %.2f, "
                 "\"server_hit_p50_ms\": %.2f}\n}\n",
                 hit_saving_ms, network_ms,
                 bench::UsToMs(server_hit->Percentile(0.50)));
    std::fclose(f);
    std::printf("wrote BENCH_table2_latency.json\n");
  }
}

}  // namespace
}  // namespace ips

int main() {
  ips::Run();
  return 0;
}
