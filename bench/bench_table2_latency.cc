// Table II reproduction: client- and server-side query latency, split by
// cache hit vs cache miss.
//
// Paper result (ms):          avg   p50   p99
//   client, cache hit   ~      3-4   ~3    ~8
//   client, cache miss  ~      6-8   ~6   ~12
//   server, cache hit   ~      <1    ~0.4  ~2
//   server, cache miss  ~      3-5   ~3    ~8
// plus: ~3 ms network overhead growing with response size; a hit saves
// roughly 2-4 ms per query.
//
// The claims to reproduce: (a) the hit/miss delta is 2-4 ms (the KV round
// trip), (b) the client-server gap is the network overhead and is payload-
// proportional, (c) server-side hit cost is sub-millisecond.
#include "bench/bench_util.h"

namespace ips {
namespace {

constexpr int kQueries = 1500;

struct Split {
  Histogram client_hit, client_miss, server_hit, server_miss;
};

void PrintRow(const char* label, Histogram& h) {
  bench::PrintCell(label);
  bench::PrintCell(static_cast<int64_t>(h.count()));
  bench::PrintCell(bench::UsToMs(static_cast<int64_t>(h.Mean())));
  bench::PrintCell(bench::UsToMs(h.Percentile(0.50)));
  bench::PrintCell(bench::UsToMs(h.Percentile(0.99)));
  bench::EndRow();
}

void Run() {
  std::printf(
      "=== Table II: client/server query latency, hit vs miss ===\n"
      "paper: hit saves ~2-4 ms; network overhead ~3 ms, size-"
      "proportional; server-side hit is sub-ms\n\n");

  ManualClock sim_clock(500 * kMillisPerDay);
  DeploymentOptions options = bench::SingleRegion(/*calibrated=*/true);
  options.discovery_ttl_ms = 365 * kMillisPerDay;
  // Small cache so a cold working set reliably misses.
  options.instance.cache.memory_limit_bytes = 24u << 20;
  Deployment deployment(options, &sim_clock);
  TableSchema schema = DefaultTableSchema("user_profile");
  if (!deployment.CreateTableEverywhere(schema).ok()) return;

  WorkloadOptions workload_options;
  workload_options.num_users = 15'000;
  workload_options.user_zipf_theta = 0.99;
  workload_options.seed = 2;
  WorkloadGenerator workload(workload_options);
  bench::Preload(deployment, workload, "user_profile", 50'000,
                 sim_clock.NowMs(), 30 * kMillisPerDay);
  // Flush so cold profiles exist in the KV store and can be re-loaded, then
  // shrink the cache by evicting.
  auto* node = deployment.NodesInRegion("lf")[0];
  node->instance().FlushAll();

  IpsClientOptions client_options;
  client_options.caller = "ranker";
  client_options.local_region = "lf";
  IpsClient client(client_options, &deployment);

  MetricsRegistry* metrics = deployment.metrics();
  Histogram* server_hit = metrics->GetHistogram("server.query_micros_hit");
  Histogram* server_miss = metrics->GetHistogram("server.query_micros_miss");
  server_hit->Reset();
  server_miss->Reset();

  Split split;
  for (int q = 0; q < kQueries; ++q) {
    ProfileId uid;
    QuerySpec spec = workload.NextQuerySpec(&uid);
    const int64_t hits_before = metrics->GetCounter("cache.hit")->Value();
    const int64_t begin = MonotonicNanos();
    auto result = client.Query("user_profile", uid, spec);
    const int64_t micros = (MonotonicNanos() - begin) / 1000;
    if (!result.ok()) continue;
    const bool was_hit =
        metrics->GetCounter("cache.hit")->Value() > hits_before;
    (was_hit ? split.client_hit : split.client_miss).Record(micros);
  }

  bench::PrintHeader({"side/path", "count", "avg_ms", "p50_ms", "p99_ms"});
  PrintRow("client/hit", split.client_hit);
  PrintRow("client/miss", split.client_miss);
  PrintRow("server/hit", *server_hit);
  PrintRow("server/miss", *server_miss);

  const double hit_saving_ms =
      bench::UsToMs(split.client_miss.Percentile(0.50) -
                    split.client_hit.Percentile(0.50));
  const double network_ms =
      bench::UsToMs(split.client_hit.Percentile(0.50) -
                    server_hit->Percentile(0.50));
  std::printf(
      "\nshape checks vs paper:\n"
      "  p50 saving from a cache hit: %.2f ms (paper: 2-4 ms)\n"
      "  network overhead (client - server, hit path): %.2f ms "
      "(paper: ~3 ms)\n"
      "  server-side hit p50: %.2f ms (paper: sub-ms compute)\n",
      hit_saving_ms, network_ms,
      bench::UsToMs(server_hit->Percentile(0.50)));
}

}  // namespace
}  // namespace ips

int main() {
  ips::Run();
  return 0;
}
