// Section I / VI comparison: IPS vs the legacy Lambda architecture
// (long-term daily-batch profile + short-term recent-ID list) that the
// paper's introduction motivates replacing.
//
// The paper argues three advantages; each is measured here on the same
// instance stream fed to both systems:
//  1. Freshness — an action is queryable in IPS on the next merge
//     (seconds), but invisible to the Lambda long-term profile until the
//     next daily batch.
//  2. Window flexibility — IPS answers arbitrary windows (e.g. "last 7
//     days") exactly; Lambda only offers all-history-as-of-last-batch or
//     last-N-clicks, so a 7-day aggregate carries large error.
//  3. Serving cost — Lambda's short-term path performs one content-store
//     lookup per recent click on every query; IPS computes server-side
//     with zero extra lookups.
#include <cmath>
#include <map>

#include "baseline/lambda_profile.h"
#include "bench/bench_util.h"
#include "kvstore/mem_kv_store.h"
#include "server/ips_instance.h"

namespace ips {
namespace {

constexpr int kDays = 14;
constexpr int kUsers = 200;
constexpr int kActionsPerUserPerDay = 6;
constexpr SlotId kSlot = 1;

void Run() {
  std::printf(
      "=== Baseline: IPS vs Lambda architecture (Fig 2 legacy design) ===\n"
      "claims: IPS wins on freshness (seconds vs up to a day), exact\n"
      "arbitrary windows (Lambda cannot express them), and zero per-query\n"
      "content lookups\n\n");

  ManualClock clock(100 * kMillisPerDay);

  // --- IPS stack. --------------------------------------------------------
  MemKvStore ips_kv;
  IpsInstanceOptions ips_options;
  ips_options.isolation_enabled = true;
  ips_options.start_background_threads = false;
  ips_options.cache.start_background_threads = false;
  ips_options.compaction.synchronous = true;
  IpsInstance ips(ips_options, &ips_kv, &clock);
  TableSchema schema = DefaultTableSchema("profiles");
  schema.shrink.default_retain = 0;  // lossless for exactness comparison
  schema.shrink.retain_per_slot.clear();
  if (!ips.CreateTable(schema).ok()) return;

  // --- Lambda stack. -----------------------------------------------------
  MemKvStore lambda_kv;
  ContentStore content;
  LambdaOptions lambda_options;
  lambda_options.long_term_top_n = 1000;  // generous: isolate freshness
  lambda_options.short_term_capacity = 100;
  LambdaProfileService lambda(lambda_options, &lambda_kv, &content, &clock);

  // --- Feed both systems the same two weeks of actions. ------------------
  Rng rng(21);
  // Ground truth: per (user, fid, day) counts for window-accuracy checks.
  std::map<std::pair<ProfileId, FeatureId>, std::map<int, int64_t>> truth;
  for (int day = 0; day < kDays; ++day) {
    for (ProfileId uid = 1; uid <= kUsers; ++uid) {
      for (int a = 0; a < kActionsPerUserPerDay; ++a) {
        const FeatureId item = rng.Uniform(80) + 1;
        content.Put(item, kSlot, 1);
        const TimestampMs ts =
            clock.NowMs() + a * kMillisPerHour + rng.Uniform(1000);
        ips.AddProfile("bench", "profiles", uid, ts, kSlot, 1, item,
                       CountVector{1, 0, 0, 0})
            .ok();
        lambda.RecordAction(uid, item, ts, CountVector{1, 0, 0, 0}).ok();
        truth[{uid, item}][day] += 1;
      }
    }
    clock.AdvanceMs(kMillisPerDay);
    ips.MergeWriteTablesOnce();
    lambda.RunDailyBatch(clock.NowMs());  // midnight batch
  }

  // --- 1. Freshness. ------------------------------------------------------
  // A new action lands now, mid-day.
  const ProfileId probe_user = 1;
  const FeatureId probe_item = 7777;
  content.Put(probe_item, kSlot, 1);
  const TimestampMs probe_ts = clock.NowMs();
  ips.AddProfile("bench", "profiles", probe_user, probe_ts, kSlot, 1,
                 probe_item, CountVector{1, 0, 0, 0})
      .ok();
  lambda.RecordAction(probe_user, probe_item, probe_ts,
                      CountVector{1, 0, 0, 0})
      .ok();
  clock.AdvanceMs(5000);  // the few-second merge cadence of Section III-F
  ips.MergeWriteTablesOnce();  // the periodic few-second merge

  auto ips_sees = [&]() {
    auto r = ips.GetProfileTopK("bench", "profiles", probe_user, kSlot, 1,
                                TimeRange::Current(kMillisPerDay),
                                SortBy::kActionCount, 0, 0);
    if (!r.ok()) return false;
    for (const auto& f : r->features) {
      if (f.fid == probe_item) return true;
    }
    return false;
  };
  auto lambda_lt_sees = [&]() {
    auto r = lambda.QueryLongTerm(probe_user, kSlot, 0);
    if (!r.ok()) return false;
    for (const auto& f : *r) {
      if (f.fid == probe_item) return true;
    }
    return false;
  };
  const bool ips_fresh = ips_sees();
  const bool lambda_fresh_now = lambda_lt_sees();
  // Advance to the next midnight batch for Lambda.
  TimestampMs lag = 0;
  while (!lambda_lt_sees() && lag < 2 * kMillisPerDay) {
    clock.AdvanceMs(kMillisPerHour);
    lag += kMillisPerHour;
    if (lag % kMillisPerDay == 0) lambda.RunDailyBatch(clock.NowMs());
  }
  std::printf("1. freshness of a mid-day action:\n");
  std::printf("   IPS:    visible after the next merge (seconds)  -> %s\n",
              ips_fresh ? "VISIBLE" : "MISSING");
  std::printf(
      "   Lambda: visible immediately? %s; became visible after %lld h "
      "(next daily batch)\n",
      lambda_fresh_now ? "yes" : "no",
      static_cast<long long>(lag / kMillisPerHour));

  // --- 2. Window accuracy: "clicks in the last 7 days". -------------------
  // Compare each system's answer against ground truth for the probe window.
  // Lambda's best effort is the all-history long-term profile.
  double ips_err = 0, lambda_err = 0;
  int checked = 0;
  const int window_days = 7;
  for (ProfileId uid = 1; uid <= 20; ++uid) {
    auto ips_result = ips.GetProfileTopK(
        "bench", "profiles", uid, kSlot, 1,
        TimeRange::Absolute(clock.NowMs() - window_days * kMillisPerDay,
                            clock.NowMs()),
        SortBy::kFeatureId, 0, 0);
    auto lambda_result = lambda.QueryLongTerm(uid, kSlot, 0);
    if (!ips_result.ok() || !lambda_result.ok()) continue;
    std::map<FeatureId, int64_t> ips_counts, lambda_counts, expected;
    for (const auto& f : ips_result->features) {
      ips_counts[f.fid] = f.counts.At(0);
    }
    for (const auto& f : *lambda_result) lambda_counts[f.fid] = f.counts.At(0);
    for (const auto& [key, days] : truth) {
      if (key.first != uid) continue;
      int64_t in_window = 0;
      for (const auto& [day, count] : days) {
        // Window covers the last `window_days` full days of the replay
        // (plus the idle probe hours at the end).
        if (day >= kDays - window_days) in_window += count;
      }
      if (in_window > 0 || lambda_counts.count(key.second) > 0) {
        ips_err += std::abs(static_cast<double>(ips_counts[key.second] -
                                                in_window));
        lambda_err += std::abs(static_cast<double>(
            lambda_counts[key.second] - in_window));
        ++checked;
      }
    }
  }
  std::printf(
      "\n2. 'last 7 days' aggregate, mean |error| per feature "
      "(%d features):\n   IPS:    %.3f clicks\n   Lambda: %.3f clicks "
      "(long-term profile cannot express the window)\n",
      checked, ips_err / checked, lambda_err / checked);

  // --- 3. Serving cost: content lookups per short-term query. -------------
  size_t total_lookups = 0;
  int queries = 0;
  for (ProfileId uid = 1; uid <= 50; ++uid) {
    size_t lookups = 0;
    lambda.QueryShortTerm(uid, kSlot, 10, &lookups).ok();
    total_lookups += lookups;
    ++queries;
  }
  std::printf(
      "\n3. per-query auxiliary lookups:\n"
      "   IPS:    0 (categorization is stored with the counts)\n"
      "   Lambda: %.1f content-store lookups per short-term query\n",
      static_cast<double>(total_lookups) / queries);

  std::printf(
      "\n4. operational surface: IPS = 1 service, 1 table; Lambda = 2 "
      "services + content store + daily batch job\n");
}

}  // namespace
}  // namespace ips

int main() {
  ips::Run();
  return 0;
}
