// Figure 16 reproduction: query throughput, p99 and p50 latency of an IPS
// cluster under diurnal (Spring-Festival-like) traffic.
//
// Paper result (1000+ machine cluster): 30-40 M feature queries/s at peak;
// p99 9-10 ms tracking the load curve, p50 flat at ~1 ms.
//
// One simulated node serves a *paced, open-loop* offered load that follows
// the same diurnal curve. The claims to reproduce are shape claims:
// (a) served throughput tracks the offered curve across a 2-3x day/night
// swing without saturation collapse at the peak, (b) p50 stays flat in the
// ~1 ms band the whole day, (c) p99 stays bounded at single-digit
// milliseconds, rising modestly at peak.
#include <atomic>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace ips {
namespace {

constexpr int kHoursSimulated = 24;
constexpr int kThreads = 4;
// Paced per-thread offered rate at the daily peak. Total peak offered load
// is kThreads * kPeakQpsPerThread.
constexpr double kPeakQpsPerThread = 70.0;
// Wall-clock seconds spent measuring each simulated hour.
constexpr double kSecondsPerHour = 1.2;

void Run() {
  std::printf(
      "=== Fig 16: query throughput and latency under diurnal load ===\n"
      "paper: peak 30-40M qps cluster-wide; p99 9-10 ms; p50 flat ~1 ms\n"
      "here:  one node, paced offered load following the diurnal curve\n\n");

  ManualClock sim_clock(500 * kMillisPerDay);
  DeploymentOptions options = bench::SingleRegion(/*calibrated=*/true);
  options.discovery_ttl_ms = 365 * kMillisPerDay;
  options.instance.cache.memory_limit_bytes = 512u << 20;
  Deployment deployment(options, &sim_clock);
  TableSchema schema = DefaultTableSchema("user_profile");
  if (!deployment.CreateTableEverywhere(schema).ok()) return;

  WorkloadOptions workload_options;
  workload_options.num_users = 20'000;
  workload_options.seed = 16;
  WorkloadGenerator preload_workload(workload_options);
  bench::Preload(deployment, preload_workload, "user_profile", 60'000,
                 sim_clock.NowMs(), 30 * kMillisPerDay);
  // Bring profiles to production steady state: the paper's slice lists
  // average 62 entries because compaction continuously consolidates them.
  deployment.NodesInRegion("lf")[0]
      ->instance()
      .CompactTableNow("user_profile")
      .ok();

  bench::PrintHeader({"hour", "offered_qps", "served", "served_qps",
                      "p50_ms", "p99_ms", "errors"});

  double peak_served = 0, trough_served = 1e18;
  double max_p50 = 0, min_p50 = 1e18, max_p99 = 0;
  for (int hour = 0; hour < kHoursSimulated; ++hour) {
    const double load = DiurnalLoadFactor(hour * kMillisPerHour);
    const double thread_qps = kPeakQpsPerThread * load;
    const int queries_per_thread =
        static_cast<int>(thread_qps * kSecondsPerHour);
    const int64_t inter_arrival_ns =
        static_cast<int64_t>(1e9 / thread_qps);

    Histogram latency;
    std::atomic<int64_t> errors{0};
    const int64_t begin_ns = MonotonicNanos();
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        WorkloadOptions per_thread = workload_options;
        per_thread.seed = 1000 + hour * kThreads + t;
        WorkloadGenerator workload(per_thread);
        IpsClientOptions client_options;
        client_options.caller = "ranker";
        client_options.local_region = "lf";
        IpsClient client(client_options, &deployment);
        // Open-loop pacing: each request is due at a fixed offset; latency
        // does not slow the offered rate.
        int64_t next_due = MonotonicNanos();
        for (int q = 0; q < queries_per_thread; ++q) {
          next_due += inter_arrival_ns;
          while (MonotonicNanos() < next_due) {
            std::this_thread::yield();
          }
          ProfileId uid;
          QuerySpec spec = workload.NextQuerySpec(&uid);
          const int64_t q_begin = MonotonicNanos();
          auto result = client.Query("user_profile", uid, spec);
          latency.Record((MonotonicNanos() - q_begin) / 1000);
          if (!result.ok()) errors.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
    const double elapsed_sec =
        static_cast<double>(MonotonicNanos() - begin_ns) / 1e9;
    const double served =
        static_cast<double>(latency.count()) / elapsed_sec;

    peak_served = std::max(peak_served, served);
    trough_served = std::min(trough_served, served);
    const double p50 = bench::UsToMs(latency.Percentile(0.50));
    const double p99 = bench::UsToMs(latency.Percentile(0.99));
    max_p50 = std::max(max_p50, p50);
    min_p50 = std::min(min_p50, p50);
    max_p99 = std::max(max_p99, p99);

    bench::PrintCell(static_cast<int64_t>(hour));
    bench::PrintCell(thread_qps * kThreads);
    bench::PrintCell(latency.count());
    bench::PrintCell(served);
    bench::PrintCell(p50);
    bench::PrintCell(p99);
    bench::PrintCell(errors.load());
    bench::EndRow();

    sim_clock.AdvanceMs(kMillisPerHour);
    deployment.HeartbeatAll();
  }

  std::printf(
      "\nshape checks vs paper:\n"
      "  peak/trough served throughput ratio: %.2fx — tracks the offered "
      "diurnal swing (no saturation collapse; paper's curve ~2-3x)\n"
      "  p50 range: %.2f - %.2f ms (paper: flat ~1 ms)\n"
      "  max p99:   %.2f ms (paper: 9-10 ms, single-digit order)\n",
      peak_served / trough_served, min_p50, max_p50, max_p99);
}

}  // namespace
}  // namespace ips

int main() {
  ips::Run();
  return 0;
}
