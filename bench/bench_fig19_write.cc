// Figure 19 reproduction: add (write) throughput, p99 and p50 latency under
// diurnal traffic, with the paper's ~10:1 read:write mix running alongside.
//
// Paper result: peak 3-4 M writes/s cluster-wide (about a tenth of the
// query throughput); write p99 4-6 ms, p50 flat ~0.5 ms.
//
// Reproduced claims: (a) the served write throughput tracks the diurnal
// offered curve, (b) write p50 stays flat and well under the query p50,
// (c) write p99 stays single-digit milliseconds while reads hammer the same
// node, thanks to read-write isolation.
#include <atomic>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace ips {
namespace {

constexpr int kHoursSimulated = 24;
constexpr int kReadsPerWrite = 10;
constexpr int kThreads = 3;
// Paced open-loop offered write rate per thread at the daily peak; each
// write unit carries kReadsPerWrite accompanying reads (the 10:1 mix).
constexpr double kPeakWpsPerThread = 12.0;
constexpr double kSecondsPerHour = 2.0;

void Run() {
  std::printf(
      "=== Fig 19: add throughput and latency under diurnal load ===\n"
      "paper: peak 3-4M wps (~query/10); write p99 4-6 ms; p50 ~0.5 ms\n\n");

  ManualClock sim_clock(600 * kMillisPerDay);
  DeploymentOptions options = bench::SingleRegion(/*calibrated=*/true);
  options.discovery_ttl_ms = 365 * kMillisPerDay;
  options.instance.isolation_enabled = true;  // production default
  options.instance.isolation_merge_interval_ms = 500;
  options.instance.start_background_threads = true;
  Deployment deployment(options, &sim_clock);
  TableSchema schema = DefaultTableSchema("user_profile");
  if (!deployment.CreateTableEverywhere(schema).ok()) return;

  WorkloadOptions workload_options;
  workload_options.num_users = 20'000;
  workload_options.seed = 19;
  WorkloadGenerator preload_workload(workload_options);
  bench::Preload(deployment, preload_workload, "user_profile", 40'000,
                 sim_clock.NowMs(), 30 * kMillisPerDay);
  // Production steady state: slice lists consolidated by compaction.
  deployment.NodesInRegion("lf")[0]
      ->instance()
      .CompactTableNow("user_profile")
      .ok();

  bench::PrintHeader({"hour", "offered", "writes", "ach_wps", "w_p50_ms",
                      "w_p99_ms", "r_p50_ms"});

  double max_w_p50 = 0, min_w_p50 = 1e18, max_w_p99 = 0;
  double peak_wps = 0, trough_wps = 1e18;
  double read_p50_sum = 0;
  for (int hour = 0; hour < kHoursSimulated; ++hour) {
    const double load = DiurnalLoadFactor(hour * kMillisPerHour);
    const double thread_wps = kPeakWpsPerThread * load;
    const int writes_per_thread =
        static_cast<int>(thread_wps * kSecondsPerHour);
    const int64_t inter_arrival_ns =
        static_cast<int64_t>(1e9 / thread_wps);

    Histogram write_latency, read_latency;
    const int64_t begin_ns = MonotonicNanos();
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        WorkloadOptions per_thread = workload_options;
        per_thread.seed = 5000 + hour * kThreads + t;
        WorkloadGenerator workload(per_thread);
        IpsClientOptions client_options;
        client_options.caller = "ingest";
        client_options.local_region = "lf";
        IpsClient client(client_options, &deployment);
        int64_t next_due = MonotonicNanos();
        for (int w = 0; w < writes_per_thread; ++w) {
          next_due += inter_arrival_ns;
          while (MonotonicNanos() < next_due) {
            std::this_thread::yield();
          }
          ProfileId uid;
          auto records = workload.NextAddBatch(sim_clock.NowMs(), &uid);
          int64_t op_begin = MonotonicNanos();
          client.AddProfiles("user_profile", uid, records).ok();
          write_latency.Record((MonotonicNanos() - op_begin) / 1000);
          for (int r = 0; r < kReadsPerWrite; ++r) {
            ProfileId read_uid;
            QuerySpec spec = workload.NextQuerySpec(&read_uid);
            op_begin = MonotonicNanos();
            client.Query("user_profile", read_uid, spec).ok();
            read_latency.Record((MonotonicNanos() - op_begin) / 1000);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    const double elapsed_sec =
        static_cast<double>(MonotonicNanos() - begin_ns) / 1e9;
    const double achieved_wps =
        static_cast<double>(write_latency.count()) / elapsed_sec;
    const double w_p50 = bench::UsToMs(write_latency.Percentile(0.50));
    const double w_p99 = bench::UsToMs(write_latency.Percentile(0.99));
    const double r_p50 = bench::UsToMs(read_latency.Percentile(0.50));
    max_w_p50 = std::max(max_w_p50, w_p50);
    min_w_p50 = std::min(min_w_p50, w_p50);
    max_w_p99 = std::max(max_w_p99, w_p99);
    peak_wps = std::max(peak_wps, achieved_wps);
    trough_wps = std::min(trough_wps, achieved_wps);
    read_p50_sum += r_p50;

    bench::PrintCell(static_cast<int64_t>(hour));
    bench::PrintCell(load);
    bench::PrintCell(write_latency.count());
    bench::PrintCell(achieved_wps);
    bench::PrintCell(w_p50);
    bench::PrintCell(w_p99);
    bench::PrintCell(r_p50);
    bench::EndRow();

    sim_clock.AdvanceMs(kMillisPerHour);
    deployment.HeartbeatAll();
  }

  std::printf(
      "\nshape checks vs paper:\n"
      "  peak/trough write throughput ratio: %.2fx (tracks the diurnal "
      "curve)\n"
      "  write p50 range: %.2f - %.2f ms (paper: flat ~0.5 ms)\n"
      "  max write p99:   %.2f ms (paper: 4-6 ms)\n"
      "  read:write mix held at %d:1 while writes stayed fast\n",
      peak_wps / trough_wps, min_w_p50, max_w_p50, max_w_p99,
      kReadsPerWrite);
}

}  // namespace
}  // namespace ips

int main() {
  ips::Run();
  return 0;
}
