// Section III-D ablation: compaction on the serving path vs delegated to a
// dedicated asynchronous pool.
//
// The paper: "the compaction of a profile is triggered by an incoming
// request and consumes non-trivial CPU time, [so] overall query performance
// may be adversely affected... we migrate the compaction out of the main
// serving path and delegate them to run asynchronously in a dedicated
// thread pool with capped parallelism."
//
// Reproduced claim: with synchronous compaction, the requests that happen
// to trigger a (full) compaction absorb its CPU cost, inflating the query
// tail; moving compaction to the async pool restores the tail while the
// same amount of compaction work still gets done.
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace ips {
namespace {

constexpr int kQueriesPerThread = 200;
constexpr int kThreads = 2;

struct ModeResult {
  Histogram query_latency;
  Histogram triggering_latency;  // requests that triggered a compaction
  int64_t compactions = 0;
};

void RunMode(bool synchronous, ModeResult* out) {
  ManualClock sim_clock(900 * kMillisPerDay);
  DeploymentOptions options = bench::SingleRegion(/*calibrated=*/false);
  // Zero network latency: the quantity under test is the *inline* CPU cost
  // a synchronous compaction adds to the triggering request.
  options.discovery_ttl_ms = 365 * kMillisPerDay;
  options.instance.compaction.synchronous = synchronous;
  options.instance.compaction.num_threads = 1;
  options.instance.compaction.min_interval_ms = kMillisPerHour;
  options.instance.isolation_enabled = false;
  Deployment deployment(options, &sim_clock);
  TableSchema schema = DefaultTableSchema("user_profile");
  if (!deployment.CreateTableEverywhere(schema).ok()) return;

  // Build deep *uncompacted* histories: traffic-triggered compaction is
  // paused during the back-fill (the ops pattern this library supports), so
  // when serving resumes every first-touch request finds real compaction
  // work — the storm the paper migrated off the serving path.
  auto* node = deployment.NodesInRegion("lf")[0];
  node->instance().SetCompactionEnabled(false);
  WorkloadOptions workload_options;
  workload_options.num_users = 100;
  workload_options.user_zipf_theta = 0.5;  // near-uniform: cold first touches
  workload_options.seed = 27;
  WorkloadGenerator preload_workload(workload_options);
  bench::Preload(deployment, preload_workload, "user_profile", 100'000,
                 sim_clock.NowMs(), 30 * kMillisPerDay);
  node->instance().SetCompactionEnabled(true);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      WorkloadOptions per_thread = workload_options;
      per_thread.seed = 300 + t + (synchronous ? 40 : 0);
      WorkloadGenerator workload(per_thread);
      IpsClientOptions client_options;
      client_options.caller = "ranker";
      client_options.local_region = "lf";
      IpsClient client(client_options, &deployment);
      Counter* triggered =
          deployment.metrics()->GetCounter("compaction.triggered");
      for (int q = 0; q < kQueriesPerThread; ++q) {
        ProfileId uid;
        QuerySpec spec = workload.NextQuerySpec(&uid);
        const int64_t triggered_before = triggered->Value();
        const int64_t begin = MonotonicNanos();
        client.Query("user_profile", uid, spec).ok();
        const int64_t micros = (MonotonicNanos() - begin) / 1000;
        out->query_latency.Record(micros);
        if (triggered->Value() > triggered_before) {
          out->triggering_latency.Record(micros);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  node->instance().DrainCompactions();
  out->compactions =
      deployment.metrics()->GetCounter("compaction.full")->Value() +
      deployment.metrics()->GetCounter("compaction.partial")->Value();
}

void Run() {
  std::printf(
      "=== III-D ablation: synchronous vs asynchronous compaction ===\n"
      "paper: compaction migrated off the serving path to protect query\n"
      "latency during peaks\n\n");

  ModeResult sync_mode, async_mode;
  RunMode(/*synchronous=*/true, &sync_mode);
  RunMode(/*synchronous=*/false, &async_mode);

  bench::PrintHeader({"mode", "queries", "p50_ms", "p99_ms", "trig_p50",
                      "trig_p99", "compactions"});
  auto print_mode = [](const char* label, ModeResult& r) {
    bench::PrintCell(label);
    bench::PrintCell(r.query_latency.count());
    bench::PrintCell(bench::UsToMs(r.query_latency.Percentile(0.50)));
    bench::PrintCell(bench::UsToMs(r.query_latency.Percentile(0.99)));
    bench::PrintCell(bench::UsToMs(r.triggering_latency.Percentile(0.50)));
    bench::PrintCell(bench::UsToMs(r.triggering_latency.Percentile(0.99)));
    bench::PrintCell(r.compactions);
    bench::EndRow();
  };
  print_mode("sync(on-path)", sync_mode);
  print_mode("async(pool)", async_mode);

  const double trig_sync =
      static_cast<double>(sync_mode.triggering_latency.Percentile(0.50));
  const double trig_async =
      static_cast<double>(async_mode.triggering_latency.Percentile(0.50));
  std::printf(
      "\nshape checks vs paper:\n"
      "  a request that triggers a compaction pays it inline under sync\n"
      "  mode but not under the async pool: triggering-request p50 %.2f ms\n"
      "  -> %.2f ms (%.0fx better). Comparable compaction volume still ran\n"
      "  (%lld vs %lld). On multi-core serving hosts the whole-tail p99\n"
      "  improves the same way; a single-core build only relocates the CPU.\n",
      trig_sync / 1000.0, trig_async / 1000.0,
      trig_sync / std::max(1.0, trig_async),
      static_cast<long long>(async_mode.compactions),
      static_cast<long long>(sync_mode.compactions));
}

}  // namespace
}  // namespace ips

int main() {
  ips::Run();
  return 0;
}
