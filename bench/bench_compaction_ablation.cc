// Compaction ablation (Section III-D), trace-driven: one recorded arrival
// trace (ingest/request_trace.h, round-tripped through its on-disk format
// and committed as compaction_trace.txt) replays the identical (pid, spec,
// arrival) sequence through every configuration, so the comparisons below
// measure policy and drain mechanics, not sampling noise.
//
// Three phases:
//   A. sync vs async — the paper's claim: running compaction inline on the
//      triggering request (the non-optimized strategy) inflates serving tail
//      latency; the async drain keeps it off the serving path.
//   B. drain scaling — after a back-fill leaves every traced profile with a
//      deep uncompacted history, the replay storms the trigger path and the
//      sharded drain pool is measured end-to-end (replay + Drain) with 1
//      worker vs kDrainWorkers. Every configuration performs the IDENTICAL
//      set of full passes (first touch per pid triggers, the rest are
//      rate-limited away), so the wall-clock ratio is pure drain
//      parallelism. NOTE: the ratio only manifests on a multi-core host —
//      on a single core parallel drain merely relocates the same CPU
//      seconds — so the gate below is cores-aware.
//   C. policy A/B — the same storm under the default controller vs the
//      decay-biased one (cheaper partial passes earlier, backoff near
//      saturation), selectable via CompactionManagerOptions::policy.
//
// Emits BENCH_compaction_ablation.json. `--smoke` runs small and exits
// nonzero unless (a) phase-B pass counts are equal and nonzero across worker
// configurations, (b) the multi-worker run stole work across shards, and
// (c) on hosts with >= 4 cores, the 1-worker storm takes >= 2x the
// kDrainWorkers storm.
#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "ingest/request_trace.h"
#include "kvstore/mem_kv_store.h"
#include "server/ips_instance.h"

namespace ips {
namespace {

constexpr const char* kTable = "user_profile";
constexpr const char* kTracePath = "compaction_trace.txt";
constexpr size_t kDrainWorkers = 4;

struct BenchConfig {
  size_t num_requests;     // trace length
  size_t backfill_slices;  // per-pid uncompacted history depth (phase B/C)
  size_t latency_pids;     // distinct-pid cap for phase A (sync is slow)
  size_t latency_slices;   // per-pid history depth for phase A
};

BenchConfig FullConfig() { return {4000, 160, 240, 120}; }
BenchConfig SmokeConfig() { return {1200, 80, 120, 80}; }

struct DrainRun {
  std::string policy;
  size_t workers = 0;
  int64_t storm_ms = 0;  // replay + Drain wall time
  int64_t full_passes = 0;
  int64_t partial_passes = 0;
  int64_t backoff = 0;
  int64_t dropped = 0;
  uint64_t steals = 0;
  int64_t overlap_stalls = 0;
};

std::vector<ProfileId> DistinctPids(const RequestTrace& trace, size_t cap) {
  std::vector<ProfileId> pids;
  std::unordered_set<ProfileId> seen;
  for (const TraceRequest& req : trace.requests) {
    if (seen.insert(req.pid).second) pids.push_back(req.pid);
    if (cap > 0 && pids.size() >= cap) break;
  }
  return pids;
}

/// Writes `slices` minute-granularity records per pid spread over three
/// days, leaving deep uncompacted slice ladders for the storm to chew on.
void Backfill(IpsInstance& instance, const std::vector<ProfileId>& pids,
              size_t slices) {
  const TimestampMs base =
      SystemClock::Instance()->NowMs() - 3 * kMillisPerDay;
  for (ProfileId pid : pids) {
    std::vector<MultiAddItem> items(1);
    items[0].pid = pid;
    items[0].records.reserve(slices);
    for (size_t i = 0; i < slices; ++i) {
      AddRecord rec;
      rec.timestamp = base + static_cast<TimestampMs>(i) * 60'000;
      rec.slot = 1;
      rec.type = 1;
      rec.fid = static_cast<FeatureId>(1 + (i % 50));
      rec.counts = CountVector{1};
      items[0].records.push_back(std::move(rec));
    }
    instance.MultiAdd("backfill", kTable, items).ok();
  }
}

std::unique_ptr<IpsInstance> MakeInstance(MemKvStore& kv,
                                          const std::string& policy,
                                          size_t workers, bool synchronous,
                                          size_t partial_threshold,
                                          size_t max_queue) {
  IpsInstanceOptions options;
  options.isolation_enabled = false;
  options.start_background_threads = false;
  options.enable_load_broker = false;
  // Everything stays resident: the storm must measure compaction drain, not
  // eviction or KV traffic.
  options.cache.memory_limit_bytes = 512 << 20;
  options.cache.start_background_threads = false;
  options.compaction.synchronous = synchronous;
  options.compaction.num_threads = workers;
  options.compaction.queue_shards = 16;
  options.compaction.max_queue = max_queue;
  // First touch per pid triggers; every later touch is rate-limited away.
  // This makes the scheduled pass set identical across configurations no
  // matter how worker scheduling interleaves with the replay.
  options.compaction.min_interval_ms = 1'000'000'000;
  options.compaction.partial_threshold = partial_threshold;
  options.compaction.policy = policy;
  return std::make_unique<IpsInstance>(options, &kv,
                                       SystemClock::Instance());
}

/// Replays the whole trace as fast as possible (arrival offsets collapse:
/// the storm is the point). Reads and writes both touch the trigger path.
/// Write latencies are recorded into `write_latency_us` when non-null.
void Replay(IpsInstance& instance, const RequestTrace& trace,
            const QuerySpec& base_spec,
            Histogram* write_latency_us = nullptr) {
  for (const TraceRequest& req : trace.requests) {
    if (req.is_write) {
      std::vector<MultiAddItem> items(1);
      items[0].pid = req.pid;
      AddRecord rec;
      rec.timestamp = SystemClock::Instance()->NowMs();
      rec.slot = 1;
      rec.type = 1;
      rec.fid = 7;
      rec.counts = CountVector{1};
      items[0].records.push_back(std::move(rec));
      const int64_t begin_ns = MonotonicNanos();
      instance.MultiAdd("ingest", kTable, items).ok();
      if (write_latency_us != nullptr) {
        write_latency_us->Record((MonotonicNanos() - begin_ns) / 1000);
      }
    } else {
      QuerySpec spec = base_spec;
      spec.slot = req.slot;
      spec.k = req.k;
      instance.Query("ranker", kTable, req.pid, spec).ok();
    }
  }
}

int64_t Counter(IpsInstance& instance, const char* name) {
  return instance.metrics()->GetCounter(name)->Value();
}

/// Phase B/C core: back-fill deep histories with compaction paused, then
/// storm the trigger path and drain, measuring replay+drain wall time.
DrainRun RunStorm(const RequestTrace& trace, const QuerySpec& base_spec,
                  const std::string& policy, size_t workers,
                  size_t backfill_slices, size_t partial_threshold,
                  size_t max_queue) {
  MemKvStore kv;  // zero latency: the drain's CPU work is the subject
  auto instance = MakeInstance(kv, policy, workers, /*synchronous=*/false,
                               partial_threshold, max_queue);
  instance->CreateTable(DefaultTableSchema(kTable)).ok();
  instance->SetCompactionEnabled(false);
  Backfill(*instance, DistinctPids(trace, 0), backfill_slices);
  instance->SetCompactionEnabled(true);

  const int64_t begin_ns = MonotonicNanos();
  Replay(*instance, trace, base_spec);
  instance->DrainCompactions();
  const int64_t end_ns = MonotonicNanos();

  DrainRun run;
  run.policy = policy;
  run.workers = workers;
  run.storm_ms = (end_ns - begin_ns) / 1'000'000;
  run.full_passes = Counter(*instance, "compaction.full");
  run.partial_passes = Counter(*instance, "compaction.partial");
  run.backoff = Counter(*instance, "compaction.backoff");
  run.dropped = Counter(*instance, "compaction.dropped");
  run.steals =
      static_cast<uint64_t>(Counter(*instance, "compaction.steals"));
  run.overlap_stalls = Counter(*instance, "compaction.overlap_stalls");
  return run;
}

void PrintDrainRun(const DrainRun& r) {
  std::printf(
      "  policy=%-8s workers=%zu  storm=%-6lldms  full=%-5lld partial=%-5lld "
      "backoff=%-4lld dropped=%-4lld steals=%-5llu stalls=%lld\n",
      r.policy.c_str(), r.workers, static_cast<long long>(r.storm_ms),
      static_cast<long long>(r.full_passes),
      static_cast<long long>(r.partial_passes),
      static_cast<long long>(r.backoff), static_cast<long long>(r.dropped),
      static_cast<unsigned long long>(r.steals),
      static_cast<long long>(r.overlap_stalls));
}

void AppendDrainJson(std::FILE* f, const DrainRun& r, bool last) {
  std::fprintf(f,
               "    {\"policy\": \"%s\", \"workers\": %zu, "
               "\"storm_ms\": %lld, \"full_passes\": %lld, "
               "\"partial_passes\": %lld, \"backoff\": %lld, "
               "\"dropped\": %lld, \"steals\": %llu, "
               "\"overlap_stalls\": %lld}%s\n",
               r.policy.c_str(), r.workers,
               static_cast<long long>(r.storm_ms),
               static_cast<long long>(r.full_passes),
               static_cast<long long>(r.partial_passes),
               static_cast<long long>(r.backoff),
               static_cast<long long>(r.dropped),
               static_cast<unsigned long long>(r.steals),
               static_cast<long long>(r.overlap_stalls), last ? "" : ",");
}

int Run(bool smoke) {
  const BenchConfig config = smoke ? SmokeConfig() : FullConfig();
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

  WorkloadOptions workload_options;
  workload_options.num_users = smoke ? 400 : 1200;
  workload_options.user_zipf_theta = 0.8;
  workload_options.seed = 20260807;
  WorkloadGenerator workload(workload_options);
  ProfileId spec_uid = 0;
  const QuerySpec base_spec = workload.NextQuerySpec(&spec_uid);

  // Record the arrival trace once, round-trip it through the replay file
  // format, and replay the loaded copy everywhere.
  TraceRecordOptions trace_options;
  trace_options.base_qps = 2000;
  trace_options.num_requests = config.num_requests;
  trace_options.seed = 811;
  RequestTrace recorded = RecordTrace(workload, trace_options);
  if (!recorded.SaveTo(kTracePath).ok()) {
    std::printf("FAILED to save trace to %s\n", kTracePath);
    return 1;
  }
  Result<RequestTrace> loaded = RequestTrace::LoadFrom(kTracePath);
  if (!loaded.ok() || loaded->requests.size() != recorded.requests.size()) {
    std::printf("FAILED to reload trace from %s\n", kTracePath);
    return 1;
  }
  const RequestTrace& trace = *loaded;
  const size_t distinct_pids = DistinctPids(trace, 0).size();

  std::printf(
      "=== Compaction ablation: sync vs async, drain scaling, policy A/B "
      "===\ncores=%u trace=%zu requests distinct_pids=%zu "
      "backfill=%zu slices/pid\n",
      cores, trace.requests.size(), distinct_pids, config.backfill_slices);

  // --- Phase A: sync vs async triggering-request write latency ----------
  // A shortened trace over a capped pid set (inline full passes over deep
  // histories are expensive by design — that is the phenomenon).
  RequestTrace latency_trace;
  {
    std::unordered_set<ProfileId> keep;
    for (ProfileId pid : DistinctPids(trace, config.latency_pids)) {
      keep.insert(pid);
    }
    for (const TraceRequest& req : trace.requests) {
      if (keep.count(req.pid) > 0) latency_trace.requests.push_back(req);
    }
  }
  Histogram sync_latency, async_latency;
  for (const bool synchronous : {true, false}) {
    MemKvStore kv;
    auto instance =
        MakeInstance(kv, "default", kDrainWorkers, synchronous,
                     /*partial_threshold=*/64, /*max_queue=*/1 << 16);
    instance->CreateTable(DefaultTableSchema(kTable)).ok();
    instance->SetCompactionEnabled(false);
    Backfill(*instance, DistinctPids(latency_trace, 0),
             config.latency_slices);
    instance->SetCompactionEnabled(true);
    Replay(*instance, latency_trace, base_spec,
           synchronous ? &sync_latency : &async_latency);
    instance->DrainCompactions();
  }
  std::printf(
      "\n--- A. triggering-request write latency (us) ---\n"
      "  sync   p50=%-6lld p99=%lld\n  async  p50=%-6lld p99=%lld\n",
      static_cast<long long>(sync_latency.Percentile(0.5)),
      static_cast<long long>(sync_latency.Percentile(0.99)),
      static_cast<long long>(async_latency.Percentile(0.5)),
      static_cast<long long>(async_latency.Percentile(0.99)));

  // --- Phase B: drain scaling, 1 worker vs kDrainWorkers ----------------
  // partial_threshold is effectively infinite so every pass is FULL — the
  // per-pass work is identical and the wall-clock ratio is pure drain
  // parallelism.
  std::printf("\n--- B. post-back-fill storm drain scaling ---\n");
  std::vector<DrainRun> drain_runs;
  for (const size_t workers : {size_t{1}, kDrainWorkers}) {
    drain_runs.push_back(RunStorm(trace, base_spec, "default", workers,
                                  config.backfill_slices,
                                  /*partial_threshold=*/1 << 30,
                                  /*max_queue=*/1 << 20));
    PrintDrainRun(drain_runs.back());
  }

  // --- Phase C: policy A/B at kDrainWorkers -----------------------------
  // Moderate thresholds so the policies actually diverge: the default
  // degrades to partial past the threshold, the decay policy degrades at
  // half that pressure and backs off near queue saturation.
  std::printf("\n--- C. controller policy A/B (workers=%zu) ---\n",
              kDrainWorkers);
  std::vector<DrainRun> policy_runs;
  for (const char* policy : {"default", "decay"}) {
    policy_runs.push_back(RunStorm(trace, base_spec, policy, kDrainWorkers,
                                   config.backfill_slices,
                                   /*partial_threshold=*/64,
                                   /*max_queue=*/512));
    PrintDrainRun(policy_runs.back());
  }

  // --- JSON -------------------------------------------------------------
  std::FILE* f = std::fopen("BENCH_compaction_ablation.json", "w");
  if (f == nullptr) {
    std::printf("could not write BENCH_compaction_ablation.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"compaction_ablation\",\n"
               "  \"mode\": \"%s\",\n  \"cores\": %u,\n"
               "  \"trace_requests\": %zu,\n  \"distinct_pids\": %zu,\n"
               "  \"backfill_slices\": %zu,\n"
               "  \"sync_vs_async\": {\"sync_p50_us\": %lld, "
               "\"sync_p99_us\": %lld, \"async_p50_us\": %lld, "
               "\"async_p99_us\": %lld},\n  \"drain\": [\n",
               smoke ? "smoke" : "full", cores, trace.requests.size(),
               distinct_pids, config.backfill_slices,
               static_cast<long long>(sync_latency.Percentile(0.5)),
               static_cast<long long>(sync_latency.Percentile(0.99)),
               static_cast<long long>(async_latency.Percentile(0.5)),
               static_cast<long long>(async_latency.Percentile(0.99)));
  for (size_t i = 0; i < drain_runs.size(); ++i) {
    AppendDrainJson(f, drain_runs[i], i + 1 == drain_runs.size());
  }
  std::fprintf(f, "  ],\n  \"policies\": [\n");
  for (size_t i = 0; i < policy_runs.size(); ++i) {
    AppendDrainJson(f, policy_runs[i], i + 1 == policy_runs.size());
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_compaction_ablation.json (and %s)\n",
              kTracePath);

  // --- Shape gates ------------------------------------------------------
  const DrainRun& serial = drain_runs.front();
  const DrainRun& parallel = drain_runs.back();
  const bool volume_ok =
      serial.full_passes > 0 &&
      serial.full_passes == parallel.full_passes &&
      serial.partial_passes == 0 && parallel.partial_passes == 0;
  const bool steals_ok = parallel.steals > 0 && serial.steals == 0;
  const bool policy_ok =
      policy_runs.back().policy == "decay" &&
      policy_runs.back().full_passes + policy_runs.back().partial_passes > 0;
  const double ratio =
      parallel.storm_ms > 0 ? static_cast<double>(serial.storm_ms) /
                                  static_cast<double>(parallel.storm_ms)
                            : static_cast<double>(serial.storm_ms);
  const bool multi_core = cores >= kDrainWorkers;
  const bool ratio_ok = !multi_core || ratio >= 2.0;
  std::printf(
      "\nshape checks:\n"
      "  volumes: 1w full=%lld, %zuw full=%lld (need equal, nonzero, no "
      "partials)\n"
      "  steals:  %zuw=%llu (need > 0), 1w=%llu (need 0)\n"
      "  policy:  decay ran %lld passes (need > 0)\n"
      "  ratio:   1w/%zuw storm = %.2fx%s\n%s\n",
      static_cast<long long>(serial.full_passes), parallel.workers,
      static_cast<long long>(parallel.full_passes), parallel.workers,
      static_cast<unsigned long long>(parallel.steals),
      static_cast<unsigned long long>(serial.steals),
      static_cast<long long>(policy_runs.back().full_passes +
                             policy_runs.back().partial_passes),
      parallel.workers, ratio,
      multi_core
          ? " (need >= 2.0)"
          : " (single-core host: >= 2x gate skipped — parallel drain can "
            "only relocate CPU seconds here, not shorten them)",
      volume_ok && steals_ok && policy_ok && ratio_ok ? "shape OK"
                                                      : "SHAPE VIOLATION");
  return volume_ok && steals_ok && policy_ok && ratio_ok ? 0 : 1;
}

}  // namespace
}  // namespace ips

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int rc = ips::Run(smoke);
  // The full run is a report; only the smoke gate fails the process.
  return smoke ? rc : 0;
}
