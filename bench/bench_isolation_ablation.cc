// Section IV-C / III-F ablation: read-write isolation on vs off.
//
// Paper result: after enabling isolation in production, the write p99
// dropped about 80% while query latency stayed stable.
//
// Mechanism under test: with isolation OFF every add_profile goes through
// the main cached table — contending on the same per-profile entry locks as
// queries and, worse, paying a KV load on a cache miss. With isolation ON
// writes land in the lightweight write-only table and are merged into the
// main table asynchronously, so the write path never touches the KV store
// and rarely contends with readers.
#include <atomic>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace ips {
namespace {

constexpr int kWritesPerThread = 500;
constexpr int kReadsPerWrite = 4;
constexpr int kThreads = 3;

struct RunResult {
  Histogram write_latency;
  Histogram read_latency;
};

void RunMode(bool isolation, RunResult* out) {
  ManualClock sim_clock(800 * kMillisPerDay);
  DeploymentOptions options = bench::SingleRegion(/*calibrated=*/true);
  options.discovery_ttl_ms = 365 * kMillisPerDay;
  options.instance.isolation_enabled = isolation;
  options.instance.isolation_merge_interval_ms = 250;
  options.instance.start_background_threads = true;
  // A modest cache so a fraction of writes touch cold profiles — the cache
  // miss on the write path is the isolation-off killer.
  options.instance.cache.memory_limit_bytes = 24u << 20;
  Deployment deployment(options, &sim_clock);
  TableSchema schema = DefaultTableSchema("user_profile");
  if (!deployment.CreateTableEverywhere(schema).ok()) return;

  WorkloadOptions workload_options;
  workload_options.num_users = 40'000;
  workload_options.seed = 33;
  WorkloadGenerator preload_workload(workload_options);
  bench::Preload(deployment, preload_workload, "user_profile", 100'000,
                 sim_clock.NowMs(), 30 * kMillisPerDay);
  deployment.NodesInRegion("lf")[0]->instance().FlushAll();

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      WorkloadOptions per_thread = workload_options;
      per_thread.seed = 100 + t + (isolation ? 50 : 0);
      WorkloadGenerator workload(per_thread);
      IpsClientOptions client_options;
      client_options.caller = "mixed";
      client_options.local_region = "lf";
      IpsClient client(client_options, &deployment);
      for (int w = 0; w < kWritesPerThread; ++w) {
        ProfileId uid;
        auto records = workload.NextAddBatch(sim_clock.NowMs(), &uid);
        int64_t begin = MonotonicNanos();
        client.AddProfiles("user_profile", uid, records).ok();
        out->write_latency.Record((MonotonicNanos() - begin) / 1000);
        for (int r = 0; r < kReadsPerWrite; ++r) {
          ProfileId read_uid;
          QuerySpec spec = workload.NextQuerySpec(&read_uid);
          begin = MonotonicNanos();
          client.Query("user_profile", read_uid, spec).ok();
          out->read_latency.Record((MonotonicNanos() - begin) / 1000);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
}

void Run() {
  std::printf(
      "=== III-F ablation: read-write isolation off vs on ===\n"
      "paper: enabling isolation cut write p99 ~80%%; query latency "
      "stable\n\n");

  RunResult off, on;
  RunMode(false, &off);
  RunMode(true, &on);

  bench::PrintHeader({"mode", "w_p50_ms", "w_p99_ms", "r_p50_ms",
                      "r_p99_ms"});
  bench::PrintCell("isolation=off");
  bench::PrintCell(bench::UsToMs(off.write_latency.Percentile(0.50)));
  bench::PrintCell(bench::UsToMs(off.write_latency.Percentile(0.99)));
  bench::PrintCell(bench::UsToMs(off.read_latency.Percentile(0.50)));
  bench::PrintCell(bench::UsToMs(off.read_latency.Percentile(0.99)));
  bench::EndRow();
  bench::PrintCell("isolation=on");
  bench::PrintCell(bench::UsToMs(on.write_latency.Percentile(0.50)));
  bench::PrintCell(bench::UsToMs(on.write_latency.Percentile(0.99)));
  bench::PrintCell(bench::UsToMs(on.read_latency.Percentile(0.50)));
  bench::PrintCell(bench::UsToMs(on.read_latency.Percentile(0.99)));
  bench::EndRow();

  const double p99_off = static_cast<double>(
      off.write_latency.Percentile(0.99));
  const double p99_on = static_cast<double>(
      on.write_latency.Percentile(0.99));
  const double reduction = 100.0 * (1.0 - p99_on / p99_off);
  const double read_p50_off =
      static_cast<double>(off.read_latency.Percentile(0.50));
  const double read_p50_on =
      static_cast<double>(on.read_latency.Percentile(0.50));
  std::printf(
      "\nshape checks vs paper:\n"
      "  write p99 reduction from isolation: %.1f%% (paper: ~80%%)\n"
      "  read p50 change: %.1f%% (paper: stable)\n",
      reduction,
      100.0 * (read_p50_on - read_p50_off) / read_p50_off);
}

}  // namespace
}  // namespace ips

int main() {
  ips::Run();
  return 0;
}
