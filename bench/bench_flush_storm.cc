// Flush-storm ablation: the write-side StoreBroker (cross-shard flush
// coalescing + in-flight store-back dedup) vs the broker-off ablation.
//
// Writer threads keep dirtying a Zipf-skewed working set while flusher
// threads hammer FlushAll concurrently — the regime of aggressive flush
// intervals, failover write-backs and shutdown storms. Without the broker
// every flush pass pays one KvStore::MultiSet per dirty shard it drains, so
// concurrent small passes multiply round trips; with it, groups from
// different shards and different passes landing within the collection window
// merge into one MultiSet, and a hot pid re-flushed while its store-back is
// on the wire rides or requeues instead of racing. The measured series is KV
// write round trips per flushed pid (PointWriteCalls + MultiSetCalls deltas
// over the cache.flushed delta).
//
// `--smoke` runs a shortened storm and exits nonzero unless the broker cuts
// write round trips per flushed pid by >= 3x with
// store_broker.cross_shard_batches > 0 (the PR acceptance gate). The full
// run emits BENCH_flush_storm.json.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "server/ips_instance.h"

namespace ips {
namespace {

constexpr int64_t kMinute = kMillisPerMinute;
constexpr int64_t kDay = kMillisPerDay;
constexpr const char* kTable = "user_profile";
constexpr size_t kNumUsers = 128;
constexpr size_t kWriterThreads = 4;
constexpr size_t kFlusherThreads = 4;

struct RunResult {
  bool broker = false;
  size_t writes = 0;
  size_t errors = 0;
  size_t flush_passes = 0;
  int64_t flushed = 0;
  int64_t kv_writes = 0;
  int64_t single_flight = 0;
  int64_t cross_shard = 0;
  int64_t requeued = 0;
  double mean_batch_pids = 0;
  double elapsed_ms = 0;
  double WritesPerFlush() const {
    return flushed == 0 ? 0
                        : static_cast<double>(kv_writes) /
                              static_cast<double>(flushed);
  }
};

IpsInstanceOptions BenchInstanceOptions(bool broker_on) {
  IpsInstanceOptions options;
  options.start_background_threads = false;
  options.isolation_enabled = false;
  options.cache.start_background_threads = false;
  options.cache.write_granularity_ms = kMinute;
  options.cache.memory_limit_bytes = 64 << 20;  // no eviction write-backs
  options.enable_load_broker = false;           // write path is the subject
  options.enable_store_broker = broker_on;
  // A write window much wider than the read broker's: flush passes run on
  // background threads and tolerate the linger, and the calibrated MultiSet
  // costs ~1.2 ms anyway, so a few ms of collection buys whole-storm merges.
  options.store_broker.window_micros = 4000;
  options.store_broker.max_batch_pids = 256;
  return options;
}

RunResult RunConfig(bool broker_on, size_t writes_per_writer) {
  MemKvStore kv(bench::CalibratedKv());
  ManualClock clock(500 * kDay);
  IpsInstance instance(BenchInstanceOptions(broker_on), &kv, &clock);
  instance.CreateTable(DefaultTableSchema(kTable)).ok();

  const int64_t point_writes_before = kv.PointWriteCalls();
  const int64_t multi_sets_before = kv.MultiSetCalls();
  const int64_t flushed_before =
      instance.metrics()->GetCounter("cache.flushed")->Value();

  std::atomic<size_t> writers_running{kWriterThreads};
  std::atomic<size_t> errors{0};
  std::atomic<size_t> flush_passes{0};
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::thread> writers;
  writers.reserve(kWriterThreads);
  for (size_t t = 0; t < kWriterThreads; ++t) {
    writers.emplace_back([&, t] {
      WorkloadOptions wopts;
      wopts.num_users = kNumUsers;
      wopts.user_zipf_theta = 0.8;  // skewed, but with a broad dirty set
      wopts.seed = 2000 + 77 * t;
      WorkloadGenerator workload(wopts);
      for (size_t w = 0; w < writes_per_writer; ++w) {
        // Think time desynchronizes the writers from the flush passes, so
        // dirty pids trickle in continuously instead of arriving in lumps.
        std::this_thread::sleep_for(
            std::chrono::microseconds(workload.rng().Uniform(300)));
        const ProfileId pid = workload.SampleUser();
        Status status = instance.AddProfile(
            "bench", kTable, pid, clock.NowMs() - kMinute, 1, 1,
            static_cast<FeatureId>(1 + w % 5), CountVector{1});
        if (!status.ok()) errors.fetch_add(1);
      }
      writers_running.fetch_sub(1);
    });
  }

  std::vector<std::thread> flushers;
  flushers.reserve(kFlusherThreads);
  for (size_t t = 0; t < kFlusherThreads; ++t) {
    flushers.emplace_back([&, t] {
      Rng rng(9000 + 131 * t);
      while (writers_running.load(std::memory_order_relaxed) > 0) {
        instance.FlushAll();
        flush_passes.fetch_add(1);
        // Long, random pauses keep the flushers out of lock-step with the
        // broker's dispatch cycle: a pass that lands while another pass's
        // store is on the wire exercises the single-flight table.
        std::this_thread::sleep_for(
            std::chrono::microseconds(rng.Uniform(1500)));
      }
    });
  }
  for (auto& t : writers) t.join();
  for (auto& t : flushers) t.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  // Measure the storm phase only: the single-threaded drain below has no
  // concurrency to coalesce, identically for both configs.
  RunResult r;
  r.broker = broker_on;
  r.writes = kWriterThreads * writes_per_writer;
  r.errors = errors.load();
  r.flush_passes = flush_passes.load();
  r.kv_writes = (kv.PointWriteCalls() - point_writes_before) +
                (kv.MultiSetCalls() - multi_sets_before);
  MetricsRegistry* metrics = instance.metrics();
  r.flushed = metrics->GetCounter("cache.flushed")->Value() - flushed_before;
  r.single_flight =
      metrics->GetCounter("store_broker.single_flight_hits")->Value();
  r.cross_shard =
      metrics->GetCounter("store_broker.cross_shard_batches")->Value();
  r.requeued = metrics->GetCounter("store_broker.requeued_pids")->Value();
  r.mean_batch_pids =
      metrics->GetHistogram("store_broker.batch_pids")->Mean();
  r.elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count();

  instance.FlushAll();  // quiesce before teardown
  return r;
}

void PrintRow(const RunResult& r) {
  bench::PrintCell(r.broker ? "on" : "off");
  bench::PrintCell(static_cast<int64_t>(r.writes));
  bench::PrintCell(static_cast<int64_t>(r.flush_passes));
  bench::PrintCell(r.flushed);
  bench::PrintCell(r.kv_writes);
  bench::PrintCell(r.WritesPerFlush());
  bench::PrintCell(r.single_flight);
  bench::PrintCell(r.cross_shard);
  bench::PrintCell(r.requeued);
  bench::PrintCell(r.mean_batch_pids);
  bench::EndRow();
}

void WriteJson(const std::vector<RunResult>& rows) {
  std::FILE* f = std::fopen("BENCH_flush_storm.json", "w");
  if (f == nullptr) {
    std::printf("could not write BENCH_flush_storm.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"flush_storm\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const RunResult& r = rows[i];
    std::fprintf(
        f,
        "    {\"broker\": %s, \"writes\": %zu, \"flush_passes\": %zu, "
        "\"flushed_pids\": %lld, \"kv_write_round_trips\": %lld, "
        "\"writes_per_flushed_pid\": %.4f, \"single_flight_hits\": %lld, "
        "\"cross_shard_batches\": %lld, \"requeued_pids\": %lld, "
        "\"mean_batch_pids\": %.2f, \"elapsed_ms\": %.0f}%s\n",
        r.broker ? "true" : "false", r.writes, r.flush_passes,
        static_cast<long long>(r.flushed),
        static_cast<long long>(r.kv_writes), r.WritesPerFlush(),
        static_cast<long long>(r.single_flight),
        static_cast<long long>(r.cross_shard),
        static_cast<long long>(r.requeued), r.mean_batch_pids, r.elapsed_ms,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_flush_storm.json\n");
}

int Run(bool smoke) {
  std::printf(
      "=== Flush storm: StoreBroker vs broker-off ablation (%s) ===\n"
      "%zu writers dirtying %zu Zipf users, %zu concurrent FlushAll threads;"
      "\nseries = KV write round trips per flushed pid\n",
      smoke ? "smoke" : "full", kWriterThreads, kNumUsers, kFlusherThreads);

  const size_t writes_per_writer = smoke ? 400 : 1500;

  bench::PrintHeader({"broker", "writes", "passes", "flushed", "kv_wr",
                      "wr_per_flush", "sflight", "xshard", "requeued",
                      "batch_pids"});
  const RunResult off = RunConfig(/*broker_on=*/false, writes_per_writer);
  const RunResult on = RunConfig(/*broker_on=*/true, writes_per_writer);
  PrintRow(off);
  PrintRow(on);

  const double ratio =
      on.WritesPerFlush() > 0 ? off.WritesPerFlush() / on.WritesPerFlush()
                              : 0;
  std::printf("%14s broker cuts KV write round trips per flushed pid %.1fx "
              "(%.3f -> %.3f)\n",
              "", ratio, off.WritesPerFlush(), on.WritesPerFlush());

  int rc = 0;
  if (off.errors + on.errors != 0) {
    std::printf("FAIL: %zu writes returned errors\n",
                off.errors + on.errors);
    rc = 1;
  }
  std::printf(
      "\nacceptance: write rt reduction %.1fx (need >= 3.0), "
      "cross_shard_batches %lld (need > 0)\n",
      ratio, static_cast<long long>(on.cross_shard));
  if (ratio < 3.0 || on.cross_shard <= 0) {
    std::printf("FAIL: flush coalescing gate not met\n");
    rc = 1;
  } else {
    std::printf("PASS\n");
  }
  if (!smoke) WriteJson({off, on});
  return rc;
}

}  // namespace
}  // namespace ips

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int rc = ips::Run(smoke);
  // The full run is also gated: the acceptance line must hold either way.
  return rc;
}
