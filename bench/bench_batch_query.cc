// Batch read path: sequential single-profile Query vs MultiQuery over the
// same candidate list, at batch sizes {1, 16, 64, 256, 512}.
//
// A recommendation request scores hundreds of candidate profiles. The
// sequential path pays one RPC round trip per candidate (and, on a cold
// cache, one KV round trip per candidate); the batched path pays one RPC per
// owning node and one KvStore::MultiGet per instance, amortizing the fixed
// transport and storage costs over the batch (cf. Table II's network
// overhead decomposition).
//
// Two phases isolate the two amortizations:
//   * warm_rpc  — cluster with calibrated channel latency, caches warm:
//                 measures pure RPC fan-out amortization through IpsClient.
//   * cold_kv   — single instance over a calibrated KV store, cache cold:
//                 measures KvStore::MultiGet coalescing (plus the op counts
//                 proving one MultiGet per batch vs one per candidate).
//
// Emits BENCH_batch_query.json next to the table output.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "server/ips_instance.h"

namespace ips {
namespace {

constexpr int64_t kMinute = kMillisPerMinute;
constexpr int64_t kDay = kMillisPerDay;
const std::vector<size_t> kBatchSizes = {1, 16, 64, 256, 512};
constexpr size_t kNumProfiles = 600;  // >= max batch size
constexpr const char* kTable = "user_profile";

struct Row {
  size_t batch = 0;
  double seq_ms = 0;
  double batch_ms = 0;
  int64_t kv_multigets_seq = -1;    // cold phase only
  int64_t kv_multigets_batch = -1;  // cold phase only
  double Speedup() const { return batch_ms > 0 ? seq_ms / batch_ms : 0; }
};

QuerySpec BenchSpec() {
  QuerySpec spec;
  spec.slot = 1;
  spec.time_range = TimeRange::Current(kDay);
  spec.sort_by = SortBy::kActionCount;
  spec.k = 10;
  return spec;
}

void AddBenchProfiles(IpsInstance& instance, TimestampMs now_ms) {
  for (ProfileId pid = 1; pid <= kNumProfiles; ++pid) {
    for (int i = 1; i <= 5; ++i) {
      instance
          .AddProfile("preload", kTable, pid, now_ms - i * kMinute, 1, 1,
                      static_cast<FeatureId>(i), CountVector{1})
          .ok();
    }
  }
}

std::vector<ProfileId> Candidates(size_t batch) {
  std::vector<ProfileId> pids;
  pids.reserve(batch);
  for (size_t i = 0; i < batch; ++i) {
    pids.push_back(static_cast<ProfileId>(1 + i % kNumProfiles));
  }
  return pids;
}

// Phase 1: warm caches, calibrated RPC channel, two-node region — the
// sequential path pays the channel round trip per candidate, the batched
// path pays it once per owning node.
std::vector<Row> RunWarmRpc() {
  ManualClock clock(500 * kDay);
  DeploymentOptions options = bench::SingleRegion(/*calibrated=*/true);
  options.regions[0].num_nodes = 2;  // exercise the scatter-gather split
  options.kv.store_options = bench::FastKv();  // isolate the RPC effect
  options.discovery_ttl_ms = 365 * kDay;
  Deployment deployment(options, &clock);
  if (!deployment.CreateTableEverywhere(DefaultTableSchema(kTable)).ok()) {
    return {};
  }
  for (auto* node : deployment.NodesInRegion("lf")) {
    AddBenchProfiles(node->instance(), clock.NowMs());
  }

  IpsClientOptions client_options;
  client_options.caller = "ranker";
  client_options.local_region = "lf";
  IpsClient client(client_options, &deployment);
  const QuerySpec spec = BenchSpec();

  std::vector<Row> rows;
  for (size_t batch : kBatchSizes) {
    const std::vector<ProfileId> pids = Candidates(batch);
    Row row;
    row.batch = batch;

    int64_t begin = MonotonicNanos();
    for (ProfileId pid : pids) client.Query(kTable, pid, spec).ok();
    row.seq_ms = static_cast<double>(MonotonicNanos() - begin) / 1e6;

    begin = MonotonicNanos();
    auto result = client.MultiQuery(kTable, pids, spec);
    row.batch_ms = static_cast<double>(MonotonicNanos() - begin) / 1e6;
    if (!result.ok()) std::printf("warm MultiQuery failed at %zu\n", batch);
    rows.push_back(row);
  }
  return rows;
}

// Phase 2: cold cache over a calibrated KV store — the sequential path pays
// one storage round trip per candidate, the batched path coalesces every
// miss into one KvStore::MultiGet.
std::vector<Row> RunColdKv() {
  ManualClock clock(500 * kDay);
  IpsInstanceOptions instance_options;
  instance_options.isolation_enabled = false;

  // Preload through a zero-latency store, then copy the persisted bytes
  // into the calibrated store so cold loads pay realistic latency.
  MemKvStore fast_kv(bench::FastKv());
  {
    IpsInstance preload(instance_options, &fast_kv, &clock);
    preload.CreateTable(DefaultTableSchema(kTable)).ok();
    AddBenchProfiles(preload, clock.NowMs());
    preload.FlushAll();
  }
  MemKvStore kv(bench::CalibratedKv());
  fast_kv.ForEach([&](const std::string& key, const KvEntry& entry) {
    kv.Set(key, entry.value).ok();
  });

  const QuerySpec spec = BenchSpec();
  std::vector<Row> rows;
  for (size_t batch : kBatchSizes) {
    const std::vector<ProfileId> pids = Candidates(batch);
    Row row;
    row.batch = batch;

    {
      IpsInstance cold(instance_options, &kv, &clock);
      cold.CreateTable(DefaultTableSchema(kTable)).ok();
      const int64_t ops_before = kv.MultiGetCalls();
      const int64_t begin = MonotonicNanos();
      for (ProfileId pid : pids) {
        cold.Query("ranker", kTable, pid, spec).ok();
      }
      row.seq_ms = static_cast<double>(MonotonicNanos() - begin) / 1e6;
      row.kv_multigets_seq = kv.MultiGetCalls() - ops_before;
    }
    {
      IpsInstance cold(instance_options, &kv, &clock);
      cold.CreateTable(DefaultTableSchema(kTable)).ok();
      const int64_t ops_before = kv.MultiGetCalls();
      const int64_t begin = MonotonicNanos();
      auto result = cold.MultiQuery("ranker", kTable, pids, spec);
      row.batch_ms = static_cast<double>(MonotonicNanos() - begin) / 1e6;
      row.kv_multigets_batch = kv.MultiGetCalls() - ops_before;
      if (!result.ok()) std::printf("cold MultiQuery failed at %zu\n", batch);
    }
    rows.push_back(row);
  }
  return rows;
}

void PrintRows(const char* title, const std::vector<Row>& rows,
               bool with_ops) {
  std::printf("\n--- %s ---\n", title);
  if (with_ops) {
    bench::PrintHeader({"batch", "seq_ms", "multi_ms", "speedup", "kv_ops_seq",
                        "kv_ops_multi"});
  } else {
    bench::PrintHeader({"batch", "seq_ms", "multi_ms", "speedup"});
  }
  for (const Row& row : rows) {
    bench::PrintCell(static_cast<int64_t>(row.batch));
    bench::PrintCell(row.seq_ms);
    bench::PrintCell(row.batch_ms);
    bench::PrintCell(row.Speedup());
    if (with_ops) {
      bench::PrintCell(row.kv_multigets_seq);
      bench::PrintCell(row.kv_multigets_batch);
    }
    bench::EndRow();
  }
}

void WriteJson(const std::vector<Row>& warm, const std::vector<Row>& cold) {
  std::FILE* f = std::fopen("BENCH_batch_query.json", "w");
  if (f == nullptr) {
    std::printf("could not write BENCH_batch_query.json\n");
    return;
  }
  auto write_rows = [&](const char* name, const std::vector<Row>& rows,
                        bool with_ops, const char* trailer) {
    std::fprintf(f, "  \"%s\": [\n", name);
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(f, "    {\"batch\": %zu, \"seq_ms\": %.3f, "
                   "\"multi_ms\": %.3f, \"speedup\": %.2f",
                   row.batch, row.seq_ms, row.batch_ms, row.Speedup());
      if (with_ops) {
        std::fprintf(f, ", \"kv_multigets_seq\": %lld, "
                     "\"kv_multigets_multi\": %lld",
                     static_cast<long long>(row.kv_multigets_seq),
                     static_cast<long long>(row.kv_multigets_batch));
      }
      std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]%s\n", trailer);
  };
  std::fprintf(f, "{\n  \"bench\": \"batch_query\",\n");
  write_rows("warm_rpc", warm, /*with_ops=*/false, ",");
  write_rows("cold_kv", cold, /*with_ops=*/true, "");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_batch_query.json\n");
}

void Run() {
  std::printf(
      "=== Batch read path: sequential Query vs MultiQuery ===\n"
      "sequential pays one round trip per candidate; MultiQuery pays one\n"
      "RPC per owning node and one KvStore::MultiGet per instance\n");

  const std::vector<Row> warm = RunWarmRpc();
  const std::vector<Row> cold = RunColdKv();
  PrintRows("warm cache: RPC amortization (client, 2 nodes)", warm,
            /*with_ops=*/false);
  PrintRows("cold cache: KV round-trip amortization (instance)", cold,
            /*with_ops=*/true);

  for (const Row& row : warm) {
    if (row.batch == 256) {
      std::printf(
          "\nshape check: batch=256 MultiQuery is %.1fx faster than 256 "
          "sequential reads (must be > 1)\n",
          row.Speedup());
    }
  }
  WriteJson(warm, cold);
}

}  // namespace
}  // namespace ips

int main() {
  ips::Run();
  return 0;
}
