// Section III-E ablation: bulk (Fig 12) vs slice-split (Fig 13/14) profile
// persistence.
//
// The paper introduced slice splitting because very large profiles made
// bulk flushes pay serialization and network cost proportional to the whole
// profile on every update, limiting cached profiles and saturating the
// storage network. With the split, a steady-state flush rewrites only the
// slices that changed plus a small meta record.
//
// Reproduced claims: (a) steady-state incremental flush cost under the
// split mode is a small fraction of bulk mode's for large profiles; (b)
// first-touch load is comparable (both must read everything); (c) bulk
// remains fine for small profiles (the threshold heuristic).
#include "bench/bench_util.h"
#include "kvstore/mem_kv_store.h"
#include "server/persistence.h"

namespace ips {
namespace {

constexpr int64_t kMinute = kMillisPerMinute;

ProfileData BuildProfile(int slices, int features_per_slice) {
  Rng rng(11);
  ProfileData profile(kMinute);
  const TimestampMs base = 100 * kMillisPerDay;
  for (int s = 0; s < slices; ++s) {
    for (int f = 0; f < features_per_slice; ++f) {
      profile
          .Add(base + s * kMinute, static_cast<SlotId>(f % 4), 1,
               rng.Next() | 1, CountVector{1, 2, 0, 1})
          .ok();
    }
  }
  return profile;
}

struct ModeCost {
  double initial_flush_ms = 0;
  double steady_flush_ms = 0;   // flush after touching one slice
  double load_ms = 0;
  int64_t bytes_written_steady = 0;
};

ModeCost Measure(PersistenceMode mode, int slices, int features_per_slice) {
  MemKvOptions kv_options = bench::CalibratedKv();
  kv_options.seed = 5 + static_cast<uint64_t>(mode);
  MemKvStore kv(kv_options);
  PersisterOptions options;
  options.mode = mode;
  Persister persister("t", &kv, options);

  ProfileData profile = BuildProfile(slices, features_per_slice);
  ModeCost cost;

  int64_t begin = MonotonicNanos();
  persister.Flush(1, profile).ok();
  cost.initial_flush_ms =
      static_cast<double>(MonotonicNanos() - begin) / 1e6;

  // Steady state: one new observation lands in the newest slice, flush
  // again. Bulk rewrites everything; split detects unchanged slices via
  // checksums and ships only the touched slice + meta.
  profile
      .Add(profile.NewestMs() - 1, 1, 1, 424242, CountVector{1, 0, 0, 0})
      .ok();
  const int64_t written_before = kv.TotalBytesWritten();
  begin = MonotonicNanos();
  persister.Flush(1, profile).ok();
  cost.steady_flush_ms =
      static_cast<double>(MonotonicNanos() - begin) / 1e6;
  cost.bytes_written_steady = kv.TotalBytesWritten() - written_before;

  begin = MonotonicNanos();
  auto loaded = persister.Load(1);
  cost.load_ms = static_cast<double>(MonotonicNanos() - begin) / 1e6;
  if (!loaded.ok()) cost.load_ms = -1;
  return cost;
}

void Run() {
  std::printf(
      "=== III-E ablation: bulk vs slice-split persistence ===\n"
      "paper: oversized profiles exhausted CPU/network under bulk mode;\n"
      "slice splitting bounds the per-flush work\n\n");

  bench::PrintHeader({"profile", "mode", "init_ms", "steady_ms", "load_ms",
                      "d_bytes"});
  struct Case {
    const char* label;
    int slices;
    int features;
  };
  for (const Case& c : {Case{"small(8x10)", 8, 10},
                        Case{"medium(62x20)", 62, 20},
                        Case{"large(256x60)", 256, 60}}) {
    for (PersistenceMode mode :
         {PersistenceMode::kBulk, PersistenceMode::kSliceSplit}) {
      const ModeCost cost = Measure(mode, c.slices, c.features);
      bench::PrintCell(c.label);
      bench::PrintCell(mode == PersistenceMode::kBulk ? "bulk" : "split");
      bench::PrintCell(cost.initial_flush_ms);
      bench::PrintCell(cost.steady_flush_ms);
      bench::PrintCell(cost.load_ms);
      bench::PrintCell(cost.bytes_written_steady);
      bench::EndRow();
    }
  }
  std::printf(
      "\nshape checks vs paper:\n"
      "  d_bytes (net new KV bytes per steady-state flush) collapses under\n"
      "  split mode for large profiles: only changed slices + meta are\n"
      "  rewritten, vs the whole profile under bulk — the Fig 13 motivation.\n"
      "  load_ms is comparable across modes (first touch reads everything).\n");
}

}  // namespace
}  // namespace ips

int main() {
  ips::Run();
  return 0;
}
