// Hot-key skew sweep: the read-path LoadBroker (server-side cross-request
// batching + single-flight dedup) vs the broker-off ablation, under Zipfian
// user popularity at s in {0.6, 0.8, 0.9, 0.99}. The sweep stays strictly
// inside ZipfGenerator's (0, 1) domain — the approximation degenerates at
// s >= 1 (and now aborts there); 0.99 is YCSB's standard hot anchor.
//
// Eight request threads issue single-profile queries against an instance
// whose cache is deliberately tiny, so the Zipf head keeps missing and every
// miss pays the calibrated KV round trip. Without the broker each miss loads
// inline (point reads per profile); with it, concurrent misses for the same
// hot pid share ONE fetch (single-flight) and misses arriving within the
// collection window merge into one KvStore::MultiGet. The measured series is
// storage round trips per query (PointReadCalls + MultiGetCalls deltas), the
// cost the paper's shared-profile design removes from the serving path.
//
// `--smoke` runs only s=0.99 and exits nonzero unless the broker cuts KV
// round trips per query by >= 3x with broker.single_flight_hits > 0 (the PR
// acceptance gate). The full run emits BENCH_hotkey_skew.json.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "server/ips_instance.h"

namespace ips {
namespace {

constexpr int64_t kMinute = kMillisPerMinute;
constexpr int64_t kDay = kMillisPerDay;
constexpr const char* kTable = "user_profile";
constexpr size_t kNumUsers = 512;
constexpr size_t kThreads = 8;

struct RunResult {
  double theta = 0;
  bool broker = false;
  size_t queries = 0;
  size_t errors = 0;
  int64_t point_reads = 0;
  int64_t multi_gets = 0;
  int64_t single_flight = 0;
  int64_t window_batches = 0;
  int64_t dedup = 0;
  double hit_ratio = 0;
  double mean_ms = 0;
  double p99_ms = 0;
  double RtPerQuery() const {
    return queries == 0
               ? 0
               : static_cast<double>(point_reads + multi_gets) / queries;
  }
};

QuerySpec BenchSpec() {
  QuerySpec spec;
  spec.slot = 1;
  spec.time_range = TimeRange::Current(kDay);
  spec.sort_by = SortBy::kActionCount;
  spec.k = 10;
  return spec;
}

IpsInstanceOptions BenchInstanceOptions(bool broker_on) {
  IpsInstanceOptions options;
  options.start_background_threads = false;
  options.isolation_enabled = false;
  options.cache.start_background_threads = false;
  options.cache.write_granularity_ms = kMinute;
  // Tiny cache: the Zipf head cannot stay resident, so hot pids keep
  // missing — the regime where cross-request coalescing matters.
  options.cache.memory_limit_bytes = 8 * 1024;
  options.enable_load_broker = broker_on;
  options.load_broker.window_micros = 400;
  options.load_broker.max_batch_pids = 64;
  return options;
}

// Persists kNumUsers profiles through a zero-latency store, then copies the
// bytes into the calibrated store every config reads from.
void SeedStore(MemKvStore& kv) {
  ManualClock clock(500 * kDay);
  MemKvStore fast_kv(bench::FastKv());
  IpsInstanceOptions options = BenchInstanceOptions(/*broker_on=*/false);
  options.cache.memory_limit_bytes = 64 << 20;  // seeding wants a real cache
  IpsInstance preload(options, &fast_kv, &clock);
  preload.CreateTable(DefaultTableSchema(kTable)).ok();
  for (ProfileId pid = 1; pid <= kNumUsers; ++pid) {
    for (int i = 1; i <= 3; ++i) {
      preload
          .AddProfile("preload", kTable, pid, clock.NowMs() - i * kMinute, 1,
                      1, static_cast<FeatureId>(i), CountVector{1})
          .ok();
    }
  }
  preload.FlushAll();
  fast_kv.ForEach([&](const std::string& key, const KvEntry& entry) {
    kv.Set(key, entry.value).ok();
  });
}

RunResult RunConfig(MemKvStore& kv, double theta, bool broker_on,
                    size_t queries_per_thread) {
  ManualClock clock(500 * kDay);
  IpsInstance instance(BenchInstanceOptions(broker_on), &kv, &clock);
  instance.CreateTable(DefaultTableSchema(kTable)).ok();
  const QuerySpec spec = BenchSpec();

  const int64_t points_before = kv.PointReadCalls();
  const int64_t multi_before = kv.MultiGetCalls();

  Histogram latency;
  std::mutex latency_mu;
  std::atomic<size_t> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      WorkloadOptions wopts;
      wopts.num_users = kNumUsers;
      wopts.user_zipf_theta = theta;
      wopts.seed = 1000 + 77 * t;
      WorkloadGenerator workload(wopts);
      std::vector<int64_t> lats;
      lats.reserve(queries_per_thread);
      for (size_t q = 0; q < queries_per_thread; ++q) {
        // Short random think time: desynchronizes the request threads the
        // way independent frontends are desynchronized. Without it the
        // threads convoy on each shared batch (everyone wakes together and
        // lands in the next window), which hides the single-flight path.
        std::this_thread::sleep_for(
            std::chrono::microseconds(workload.rng().Uniform(600)));
        const ProfileId pid = workload.SampleUser();
        const int64_t begin = MonotonicNanos();
        auto result = instance.Query("bench", kTable, pid, spec);
        lats.push_back((MonotonicNanos() - begin) / 1000);
        if (!result.ok()) errors.fetch_add(1);
      }
      std::lock_guard<std::mutex> lock(latency_mu);
      for (int64_t us : lats) latency.Record(us);
    });
  }
  for (auto& thread : threads) thread.join();

  RunResult r;
  r.theta = theta;
  r.broker = broker_on;
  r.queries = kThreads * queries_per_thread;
  r.errors = errors.load();
  r.point_reads = kv.PointReadCalls() - points_before;
  r.multi_gets = kv.MultiGetCalls() - multi_before;
  MetricsRegistry* metrics = instance.metrics();
  r.single_flight = metrics->GetCounter("broker.single_flight_hits")->Value();
  r.window_batches = metrics->GetCounter("broker.window_batches")->Value();
  r.dedup = metrics->GetCounter("broker.cross_request_dedup")->Value();
  const int64_t hits = metrics->GetCounter("cache.hit")->Value();
  const int64_t misses = metrics->GetCounter("cache.miss")->Value();
  r.hit_ratio = hits + misses > 0
                    ? static_cast<double>(hits) / (hits + misses)
                    : 0;
  r.mean_ms = latency.Mean() / 1000.0;
  r.p99_ms = bench::UsToMs(latency.Percentile(0.99));
  return r;
}

void PrintRow(const RunResult& r) {
  bench::PrintCell(r.theta);
  bench::PrintCell(r.broker ? "on" : "off");
  bench::PrintCell(static_cast<int64_t>(r.queries));
  bench::PrintCell(static_cast<int64_t>(r.point_reads + r.multi_gets));
  bench::PrintCell(r.RtPerQuery());
  bench::PrintCell(r.single_flight);
  bench::PrintCell(r.window_batches);
  bench::PrintCell(r.dedup);
  bench::PrintCell(r.hit_ratio);
  bench::PrintCell(r.p99_ms);
  bench::EndRow();
}

void WriteJson(const std::vector<RunResult>& rows) {
  std::FILE* f = std::fopen("BENCH_hotkey_skew.json", "w");
  if (f == nullptr) {
    std::printf("could not write BENCH_hotkey_skew.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"hotkey_skew\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const RunResult& r = rows[i];
    std::fprintf(
        f,
        "    {\"theta\": %.2f, \"broker\": %s, \"queries\": %zu, "
        "\"kv_round_trips\": %lld, \"rt_per_query\": %.4f, "
        "\"single_flight_hits\": %lld, \"window_batches\": %lld, "
        "\"cross_request_dedup\": %lld, \"hit_ratio\": %.3f, "
        "\"mean_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
        r.theta, r.broker ? "true" : "false", r.queries,
        static_cast<long long>(r.point_reads + r.multi_gets), r.RtPerQuery(),
        static_cast<long long>(r.single_flight),
        static_cast<long long>(r.window_batches),
        static_cast<long long>(r.dedup), r.hit_ratio, r.mean_ms, r.p99_ms,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_hotkey_skew.json\n");
}

int Run(bool smoke) {
  std::printf(
      "=== Hot-key skew: LoadBroker vs broker-off ablation (%s) ===\n"
      "%zu threads, Zipf users over %zu profiles, tiny cache -> recurring\n"
      "misses; series = KV round trips per query\n",
      smoke ? "smoke" : "full", kThreads, kNumUsers);

  MemKvStore kv(bench::CalibratedKv());
  SeedStore(kv);

  const std::vector<double> thetas =
      smoke ? std::vector<double>{0.99}
            : std::vector<double>{0.6, 0.8, 0.9, 0.99};
  const size_t queries_per_thread = smoke ? 150 : 300;

  bench::PrintHeader({"zipf_s", "broker", "queries", "kv_rt", "rt_per_q",
                      "sflight", "batches", "dedup", "hit_ratio", "p99_ms"});
  std::vector<RunResult> rows;
  double accept_ratio = 0;
  int64_t accept_single_flight = 0;
  size_t total_errors = 0;
  for (double theta : thetas) {
    const RunResult off = RunConfig(kv, theta, /*broker_on=*/false,
                                    queries_per_thread);
    const RunResult on = RunConfig(kv, theta, /*broker_on=*/true,
                                   queries_per_thread);
    PrintRow(off);
    PrintRow(on);
    total_errors += off.errors + on.errors;
    const double ratio =
        on.RtPerQuery() > 0 ? off.RtPerQuery() / on.RtPerQuery() : 0;
    std::printf("%14s s=%.2f: broker cuts KV round trips per query %.1fx "
                "(%.2f -> %.2f)\n",
                "", theta, ratio, off.RtPerQuery(), on.RtPerQuery());
    if (theta == 0.99) {
      accept_ratio = ratio;
      accept_single_flight = on.single_flight;
    }
    rows.push_back(off);
    rows.push_back(on);
  }

  int rc = 0;
  if (total_errors != 0) {
    std::printf("FAIL: %zu queries returned errors\n", total_errors);
    rc = 1;
  }
  std::printf(
      "\nacceptance @ s=0.99: rt reduction %.1fx (need >= 3.0), "
      "single_flight_hits %lld (need > 0)\n",
      accept_ratio, static_cast<long long>(accept_single_flight));
  if (accept_ratio < 3.0 || accept_single_flight <= 0) {
    std::printf("FAIL: hot-key coalescing gate not met\n");
    rc = 1;
  } else {
    std::printf("PASS\n");
  }
  if (!smoke) WriteJson(rows);
  return rc;
}

}  // namespace
}  // namespace ips

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int rc = ips::Run(smoke);
  // The full run is also gated: the acceptance line must hold either way.
  return rc;
}
