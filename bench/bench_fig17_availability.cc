// Figure 17 reproduction: client-side request error rate of an IPS cluster
// over 20 days under continuous fault injection.
//
// Paper result: maximum daily error rate ~0.025%, average below 0.01%,
// overall SLA 99.99%.
//
// The simulation runs 20 days of traffic against a two-region deployment
// while injecting node crashes (with restart), transient network drop
// bursts, storage blips, and one full-region failover mid-way. The client
// retries on ring successors and fails over across regions — errors only
// surface when every retry path is exhausted, which is what keeps the
// observed rate in the paper's band.
#include <algorithm>
#include <vector>

#include "bench/bench_util.h"

namespace ips {
namespace {

constexpr int kDays = 20;
constexpr int kQueriesPerDay = 20'000;
constexpr int kWritesPerDay = 2'000;

void Run() {
  std::printf(
      "=== Fig 17: client-side error rate over %d days ===\n"
      "paper: max ~0.025%%, average <0.01%%, SLA 99.99%%\n\n",
      kDays);

  ManualClock clock(1000 * kMillisPerDay);
  DeploymentOptions options;
  options.regions = {{"lf", 3, /*is_primary=*/true},
                     {"hl", 3, /*is_primary=*/false}};
  options.instance.isolation_enabled = false;
  options.instance.compaction.synchronous = false;
  options.channel = bench::FastChannel();
  options.kv.store_options = bench::FastKv();
  options.kv.replication_lag_ms = 2000;
  options.discovery_ttl_ms = 30'000;
  Deployment deployment(options, &clock);
  if (!deployment.CreateTableEverywhere(DefaultTableSchema("user_profile"))
           .ok()) {
    return;
  }

  WorkloadOptions workload_options;
  workload_options.num_users = 10'000;
  workload_options.seed = 17;
  WorkloadGenerator workload(workload_options);

  IpsClientOptions client_options;
  client_options.caller = "ranker";
  client_options.local_region = "lf";
  client_options.failover_regions = {"hl"};
  client_options.max_read_attempts = 2;
  IpsClient client(client_options, &deployment);

  Rng fault_rng(99);
  bench::PrintHeader(
      {"day", "requests", "errors", "err_pct", "events"});

  int64_t total_requests = 0, total_errors = 0;
  double max_day_error_pct = 0;
  for (int day = 0; day < kDays; ++day) {
    int64_t day_requests = 0, day_errors = 0;
    int fault_events = 0;
    int burst_remaining = 0;

    // Mid-experiment disaster drill: region failover (paper III-G: other
    // regions take over all traffic within minutes).
    const bool region_drill = day == 10;
    for (int step = 0; step < kQueriesPerDay + kWritesPerDay; ++step) {
      // ~every simulated 4 seconds of traffic.
      clock.AdvanceMs(4000 / 1 + 0 * step);
      deployment.HeartbeatAll();

      // Fault injection.
      if (fault_rng.Bernoulli(0.0004)) {  // node crash + quick restart
        auto nodes = deployment.NodesInRegion(
            fault_rng.Bernoulli(0.5) ? "lf" : "hl");
        auto* victim = nodes[fault_rng.Uniform(nodes.size())];
        victim->SetDown(true);
        deployment.discovery().Deregister(victim->node_id());
        ++fault_events;
        // Restart after a short outage (handled inline for simplicity: the
        // node returns before most clients even notice via refresh).
        if (fault_rng.Bernoulli(0.9)) {
          victim->SetDown(false);
          deployment.discovery().Register(victim->node_id(),
                                          victim->region(), 0);
        }
      }
      // Correlated network incident: a client-side egress problem degrades
      // the paths to every node at once for a short burst. Uncorrelated
      // single-node faults are fully masked by ring-successor and region
      // failover retries; only correlated bursts can exhaust them — the
      // residual error the paper's Fig 17 shows.
      if (burst_remaining == 0 && fault_rng.Bernoulli(0.00008)) {
        burst_remaining = 20;
        for (const auto& region : deployment.region_names()) {
          for (auto* node : deployment.NodesInRegion(region)) {
            node->channel().SetDropProbability(0.45);
          }
        }
        ++fault_events;
      } else if (burst_remaining > 0 && --burst_remaining == 0) {
        for (const auto& region : deployment.region_names()) {
          for (auto* node : deployment.NodesInRegion(region)) {
            node->channel().SetDropProbability(0.0);
          }
        }
      }
      if (region_drill && step == 1000) {
        deployment.FailRegion("lf");
        ++fault_events;
      }
      if (region_drill && step == 3000) {
        deployment.RecoverRegion("lf");
      }

      // Traffic: ~10:1 read:write.
      ProfileId uid;
      if (step % 11 == 10) {
        auto records = workload.NextAddBatch(clock.NowMs(), &uid);
        ++day_requests;
        if (!client.AddProfiles("user_profile", uid, records).ok()) {
          ++day_errors;
        }
      } else {
        QuerySpec spec = workload.NextQuerySpec(&uid);
        ++day_requests;
        if (!client.Query("user_profile", uid, spec).ok()) ++day_errors;
      }
    }

    // Recover any node left down by the 10% non-restarted crashes.
    for (const auto& region : deployment.region_names()) {
      deployment.RecoverRegion(region);
    }
    for (const auto& region : deployment.region_names()) {
      for (auto* node : deployment.NodesInRegion(region)) {
        node->channel().SetDropProbability(0.0);
      }
    }

    const double err_pct = 100.0 * static_cast<double>(day_errors) /
                           static_cast<double>(day_requests);
    max_day_error_pct = std::max(max_day_error_pct, err_pct);
    total_requests += day_requests;
    total_errors += day_errors;

    bench::PrintCell(static_cast<int64_t>(day + 1));
    bench::PrintCell(day_requests);
    bench::PrintCell(day_errors);
    std::printf("%13.4f%%", err_pct);
    bench::PrintCell(static_cast<int64_t>(fault_events));
    bench::EndRow();
  }

  const double overall_err =
      static_cast<double>(total_errors) / static_cast<double>(total_requests);
  std::printf(
      "\nshape checks vs paper:\n"
      "  max daily error rate: %.4f%% (paper: ~0.025%%)\n"
      "  overall error rate:   %.4f%% (paper avg: <0.01%%)\n"
      "  achieved SLA:         %.4f%% (paper: 99.99%%)\n",
      max_day_error_pct, 100.0 * overall_err, 100.0 * (1.0 - overall_err));
}

}  // namespace
}  // namespace ips

int main() {
  ips::Run();
  return 0;
}
