// Availability chaos harness (Fig 17 companion): error-rate-over-time for a
// two-region cluster while a fault schedule kills a node, takes the master
// KV cluster down, partitions a channel and fails the secondary region —
// all under steady MultiQuery load with a trickle of writes.
//
// Two runs over the identical schedule:
//   * policy_on  — deadlines + retry policy (backoff, budget) + per-node
//                  circuit breakers + region failover + degraded KV reads.
//   * policy_off — one blind attempt, no failover, no breaker, no degraded
//                  fallback: what the request layer looked like before the
//                  fault-tolerance work.
//
// The discovery view is frozen (huge refresh interval / TTL), so the client
// keeps routing to the killed node all through its outage window — masking
// it is entirely the breaker's and the retry policy's job, the stale-view
// scenario of Section III-G.
//
// Emits per-second error buckets for both runs to BENCH_availability.json.
// `--smoke` runs a compressed schedule and exits nonzero unless the
// policy_on error rate stays under 1% while policy_off shows a clear
// failure plateau.
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "server/ips_instance.h"

namespace ips {
namespace {

constexpr int64_t kDay = kMillisPerDay;
constexpr int64_t kStepMs = 20;       // one load step = 20 simulated ms
constexpr size_t kBatchSize = 16;     // pids per MultiQuery
constexpr int kWriteEveryNSteps = 4;  // ~1 write per 4 batches
constexpr const char* kTable = "user_profile";

struct FaultWindow {
  const char* name;
  int start_s;
  int end_s;  // exclusive
};

struct Schedule {
  int duration_s;
  FaultWindow node_kill;
  FaultWindow kv_outage;
  FaultWindow partition;
  FaultWindow region_fail;
};

Schedule FullSchedule() {
  return {60,
          {"node_kill", 10, 15},
          {"kv_outage", 25, 30},
          {"partition", 40, 45},
          {"region_fail", 50, 55}};
}

Schedule SmokeSchedule() {
  return {16,
          {"node_kill", 2, 4},
          {"kv_outage", 6, 8},
          {"partition", 10, 12},
          {"region_fail", 13, 15}};
}

struct Bucket {
  int t_s = 0;
  int64_t requests = 0;
  int64_t errors = 0;
  int64_t degraded = 0;
  double ErrPct() const {
    return requests > 0
               ? 100.0 * static_cast<double>(errors) /
                     static_cast<double>(requests)
               : 0.0;
  }
};

struct RunResult {
  std::string name;
  std::vector<Bucket> buckets;
  int64_t retries = 0;
  int64_t breaker_skips = 0;
  int64_t degraded_reads = 0;
  int64_t budget_denials = 0;

  int64_t TotalRequests() const {
    int64_t n = 0;
    for (const auto& b : buckets) n += b.requests;
    return n;
  }
  int64_t TotalErrors() const {
    int64_t n = 0;
    for (const auto& b : buckets) n += b.errors;
    return n;
  }
  double OverallErrPct() const {
    const int64_t requests = TotalRequests();
    return requests > 0
               ? 100.0 * static_cast<double>(TotalErrors()) /
                     static_cast<double>(requests)
               : 0.0;
  }
  /// Error percentage over one fault window (with one trailing second of
  /// grace: a fault landing mid-batch surfaces in the next bucket).
  double WindowErrPct(const FaultWindow& window) const {
    int64_t requests = 0, errors = 0;
    for (const auto& b : buckets) {
      if (b.t_s >= window.start_s && b.t_s <= window.end_s) {
        requests += b.requests;
        errors += b.errors;
      }
    }
    return requests > 0
               ? 100.0 * static_cast<double>(errors) /
                     static_cast<double>(requests)
               : 0.0;
  }
};

/// Preloads every workload user into the master KV (and, via CatchUpAll,
/// the slave replica) through a throwaway instance: the cluster's node
/// caches start cold, every first-touch read pays a real storage round
/// trip, and during the KV outage each miss has a replica copy to degrade
/// to (a NotFound on the fallback is deliberately inconclusive and would
/// surface the primary outage instead).
void PreloadKv(Deployment& deployment, WorkloadGenerator& workload,
               TimestampMs now_ms) {
  IpsInstanceOptions loader_options;
  loader_options.isolation_enabled = false;
  loader_options.start_background_threads = false;
  loader_options.cache.start_background_threads = false;
  // Write through kv().master() (the replication wrapper), not the raw
  // store: only wrapped writes are journaled for slave catch-up.
  IpsInstance loader(loader_options, deployment.kv().master(),
                     deployment.clock());
  loader.CreateTable(DefaultTableSchema(kTable)).ok();
  for (uint64_t rank = 0; rank < workload.options().num_users; ++rank) {
    ProfileId sampled;  // records are independent of the sampled user
    auto records = workload.NextAddBatch(
        now_ms - static_cast<TimestampMs>(
                     workload.rng().Uniform(7 * kMillisPerDay)),
        &sampled);
    // The workload samples users as ScrambleId(zipf rank); enumerate the
    // same bijection so every pid a query can draw has a stored profile.
    loader.AddProfiles("preload", kTable, ScrambleId(rank), records).ok();
  }
  loader.FlushAll();
  deployment.kv().CatchUpAll();
}

RunResult RunOnce(const Schedule& schedule, bool policy_on) {
  ManualClock clock(1000 * kDay);

  DeploymentOptions options;
  options.regions = {{"lf", 3, /*is_primary=*/true},
                     {"hl", 2, /*is_primary=*/false}};
  options.instance.isolation_enabled = false;
  options.instance.start_background_threads = false;
  options.instance.cache.start_background_threads = false;
  options.channel = bench::FastChannel();
  options.kv.store_options = bench::FastKv();
  options.kv.replication_lag_ms = 100;
  // Freeze the discovery view: the killed node stays registered and routed
  // to for its whole outage window.
  options.discovery_ttl_ms = 365 * kDay;
  options.enable_degraded_fallback = policy_on;
  Deployment deployment(options, &clock);
  if (!deployment.CreateTableEverywhere(DefaultTableSchema(kTable)).ok()) {
    return {};
  }

  WorkloadOptions workload_options;
  workload_options.num_users = 20'000;
  workload_options.seed = 1717;
  WorkloadGenerator workload(workload_options);
  PreloadKv(deployment, workload, clock.NowMs());

  IpsClientOptions client_options;
  client_options.caller = "ranker";
  client_options.local_region = "lf";
  client_options.refresh_interval_ms = 365 * kDay;  // frozen view
  if (policy_on) {
    client_options.failover_regions = {"hl"};
    client_options.max_read_attempts = 3;
    client_options.default_timeout_ms = 250;
    // retry + breaker defaults: enabled.
  } else {
    client_options.max_read_attempts = 1;
    client_options.max_write_attempts = 1;
    client_options.retry.enabled = false;
    client_options.breaker.enabled = false;
  }
  IpsClient client(client_options, &deployment);
  ProfileId spec_uid = 0;
  const QuerySpec base_spec = workload.NextQuerySpec(&spec_uid);

  RunResult run;
  run.name = policy_on ? "policy_on" : "policy_off";
  run.buckets.resize(static_cast<size_t>(schedule.duration_s));
  for (int s = 0; s < schedule.duration_s; ++s) run.buckets[s].t_s = s;

  const int total_steps =
      schedule.duration_s * static_cast<int>(kMillisPerSecond / kStepMs);
  int prev_second = -1;
  for (int step = 0; step < total_steps; ++step) {
    const int second =
        static_cast<int>((step * kStepMs) / kMillisPerSecond);
    Bucket& bucket = run.buckets[static_cast<size_t>(second)];

    // Apply the fault schedule on second boundaries.
    if (second != prev_second) {
      prev_second = second;
      auto in = [second](const FaultWindow& w) {
        return second >= w.start_s && second < w.end_s;
      };
      deployment.FindNode("lf/ips-0")->SetDown(in(schedule.node_kill));
      deployment.kv().master_store()->SetDown(in(schedule.kv_outage));
      deployment.FindNode("lf/ips-2")->channel().SetPartitioned(
          in(schedule.partition));
      if (second == schedule.region_fail.start_s) {
        deployment.FailRegion("hl");
      } else if (second == schedule.region_fail.end_s) {
        deployment.RecoverRegion("hl");
      }
    }

    // Steady read load: one candidate batch per step, each pid a request.
    std::vector<ProfileId> pids;
    pids.reserve(kBatchSize);
    for (size_t i = 0; i < kBatchSize; ++i) {
      ProfileId uid;
      workload.NextQuerySpec(&uid);
      pids.push_back(uid);
    }
    bucket.requests += static_cast<int64_t>(kBatchSize);
    auto result = client.MultiQuery(kTable, pids, base_spec);
    if (!result.ok()) {
      bucket.errors += static_cast<int64_t>(kBatchSize);
    } else {
      for (const Status& s : result->statuses) {
        if (!s.ok()) ++bucket.errors;
      }
      bucket.degraded += static_cast<int64_t>(result->degraded);
    }

    // Write trickle (multi-region fan-out path).
    if (step % kWriteEveryNSteps == 0) {
      ProfileId uid;
      auto records = workload.NextAddBatch(clock.NowMs(), &uid);
      ++bucket.requests;
      if (!client.AddProfiles(kTable, uid, records).ok()) ++bucket.errors;
    }

    clock.AdvanceMs(kStepMs);
  }

  // Leave the deployment healthy (destructor hygiene for flush threads).
  deployment.RecoverRegion("hl");
  deployment.kv().master_store()->SetDown(false);

  run.retries = deployment.metrics()->GetCounter("client.retries")->Value();
  run.breaker_skips =
      deployment.metrics()->GetCounter("client.breaker_skips")->Value();
  run.degraded_reads =
      deployment.metrics()->GetCounter("client.degraded_reads")->Value();
  run.budget_denials = client.retry_policy().budget_denials();
  return run;
}

void PrintRun(const RunResult& run, const Schedule& schedule) {
  std::printf("\n--- %s ---\n", run.name.c_str());
  bench::PrintHeader({"second", "requests", "errors", "err_pct", "degraded"});
  for (const auto& b : run.buckets) {
    bench::PrintCell(static_cast<int64_t>(b.t_s));
    bench::PrintCell(b.requests);
    bench::PrintCell(b.errors);
    std::printf("%13.2f%%", b.ErrPct());
    bench::PrintCell(b.degraded);
    bench::EndRow();
  }
  std::printf(
      "overall: %.3f%% errors over %lld requests "
      "(retries=%lld breaker_skips=%lld degraded_reads=%lld "
      "budget_denials=%lld)\n",
      run.OverallErrPct(), static_cast<long long>(run.TotalRequests()),
      static_cast<long long>(run.retries),
      static_cast<long long>(run.breaker_skips),
      static_cast<long long>(run.degraded_reads),
      static_cast<long long>(run.budget_denials));
  std::printf("per-window error rates:\n");
  for (const FaultWindow* w :
       {&schedule.node_kill, &schedule.kv_outage, &schedule.partition,
        &schedule.region_fail}) {
    std::printf("  %-12s [%2ds, %2ds): %7.2f%%\n", w->name, w->start_s,
                w->end_s, run.WindowErrPct(*w));
  }
}

void WriteJson(const RunResult& on, const RunResult& off,
               const Schedule& schedule, bool smoke) {
  std::FILE* f = std::fopen("BENCH_availability.json", "w");
  if (f == nullptr) {
    std::printf("could not write BENCH_availability.json\n");
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"availability\",\n  \"mode\": \"%s\",\n"
               "  \"step_ms\": %lld,\n  \"batch_size\": %zu,\n",
               smoke ? "smoke" : "full", static_cast<long long>(kStepMs),
               kBatchSize);
  std::fprintf(f, "  \"fault_windows\": [\n");
  const FaultWindow* windows[] = {&schedule.node_kill, &schedule.kv_outage,
                                  &schedule.partition,
                                  &schedule.region_fail};
  for (size_t i = 0; i < 4; ++i) {
    std::fprintf(f, "    {\"name\": \"%s\", \"start_s\": %d, \"end_s\": %d}%s\n",
                 windows[i]->name, windows[i]->start_s, windows[i]->end_s,
                 i + 1 < 4 ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"runs\": {\n");
  const RunResult* runs[] = {&on, &off};
  for (size_t r = 0; r < 2; ++r) {
    const RunResult& run = *runs[r];
    std::fprintf(f, "    \"%s\": {\n      \"buckets\": [\n",
                 run.name.c_str());
    for (size_t i = 0; i < run.buckets.size(); ++i) {
      const Bucket& b = run.buckets[i];
      std::fprintf(f,
                   "        {\"t_s\": %d, \"requests\": %lld, "
                   "\"errors\": %lld, \"err_pct\": %.3f, "
                   "\"degraded\": %lld}%s\n",
                   b.t_s, static_cast<long long>(b.requests),
                   static_cast<long long>(b.errors), b.ErrPct(),
                   static_cast<long long>(b.degraded),
                   i + 1 < run.buckets.size() ? "," : "");
    }
    std::fprintf(f,
                 "      ],\n      \"overall_err_pct\": %.4f,\n"
                 "      \"retries\": %lld,\n      \"breaker_skips\": %lld,\n"
                 "      \"degraded_reads\": %lld,\n"
                 "      \"budget_denials\": %lld\n    }%s\n",
                 run.OverallErrPct(), static_cast<long long>(run.retries),
                 static_cast<long long>(run.breaker_skips),
                 static_cast<long long>(run.degraded_reads),
                 static_cast<long long>(run.budget_denials),
                 r == 0 ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_availability.json\n");
}

int Run(bool smoke) {
  const Schedule schedule = smoke ? SmokeSchedule() : FullSchedule();
  std::printf(
      "=== Availability under chaos: fault-tolerant request layer on vs off "
      "===\n"
      "schedule (%ds): node kill [%d,%d), master KV outage [%d,%d), "
      "channel partition [%d,%d), region failure [%d,%d)\n",
      schedule.duration_s, schedule.node_kill.start_s,
      schedule.node_kill.end_s, schedule.kv_outage.start_s,
      schedule.kv_outage.end_s, schedule.partition.start_s,
      schedule.partition.end_s, schedule.region_fail.start_s,
      schedule.region_fail.end_s);

  const RunResult on = RunOnce(schedule, /*policy_on=*/true);
  const RunResult off = RunOnce(schedule, /*policy_on=*/false);
  PrintRun(on, schedule);
  PrintRun(off, schedule);
  WriteJson(on, off, schedule, smoke);

  // Shape checks: with the policy on, the node kill and the KV outage stay
  // under 1% client-observed errors; with it off, both windows plateau.
  const double on_kill = on.WindowErrPct(schedule.node_kill);
  const double on_kv = on.WindowErrPct(schedule.kv_outage);
  const double off_kill = off.WindowErrPct(schedule.node_kill);
  const double off_kv = off.WindowErrPct(schedule.kv_outage);
  std::printf(
      "\nshape checks:\n"
      "  node_kill window:  policy_on %.2f%% (must be < 1%%)  vs  "
      "policy_off %.2f%% (must be > 5%%)\n"
      "  kv_outage window:  policy_on %.2f%% (must be < 1%%)  vs  "
      "policy_off %.2f%% (must be > 5%%)\n",
      on_kill, off_kill, on_kv, off_kv);
  const bool ok =
      on_kill < 1.0 && on_kv < 1.0 && off_kill > 5.0 && off_kv > 5.0;
  std::printf("%s\n", ok ? "shape OK" : "SHAPE VIOLATION");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ips

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int rc = ips::Run(smoke);
  // The full run is a report; only the smoke gate fails the process.
  return smoke ? rc : 0;
}
