// Section III-D reproduction: the memory-bounding effect of Compact /
// Truncate / Shrink over a year of per-user activity.
//
// Paper numbers: with the production time-dimension config the average
// slice-list length is 62 and the average slice ~730 bytes, i.e. ~45 KB of
// memory per profile, stable over time; without compact/truncate a profile
// at 5-minute slice granularity would grow to ~76 MB/year. Serialized +
// compressed profiles are <40 KB.
//
// Reproduced claims: (a) unbounded mode grows linearly to thousands of
// slices while the full ladder keeps the slice count in the same order as
// the paper's 62; (b) bytes/profile stay flat (stable) under the ladder;
// (c) shrink removes long-tail features on top of compaction; (d) the
// serialized+compressed profile lands in the tens-of-KB band.
#include <string>

#include "bench/bench_util.h"
#include "codec/profile_codec.h"
#include "compaction/compactor.h"
#include "core/profile_data.h"

namespace ips {
namespace {

constexpr int kDaysSimulated = 550;  // past the 365d horizon: steady state
constexpr int kActionsPerDay = 40;  // an active user

enum class Mode { kNone, kCompact, kCompactTruncate, kFull };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kNone:
      return "none";
    case Mode::kCompact:
      return "compact";
    case Mode::kCompactTruncate:
      return "compact+trunc";
    case Mode::kFull:
      return "full(+shrink)";
  }
  return "?";
}

TableSchema SchemaFor(Mode mode) {
  TableSchema schema = DefaultTableSchema("t");
  schema.write_granularity_ms = 5 * kMillisPerMinute;  // the paper's example
  if (mode == Mode::kNone) {
    schema.time_dimensions.clear();
    schema.truncate = TruncatePolicy{};
    schema.shrink = ShrinkPolicy{};
  } else if (mode == Mode::kCompact) {
    schema.truncate = TruncatePolicy{};
    schema.shrink = ShrinkPolicy{};
  } else if (mode == Mode::kCompactTruncate) {
    schema.shrink = ShrinkPolicy{};
  } else {
    schema.shrink.default_retain = 40;
    schema.shrink.freshness_horizon_ms = kMillisPerDay;
  }
  return schema;
}

struct ModeResult {
  size_t slices = 0;
  size_t features = 0;
  size_t bytes = 0;
  size_t serialized_bytes = 0;
  size_t mid_year_bytes = 0;
};

ModeResult Replay(Mode mode) {
  TableSchema schema = SchemaFor(mode);
  Compactor compactor(&schema);
  ProfileData profile(schema.write_granularity_ms);
  Rng rng(7);
  TimestampMs now = kMillisPerDay;

  ModeResult result;
  for (int day = 0; day < kDaysSimulated; ++day) {
    for (int action = 0; action < kActionsPerDay; ++action) {
      now += kMillisPerDay / kActionsPerDay;
      CountVector counts{1, 0, 0, 0};
      if (rng.Bernoulli(0.2)) counts[1] = 1;
      profile
          .Add(now, static_cast<SlotId>(rng.Uniform(6)),
               static_cast<TypeId>(rng.Uniform(8)),
               // Zipf-ish fid popularity with a long tail of one-off items.
               rng.Bernoulli(0.5) ? rng.Uniform(50) + 1
                                  : rng.Next() | 1,
               counts)
          .ok();
    }
    if (mode != Mode::kNone && day % 7 == 6) {
      compactor.FullCompact(profile, now);
    }
    if (day == 400) {
      // First post-saturation snapshot (the 365-day truncation horizon has
      // been reached); steady state means end-of-run bytes match this.
      result.mid_year_bytes = profile.ApproximateBytes();
    }
  }
  if (mode != Mode::kNone) compactor.FullCompact(profile, now);

  result.slices = profile.SliceCount();
  result.features = profile.TotalFeatures();
  result.bytes = profile.ApproximateBytes();
  std::string encoded;
  EncodeProfile(profile, &encoded);
  result.serialized_bytes = encoded.size();
  return result;
}

void Run() {
  std::printf(
      "=== III-D: profile memory over one simulated year ===\n"
      "paper: avg 62 slices, ~45 KB/profile stable; ~76 MB/year without "
      "compact+truncate; serialized <40 KB\n\n");

  bench::PrintHeader({"mode", "slices", "features", "mem_KB", "ser_KB",
                      "sat_KB"});
  ModeResult none, full;
  for (Mode mode : {Mode::kNone, Mode::kCompact, Mode::kCompactTruncate,
                    Mode::kFull}) {
    const ModeResult r = Replay(mode);
    if (mode == Mode::kNone) none = r;
    if (mode == Mode::kFull) full = r;
    bench::PrintCell(ModeName(mode));
    bench::PrintCell(static_cast<int64_t>(r.slices));
    bench::PrintCell(static_cast<int64_t>(r.features));
    bench::PrintCell(static_cast<double>(r.bytes) / 1024.0);
    bench::PrintCell(static_cast<double>(r.serialized_bytes) / 1024.0);
    bench::PrintCell(static_cast<double>(r.mid_year_bytes) / 1024.0);
    bench::EndRow();
  }

  std::printf(
      "\nshape checks vs paper:\n"
      "  unbounded slice count: %zu (vs %zu with the full ladder -> "
      "%.0fx reduction; paper: unbounded ~10^5 5-min slices/yr vs 62)\n"
      "  memory reduction: %.0fx (paper: ~76 MB -> ~45 KB, ~1700x at "
      "production action rates)\n"
      "  full-mode profile stays flat after saturation: end/day-400 bytes = %.2f "
      "(paper: 'remains fairly stable')\n",
      none.slices, full.slices,
      static_cast<double>(none.slices) / static_cast<double>(full.slices),
      static_cast<double>(none.bytes) / static_cast<double>(full.bytes),
      static_cast<double>(full.bytes) /
          static_cast<double>(full.mid_year_bytes));
}

}  // namespace
}  // namespace ips

int main() {
  ips::Run();
  return 0;
}
