// Micro-benchmarks (google-benchmark) for the core building blocks, plus
// the design-choice ablations DESIGN.md calls out:
//   * sharded-LRU + try_lock swap vs a single global mutex (Fig 7/8),
//   * hash-accumulator merge vs sorted k-way heap merge,
//   * codec / compression throughput (the Fig 12 serialization path),
//   * consistent-hash routing cost,
//   * tracing hot-path overhead with sampling off vs a live trace.
#include <benchmark/benchmark.h>

#include <list>
#include <mutex>
#include <optional>

#include "cluster/consistent_hash.h"
#include "codec/coding.h"
#include "codec/compress.h"
#include "codec/profile_codec.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/trace.h"
#include "core/profile_data.h"
#include "query/merger.h"
#include "query/query.h"

namespace ips {
namespace {

// ---------------------------------------------------------------- codec ---

void BM_VarintEncodeDecode(benchmark::State& state) {
  Rng rng(1);
  std::vector<uint64_t> values(1024);
  for (auto& v : values) v = rng.Next() >> (rng.Uniform(60));
  for (auto _ : state) {
    std::string buf;
    for (uint64_t v : values) PutVarint64(&buf, v);
    Decoder dec(buf);
    uint64_t out, sum = 0;
    while (dec.GetVarint64(&out)) sum += out;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_VarintEncodeDecode);

ProfileData BuildProfile(int slices, int features_per_slice) {
  Rng rng(3);
  ProfileData profile(kMillisPerMinute);
  const TimestampMs base = 100 * kMillisPerDay;
  for (int s = 0; s < slices; ++s) {
    for (int f = 0; f < features_per_slice; ++f) {
      profile
          .Add(base + s * kMillisPerMinute, static_cast<SlotId>(f % 4),
               static_cast<TypeId>(f % 3), rng.Next() | 1,
               CountVector{1, 2, 0, 1})
          .ok();
    }
  }
  return profile;
}

void BM_ProfileEncode(benchmark::State& state) {
  ProfileData profile = BuildProfile(static_cast<int>(state.range(0)), 20);
  std::string out;
  for (auto _ : state) {
    EncodeProfile(profile, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * out.size());
}
BENCHMARK(BM_ProfileEncode)->Arg(8)->Arg(62)->Arg(256);

void BM_ProfileDecode(benchmark::State& state) {
  ProfileData profile = BuildProfile(static_cast<int>(state.range(0)), 20);
  std::string encoded;
  EncodeProfile(profile, &encoded);
  for (auto _ : state) {
    ProfileData decoded;
    DecodeProfile(encoded, &decoded).ok();
    benchmark::DoNotOptimize(decoded.SliceCount());
  }
  state.SetBytesProcessed(state.iterations() * encoded.size());
}
BENCHMARK(BM_ProfileDecode)->Arg(8)->Arg(62)->Arg(256);

void BM_BlockCompress(benchmark::State& state) {
  ProfileData profile = BuildProfile(62, 20);
  std::string raw;
  raw.reserve(EncodedProfileSizeUncompressed(profile));
  // Compress the serialized (pre-compression) profile bytes.
  {
    std::string compressed;
    EncodeProfile(profile, &compressed);
    BlockUncompress(compressed, &raw).ok();
  }
  std::string out;
  for (auto _ : state) {
    BlockCompress(raw, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * raw.size());
}
BENCHMARK(BM_BlockCompress);

// ---------------------------------------------------------------- query ---

void BM_QueryTopK(benchmark::State& state) {
  ProfileData profile = BuildProfile(62, static_cast<int>(state.range(0)));
  const TimestampMs now = 101 * kMillisPerDay;
  for (auto _ : state) {
    auto result = GetProfileTopK(profile, 1, std::nullopt,
                                 TimeRange::Current(2 * kMillisPerDay),
                                 SortBy::kActionCount, 0, 20, now);
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryTopK)->Arg(10)->Arg(40)->Arg(160);

void BM_QueryDecay(benchmark::State& state) {
  ProfileData profile = BuildProfile(62, 40);
  const TimestampMs now = 101 * kMillisPerDay;
  DecaySpec decay;
  decay.function = DecayFunction::kExponential;
  decay.factor = 0.9;
  decay.unit_ms = kMillisPerDay;
  for (auto _ : state) {
    auto result = GetProfileDecay(profile, 1, std::nullopt,
                                  TimeRange::Current(2 * kMillisPerDay),
                                  decay, now);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_QueryDecay);

// Ablation: hash-based accumulation (ExecuteQuery's strategy) vs the sorted
// k-way heap merge that exploits the fid ordering.
std::vector<IndexedFeatureStats> BuildRuns(int runs, int entries) {
  Rng rng(9);
  std::vector<IndexedFeatureStats> out(runs);
  for (auto& run : out) {
    for (int i = 0; i < entries; ++i) {
      run.Upsert(rng.Uniform(entries * 4), CountVector{1, 2});
    }
  }
  return out;
}

void BM_MergeHeap(benchmark::State& state) {
  auto runs = BuildRuns(static_cast<int>(state.range(0)), 64);
  std::vector<const IndexedFeatureStats*> ptrs;
  for (const auto& r : runs) ptrs.push_back(&r);
  for (auto _ : state) {
    IndexedFeatureStats merged = MergeSortedRuns(ptrs, ReduceFn::kSum);
    benchmark::DoNotOptimize(merged.size());
  }
}
BENCHMARK(BM_MergeHeap)->Arg(4)->Arg(16)->Arg(62);

void BM_MergeHash(benchmark::State& state) {
  auto runs = BuildRuns(static_cast<int>(state.range(0)), 64);
  for (auto _ : state) {
    std::unordered_map<FeatureId, CountVector> acc;
    for (const auto& run : runs) {
      for (const auto& stat : run.stats()) {
        acc[stat.fid].AccumulateSum(stat.counts);
      }
    }
    benchmark::DoNotOptimize(acc.size());
  }
}
BENCHMARK(BM_MergeHash)->Arg(4)->Arg(16)->Arg(62);

// ------------------------------------------------------------ LRU ablation

// Minimal single-mutex LRU vs the sharded design: measures lock-acquisition
// throughput under contention from multiple threads (the phenomenon Fig 7
// addresses).
struct GlobalLru {
  std::mutex mu;
  std::list<uint64_t> lru;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> pos;

  void Touch(uint64_t key) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = pos.find(key);
    if (it != pos.end()) {
      lru.splice(lru.begin(), lru, it->second);
    } else {
      lru.push_front(key);
      pos[key] = lru.begin();
      if (lru.size() > 4096) {
        pos.erase(lru.back());
        lru.pop_back();
      }
    }
  }
};

struct ShardedLru {
  static constexpr int kShards = 16;
  GlobalLru shards[kShards];
  void Touch(uint64_t key) { shards[Mix64(key) % kShards].Touch(key); }
};

GlobalLru* TheGlobalLru() {
  static GlobalLru* const lru = new GlobalLru();
  return lru;
}
ShardedLru* TheShardedLru() {
  static ShardedLru* const lru = new ShardedLru();
  return lru;
}

void BM_LruGlobalMutex(benchmark::State& state) {
  Rng rng(state.thread_index() + 1);
  for (auto _ : state) {
    TheGlobalLru()->Touch(rng.Uniform(8192));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruGlobalMutex)->Threads(1)->Threads(4)->Threads(8);

void BM_LruSharded(benchmark::State& state) {
  Rng rng(state.thread_index() + 1);
  for (auto _ : state) {
    TheShardedLru()->Touch(rng.Uniform(8192));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruSharded)->Threads(1)->Threads(4)->Threads(8);

// ------------------------------------------------------- consistent hash ---

void BM_ConsistentHashLookup(benchmark::State& state) {
  ConsistentHashRing ring;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    ring.AddNode("node-" + std::to_string(i));
  }
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.Lookup(rng.Next()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConsistentHashLookup)->Arg(8)->Arg(64)->Arg(1024);

// -------------------------------------------------------------- tracing ---

// The cost a span site adds to an UNSAMPLED request: no trace installed, so
// ScopedSpan must reduce to a thread-local read and a branch. This is the
// per-site overhead every query pays when sampling is off.
void BM_SpanDisabled(benchmark::State& state) {
  const int64_t allocs_before = Trace::Allocations();
  for (auto _ : state) {
    ScopedSpan span("bench.noop");
    benchmark::DoNotOptimize(span.active());
  }
  state.SetItemsProcessed(state.iterations());
  if (Trace::Allocations() != allocs_before) {
    state.SkipWithError("disabled span allocated");
  }
}
BENCHMARK(BM_SpanDisabled);

// Same site with a live trace installed: one mutex-guarded vector append per
// span open/close pair.
void BM_SpanEnabled(benchmark::State& state) {
  Trace trace(/*trace_id=*/1, /*start_ms=*/0);
  TraceContext ctx{&trace, kNoSpan};
  TraceInstallScope install(ctx);
  for (auto _ : state) {
    ScopedSpan span("rpc.transfer");
    benchmark::DoNotOptimize(span.active());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanEnabled);

// ---------------------------------------------------------------- write ---

void BM_ProfileAdd(benchmark::State& state) {
  Rng rng(6);
  ProfileData profile(kMillisPerMinute);
  TimestampMs now = kMillisPerDay;
  for (auto _ : state) {
    now += 100;
    profile
        .Add(now, static_cast<SlotId>(rng.Uniform(8)),
             static_cast<TypeId>(rng.Uniform(4)), rng.Uniform(1000) + 1,
             CountVector{1})
        .ok();
    benchmark::DoNotOptimize(profile.SliceCount());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileAdd);

}  // namespace
}  // namespace ips

BENCHMARK_MAIN();
