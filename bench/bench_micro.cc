// Micro-benchmarks (google-benchmark) for the core building blocks, plus
// the design-choice ablations DESIGN.md calls out:
//   * sharded-LRU + try_lock swap vs a single global mutex (Fig 7/8),
//   * hash-accumulator merge vs sorted k-way heap merge,
//   * codec / compression throughput (the Fig 12 serialization path),
//   * consistent-hash routing cost,
//   * tracing hot-path overhead with sampling off vs a live trace.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <list>
#include <mutex>
#include <optional>

#include "cluster/consistent_hash.h"
#include "codec/coding.h"
#include "codec/compress.h"
#include "codec/profile_codec.h"
#include "common/alloc_hook.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/trace.h"
#include "core/profile_data.h"
#include "query/merger.h"
#include "query/query.h"
#include "server/quota.h"

namespace ips {
namespace {

// Publishes the heap allocations performed per iteration as an "allocs/op"
// column (counted by the operator-new hook this binary links in).
void ReportAllocs(benchmark::State& state, uint64_t allocs_before) {
  state.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(ThreadAllocCount() - allocs_before),
      benchmark::Counter::kAvgIterations);
}

// ---------------------------------------------------------------- codec ---

void BM_VarintEncodeDecode(benchmark::State& state) {
  Rng rng(1);
  std::vector<uint64_t> values(1024);
  for (auto& v : values) v = rng.Next() >> (rng.Uniform(60));
  for (auto _ : state) {
    std::string buf;
    for (uint64_t v : values) PutVarint64(&buf, v);
    Decoder dec(buf);
    uint64_t out, sum = 0;
    while (dec.GetVarint64(&out)) sum += out;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_VarintEncodeDecode);

ProfileData BuildProfile(int slices, int features_per_slice) {
  Rng rng(3);
  ProfileData profile(kMillisPerMinute);
  const TimestampMs base = 100 * kMillisPerDay;
  for (int s = 0; s < slices; ++s) {
    for (int f = 0; f < features_per_slice; ++f) {
      profile
          .Add(base + s * kMillisPerMinute, static_cast<SlotId>(f % 4),
               static_cast<TypeId>(f % 3), rng.Next() | 1,
               CountVector{1, 2, 0, 1})
          .ok();
    }
  }
  return profile;
}

void BM_ProfileEncode(benchmark::State& state) {
  ProfileData profile = BuildProfile(static_cast<int>(state.range(0)), 20);
  std::string out;
  for (auto _ : state) {
    EncodeProfile(profile, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * out.size());
}
BENCHMARK(BM_ProfileEncode)->Arg(8)->Arg(62)->Arg(256);

void BM_ProfileDecode(benchmark::State& state) {
  ProfileData profile = BuildProfile(static_cast<int>(state.range(0)), 20);
  std::string encoded;
  EncodeProfile(profile, &encoded);
  for (auto _ : state) {
    ProfileData decoded;
    DecodeProfile(encoded, &decoded).ok();
    benchmark::DoNotOptimize(decoded.SliceCount());
  }
  state.SetBytesProcessed(state.iterations() * encoded.size());
}
BENCHMARK(BM_ProfileDecode)->Arg(8)->Arg(62)->Arg(256);

// The serving-path decode: the 3-arg DecodeProfile that aliases the
// uncompressed image straight out of the stored bytes when the frame was
// raw-stored (incompressible profiles), with an allocs/op column and the
// fraction of iterations served zero-copy.
void BM_DecodeProfile(benchmark::State& state) {
  ProfileData profile = BuildProfile(static_cast<int>(state.range(0)), 20);
  std::string encoded;
  EncodeProfile(profile, &encoded);
  const uint64_t zero_copy_before = ZeroCopyDecodeCount();
  const uint64_t allocs_before = ThreadAllocCount();
  for (auto _ : state) {
    ProfileData decoded;
    bool zero_copy = false;
    DecodeProfile(encoded, &decoded, &zero_copy).ok();
    benchmark::DoNotOptimize(decoded.SliceCount());
  }
  ReportAllocs(state, allocs_before);
  state.counters["zero_copy/op"] = benchmark::Counter(
      static_cast<double>(ZeroCopyDecodeCount() - zero_copy_before),
      benchmark::Counter::kAvgIterations);
  state.SetBytesProcessed(state.iterations() * encoded.size());
}
BENCHMARK(BM_DecodeProfile)->Arg(8)->Arg(62)->Arg(256);

void BM_BlockCompress(benchmark::State& state) {
  ProfileData profile = BuildProfile(62, 20);
  std::string raw;
  raw.reserve(EncodedProfileSizeUncompressed(profile));
  // Compress the serialized (pre-compression) profile bytes.
  {
    std::string compressed;
    EncodeProfile(profile, &compressed);
    BlockUncompress(compressed, &raw).ok();
  }
  std::string out;
  for (auto _ : state) {
    BlockCompress(raw, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * raw.size());
}
BENCHMARK(BM_BlockCompress);

// ---------------------------------------------------------------- query ---

void BM_QueryTopK(benchmark::State& state) {
  ProfileData profile = BuildProfile(62, static_cast<int>(state.range(0)));
  const TimestampMs now = 101 * kMillisPerDay;
  const uint64_t allocs_before = ThreadAllocCount();
  for (auto _ : state) {
    auto result = GetProfileTopK(profile, 1, std::nullopt,
                                 TimeRange::Current(2 * kMillisPerDay),
                                 SortBy::kActionCount, 0, 20, now);
    benchmark::DoNotOptimize(result.ok());
  }
  ReportAllocs(state, allocs_before);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryTopK)->Arg(10)->Arg(40)->Arg(160);

// The steady-state serving compute: warmed scratch + reused result, the
// configuration the --smoke gate asserts performs zero heap allocations.
void BM_QueryTopKWarmScratch(benchmark::State& state) {
  ProfileData profile = BuildProfile(62, static_cast<int>(state.range(0)));
  const TimestampMs now = 101 * kMillisPerDay;
  QuerySpec spec;
  spec.slot = 1;
  spec.time_range = TimeRange::Current(2 * kMillisPerDay);
  spec.sort_by = SortBy::kActionCount;
  spec.k = 20;
  QueryScratch scratch;
  QueryResult result;
  ExecuteQueryInto(profile, spec, now, &scratch, &result).ok();  // warm-up
  const uint64_t allocs_before = ThreadAllocCount();
  for (auto _ : state) {
    ExecuteQueryInto(profile, spec, now, &scratch, &result).ok();
    benchmark::DoNotOptimize(result.features.size());
  }
  ReportAllocs(state, allocs_before);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryTopKWarmScratch)->Arg(10)->Arg(40)->Arg(160);

void BM_QueryDecay(benchmark::State& state) {
  ProfileData profile = BuildProfile(62, 40);
  const TimestampMs now = 101 * kMillisPerDay;
  DecaySpec decay;
  decay.function = DecayFunction::kExponential;
  decay.factor = 0.9;
  decay.unit_ms = kMillisPerDay;
  for (auto _ : state) {
    auto result = GetProfileDecay(profile, 1, std::nullopt,
                                  TimeRange::Current(2 * kMillisPerDay),
                                  decay, now);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_QueryDecay);

// Ablation: hash-based accumulation (ExecuteQuery's strategy) vs the sorted
// k-way heap merge that exploits the fid ordering.
std::vector<IndexedFeatureStats> BuildRuns(int runs, int entries) {
  Rng rng(9);
  std::vector<IndexedFeatureStats> out(runs);
  for (auto& run : out) {
    for (int i = 0; i < entries; ++i) {
      run.Upsert(rng.Uniform(entries * 4), CountVector{1, 2});
    }
  }
  return out;
}

void BM_MergeHeap(benchmark::State& state) {
  auto runs = BuildRuns(static_cast<int>(state.range(0)), 64);
  std::vector<const IndexedFeatureStats*> ptrs;
  for (const auto& r : runs) ptrs.push_back(&r);
  for (auto _ : state) {
    IndexedFeatureStats merged = MergeSortedRuns(ptrs, ReduceFn::kSum);
    benchmark::DoNotOptimize(merged.size());
  }
}
BENCHMARK(BM_MergeHeap)->Arg(4)->Arg(16)->Arg(62);

void BM_MergeHash(benchmark::State& state) {
  auto runs = BuildRuns(static_cast<int>(state.range(0)), 64);
  for (auto _ : state) {
    std::unordered_map<FeatureId, CountVector> acc;
    for (const auto& run : runs) {
      for (const auto& stat : run.stats()) {
        acc[stat.fid].AccumulateSum(stat.counts);
      }
    }
    benchmark::DoNotOptimize(acc.size());
  }
}
BENCHMARK(BM_MergeHash)->Arg(4)->Arg(16)->Arg(62);

// Ablation behind the ExecuteQuery accumulator change: the node-allocating
// std::unordered_map accumulator it used to build per query vs the reusable
// flat open-addressing table over a dense accumulator array it uses now.
// Same inputs, same output multiset; the flat variant reuses one scratch.
void BM_AccumulatorVsFlatMerge_Map(benchmark::State& state) {
  auto runs = BuildRuns(static_cast<int>(state.range(0)), 64);
  const uint64_t allocs_before = ThreadAllocCount();
  for (auto _ : state) {
    std::unordered_map<FeatureId, CountVector> acc;
    for (const auto& run : runs) {
      for (const auto& stat : run.stats()) {
        acc[stat.fid].AccumulateSum(stat.counts);
      }
    }
    benchmark::DoNotOptimize(acc.size());
  }
  ReportAllocs(state, allocs_before);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AccumulatorVsFlatMerge_Map)->Arg(4)->Arg(16)->Arg(62);

void BM_AccumulatorVsFlatMerge_Flat(benchmark::State& state) {
  auto runs = BuildRuns(static_cast<int>(state.range(0)), 64);
  size_t total_entries = 0;
  for (const auto& run : runs) total_entries += run.size();
  QueryScratch scratch;
  const uint64_t allocs_before = ThreadAllocCount();
  for (auto _ : state) {
    scratch.acc_count = 0;
    size_t needed = 16;
    while (needed < 2 * total_entries) needed <<= 1;
    if (scratch.table.size() < needed) scratch.table.resize(needed);
    std::fill_n(scratch.table.begin(), needed, 0u);
    const size_t mask = needed - 1;
    for (const auto& run : runs) {
      for (const auto& stat : run.stats()) {
        size_t idx = static_cast<size_t>(Mix64(stat.fid)) & mask;
        for (;;) {
          const uint32_t slot = scratch.table[idx];
          if (slot == 0) {
            const size_t acc_idx = scratch.acc_count++;
            if (acc_idx == scratch.accs.size()) scratch.accs.emplace_back();
            auto& acc = scratch.accs[acc_idx];
            acc.fid = stat.fid;
            acc.counts = stat.counts;
            scratch.table[idx] = static_cast<uint32_t>(acc_idx) + 1;
            break;
          }
          auto& acc = scratch.accs[slot - 1];
          if (acc.fid == stat.fid) {
            acc.counts.AccumulateSum(stat.counts);
            break;
          }
          idx = (idx + 1) & mask;
        }
      }
    }
    benchmark::DoNotOptimize(scratch.acc_count);
  }
  ReportAllocs(state, allocs_before);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AccumulatorVsFlatMerge_Flat)->Arg(4)->Arg(16)->Arg(62);

// ------------------------------------------------------------ LRU ablation

// Minimal single-mutex LRU vs the sharded design: measures lock-acquisition
// throughput under contention from multiple threads (the phenomenon Fig 7
// addresses).
struct GlobalLru {
  std::mutex mu;
  std::list<uint64_t> lru;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> pos;

  void Touch(uint64_t key) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = pos.find(key);
    if (it != pos.end()) {
      lru.splice(lru.begin(), lru, it->second);
    } else {
      lru.push_front(key);
      pos[key] = lru.begin();
      if (lru.size() > 4096) {
        pos.erase(lru.back());
        lru.pop_back();
      }
    }
  }
};

struct ShardedLru {
  static constexpr int kShards = 16;
  GlobalLru shards[kShards];
  void Touch(uint64_t key) { shards[Mix64(key) % kShards].Touch(key); }
};

GlobalLru* TheGlobalLru() {
  static GlobalLru* const lru = new GlobalLru();
  return lru;
}
ShardedLru* TheShardedLru() {
  static ShardedLru* const lru = new ShardedLru();
  return lru;
}

void BM_LruGlobalMutex(benchmark::State& state) {
  Rng rng(state.thread_index() + 1);
  for (auto _ : state) {
    TheGlobalLru()->Touch(rng.Uniform(8192));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruGlobalMutex)->Threads(1)->Threads(4)->Threads(8);

void BM_LruSharded(benchmark::State& state) {
  Rng rng(state.thread_index() + 1);
  for (auto _ : state) {
    TheShardedLru()->Touch(rng.Uniform(8192));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruSharded)->Threads(1)->Threads(4)->Threads(8);

// ---------------------------------------------------------------- quota ---

// Admission-path cost of QuotaManager::Check under thread contention. Two
// shapes: every thread hammering ONE caller (all contend on a single
// bucket's shard) vs threads spread over many callers (the 16-way shard map
// keeps them apart). The gap between the two is what the sharded caller map
// buys on the hot admission path.
QuotaManager* TheQuotaManager() {
  static QuotaManager* const quota = [] {
    static SystemClock clock;
    auto* q = new QuotaManager(&clock);
    // Refills at 1e9 tokens/s in real time: never drains under bench load,
    // so every iteration measures the grant path, not rejection.
    q->SetQuota("hot", 1e9);
    for (int c = 0; c < 64; ++c) {
      q->SetQuota("caller-" + std::to_string(c), 1e9);
    }
    return q;
  }();
  return quota;
}

void BM_QuotaCheckHotCaller(benchmark::State& state) {
  QuotaManager* quota = TheQuotaManager();
  for (auto _ : state) {
    benchmark::DoNotOptimize(quota->Check("hot").ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuotaCheckHotCaller)->Threads(1)->Threads(4)->Threads(8);

void BM_QuotaCheckShardedCallers(benchmark::State& state) {
  QuotaManager* quota = TheQuotaManager();
  Rng rng(state.thread_index() + 1);
  // Pre-build the names: the benchmark measures Check, not string concat.
  std::vector<std::string> callers;
  for (int c = 0; c < 64; ++c) callers.push_back("caller-" + std::to_string(c));
  for (auto _ : state) {
    benchmark::DoNotOptimize(quota->Check(callers[rng.Uniform(64)]).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuotaCheckShardedCallers)->Threads(1)->Threads(4)->Threads(8);

// ------------------------------------------------------- consistent hash ---

void BM_ConsistentHashLookup(benchmark::State& state) {
  ConsistentHashRing ring;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    ring.AddNode("node-" + std::to_string(i));
  }
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.Lookup(rng.Next()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConsistentHashLookup)->Arg(8)->Arg(64)->Arg(1024);

// -------------------------------------------------------------- tracing ---

// The cost a span site adds to an UNSAMPLED request: no trace installed, so
// ScopedSpan must reduce to a thread-local read and a branch. This is the
// per-site overhead every query pays when sampling is off.
void BM_SpanDisabled(benchmark::State& state) {
  const int64_t allocs_before = Trace::Allocations();
  for (auto _ : state) {
    ScopedSpan span("bench.noop");
    benchmark::DoNotOptimize(span.active());
  }
  state.SetItemsProcessed(state.iterations());
  if (Trace::Allocations() != allocs_before) {
    state.SkipWithError("disabled span allocated");
  }
}
BENCHMARK(BM_SpanDisabled);

// Same site with a live trace installed: one mutex-guarded vector append per
// span open/close pair.
void BM_SpanEnabled(benchmark::State& state) {
  Trace trace(/*trace_id=*/1, /*start_ms=*/0);
  TraceContext ctx{&trace, kNoSpan};
  TraceInstallScope install(ctx);
  for (auto _ : state) {
    ScopedSpan span("rpc.transfer");
    benchmark::DoNotOptimize(span.active());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanEnabled);

// ---------------------------------------------------------------- write ---

void BM_ProfileAdd(benchmark::State& state) {
  Rng rng(6);
  ProfileData profile(kMillisPerMinute);
  TimestampMs now = kMillisPerDay;
  for (auto _ : state) {
    now += 100;
    profile
        .Add(now, static_cast<SlotId>(rng.Uniform(8)),
             static_cast<TypeId>(rng.Uniform(4)), rng.Uniform(1000) + 1,
             CountVector{1})
        .ok();
    benchmark::DoNotOptimize(profile.SliceCount());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileAdd);

// ---------------------------------------------------------------- smoke ---

// ctest gate (`bench_micro --smoke`): a warmed QueryScratch + reused result
// must execute the serving compute core with ZERO heap allocations per
// query. Runs in every build flavor, including the ASan/TSan tier-1 passes
// (the counting operator-new hook forwards to malloc, so the sanitizer
// interceptors still see every allocation that does happen).
int RunAllocSmoke() {
  if (!AllocHookInstalled()) {
    std::fprintf(stderr, "[smoke] FAIL: alloc hook not linked in\n");
    return 1;
  }

  ProfileData profile = BuildProfile(62, 40);
  const TimestampMs now = 101 * kMillisPerDay;

  QuerySpec topk;
  topk.slot = 1;
  topk.time_range = TimeRange::Current(2 * kMillisPerDay);
  topk.sort_by = SortBy::kActionCount;
  topk.k = 20;

  QuerySpec decay = topk;
  decay.decay.function = DecayFunction::kExponential;
  decay.decay.factor = 0.9;
  decay.decay.unit_ms = kMillisPerDay;

  int failures = 0;
  const std::pair<const char*, const QuerySpec*> cases[] = {{"topk", &topk},
                                                            {"decay", &decay}};
  for (const auto& [name, spec_ptr] : cases) {
    const QuerySpec& spec = *spec_ptr;
    QueryScratch scratch;
    QueryResult result;
    // Warm-up: the first queries grow every scratch buffer (and the result's
    // feature elements) to their high-water size.
    for (int i = 0; i < 8; ++i) {
      if (!ExecuteQueryInto(profile, spec, now, &scratch, &result).ok()) {
        std::fprintf(stderr, "[smoke] FAIL: %s query errored\n", name);
        return 1;
      }
    }
    if (result.features.empty()) {
      std::fprintf(stderr, "[smoke] FAIL: %s query returned no features\n",
                   name);
      return 1;
    }
    constexpr int kIters = 1000;
    const uint64_t allocs_before = ThreadAllocCount();
    for (int i = 0; i < kIters; ++i) {
      ExecuteQueryInto(profile, spec, now, &scratch, &result).ok();
    }
    const uint64_t allocs = ThreadAllocCount() - allocs_before;
    std::fprintf(stderr,
                 "[smoke] %-5s warm path: %d queries, %llu heap allocations, "
                 "%zu features/query\n",
                 name, kIters, static_cast<unsigned long long>(allocs),
                 result.features.size());
    if (allocs != 0) {
      std::fprintf(stderr,
                   "[smoke] FAIL: warm %s query path allocated (want 0)\n",
                   name);
      ++failures;
    }
  }

  // Zero-copy decode sanity: a raw-stored frame (incompressible payload)
  // must uncompress by aliasing, not by copying into the scratch.
  {
    Rng rng(11);
    std::string payload(512, '\0');
    for (auto& c : payload) c = static_cast<char>(rng.Next());
    std::string compressed;
    BlockCompress(payload, &compressed);
    std::string scratch;
    std::string_view view;
    bool aliased = false;
    if (!BlockUncompressView(compressed, &scratch, &view, &aliased).ok() ||
        view != payload) {
      std::fprintf(stderr, "[smoke] FAIL: BlockUncompressView roundtrip\n");
      return 1;
    }
    std::fprintf(stderr, "[smoke] raw-store decode aliased=%d\n",
                 aliased ? 1 : 0);
    if (!aliased) {
      std::fprintf(stderr,
                   "[smoke] FAIL: incompressible frame was not zero-copy\n");
      ++failures;
    }
  }

  if (failures == 0) std::fprintf(stderr, "[smoke] PASS\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace ips

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return ips::RunAllocSmoke();
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
