// Overload / brown-out harness: goodput under 1x/2x/5x offered load with the
// adaptive overload controller on vs off.
//
// Mechanics (everything in REAL time — SystemClock — so deadlines, queue
// waits and the burned KV latency share one time domain):
//   * One IpsInstance over a calibrated-latency MemKvStore, small cache so
//     most reads pay a real storage round trip.
//   * A recorded request trace (ingest/request_trace.h) drives arrivals: the
//     SAME users, read/write mix and Poisson offsets replay through every
//     configuration; the time axis is scaled to produce each overload
//     multiplier. The trace round-trips through its on-disk format so the
//     replay file format is exercised on every run.
//   * A dispatcher thread paces arrivals into a bounded FIFO served by K
//     worker threads — the explicit "server queue" the controller watches
//     via OnEnqueue/OnDequeue. Front-end admission calls Admit at arrival
//     (the controller's intended placement); the instance re-checks at
//     dequeue like any embedded caller.
//   * Capacity is self-calibrated: a sequential warm-up measures the mean
//     service time, and 1x load is set to ~70% of K workers' throughput, so
//     the bench stays honest under sanitizers or a loaded host.
//
// Goodput = requests that completed OK within their deadline. The controller
// must not help at 1x (nothing sheds) and must win big at 5x: without it the
// standing queue grows until every served request has already burned its
// deadline budget waiting (bufferbloat), with it the brown-out ladder keeps
// the queue near target so admitted requests finish in time.
//
// Emits BENCH_overload.json. `--smoke` runs a short trace and exits nonzero
// unless goodput(on) >= 2x goodput(off) at the 5x point with sheds observed.
#include <atomic>
#include <chrono>
#include <memory>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "ingest/request_trace.h"
#include "kvstore/mem_kv_store.h"
#include "server/ips_instance.h"
#include "server/overload.h"

namespace ips {
namespace {

constexpr const char* kTable = "user_profile";
constexpr int kWorkers = 4;
constexpr const char* kTracePath = "overload_trace.txt";

struct BenchConfig {
  size_t num_requests;     // trace length
  double trace_seconds;    // 1x replay duration
  size_t preload_events;
};

BenchConfig FullConfig() { return {6000, 3.0, 4000}; }
BenchConfig SmokeConfig() { return {1500, 1.0, 1500}; }

struct RunStats {
  std::string name;
  double multiplier = 1.0;
  int64_t offered = 0;
  int64_t goodput = 0;        // OK within deadline
  int64_t late_ok = 0;        // OK but past deadline (wasted work)
  int64_t shed_front = 0;     // shed at arrival by the front-end Admit
  int64_t shed_server = 0;    // shed/throttled inside the instance
  int64_t deadline_errors = 0;
  int64_t other_errors = 0;
  // Heap-held because Histogram is atomic-based (non-movable) and RunStats
  // travels by value.
  std::shared_ptr<Histogram> completion_us = std::make_shared<Histogram>();

  double GoodputPct() const {
    return offered > 0 ? 100.0 * static_cast<double>(goodput) /
                             static_cast<double>(offered)
                       : 0.0;
  }
};

std::unique_ptr<IpsInstance> MakeInstance(MemKvStore& kv, bool controller_on,
                                          int64_t target_queue_us,
                                          int64_t service_us) {
  IpsInstanceOptions options;
  options.isolation_enabled = false;
  options.start_background_threads = false;
  options.enable_load_broker = false;
  // Small enough that the Zipf hot set does NOT fit: most reads pay the
  // calibrated KV miss, so serving a doomed request burns real capacity
  // (with a hit-dominated cache the service time is so small that shedding
  // has nothing to save).
  options.cache.memory_limit_bytes = 32 << 10;
  options.compaction.num_threads = 1;
  options.overload.enabled = controller_on;
  options.overload.workers = kWorkers;
  options.overload.target_queue_us = target_queue_us;
  options.overload.default_service_us = service_us;
  return std::make_unique<IpsInstance>(options, &kv,
                                       SystemClock::Instance());
}

void Preload(IpsInstance& instance, WorkloadGenerator& workload,
             size_t num_events) {
  const TimestampMs now = SystemClock::Instance()->NowMs();
  std::vector<MultiAddItem> batch;
  for (size_t i = 0; i < num_events; ++i) {
    ProfileId uid;
    auto records = workload.NextAddBatch(
        now - static_cast<TimestampMs>(
                  workload.rng().Uniform(7 * kMillisPerDay)),
        &uid);
    batch.push_back({uid, std::move(records)});
    if (batch.size() == 128 || i + 1 == num_events) {
      instance.MultiAdd("preload", kTable, batch).ok();
      batch.clear();
    }
  }
  instance.FlushAll();
}

/// Mean sequential service time per request in microseconds, measured by
/// replaying a prefix of the ACTUAL trace on a throwaway instance with the
/// run's cache size. Probing the real request mix (same Zipf repeats, same
/// read/write split) is essential: synthetic cold probes overestimate the
/// per-request cost several-fold and the overload multipliers stop meaning
/// anything.
int64_t CalibrateServiceUs(MemKvStore& kv, const RequestTrace& trace,
                           const WorkloadOptions& workload_options,
                           const QuerySpec& base_spec) {
  auto instance = MakeInstance(kv, /*controller_on=*/false,
                               /*target_queue_us=*/5000,
                               /*service_us=*/2000);
  instance->CreateTable(DefaultTableSchema(kTable)).ok();
  WorkloadGenerator writes(workload_options);
  const TimestampMs now = SystemClock::Instance()->NowMs();
  const size_t probes = std::min<size_t>(300, trace.requests.size());
  const int64_t begin_ns = MonotonicNanos();
  for (size_t i = 0; i < probes; ++i) {
    const TraceRequest& req = trace.requests[i];
    if (req.is_write) {
      ProfileId ignored;
      std::vector<MultiAddItem> items;
      items.push_back({req.pid, writes.NextAddBatch(now, &ignored)});
      instance->MultiAdd("ingest", kTable, items).ok();
    } else {
      QuerySpec spec = base_spec;
      spec.slot = req.slot;
      spec.k = req.k;
      instance->Query("ranker", kTable, req.pid, spec).ok();
    }
  }
  return (MonotonicNanos() - begin_ns) / 1000 /
         static_cast<int64_t>(std::max<size_t>(probes, 1));
}

struct QueuedRequest {
  size_t trace_index = 0;
  int64_t arrival_ns = 0;
  TimestampMs deadline_ms = 0;  // server-side CallContext deadline
  int64_t deadline_ns = 0;      // goodput accounting (sub-ms precision)
};

RunStats RunOnce(const RequestTrace& trace, WorkloadGenerator& workload,
                 double multiplier, double base_qps, bool controller_on,
                 int64_t service_us, int64_t deadline_ms,
                 const QuerySpec& base_spec, size_t preload_events) {
  MemKvStore kv(bench::CalibratedKv());
  // Queue target ~2 service times: small enough that admitted requests keep
  // most of their deadline, large enough that 1x traffic never sheds.
  const int64_t target_queue_us = 2 * service_us;
  auto instance = MakeInstance(kv, controller_on, target_queue_us,
                               service_us);
  instance->CreateTable(DefaultTableSchema(kTable)).ok();
  WorkloadGenerator preload_workload(workload.options());
  Preload(*instance, preload_workload, preload_events);

  RunStats stats;
  stats.name = controller_on ? "controller_on" : "controller_off";
  stats.multiplier = multiplier;
  stats.offered = static_cast<int64_t>(trace.requests.size());

  // Pre-generate write payloads so workers do not contend on the generator.
  std::vector<std::vector<AddRecord>> write_records(trace.requests.size());
  {
    WorkloadGenerator writes(workload.options());
    const TimestampMs now = SystemClock::Instance()->NowMs();
    for (size_t i = 0; i < trace.requests.size(); ++i) {
      if (trace.requests[i].is_write) {
        ProfileId ignored;
        write_records[i] = writes.NextAddBatch(now, &ignored);
      }
    }
  }

  std::mutex qmu;
  std::condition_variable qcv;
  std::deque<QueuedRequest> queue;
  bool dispatch_done = false;

  std::mutex stats_mu;
  OverloadController& ctrl = instance->overload();

  auto worker_fn = [&] {
    for (;;) {
      QueuedRequest item;
      {
        std::unique_lock<std::mutex> lock(qmu);
        qcv.wait(lock, [&] { return !queue.empty() || dispatch_done; });
        if (queue.empty()) return;
        item = queue.front();
        queue.pop_front();
      }
      const int64_t waited_us = (MonotonicNanos() - item.arrival_ns) / 1000;
      ctrl.OnDequeue(waited_us);
      const TraceRequest& req = trace.requests[item.trace_index];
      CallContext ctx = CallContext::WithDeadline(item.deadline_ms);
      Status status;
      if (req.is_write) {
        std::vector<MultiAddItem> items;
        items.push_back({req.pid, write_records[item.trace_index]});
        auto result = instance->MultiAdd("ingest", kTable, items, ctx);
        status = result.ok() ? result->statuses[0] : result.status();
      } else {
        QuerySpec spec = base_spec;
        spec.slot = req.slot;
        spec.k = req.k;
        auto result = instance->Query("ranker", kTable, req.pid, spec, ctx);
        status = result.ok() ? Status::OK() : result.status();
      }
      const int64_t done_ns = MonotonicNanos();
      const int64_t done_us = (done_ns - item.arrival_ns) / 1000;
      // Judge goodput at nanosecond precision: under collapse, served
      // requests finish just past their deadline, and millisecond rounding
      // would flatter the no-controller run with work that arrived late.
      const bool in_deadline = done_ns <= item.deadline_ns;
      std::lock_guard<std::mutex> lock(stats_mu);
      if (status.ok()) {
        stats.completion_us->Record(done_us);
        if (in_deadline) {
          ++stats.goodput;
        } else {
          ++stats.late_ok;
        }
      } else if (status.IsThrottled()) {
        ++stats.shed_server;
      } else if (status.IsDeadlineExceeded()) {
        ++stats.deadline_errors;
      } else {
        ++stats.other_errors;
      }
    }
  };

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) workers.emplace_back(worker_fn);

  // Dispatcher: replay the trace's arrival offsets compressed by the
  // multiplier. trace offsets were recorded at trace-native qps; rescale so
  // the replayed rate is base_qps * multiplier.
  const double native_qps =
      trace.DurationUs() > 0
          ? 1e6 * static_cast<double>(trace.requests.size() - 1) /
                static_cast<double>(trace.DurationUs())
          : base_qps;
  const double time_scale = native_qps / (base_qps * multiplier);
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < trace.requests.size(); ++i) {
    const auto due =
        start + std::chrono::microseconds(static_cast<int64_t>(
                    static_cast<double>(trace.requests[i].offset_us) *
                    time_scale));
    std::this_thread::sleep_until(due);
    const TimestampMs now_ms = SystemClock::Instance()->NowMs();
    QueuedRequest item;
    item.trace_index = i;
    item.arrival_ns = MonotonicNanos();
    item.deadline_ms = now_ms + deadline_ms;
    item.deadline_ns = item.arrival_ns + deadline_ms * 1'000'000;
    // Front-end admission at arrival: a shed request never enters the
    // queue (that is the whole point — reject in nanoseconds, not after
    // queueing for most of its deadline).
    const TraceRequest& req = trace.requests[i];
    const RequestTier tier = ctrl.TierFor(
        req.is_write ? "ingest" : "ranker", req.is_write);
    const Status admit =
        ctrl.Admit(tier, /*cost=*/1.0,
                   CallContext::WithDeadline(item.deadline_ms), now_ms);
    if (!admit.ok()) {
      std::lock_guard<std::mutex> lock(stats_mu);
      ++stats.shed_front;
      continue;
    }
    ctrl.OnEnqueue();
    {
      std::lock_guard<std::mutex> lock(qmu);
      queue.push_back(item);
    }
    qcv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(qmu);
    dispatch_done = true;
  }
  qcv.notify_all();
  for (auto& t : workers) t.join();
  return stats;
}

void PrintRun(const RunStats& s) {
  std::printf(
      "  %-14s %5.0fx  offered=%-6lld goodput=%-6lld (%5.1f%%)  late=%-5lld "
      "shed_front=%-5lld shed_server=%-5lld dl_err=%-5lld err=%-4lld "
      "p50=%.1fms p99=%.1fms\n",
      s.name.c_str(), s.multiplier, static_cast<long long>(s.offered),
      static_cast<long long>(s.goodput), s.GoodputPct(),
      static_cast<long long>(s.late_ok), static_cast<long long>(s.shed_front),
      static_cast<long long>(s.shed_server),
      static_cast<long long>(s.deadline_errors),
      static_cast<long long>(s.other_errors),
      bench::UsToMs(s.completion_us->Percentile(0.5)),
      bench::UsToMs(s.completion_us->Percentile(0.99)));
}

void WriteJson(const std::vector<std::pair<RunStats, RunStats>>& points,
               double base_qps, int64_t service_us, int64_t deadline_ms,
               bool smoke) {
  std::FILE* f = std::fopen("BENCH_overload.json", "w");
  if (f == nullptr) {
    std::printf("could not write BENCH_overload.json\n");
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"overload\",\n  \"mode\": \"%s\",\n"
               "  \"workers\": %d,\n  \"base_qps\": %.1f,\n"
               "  \"service_us\": %lld,\n  \"deadline_ms\": %lld,\n"
               "  \"points\": [\n",
               smoke ? "smoke" : "full", kWorkers, base_qps,
               static_cast<long long>(service_us),
               static_cast<long long>(deadline_ms));
  for (size_t i = 0; i < points.size(); ++i) {
    const RunStats* runs[] = {&points[i].first, &points[i].second};
    std::fprintf(f, "    {\"multiplier\": %.0f,\n", points[i].first.multiplier);
    for (size_t r = 0; r < 2; ++r) {
      const RunStats& s = *runs[r];
      std::fprintf(f,
                   "     \"%s\": {\"offered\": %lld, \"goodput\": %lld, "
                   "\"goodput_pct\": %.2f, \"late_ok\": %lld, "
                   "\"shed_front\": %lld, \"shed_server\": %lld, "
                   "\"deadline_errors\": %lld, \"other_errors\": %lld, "
                   "\"p50_us\": %lld, \"p99_us\": %lld}%s\n",
                   s.name.c_str(), static_cast<long long>(s.offered),
                   static_cast<long long>(s.goodput), s.GoodputPct(),
                   static_cast<long long>(s.late_ok),
                   static_cast<long long>(s.shed_front),
                   static_cast<long long>(s.shed_server),
                   static_cast<long long>(s.deadline_errors),
                   static_cast<long long>(s.other_errors),
                   static_cast<long long>(s.completion_us->Percentile(0.5)),
                   static_cast<long long>(s.completion_us->Percentile(0.99)),
                   r == 0 ? "," : "");
    }
    std::fprintf(f, "    }%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_overload.json\n");
}

int Run(bool smoke) {
  const BenchConfig config = smoke ? SmokeConfig() : FullConfig();

  WorkloadOptions workload_options;
  workload_options.num_users = 4000;
  // Mild skew: with the default theta=0.99 the handful of hot users stay
  // resident even in the tiny cache, and their microsecond hits hand the
  // no-controller run lucky goodput right at the deadline boundary. The
  // overload comparison wants a read mix whose service time is honest.
  workload_options.user_zipf_theta = 0.5;
  workload_options.seed = 4242;
  WorkloadGenerator workload(workload_options);
  ProfileId spec_uid = 0;
  const QuerySpec base_spec = workload.NextQuerySpec(&spec_uid);

  // Record the arrival trace once, round-trip it through the replay file
  // format, and replay the loaded copy everywhere.
  TraceRecordOptions trace_options;
  trace_options.base_qps =
      static_cast<double>(config.num_requests) / config.trace_seconds;
  trace_options.num_requests = config.num_requests;
  RequestTrace recorded = RecordTrace(workload, trace_options);
  if (!recorded.SaveTo(kTracePath).ok()) {
    std::printf("FAILED to save trace to %s\n", kTracePath);
    return 1;
  }
  Result<RequestTrace> loaded = RequestTrace::LoadFrom(kTracePath);
  if (!loaded.ok() ||
      loaded->requests.size() != recorded.requests.size()) {
    std::printf("FAILED to reload trace from %s\n", kTracePath);
    return 1;
  }
  const RequestTrace& trace = *loaded;

  // Calibrate capacity against the real store + cache config by replaying a
  // trace prefix, so the multipliers mean the same thing under sanitizers or
  // a loaded host.
  MemKvStore calibration_kv(bench::CalibratedKv());
  {
    WorkloadGenerator preload_workload(workload_options);
    auto calibration_instance =
        MakeInstance(calibration_kv, false, 5000, 2000);
    calibration_instance->CreateTable(DefaultTableSchema(kTable)).ok();
    Preload(*calibration_instance, preload_workload, config.preload_events);
  }
  const int64_t service_us =
      CalibrateServiceUs(calibration_kv, trace, workload_options, base_spec);
  const double capacity_qps =
      1e6 * kWorkers / static_cast<double>(std::max<int64_t>(service_us, 1));
  const double base_qps = 0.7 * capacity_qps;
  // Generous deadline: ~20 service times (>=10ms). The off-run fails it
  // anyway once the standing queue forms; the on-run keeps the queue at
  // ~2 service times, far inside it.
  const int64_t deadline_ms =
      std::max<int64_t>(10, 20 * service_us / 1000);

  std::printf(
      "=== Overload control: goodput with adaptive admission on vs off ===\n"
      "workers=%d service=%lldus capacity~%.0f qps base(1x)=%.0f qps "
      "deadline=%lldms trace=%zu requests\n",
      kWorkers, static_cast<long long>(service_us), capacity_qps, base_qps,
      static_cast<long long>(deadline_ms), config.num_requests);

  const std::vector<double> multipliers =
      smoke ? std::vector<double>{1.0, 5.0}
            : std::vector<double>{1.0, 2.0, 5.0};
  std::vector<std::pair<RunStats, RunStats>> points;
  for (double m : multipliers) {
    std::printf("\n--- %.0fx offered load (%.0f qps) ---\n", m,
                base_qps * m);
    RunStats on = RunOnce(trace, workload, m, base_qps, true, service_us,
                          deadline_ms, base_spec, config.preload_events);
    RunStats off = RunOnce(trace, workload, m, base_qps, false, service_us,
                           deadline_ms, base_spec, config.preload_events);
    PrintRun(on);
    PrintRun(off);
    points.emplace_back(std::move(on), std::move(off));
  }

  WriteJson(points, base_qps, service_us, deadline_ms, smoke);

  // Shape gate at the highest multiplier: the controller must at least
  // double goodput and must actually shed (no vacuous pass where both
  // configurations sail through).
  const RunStats& peak_on = points.back().first;
  const RunStats& peak_off = points.back().second;
  const bool ratio_ok =
      peak_on.goodput >= 2 * std::max<int64_t>(peak_off.goodput, 1);
  const bool shed_ok = peak_on.shed_front + peak_on.shed_server > 0;
  std::printf(
      "\nshape checks @%.0fx:\n"
      "  goodput: on=%lld off=%lld (need on >= 2x off)\n"
      "  sheds:   front=%lld server=%lld (need > 0)\n%s\n",
      peak_on.multiplier, static_cast<long long>(peak_on.goodput),
      static_cast<long long>(peak_off.goodput),
      static_cast<long long>(peak_on.shed_front),
      static_cast<long long>(peak_on.shed_server),
      ratio_ok && shed_ok ? "shape OK" : "SHAPE VIOLATION");
  return ratio_ok && shed_ok ? 0 : 1;
}

}  // namespace
}  // namespace ips

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int rc = ips::Run(smoke);
  // The full run is a report; only the smoke gate fails the process.
  return smoke ? rc : 0;
}
