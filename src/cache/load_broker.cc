#include "cache/load_broker.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "common/trace.h"

namespace ips {

LoadBroker::LoadBroker(LoadBrokerOptions options, BrokerFetchFn fetch,
                       Clock* clock, MetricsRegistry* metrics)
    : options_(options), fetch_(std::move(fetch)), clock_(clock) {
  if (options_.max_batch_pids == 0) options_.max_batch_pids = 1;
  if (metrics != nullptr) {
    // Registered eagerly so the names are live (and the docs-completeness
    // test sees them) even before the first coalesced load.
    single_flight_hits_ = metrics->GetCounter("broker.single_flight_hits");
    cross_request_dedup_ = metrics->GetCounter("broker.cross_request_dedup");
    window_batches_ = metrics->GetCounter("broker.window_batches");
    deadline_detaches_ = metrics->GetCounter("broker.deadline_detaches");
    batch_pids_ = metrics->GetHistogram("broker.batch_pids");
  }
}

LoadBroker::~LoadBroker() = default;

size_t LoadBroker::InFlightCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_.size();
}

void LoadBroker::CollectAndDispatch(std::unique_lock<std::mutex>& lock,
                                    TimestampMs deadline_ms) {
  // Window wait: linger for other requests' misses. An already-expired
  // collector skips the window but still dispatches — followers may have
  // attached to our pending entries and depend on the load completing.
  const bool expired =
      deadline_ms != kNoDeadline && clock_->NowMs() >= deadline_ms;
  if (options_.window_micros > 0 && !expired &&
      pending_.size() < options_.max_batch_pids) {
    ScopedSpan window_span("server.coalesce");
    const auto wall_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(options_.window_micros);
    while (pending_.size() < options_.max_batch_pids) {
      if (cv_.wait_until(lock, wall_deadline) == std::cv_status::timeout) {
        break;
      }
    }
  }

  // Claim the entire pending set — ours plus every pid other requests
  // parked during the window. Taking everything (not just max_batch_pids)
  // keeps the invariant that no pending entry is left without a collector;
  // oversized sets are split into multiple fetch calls below.
  std::vector<ProfileId> batch;
  {
    ScopedSpan claim_span("server.coalesce");
    batch = std::move(pending_);
    pending_.clear();
    for (ProfileId pid : batch) {
      inflight_[pid]->state = InFlight::State::kFetching;
    }
    collector_active_ = false;
    // Wake followers so their wait reattributes from server.coalesce to
    // kv.load.shared, and so a new arrival can elect the next collector.
    cv_.notify_all();
  }

  std::vector<ProfileId> chunk;
  std::vector<bool> degraded;
  for (size_t begin = 0; begin < batch.size();
       begin += options_.max_batch_pids) {
    const size_t end = std::min(batch.size(), begin + options_.max_batch_pids);
    {
      ScopedSpan chunk_span("server.coalesce");
      chunk.assign(batch.begin() + begin, batch.begin() + end);
      degraded.assign(chunk.size(), false);
    }
    lock.unlock();
    // The storage round trip every attached waiter shares. Runs outside mu_
    // on this request thread, so kv.load / codec.decode spans attribute to
    // the collector's trace like any inline load.
    std::vector<Result<ProfileData>> fetched = fetch_(chunk, &degraded);
    // Publication — re-acquiring mu_ (contention included) and fanning the
    // results into the in-flight entries — opens its span before the lock so
    // the wait charges to coalescing, not to an untraced gap.
    ScopedSpan publish_span("server.coalesce");
    lock.lock();
    if (window_batches_ != nullptr) window_batches_->Increment();
    if (batch_pids_ != nullptr) {
      batch_pids_->Record(static_cast<int64_t>(chunk.size()));
    }
    for (size_t i = 0; i < chunk.size(); ++i) {
      auto it = inflight_.find(chunk[i]);
      InFlightPtr entry = it->second;
      // Leave the table first: a miss arriving after publication must start
      // a fresh load, not observe a completed entry.
      inflight_.erase(it);
      entry->degraded = i < degraded.size() && degraded[i];
      if (i < fetched.size()) {
        entry->result.emplace(std::move(fetched[i]));
      } else {
        entry->result.emplace(
            Status::Internal("batch loader returned a short result list"));
      }
      entry->state = InFlight::State::kDone;
    }
    cv_.notify_all();
  }
}

std::vector<Result<ProfileData>> LoadBroker::Load(
    const std::vector<ProfileId>& pids, std::vector<bool>* out_degraded,
    TimestampMs deadline_ms) {
  // Same-call duplicates (callers normally pre-dedup) must not count as
  // cross-request coalescing. Thread-local so the steady state allocates
  // nothing.
  thread_local std::unordered_set<ProfileId> seen_in_call;

  std::vector<Result<ProfileData>> results;
  std::vector<InFlightPtr> slots;
  std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
  size_t created = 0;
  {
    // Broker bookkeeping — slot setup, taking mu_ (contention included) and
    // joining or creating in-flight entries — is coalescing work; attributing
    // it to server.coalesce keeps the traced stage sum covering the full
    // path.
    ScopedSpan attach_span("server.coalesce");
    out_degraded->assign(pids.size(), false);
    if (pids.empty()) return results;
    results.reserve(pids.size());
    seen_in_call.clear();
    slots.reserve(pids.size());
    lock.lock();

    // Attach: join the in-flight load for each pid, creating pending entries
    // for pids nobody is loading yet.
    for (ProfileId pid : pids) {
      const bool first_in_call = seen_in_call.insert(pid).second;
      auto [it, inserted] = inflight_.try_emplace(pid);
      if (inserted) {
        it->second = std::make_shared<InFlight>();
        pending_.push_back(pid);
        ++created;
      } else if (first_in_call) {
        if (it->second->state == InFlight::State::kFetching) {
          // The round trip is already on the wire; ride it.
          if (single_flight_hits_ != nullptr) single_flight_hits_->Increment();
        } else {
          // Still pending: merged into a window another request opened.
          if (cross_request_dedup_ != nullptr) {
            cross_request_dedup_->Increment();
          }
        }
      }
      ++it->second->waiters;
      slots.push_back(it->second);
    }

    // A creation that fills the active collector's window must wake it so
    // the batch closes early — its window wait only re-checks the pending
    // count on notification.
    if (created > 0 && collector_active_ &&
        pending_.size() >= options_.max_batch_pids) {
      cv_.notify_all();
    }
  }

  // Collector election: pending entries always have exactly one active
  // collector. If none is active, every pending pid was created just now by
  // us (under this same lock hold), so the duty is ours.
  if (created > 0 && !collector_active_) {
    collector_active_ = true;
    CollectAndDispatch(lock, deadline_ms);
  }

  const auto any_in_state = [&slots](InFlight::State state) {
    for (const auto& entry : slots) {
      if (entry->state == state) return true;
    }
    return false;
  };

  // Follower waits, attributed per phase. Phase 1: a collector is still
  // gathering the window our pids are parked in. Phase 2: the shared fetch
  // is on the wire on another thread. Either wait ends early when the
  // deadline passes.
  if (any_in_state(InFlight::State::kPending)) {
    ScopedSpan coalesce_span("server.coalesce");
    WaitUntil(lock, deadline_ms,
              [&] { return !any_in_state(InFlight::State::kPending); });
  }
  if (any_in_state(InFlight::State::kFetching)) {
    ScopedSpan shared_span("kv.load.shared");
    WaitUntil(lock, deadline_ms,
              [&] { return !any_in_state(InFlight::State::kFetching); });
  }

  // Collect, fanning the shared result — including its degraded flag — to
  // this waiter. A pid still unresolved here means our deadline expired: we
  // detach (drop our waiter count) and fail only our own slot; the entry
  // stays healthy for the collector and the other waiters. Fan-out copies
  // are coalescing overhead, so they report as server.coalesce too.
  ScopedSpan collect_span("server.coalesce");
  int64_t detached = 0;
  for (size_t i = 0; i < pids.size(); ++i) {
    InFlight& entry = *slots[i];
    --entry.waiters;
    if (entry.state != InFlight::State::kDone) {
      ++detached;
      results.emplace_back(
          Status::DeadlineExceeded("deadline expired during shared load"));
      continue;
    }
    (*out_degraded)[i] = entry.degraded;
    if (entry.waiters == 0 && entry.result.has_value()) {
      // Last waiter out takes the value without a copy (the common
      // uncontended case stays move-only end to end).
      results.push_back(std::move(*entry.result));
      entry.result.reset();
    } else {
      results.push_back(*entry.result);
    }
  }
  if (detached > 0 && deadline_detaches_ != nullptr) {
    deadline_detaches_->Increment(detached);
  }
  return results;
}

}  // namespace ips
