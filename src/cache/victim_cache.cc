#include "cache/victim_cache.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"

namespace ips {

namespace {

size_t RoundUpPow2(size_t n) {
  if (n == 0) return 1;
  while ((n & (n - 1)) != 0) ++n;
  return n;
}

}  // namespace

VictimCache::VictimCache(VictimCacheOptions options, MetricsRegistry* metrics)
    : options_(options) {
  options_.shards = RoundUpPow2(std::max<size_t>(1, options_.shards));
  options_.sketch_width = RoundUpPow2(std::max<size_t>(64, options_.sketch_width));
  sketch_mask_ = options_.sketch_width - 1;
  per_shard_budget_ = options_.memory_limit_bytes / options_.shards;
  for (size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  sketch_ = std::vector<std::atomic<uint8_t>>(kSketchRows *
                                              options_.sketch_width);
  for (auto& c : sketch_) c.store(0, std::memory_order_relaxed);
  if (metrics != nullptr) {
    hit_ = metrics->GetCounter("cache_l2.hit");
    miss_ = metrics->GetCounter("cache_l2.miss");
    admitted_ = metrics->GetCounter("cache_l2.admitted");
    rejected_ = metrics->GetCounter("cache_l2.rejected");
    evicted_ = metrics->GetCounter("cache_l2.evicted");
    bytes_gauge_ = metrics->GetGauge("cache_l2.bytes");
  }
}

size_t VictimCache::ShardIndex(ProfileId pid) const {
  // A different bit range than the sketch rows so a shard's population does
  // not correlate with its pids' sketch slots.
  return (Mix64(pid) >> 7) & (options_.shards - 1);
}

size_t VictimCache::SketchIndex(ProfileId pid, size_t row) const {
  // Derive per-row hashes from one Mix64 by re-mixing with a row salt; rows
  // must be pairwise independent-ish for the count-min minimum to work.
  const uint64_t h = Mix64(pid ^ (0x9e3779b97f4a7c15ULL * (row + 1)));
  return row * options_.sketch_width + (h & sketch_mask_);
}

void VictimCache::RecordAccess(ProfileId pid) {
  for (size_t row = 0; row < kSketchRows; ++row) {
    std::atomic<uint8_t>& c = sketch_[SketchIndex(pid, row)];
    uint8_t cur = c.load(std::memory_order_relaxed);
    // Saturating bump; contended CAS losses are fine (approximate counter).
    if (cur < 255) {
      c.compare_exchange_weak(cur, static_cast<uint8_t>(cur + 1),
                              std::memory_order_relaxed);
    }
  }
  if (options_.sketch_aging_window == 0) return;
  const uint64_t ops = sketch_ops_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (ops % options_.sketch_aging_window == 0) AgeSketch();
}

void VictimCache::AgeSketch() {
  std::unique_lock<std::mutex> lock(aging_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return;  // another thread is already aging
  for (auto& c : sketch_) {
    uint8_t cur = c.load(std::memory_order_relaxed);
    c.store(static_cast<uint8_t>(cur >> 1), std::memory_order_relaxed);
  }
}

uint32_t VictimCache::EstimateFrequency(ProfileId pid) const {
  uint32_t est = 255;
  for (size_t row = 0; row < kSketchRows; ++row) {
    est = std::min<uint32_t>(
        est, sketch_[SketchIndex(pid, row)].load(std::memory_order_relaxed));
  }
  return est;
}

bool VictimCache::WouldAdmit(ProfileId pid) const {
  return EstimateFrequency(pid) >= options_.admit_min_frequency;
}

bool VictimCache::Put(ProfileId pid, std::string encoded, bool degraded) {
  if (encoded.size() > options_.max_entry_bytes ||
      encoded.size() > per_shard_budget_ || !WouldAdmit(pid)) {
    if (rejected_ != nullptr) rejected_->Increment();
    return false;
  }
  Shard& shard = *shards_[ShardIndex(pid)];
  size_t freed = 0;
  size_t evictions = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.map.try_emplace(pid);
    if (!inserted) {
      // Renewal: replace the bytes in place, refresh recency.
      shard.bytes -= it->second.encoded.size();
      shard.bytes += encoded.size();
      const size_t old_size = it->second.encoded.size();
      it->second.encoded = std::move(encoded);
      it->second.degraded = degraded;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      if (it->second.encoded.size() >= old_size) {
        memory_bytes_.fetch_add(it->second.encoded.size() - old_size,
                                std::memory_order_relaxed);
      } else {
        memory_bytes_.fetch_sub(old_size - it->second.encoded.size(),
                                std::memory_order_relaxed);
      }
    } else {
      shard.lru.push_front(pid);
      it->second.lru_it = shard.lru.begin();
      shard.bytes += encoded.size();
      memory_bytes_.fetch_add(encoded.size(), std::memory_order_relaxed);
      it->second.encoded = std::move(encoded);
      it->second.degraded = degraded;
    }
    // Make room: the shard's own LRU tail ages out. The new entry fits by
    // the per-shard size check above, so this terminates with it resident.
    while (shard.bytes > per_shard_budget_ && !shard.lru.empty()) {
      const ProfileId victim = shard.lru.back();
      if (victim == pid) break;  // never evict the entry just demoted
      auto vit = shard.map.find(victim);
      shard.lru.pop_back();
      if (vit == shard.map.end()) continue;
      freed += vit->second.encoded.size();
      shard.bytes -= vit->second.encoded.size();
      shard.map.erase(vit);
      ++evictions;
    }
  }
  if (freed > 0) memory_bytes_.fetch_sub(freed, std::memory_order_relaxed);
  if (admitted_ != nullptr) admitted_->Increment();
  if (evictions > 0 && evicted_ != nullptr) {
    evicted_->Increment(static_cast<int64_t>(evictions));
  }
  if (bytes_gauge_ != nullptr) {
    bytes_gauge_->Set(static_cast<int64_t>(MemoryBytes()));
  }
  return true;
}

bool VictimCache::Take(ProfileId pid, std::string* encoded, bool* degraded) {
  Shard& shard = *shards_[ShardIndex(pid)];
  size_t freed = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(pid);
    if (it == shard.map.end()) {
      if (miss_ != nullptr) miss_->Increment();
      return false;
    }
    freed = it->second.encoded.size();
    *encoded = std::move(it->second.encoded);
    *degraded = it->second.degraded;
    shard.bytes -= freed;
    shard.lru.erase(it->second.lru_it);
    shard.map.erase(it);
  }
  memory_bytes_.fetch_sub(freed, std::memory_order_relaxed);
  if (hit_ != nullptr) hit_->Increment();
  if (bytes_gauge_ != nullptr) {
    bytes_gauge_->Set(static_cast<int64_t>(MemoryBytes()));
  }
  return true;
}

void VictimCache::Erase(ProfileId pid) {
  Shard& shard = *shards_[ShardIndex(pid)];
  size_t freed = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(pid);
    if (it == shard.map.end()) return;
    freed = it->second.encoded.size();
    shard.bytes -= freed;
    shard.lru.erase(it->second.lru_it);
    shard.map.erase(it);
  }
  memory_bytes_.fetch_sub(freed, std::memory_order_relaxed);
  if (bytes_gauge_ != nullptr) {
    bytes_gauge_->Set(static_cast<int64_t>(MemoryBytes()));
  }
}

size_t VictimCache::EntryCount() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

}  // namespace ips
