// VictimCache: the compressed L2 tier between GCache and the persister.
//
// A profile evicted from the L1 (GCache) no longer has to fall all the way
// back to a KV round trip: after its dirty state is written back, the entry
// is *demoted* here as encoded bytes — the same compressed block format the
// persister stores — instead of being dropped. A later miss probes this tier
// first and, on a hit, *promotes* the profile back into L1 by decoding the
// bytes, paying a decode instead of a storage round trip. The tiers are
// exclusive: a promotion removes the bytes from L2 (Take), so a profile is
// resident in at most one tier and memory is never double-counted.
//
// Admission is frequency-based (the TinyLFU idea): a small count-min sketch
// tracks per-pid access frequency, and a demotion is only admitted when the
// pid's estimated frequency clears a floor. One-touch scan traffic — pids
// seen once, evicted, never asked for again — therefore cannot pollute the
// tier or evict bytes that will actually be re-read. The sketch ages by
// periodic halving so yesterday's hot set decays.
//
// This layer is deliberately byte-level: it never includes the codec. The
// GCache owner injects encode/decode callbacks (see GCache::set_victim_cache)
// so the tier reuses whatever block format the persister is configured with.
#ifndef IPS_CACHE_VICTIM_CACHE_H_
#define IPS_CACHE_VICTIM_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "core/types.h"

namespace ips {

struct VictimCacheOptions {
  /// Shard count for the byte store. Power of two.
  size_t shards = 8;
  /// Total budget for stored encoded bytes across all shards. The per-shard
  /// budget is the even split; a shard at budget evicts its own LRU tail to
  /// make room (demoted-then-forgotten bytes age out locally).
  size_t memory_limit_bytes = 64 << 20;
  /// Demotions whose encoded size exceeds this are never admitted — one
  /// outsized profile must not wipe a whole shard of useful victims.
  size_t max_entry_bytes = 4 << 20;
  /// Minimum estimated access frequency for admission. Demotions of pids the
  /// sketch has seen fewer times than this are rejected (scan resistance).
  /// A floor of 0 or 1 admits everything the size checks allow.
  uint32_t admit_min_frequency = 2;
  /// Count-min sketch width per row (counters). Rounded up to a power of
  /// two. Depth is fixed at 4 rows.
  size_t sketch_width = 4096;
  /// Recorded accesses between sketch aging passes (every counter halves).
  /// Keeps the frequency estimate a sliding window rather than a lifetime
  /// total. 0 disables aging (tests that want exact counts).
  uint64_t sketch_aging_window = 1 << 17;
};

/// Sharded store of encoded (compressed) profile bytes with frequency-based
/// admission. Thread-safe. See the file comment for the tiering contract.
class VictimCache {
 public:
  explicit VictimCache(VictimCacheOptions options,
                       MetricsRegistry* metrics = nullptr);

  VictimCache(const VictimCache&) = delete;
  VictimCache& operator=(const VictimCache&) = delete;

  /// Records one access for the admission sketch. The L1 calls this for
  /// every lookup (hit or miss): admission quality depends on total access
  /// frequency, not miss frequency — a profile that is hot *because* it is
  /// resident in L1 must still look hot when it is eventually demoted.
  void RecordAccess(ProfileId pid);

  /// Cheap admission pre-check: whether a demotion of `pid` would currently
  /// clear the frequency floor. The eviction path uses it to skip the encode
  /// work for victims that Put would reject anyway. Advisory — Put repeats
  /// the check (plus the size checks) authoritatively.
  bool WouldAdmit(ProfileId pid) const;

  /// Demotes encoded bytes into the tier. Returns true when admitted; false
  /// when rejected by the frequency floor or the size caps. Replaces any
  /// bytes already stored for `pid`. `degraded` rides along so a profile
  /// loaded from a fallback replica keeps its staleness mark through a
  /// demote/promote round trip.
  bool Put(ProfileId pid, std::string encoded, bool degraded);

  /// Promotion lookup: on hit, moves the stored bytes out into `*encoded`
  /// (removing the tier's copy — exclusive tiers), sets `*degraded`, and
  /// returns true. On miss returns false and leaves the outputs untouched.
  bool Take(ProfileId pid, std::string* encoded, bool* degraded);

  /// Drops any stored bytes for `pid` (Invalidate: the profile must leave
  /// every tier, or stale bytes would serve a later miss).
  void Erase(ProfileId pid);

  /// Sketch frequency estimate for `pid` (upper bound, as count-min always
  /// is). Exposed for tests and admission introspection.
  uint32_t EstimateFrequency(ProfileId pid) const;

  size_t EntryCount() const;
  size_t MemoryBytes() const {
    return memory_bytes_.load(std::memory_order_relaxed);
  }

  const VictimCacheOptions& options() const { return options_; }

 private:
  struct Shard {
    struct Slot {
      std::string encoded;
      bool degraded = false;
      std::list<ProfileId>::iterator lru_it;
    };
    mutable std::mutex mu;
    std::unordered_map<ProfileId, Slot> map;
    /// Most-recently demoted/renewed at front; eviction pops the back.
    std::list<ProfileId> lru;
    size_t bytes = 0;  // guarded by mu
  };

  size_t ShardIndex(ProfileId pid) const;
  /// Row-local sketch slot for `pid` in row `row`.
  size_t SketchIndex(ProfileId pid, size_t row) const;
  /// Halves every sketch counter (the aging pass). Serialized by aging_mu_;
  /// concurrent RecordAccess bumps proceed — the sketch is approximate by
  /// construction and a bump lost to a concurrent halving is noise.
  void AgeSketch();

  VictimCacheOptions options_;
  size_t per_shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  static constexpr size_t kSketchRows = 4;
  size_t sketch_mask_ = 0;
  /// kSketchRows rows of sketch_width counters, flattened. Saturating at
  /// 255: admission floors are tiny, so one byte per counter is plenty and
  /// keeps the whole sketch a few cache lines per row.
  std::vector<std::atomic<uint8_t>> sketch_;
  std::atomic<uint64_t> sketch_ops_{0};
  std::mutex aging_mu_;

  std::atomic<size_t> memory_bytes_{0};

  Counter* hit_ = nullptr;
  Counter* miss_ = nullptr;
  Counter* admitted_ = nullptr;
  Counter* rejected_ = nullptr;
  Counter* evicted_ = nullptr;
  Gauge* bytes_gauge_ = nullptr;
};

}  // namespace ips

#endif  // IPS_CACHE_VICTIM_CACHE_H_
