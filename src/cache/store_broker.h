// StoreBroker: server-side coalescing stage for the dirty-flush store path —
// the write-side mirror of LoadBroker (ROADMAP open item "write-side
// coalescing to match the read broker"). GCache's batched flush amortizes
// storage round trips *within* one dirty-shard group; the remaining waste is
// *across* groups — concurrent flush passes (multiple flush threads, a
// FlushAll storm at shutdown or failover) each pay their own
// KvStore::MultiSet, and a hot dirty pid re-snapshotted by a second pass
// while its previous store is still on the wire is written twice. The broker
// sits between GCache::FlushShard and the persister's batch store and
// removes both:
//
//   * window batching — flush groups submitted within a small collection
//     window, typically from different dirty shards on different flush
//     threads, merge into ONE Persister::StoreBatch / KvStore::MultiSet
//     round trip (chunked at max_batch_pids);
//   * single-flight store-backs — an in-flight table keyed by pid: a second
//     flush of a pid whose store is already on the wire piggybacks on the
//     pending write when its snapshot epoch is unchanged (the in-flight
//     bytes are identical), and requeues behind it when the epoch moved on
//     (the newer snapshot must still be written, but never concurrently with
//     the older one, so the store sees writes for one pid in epoch order).
//
// Scheduling is leader/follower with no background thread, exactly like the
// read broker: the first submitter to create a pending entry becomes the
// collector, waits out the window on its own flush thread, then dispatches
// the whole accumulated pending set. Per-pid statuses fan back to each
// originating submission, so a partial MultiSet failure keeps GCache's
// per-status requeue semantics, and the cache's mutation-epoch recheck after
// Store() returns guards lost updates exactly as before — the broker only
// decides *which snapshot bytes* ride *which round trip*.
//
// There is no deadline detach (flush passes have no deadlines): a submitter
// always blocks until every one of its pids resolves, which is also what
// keeps the borrowed ProfileData snapshot pointers valid for the duration of
// the shared store.
//
// Trace attribution (bench_table2_latency's stage-sum self-check): time
// spent in the collection window or on broker bookkeeping reports as
// `server.store_coalesce`; time spent waiting on a store another thread is
// driving reports as `kv.store.shared`. The collector's own store reports
// the usual `kv.store` from the layers doing the work.
#ifndef IPS_CACHE_STORE_BROKER_H_
#define IPS_CACHE_STORE_BROKER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"
#include "core/profile_data.h"
#include "core/types.h"

namespace ips {

struct StoreBrokerOptions {
  /// Collection window in wall-clock microseconds: how long the collector
  /// lingers for other flush threads' groups before dispatching. Zero
  /// dispatches immediately (single-flight only, no cross-shard batching).
  /// Flush passes run on background threads, so the write window can afford
  /// to be wider than the read broker's.
  int64_t window_micros = 500;
  /// The window closes early once this many unique pids are pending, and
  /// dispatches larger than this are split into multiple store calls.
  size_t max_batch_pids = 256;
};

/// Downstream store: same shape as GCache's BatchFlushFn (statuses align
/// with the pid list). Typically Persister::StoreBatch.
using BrokerStoreFn = std::function<std::vector<Status>(
    const std::vector<ProfileId>&, const std::vector<const ProfileData*>&)>;

/// Thread-safe. Callers must quiesce (no Store in flight) before
/// destruction, the same lifetime contract as the cache above it.
class StoreBroker {
 public:
  StoreBroker(StoreBrokerOptions options, BrokerStoreFn store, Clock* clock,
              MetricsRegistry* metrics = nullptr);
  ~StoreBroker();

  StoreBroker(const StoreBroker&) = delete;
  StoreBroker& operator=(const StoreBroker&) = delete;

  /// Stores the given snapshots, coalescing with every other concurrent
  /// Store call. `profiles[i]` is a borrowed snapshot of pid `pids[i]` taken
  /// at mutation epoch `epochs[i]`; the pointers must stay valid until the
  /// call returns (it blocks until every pid resolves, so stack-owned
  /// snapshots — GCache's flush groups — are fine). Returned statuses align
  /// with `pids`, exactly like the underlying store: a batch can partially
  /// fail, and each originating submission sees its own pids' outcomes.
  ///
  /// Duplicate-pid handling against the in-flight table:
  ///   * entry still pending (window open): the submissions merge; the
  ///     higher-epoch snapshot rides, both wait on the one write.
  ///   * entry storing, epoch unchanged or older than the in-flight write:
  ///     piggyback — ride the pending write's status (single-flight).
  ///   * entry storing, our epoch newer: wait for the in-flight write to
  ///     complete, then resubmit the newer snapshot (requeue).
  std::vector<Status> Store(const std::vector<ProfileId>& pids,
                            const std::vector<const ProfileData*>& profiles,
                            const std::vector<uint64_t>& epochs);

  /// Pids currently pending or storing (tests: the table must drain clean).
  size_t InFlightCount() const;

  const StoreBrokerOptions& options() const { return options_; }

 private:
  /// One coalesced store-back. Created pending, moved to storing when a
  /// collector claims it, done when the store publishes. Submitters hold
  /// shared_ptrs, so the entry outlives its removal from the in-flight
  /// table.
  struct InFlight {
    enum class State { kPending, kStoring, kDone };
    State state = State::kPending;  // guarded by mu_
    /// Epoch of the snapshot this entry will write (the newest merged in
    /// while pending). Guarded by mu_.
    uint64_t epoch = 0;
    /// Borrowed from the submitter whose snapshot rides; that submitter is
    /// blocked until this entry is done, so the pointer stays valid across
    /// the unlocked store. Guarded by mu_ until claimed.
    const ProfileData* profile = nullptr;
    /// Submission id of the creator (cross-shard merge detection). Guarded
    /// by mu_.
    uint64_t submission = 0;
    /// Unset until state == kDone.
    std::optional<Status> status;  // guarded by mu_
  };
  using InFlightPtr = std::shared_ptr<InFlight>;

  /// Collector role: wait out the window, then dispatch the entire pending
  /// set in max_batch_pids chunks. Called with `lock` held; returns with it
  /// held.
  void CollectAndDispatch(std::unique_lock<std::mutex>& lock);

  StoreBrokerOptions options_;
  BrokerStoreFn store_;
  Clock* clock_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Every pending or storing store-back. Entries leave the table the
  /// moment their status is published, so later flushes start fresh.
  std::unordered_map<ProfileId, InFlightPtr> inflight_;
  /// Pids created but not yet claimed by a collector, in arrival order.
  std::vector<ProfileId> pending_;
  /// Whether a collector is currently gathering `pending_`. Invariant: a
  /// non-empty pending set always has an active collector, so no pending
  /// entry can stall.
  bool collector_active_ = false;
  /// Monotonic id per Store call, for cross-shard merge accounting.
  uint64_t next_submission_ = 0;

  // Cached metric handles (null when no registry is wired).
  Counter* single_flight_hits_ = nullptr;
  Counter* cross_shard_batches_ = nullptr;
  Counter* requeued_pids_ = nullptr;
  Histogram* batch_pids_ = nullptr;
};

}  // namespace ips

#endif  // IPS_CACHE_STORE_BROKER_H_
