// LoadBroker: server-side coalescing stage for the cache-miss load path
// (ROADMAP open item "cross-request batching"; cf. Bilibili's "Enhanced
// Batch Query Architecture", PAPERS.md). GCache batching amortizes storage
// round trips *within* one request; under Zipfian celebrity-user traffic the
// remaining waste is *across* requests — two concurrent misses for the same
// hot pid pay two kv.load round trips, and misses from different requests
// arriving microseconds apart each pay their own MultiGet. The broker sits
// between GCache and the persister's batch loader and removes both:
//
//   * single-flight — an in-flight table keyed by pid: concurrent misses for
//     the same profile attach to the one pending load, and the decoded
//     result (and its degraded flag) fans back to every attached waiter;
//   * window batching — misses arriving within a small collection window
//     merge into ONE Persister::LoadBatch / KvStore::MultiGet round trip,
//     with duplicate pids deduped across requests.
//
// Scheduling is leader/follower with no background thread: the first caller
// to create a pending entry becomes the collector, waits out the window on
// its own request thread, then dispatches the whole accumulated pending set
// (its own pids plus everyone else's). Followers just wait on the shared
// entries. A waiter whose deadline expires detaches — its unfinished pids
// fail with DeadlineExceeded — WITHOUT cancelling or poisoning the shared
// load; the collector still completes it for the remaining waiters.
//
// Trace attribution (bench_table2_latency's stage-sum self-check): time a
// waiter spends in the collection window reports as `server.coalesce`, time
// spent waiting on a fetch another thread is driving reports as
// `kv.load.shared`. The collector's own fetch reports the usual `kv.load` /
// `codec.decode` from the layers doing the work, so the disjoint-stage sum
// stays complete on every thread.
#ifndef IPS_CACHE_LOAD_BROKER_H_
#define IPS_CACHE_LOAD_BROKER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"
#include "core/profile_data.h"
#include "core/types.h"

namespace ips {

struct LoadBrokerOptions {
  /// Collection window in wall-clock microseconds: how long the collector
  /// lingers for other requests' misses before dispatching. Zero dispatches
  /// immediately (single-flight only, no cross-request batching).
  int64_t window_micros = 200;
  /// The window closes early once this many unique pids are pending, and
  /// dispatches larger than this are split into multiple fetch calls.
  size_t max_batch_pids = 256;
};

/// Downstream fetch: same shape as GCache's BatchLoadFn (results align with
/// the pid list, `out_degraded` never null). Typically Persister::LoadBatch.
using BrokerFetchFn = std::function<std::vector<Result<ProfileData>>(
    const std::vector<ProfileId>&, std::vector<bool>* out_degraded)>;

/// Thread-safe. Callers must quiesce (no Load in flight) before destruction,
/// the same lifetime contract as the cache above it.
class LoadBroker {
 public:
  /// Sentinel deadline meaning "wait forever" (== CallContext::kNoDeadline).
  static constexpr TimestampMs kNoDeadline =
      std::numeric_limits<TimestampMs>::max();

  LoadBroker(LoadBrokerOptions options, BrokerFetchFn fetch, Clock* clock,
             MetricsRegistry* metrics = nullptr);
  ~LoadBroker();

  LoadBroker(const LoadBroker&) = delete;
  LoadBroker& operator=(const LoadBroker&) = delete;

  /// Loads `pids`, coalescing with every other concurrent Load call.
  /// Results (and `out_degraded`, never null) align with `pids`; NotFound
  /// marks profiles that were never persisted, exactly like the underlying
  /// fetch. Blocks until every pid resolves or `deadline_ms` (absolute, in
  /// `clock`'s domain) passes; expired waiters get DeadlineExceeded for the
  /// unresolved pids while the shared load keeps running for everyone else.
  std::vector<Result<ProfileData>> Load(const std::vector<ProfileId>& pids,
                                        std::vector<bool>* out_degraded,
                                        TimestampMs deadline_ms = kNoDeadline);

  /// Pids currently pending or fetching (tests: an expired waiter must not
  /// leave a poisoned entry behind).
  size_t InFlightCount() const;

  const LoadBrokerOptions& options() const { return options_; }

 private:
  /// One coalesced load. Created pending, moved to fetching when a collector
  /// claims it, done when the fetch publishes. Waiters hold shared_ptrs, so
  /// the entry outlives its removal from the in-flight table.
  struct InFlight {
    enum class State { kPending, kFetching, kDone };
    State state = State::kPending;         // guarded by mu_
    int waiters = 0;                       // guarded by mu_
    bool degraded = false;                 // guarded by mu_
    /// Unset until state == kDone (Result has no default construction).
    std::optional<Result<ProfileData>> result;  // guarded by mu_
  };
  using InFlightPtr = std::shared_ptr<InFlight>;

  /// Collector role: wait out the window, then dispatch the entire pending
  /// set in max_batch_pids chunks. Called with `lock` held; returns with it
  /// held. `deadline_ms` only shortens the window wait — the dispatch itself
  /// always runs, because other waiters depend on it.
  void CollectAndDispatch(std::unique_lock<std::mutex>& lock,
                          TimestampMs deadline_ms);

  /// Waits on cv_ until pred() holds or the (simulated-domain) deadline
  /// passes. Polls at ~1ms wall granularity when a deadline is set, so a
  /// ManualClock advanced past the deadline wakes the waiter promptly.
  template <typename Pred>
  bool WaitUntil(std::unique_lock<std::mutex>& lock, TimestampMs deadline_ms,
                 Pred pred) {
    if (deadline_ms == kNoDeadline) {
      cv_.wait(lock, pred);
      return true;
    }
    while (!pred()) {
      if (clock_->NowMs() >= deadline_ms) return pred();
      cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
    return true;
  }

  LoadBrokerOptions options_;
  BrokerFetchFn fetch_;
  Clock* clock_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Every pending or fetching load. Entries leave the table the moment
  /// their result is published, so later misses start a fresh load.
  std::unordered_map<ProfileId, InFlightPtr> inflight_;
  /// Pids created but not yet claimed by a collector, in arrival order.
  std::vector<ProfileId> pending_;
  /// Whether a collector is currently gathering `pending_`. Invariant: a
  /// non-empty pending set always has an active collector, so no pending
  /// entry can stall.
  bool collector_active_ = false;

  // Cached metric handles (null when no registry is wired).
  Counter* single_flight_hits_ = nullptr;
  Counter* cross_request_dedup_ = nullptr;
  Counter* window_batches_ = nullptr;
  Counter* deadline_detaches_ = nullptr;
  Histogram* batch_pids_ = nullptr;
};

}  // namespace ips

#endif  // IPS_CACHE_LOAD_BROKER_H_
