// GCache (Section III-C, Figs 6-9): the write-back compute cache at the heart
// of the IPS compute-cache layer. Profiles live in memory wrapped in cache
// entries tracked by two structures:
//
//   * a sharded LRU list (Fig 7) — swap threads evict cold entries when
//     memory exceeds the configured threshold, starting from the largest
//     shard, probing entries with try_lock and skipping contended ones
//     instead of blocking (Fig 8);
//   * a sharded dirty list (Fig 9) — flush threads persist updated profiles
//     to the key-value store; the flush-thread count is a multiple of the
//     dirty-shard count so every shard has dedicated threads.
//
// Persistence and load are injected as callbacks so this layer stays
// independent of the codec/kvstore choices (bulk vs slice-split modes both
// plug in here).
#ifndef IPS_CACHE_GCACHE_H_
#define IPS_CACHE_GCACHE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"
#include "core/profile_data.h"
#include "core/types.h"

namespace ips {

struct GCacheOptions {
  /// LRU partitions (Fig 7). Power of two.
  size_t lru_shards = 8;
  /// Dirty-list partitions (Fig 9). Power of two.
  size_t dirty_shards = 4;
  /// Flush threads; must be a positive multiple of dirty_shards.
  size_t flush_threads = 4;
  /// Swap (eviction) threads.
  size_t swap_threads = 1;
  /// Hard memory budget for cached profiles, in bytes.
  size_t memory_limit_bytes = 256 << 20;
  /// Swapping starts when usage exceeds limit * high watermark and stops
  /// below limit * low watermark (the paper's clusters hold ~85% usage).
  double high_watermark = 0.85;
  double low_watermark = 0.80;
  /// Background thread cadence.
  int64_t swap_interval_ms = 50;
  int64_t flush_interval_ms = 100;
  /// Failed flushes tolerated per flush pass over one dirty shard: after
  /// this many the pass stops and requeues the untried remainder, so an
  /// injected storage outage cannot turn the flush thread into a tight
  /// retry loop over the whole dirty list.
  size_t max_flush_failures_per_pass = 8;
  /// Backoff between failing flush passes, doubling up to the max; reset by
  /// the first clean pass.
  int64_t flush_backoff_ms = 50;
  int64_t flush_backoff_max_ms = 2000;
  /// Largest group of dirty entries a flush pass hands to the batch flusher
  /// in one call (one storage round trip per group). Only used when a batch
  /// flusher is installed.
  size_t flush_batch_max = 64;
  /// When false no background threads start; tests drive SwapOnce/FlushOnce
  /// manually for determinism.
  bool start_background_threads = true;
  /// Write slice granularity for profiles created on first touch.
  int64_t write_granularity_ms = 60'000;
};

class LoadBroker;
class StoreBroker;
class VictimCache;

/// Persists one profile. Invalidate calls it with the entry lock held (the
/// entry is about to leave the cache); flush passes AND eviction write-backs
/// call it on unlocked snapshots, see BatchFlushFn.
using FlushFn = std::function<Status(ProfileId, const ProfileData&)>;
/// Loads one profile on cache miss. NotFound means "no such profile yet".
/// `out_degraded` (never null) is set when the profile came from a fallback
/// replica and may be stale; the cache carries the flag through to readers.
using LoadFn = std::function<Result<ProfileData>(ProfileId, bool* out_degraded)>;
/// Loads many profiles in one storage round trip (the batch-miss-coalescing
/// step of the MultiQuery read path). Results align with the pid list;
/// NotFound marks profiles that were never persisted. `out_degraded` (never
/// null) aligns with the pid list, same contract as LoadFn.
using BatchLoadFn =
    std::function<std::vector<Result<ProfileData>>(
        const std::vector<ProfileId>&, std::vector<bool>* out_degraded)>;
/// Persists many profiles in one storage round trip (the write-side mirror
/// of BatchLoadFn); invoked on snapshots with NO entry lock held, so the
/// storage round trip never blocks readers or writers of the entries being
/// flushed (a concurrent write during the flush is caught by an epoch
/// recheck and simply requeues the entry). Returned statuses align with the
/// pid list — a batch can partially land.
using BatchFlushFn = std::function<std::vector<Status>(
    const std::vector<ProfileId>&, const std::vector<const ProfileData*>&)>;
/// Encodes a profile into the victim tier's byte format (the persister's
/// compressed block format). Called on eviction snapshots with no lock held.
using VictimEncodeFn = std::function<void(const ProfileData&, std::string*)>;
/// Decodes victim-tier bytes back into a profile (promotion). Corruption on
/// malformed input: the promotion is abandoned and the miss falls through to
/// the loader.
using VictimDecodeFn = std::function<Status(std::string_view, ProfileData*)>;

class GCache {
 public:
  GCache(GCacheOptions options, Clock* clock, FlushFn flush, LoadFn load,
         MetricsRegistry* metrics = nullptr);
  ~GCache();

  GCache(const GCache&) = delete;
  GCache& operator=(const GCache&) = delete;

  /// Read path: runs `fn` with shared (entry-locked) access to the profile.
  /// On miss the loader is consulted; NotFound from the loader is returned
  /// to the caller (queries on unknown profiles are empty, handled above).
  /// `out_was_hit`, when non-null, reports whether this was a cache hit —
  /// the Table II latency split keys on it. `out_degraded`, when non-null,
  /// reports whether the served profile may be stale: it was loaded from a
  /// fallback replica, or the backing store is currently unhealthy (the
  /// resident copy cannot be revalidated or flushed).
  Status WithProfile(ProfileId pid,
                     const std::function<void(const ProfileData&)>& fn,
                     bool* out_was_hit = nullptr,
                     bool* out_degraded = nullptr);

  /// Batch read path (the spine of MultiQuery): partitions `pids` into
  /// cache hits and misses, satisfies ALL misses with one batch-loader call
  /// (falling back to per-pid loads when no batch loader is installed),
  /// then runs `fn(index, profile)` under the entry lock for every present
  /// profile. `statuses` aligns with `pids`; unknown profiles get NotFound
  /// and no callback. Duplicate pids are coalesced for loading but each
  /// occurrence gets its own callback and status; occurrences of the same
  /// pid are served back-to-back under ONE entry lock hold (callbacks are
  /// grouped by entry, not issued in strict input order). Returns the
  /// number of cache hits.
  /// `out_degraded`, when non-null, is filled aligned with `pids`; same
  /// staleness contract as WithProfile. `deadline_ms` (absolute, in the
  /// cache clock's domain) bounds how long misses may wait on loads shared
  /// through the broker; pids unresolved at the deadline get
  /// DeadlineExceeded while the shared load itself keeps running. It is
  /// ignored when no broker is installed (inline loads cannot be abandoned).
  size_t WithProfiles(const std::vector<ProfileId>& pids,
                      const std::function<void(size_t, const ProfileData&)>& fn,
                      std::vector<Status>* statuses,
                      std::vector<bool>* out_degraded = nullptr,
                      TimestampMs deadline_ms =
                          std::numeric_limits<TimestampMs>::max());

  /// Installs the batch loader. Not thread-safe w.r.t. concurrent reads;
  /// call during setup, right after construction.
  void set_batch_loader(BatchLoadFn batch_load) {
    batch_load_ = std::move(batch_load);
  }

  /// Installs the load broker (non-owning; must outlive the cache): misses
  /// then route through it instead of invoking the loader callbacks inline,
  /// gaining single-flight dedup of concurrent misses for the same pid and
  /// cross-request window batching of the storage round trip. Same
  /// setup-time contract as set_batch_loader. Without a broker, misses load
  /// inline through batch_load_/load_ exactly as before.
  void set_load_broker(LoadBroker* broker) { load_broker_ = broker; }

  /// Installs the batch flusher: flush passes then drain each dirty shard
  /// in groups of up to flush_batch_max entries, one flusher call (one
  /// storage round trip) per group, instead of one store per entry. Same
  /// setup-time contract as set_batch_loader.
  void set_batch_flusher(BatchFlushFn batch_flush) {
    batch_flush_ = std::move(batch_flush);
  }

  /// Installs the store broker (non-owning; must outlive the cache): flush
  /// groups then route through it instead of the batch flusher, gaining
  /// cross-shard window merging (concurrent flush passes' groups share one
  /// storage round trip) and single-flight store-backs (a hot dirty pid
  /// re-flushed while its store is on the wire is written at most once per
  /// window; a changed snapshot requeues behind the in-flight write). The
  /// snapshot epochs FlushShard already tracks ride along so the broker can
  /// tell identical re-flushes from newer ones; the epoch recheck after the
  /// store returns is unchanged. Same setup-time contract as
  /// set_batch_loader. Eviction write-backs route through the broker too:
  /// EvictFromShard stores unlocked snapshots (victims are collected under
  /// the shard lock, written back outside it), so an eviction storm
  /// coalesces with a concurrent flush storm. Only Invalidate keeps the
  /// inline point path — it holds the entry lock and must not park in a
  /// window.
  void set_store_broker(StoreBroker* broker) { store_broker_ = broker; }

  /// Installs the compressed L2 victim tier (non-owning; must outlive the
  /// cache) together with the codec callbacks that translate between
  /// ProfileData and the tier's encoded-bytes format. With a tier installed:
  ///   * every lookup feeds the tier's admission sketch;
  ///   * every miss probes the tier (the cache.l2_lookup trace stage) and a
  ///     hit promotes the bytes back into L1 — decode instead of KV trip;
  ///   * eviction demotes written-back victims into the tier instead of
  ///     dropping them;
  ///   * Invalidate erases the pid from BOTH tiers.
  /// Same setup-time contract as set_batch_loader.
  void set_victim_cache(VictimCache* victim, VictimEncodeFn encode,
                        VictimDecodeFn decode) {
    victim_cache_ = victim;
    victim_encode_ = std::move(encode);
    victim_decode_ = std::move(decode);
  }

  /// Write path: runs `fn` with exclusive access, creating the profile when
  /// absent (after a load attempt), then marks the entry dirty.
  Status WithProfileMutable(ProfileId pid,
                            const std::function<void(ProfileData&)>& fn,
                            bool* out_was_hit = nullptr);

  /// Maintenance write path (compaction): snapshots the profile under the
  /// entry lock, runs `work` on the snapshot with NO lock held, then commits
  /// the result back under the lock — but only if the entry's mutation
  /// epoch is unchanged (the same collect→work→commit discipline the flush
  /// and eviction paths use). A long pass therefore never pins the entry
  /// lock: serving writes and FlushShard proceed concurrently, and a pass
  /// that lost the race retries from a fresh snapshot (each lost race is
  /// counted as compaction.overlap_stalls), up to `max_retries` extra
  /// attempts before giving up with Aborted — harmless, later traffic
  /// re-triggers. `work` returns false to abandon the pass (nothing to
  /// change); the entry is left untouched and OK is returned.
  ///
  /// Unlike WithProfileMutable this never faults the profile in from
  /// storage: NotFound for non-resident pids. Compacting an uncached
  /// profile would drag cold data into memory just to shrink it; persisted
  /// slices get compacted when real traffic next loads them.
  Status WithProfileOffLockMutate(ProfileId pid,
                                  const std::function<bool(ProfileData&)>& work,
                                  int max_retries = 2);

  /// Runs one eviction pass if usage exceeds the high watermark. Returns the
  /// number of entries evicted.
  size_t SwapOnce();

  /// Flushes every dirty entry in every shard; returns entries flushed.
  size_t FlushOnce();

  /// Upper bound on the entry locks one flush group may hold at once. Flush
  /// passes now snapshot entries one lock at a time and run the storage
  /// round trip with no entry lock held, so this is unbounded everywhere
  /// (the effective group size is just `flush_batch_max`). Kept because
  /// tests and benches derive expected group counts from it; it used to be
  /// clamped under ThreadSanitizer when a group pinned every entry lock
  /// across the round trip.
  static size_t FlushGroupLockCap();

  /// Flush + wait until the dirty lists are empty (shutdown, tests).
  void FlushAll();

  /// Drops a clean entry from the cache (failover handover). Dirty entries
  /// are flushed first.
  Status Invalidate(ProfileId pid);

  /// Profile ids currently cached (ops sweeps, e.g. forced compaction).
  std::vector<ProfileId> CachedIds() const;

  size_t EntryCount() const;
  size_t MemoryBytes() const {
    return memory_bytes_.load(std::memory_order_relaxed);
  }
  double MemoryUsageRatio() const {
    // A zero limit means "unbounded" (degenerate test configs); report 0
    // rather than dividing by zero.
    if (options_.memory_limit_bytes == 0) return 0.0;
    return static_cast<double>(MemoryBytes()) /
           static_cast<double>(options_.memory_limit_bytes);
  }
  size_t DirtyCount() const;

  /// Lifetime hit ratio in [0,1]; 0 when no lookups yet.
  double HitRatio() const;

  /// Whether the backing store is currently considered unhealthy (last
  /// flush/load against it failed with Unavailable). While set, every hit
  /// is reported degraded — the resident copy cannot be revalidated.
  bool StoreUnhealthy() const {
    return store_unhealthy_.load(std::memory_order_relaxed);
  }

  const GCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    ProfileId pid = 0;
    ProfileData profile;
    std::mutex mu;
    /// Approximate bytes, maintained under mu, mirrored into shard/global
    /// accounting.
    size_t bytes = 0;
    bool dirty = false;
    /// Loaded from a fallback replica (may be stale). Guarded by mu; cleared
    /// by the first successful flush (the entry's state then reached the
    /// primary store and is authoritative again).
    bool degraded = false;
    /// Bumped (under mu) on every mutation. Flush passes snapshot the
    /// profile plus this epoch, store WITHOUT the entry lock, then recheck:
    /// an entry re-dirtied mid-flight keeps its dirty bit and requeues
    /// instead of silently losing the newer write.
    uint64_t mutation_epoch = 0;
    /// Guarded by the owning DirtyShard's mutex.
    bool in_dirty_list = false;
    /// Set (under mu) when the entry is removed from its shard map by
    /// eviction or Invalidate. A mutator holding a stale EntryPtr from
    /// before the removal must NOT write into it — the entry is unmapped,
    /// nothing would ever flush the write — so WithProfileMutable rechecks
    /// this after locking and retries its lookup instead.
    bool evicted = false;

    Entry(ProfileId id, ProfileData data)
        : pid(id), profile(std::move(data)) {}
  };
  using EntryPtr = std::shared_ptr<Entry>;

  struct LruShard {
    /// Map payload: the entry plus its position in the LRU list, so a hit
    /// resolves entry AND recency bookkeeping with ONE hash probe (the old
    /// layout kept a separate pid -> iterator map and paid a second probe
    /// per touch).
    struct Slot {
      EntryPtr entry;
      std::list<ProfileId>::iterator lru_it;
    };
    mutable std::mutex mu;
    std::unordered_map<ProfileId, Slot> map;
    /// Most-recent at front. Kept strictly in sync with `map` under `mu`.
    std::list<ProfileId> lru;
    std::atomic<size_t> bytes{0};
  };

  struct DirtyShard {
    mutable std::mutex mu;
    std::list<ProfileId> dirty;
  };

  size_t LruIndex(ProfileId pid) const;
  size_t DirtyIndex(ProfileId pid) const;

  /// Finds or creates the entry; returns (entry, was_hit). May invoke the
  /// loader (through the broker when installed) outside all shard locks.
  Result<std::pair<EntryPtr, bool>> GetOrLoad(ProfileId pid,
                                              bool create_if_missing);

  /// Loads `pids` (unique, sorted) through the broker when installed, else
  /// the batch loader, else per-pid loads. Results and `out_degraded` align
  /// with `pids`. The single funnel for every miss in the cache.
  std::vector<Result<ProfileData>> LoadMisses(
      const std::vector<ProfileId>& pids, std::vector<bool>* out_degraded,
      TimestampMs deadline_ms);

  /// Probes the victim tier for `pid` (caller wraps in the cache.l2_lookup
  /// span); on a hit the bytes are taken out of the tier and decoded into
  /// `*out` (promotion), `*out_degraded` carries the demoted staleness mark.
  /// False on tier miss — and on decode failure, where the corrupt bytes are
  /// simply dropped and the miss falls through to the loader.
  bool TryPromoteFromL2(ProfileId pid, ProfileData* out, bool* out_degraded);

  /// Moves the slot's pid to the LRU front (shard lock held). Splicing via
  /// the stored iterator: no second hash probe.
  void TouchLru(LruShard& shard, LruShard::Slot& slot);

  /// Reusable per-thread buffers for WithProfiles, so the warm batch read
  /// path does no steady-state allocation of its own.
  struct BatchScratch;
  static BatchScratch& ThreadBatchScratch();

  /// Re-measures entry bytes (entry lock held) and fixes accounting.
  void UpdateAccounting(LruShard& shard, Entry& entry);

  void MarkDirty(Entry& entry);

  /// Evicts from `shard` until `target_bytes` freed or shard exhausted.
  /// Victims are collected (and snapshotted) under shard.mu, written back
  /// and encoded for demotion with NO lock held, then committed one at a
  /// time under shard.mu + entry lock with the flush path's mutation-epoch
  /// recheck — an entry re-dirtied during the unlocked round trip stays
  /// resident and keeps its newer state.
  size_t EvictFromShard(LruShard& shard, size_t target_bytes);

  /// Flushes the given entry if dirty (entry lock must be held). Point path:
  /// only Invalidate uses it — eviction write-back goes through
  /// EvictFromShard's unlocked batch.
  Status FlushEntryLocked(Entry& entry);

  /// Flushes all entries queued in one dirty shard. Stops early after
  /// max_flush_failures_per_pass failed flushes (requeueing the untried
  /// remainder); `out_failures`, when non-null, reports the failure count.
  size_t FlushShard(DirtyShard& shard, size_t* out_failures = nullptr);

  /// Where a store-health observation came from. Batch observations are the
  /// flush/load passes that sweep many pids — representative of the store's
  /// real state, so one success clears the unhealthy flag. Point
  /// observations are single-pid eviction/Invalidate write-backs; one lucky
  /// point success mid-outage used to clear the flag while batch loads were
  /// still failing (flapping), so the point path needs
  /// kPointHealthClearStreak consecutive successes to clear it.
  enum class StoreHealthSource { kBatch, kPoint };
  static constexpr int kPointHealthClearStreak = 3;

  /// Marks the backing store healthy/unhealthy from a flush/load outcome.
  void NoteStoreHealth(const Status& status,
                       StoreHealthSource source = StoreHealthSource::kBatch);

  void SwapLoop();
  void FlushLoop(size_t thread_index);

  /// Inserts a freshly loaded entry into its shard, or adopts the entry a
  /// concurrent loader already established. Returns the entry to use.
  EntryPtr InsertLoaded(ProfileId pid, ProfileData loaded, bool degraded);

  /// Reads the entry's degraded flag combined with store health (entry lock
  /// must NOT be held).
  bool EntryDegraded(const EntryPtr& entry) const;

  GCacheOptions options_;
  Clock* clock_;
  FlushFn flush_;
  LoadFn load_;
  BatchLoadFn batch_load_;
  BatchFlushFn batch_flush_;
  /// Non-owning; installed at setup. When present, every miss routes
  /// through it (see set_load_broker).
  LoadBroker* load_broker_ = nullptr;
  /// Non-owning; installed at setup. When present, every flush group routes
  /// through it (see set_store_broker).
  StoreBroker* store_broker_ = nullptr;
  /// Non-owning; installed at setup (see set_victim_cache).
  VictimCache* victim_cache_ = nullptr;
  VictimEncodeFn victim_encode_;
  VictimDecodeFn victim_decode_;
  MetricsRegistry* metrics_;

  std::vector<std::unique_ptr<LruShard>> lru_shards_;
  std::vector<std::unique_ptr<DirtyShard>> dirty_shards_;
  std::atomic<size_t> memory_bytes_{0};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<bool> store_unhealthy_{false};
  /// Consecutive successful point write-backs observed while unhealthy; see
  /// StoreHealthSource.
  std::atomic<int> point_success_streak_{0};

  std::atomic<bool> shutdown_{false};
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  std::vector<std::thread> background_threads_;
};

}  // namespace ips

#endif  // IPS_CACHE_GCACHE_H_
