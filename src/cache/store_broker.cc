#include "cache/store_broker.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "common/trace.h"

namespace ips {

StoreBroker::StoreBroker(StoreBrokerOptions options, BrokerStoreFn store,
                         Clock* clock, MetricsRegistry* metrics)
    : options_(options), store_(std::move(store)), clock_(clock) {
  (void)clock_;  // windows are wall-clock; kept for lifecycle symmetry
  if (options_.max_batch_pids == 0) options_.max_batch_pids = 1;
  if (metrics != nullptr) {
    // Registered eagerly so the names are live (and the docs-completeness
    // test sees them) even before the first coalesced store.
    single_flight_hits_ =
        metrics->GetCounter("store_broker.single_flight_hits");
    cross_shard_batches_ =
        metrics->GetCounter("store_broker.cross_shard_batches");
    requeued_pids_ = metrics->GetCounter("store_broker.requeued_pids");
    batch_pids_ = metrics->GetHistogram("store_broker.batch_pids");
  }
}

StoreBroker::~StoreBroker() = default;

size_t StoreBroker::InFlightCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_.size();
}

void StoreBroker::CollectAndDispatch(std::unique_lock<std::mutex>& lock) {
  // Window wait: linger for other flush threads' groups. Unlike the read
  // broker there is no deadline to shorten the window — flush passes run on
  // background threads and tolerate the full linger.
  if (options_.window_micros > 0 &&
      pending_.size() < options_.max_batch_pids) {
    ScopedSpan window_span("server.store_coalesce");
    const auto wall_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(options_.window_micros);
    while (pending_.size() < options_.max_batch_pids) {
      if (cv_.wait_until(lock, wall_deadline) == std::cv_status::timeout) {
        break;
      }
    }
  }

  // Claim the entire pending set — our groups plus every pid other flush
  // threads parked during the window. Taking everything (not just
  // max_batch_pids) keeps the invariant that no pending entry is left
  // without a collector; oversized sets are split into multiple store calls
  // below. Once an entry is kStoring its snapshot pointer and epoch are
  // frozen: later duplicates piggyback or requeue, they never mutate it.
  std::vector<ProfileId> batch;
  std::vector<InFlightPtr> entries;
  {
    ScopedSpan claim_span("server.store_coalesce");
    batch = std::move(pending_);
    pending_.clear();
    entries.reserve(batch.size());
    for (ProfileId pid : batch) {
      InFlightPtr entry = inflight_[pid];
      entry->state = InFlight::State::kStoring;
      entries.push_back(std::move(entry));
    }
    collector_active_ = false;
    // Wake followers so their wait reattributes from server.store_coalesce
    // to kv.store.shared, and so a new arrival can elect the next collector.
    cv_.notify_all();
  }

  std::vector<ProfileId> chunk_pids;
  std::vector<const ProfileData*> chunk_profiles;
  for (size_t begin = 0; begin < batch.size();
       begin += options_.max_batch_pids) {
    const size_t end = std::min(batch.size(), begin + options_.max_batch_pids);
    bool cross_shard = false;
    {
      ScopedSpan chunk_span("server.store_coalesce");
      chunk_pids.assign(batch.begin() + begin, batch.begin() + end);
      chunk_profiles.clear();
      chunk_profiles.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        chunk_profiles.push_back(entries[i]->profile);
        if (entries[i]->submission != entries[begin]->submission) {
          cross_shard = true;
        }
      }
    }
    lock.unlock();
    // The storage round trip every merged flush group shares. Runs outside
    // mu_ on this flush thread, so kv.store spans attribute to the
    // collector's trace like any inline store. The snapshot pointers are
    // owned by submitters blocked until their entries publish, so they stay
    // valid across the unlocked call.
    std::vector<Status> statuses = store_(chunk_pids, chunk_profiles);
    // Publication — re-acquiring mu_ (contention included) and fanning the
    // statuses into the in-flight entries — opens its span before the lock
    // so the wait charges to coalescing, not to an untraced gap.
    ScopedSpan publish_span("server.store_coalesce");
    lock.lock();
    if (batch_pids_ != nullptr) {
      batch_pids_->Record(static_cast<int64_t>(chunk_pids.size()));
    }
    if (cross_shard && cross_shard_batches_ != nullptr) {
      cross_shard_batches_->Increment();
    }
    for (size_t i = begin; i < end; ++i) {
      InFlight& entry = *entries[i];
      // Leave the table first: a flush arriving after publication must start
      // a fresh store-back, not observe a completed entry.
      inflight_.erase(batch[i]);
      if (i - begin < statuses.size()) {
        entry.status.emplace(statuses[i - begin]);
      } else {
        entry.status.emplace(
            Status::Internal("batch store returned a short result list"));
      }
      entry.state = InFlight::State::kDone;
    }
    cv_.notify_all();
  }
}

std::vector<Status> StoreBroker::Store(
    const std::vector<ProfileId>& pids,
    const std::vector<const ProfileData*>& profiles,
    const std::vector<uint64_t>& epochs) {
  std::vector<Status> results(pids.size(), Status::OK());
  if (profiles.size() != pids.size() || epochs.size() != pids.size()) {
    results.assign(pids.size(),
                   Status::InvalidArgument(
                       "StoreBroker pids/profiles/epochs mismatch"));
    return results;
  }
  if (pids.empty()) return results;

  // A submitted pid either attaches to an entry whose write will carry its
  // bytes (or newer ones), or blocks behind an in-flight write of OLDER
  // bytes and resubmits once it lands. `remaining` holds the indices still
  // to attach; the requeue path feeds it for the next round.
  struct Slot {
    size_t index = 0;
    InFlightPtr entry;
  };
  std::vector<Slot> attached;
  std::vector<Slot> blocked;
  std::vector<size_t> remaining(pids.size());
  std::iota(remaining.begin(), remaining.end(), size_t{0});

  std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
  {
    // Broker bookkeeping — taking mu_ (contention included) and joining or
    // creating in-flight entries — is coalescing work; attributing it to
    // server.store_coalesce keeps the traced stage sum covering the path.
    ScopedSpan setup_span("server.store_coalesce");
    attached.reserve(pids.size());
    lock.lock();
  }
  const uint64_t submission = ++next_submission_;

  while (!remaining.empty()) {
    size_t created = 0;
    {
      ScopedSpan attach_span("server.store_coalesce");
      for (size_t i : remaining) {
        auto [it, inserted] = inflight_.try_emplace(pids[i]);
        if (inserted) {
          it->second = std::make_shared<InFlight>();
          InFlight& entry = *it->second;
          entry.epoch = epochs[i];
          entry.profile = profiles[i];
          entry.submission = submission;
          pending_.push_back(pids[i]);
          ++created;
          attached.push_back(Slot{i, it->second});
        } else if (it->second->state == InFlight::State::kPending) {
          // Merged into a window another flush thread opened before its
          // write dispatched: ONE write serves both submissions, carrying
          // the newest snapshot of the pid.
          InFlightPtr entry = it->second;
          if (epochs[i] > entry->epoch) {
            entry->epoch = epochs[i];
            entry->profile = profiles[i];
          }
          if (single_flight_hits_ != nullptr) {
            single_flight_hits_->Increment();
          }
          attached.push_back(Slot{i, std::move(entry)});
        } else if (epochs[i] > it->second->epoch) {
          // The write already on the wire carries an older snapshot; ours
          // must still be written — but never concurrently with the older
          // one. Requeue: wait for the in-flight write, then resubmit.
          if (requeued_pids_ != nullptr) requeued_pids_->Increment();
          blocked.push_back(Slot{i, it->second});
        } else {
          // Storing, and the in-flight write carries our exact snapshot
          // (epoch unchanged) or a newer one that supersedes it: piggyback.
          // The hot-dirty-pid case — one kv.store serves several flushes.
          if (single_flight_hits_ != nullptr) {
            single_flight_hits_->Increment();
          }
          attached.push_back(Slot{i, it->second});
        }
      }
      // A creation that fills the active collector's window must wake it so
      // the batch closes early — its window wait only re-checks the pending
      // count on notification.
      if (created > 0 && collector_active_ &&
          pending_.size() >= options_.max_batch_pids) {
        cv_.notify_all();
      }
    }
    remaining.clear();

    // Collector election: pending entries always have exactly one active
    // collector. If none is active, every pending pid was created just now
    // by us (under this same lock hold), so the duty is ours.
    if (created > 0 && !collector_active_) {
      collector_active_ = true;
      CollectAndDispatch(lock);
    }

    const auto any_in_state = [&attached](InFlight::State state) {
      for (const Slot& slot : attached) {
        if (slot.entry->state == state) return true;
      }
      return false;
    };

    // Follower waits, attributed per phase. Phase 1: a collector is still
    // gathering the window our groups merged into. Phase 2: the shared
    // store is on the wire on another thread.
    if (any_in_state(InFlight::State::kPending)) {
      ScopedSpan coalesce_span("server.store_coalesce");
      cv_.wait(lock,
               [&] { return !any_in_state(InFlight::State::kPending); });
    }
    if (any_in_state(InFlight::State::kStoring)) {
      ScopedSpan shared_span("kv.store.shared");
      cv_.wait(lock,
               [&] { return !any_in_state(InFlight::State::kStoring); });
    }

    {
      // Fan each shared status back to this submission's slot, so a partial
      // MultiSet failure reaches exactly the flush groups whose pids failed.
      ScopedSpan collect_span("server.store_coalesce");
      for (const Slot& slot : attached) {
        results[slot.index] = *slot.entry->status;
      }
      attached.clear();
    }

    if (!blocked.empty()) {
      // Requeued pids: the older in-flight writes must land before the
      // newer snapshots may be submitted (per-pid store order stays epoch
      // order). The wake and the resubmission share one lock hold, so no
      // third writer can slip between them unobserved.
      ScopedSpan shared_span("kv.store.shared");
      cv_.wait(lock, [&] {
        for (const Slot& slot : blocked) {
          if (slot.entry->state != InFlight::State::kDone) return false;
        }
        return true;
      });
      for (const Slot& slot : blocked) remaining.push_back(slot.index);
      blocked.clear();
    }
  }
  return results;
}

}  // namespace ips
