#include "cache/gcache.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "cache/load_broker.h"
#include "cache/store_broker.h"
#include "cache/victim_cache.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/trace.h"

namespace ips {

namespace {

size_t RoundUpPow2(size_t n) {
  if (n == 0) return 1;
  while ((n & (n - 1)) != 0) ++n;
  return n;
}

}  // namespace

size_t GCache::FlushGroupLockCap() {
  // Flush groups snapshot entries one lock at a time and run the storage
  // round trip with no entry lock held, so no cap applies — including under
  // ThreadSanitizer, whose 64-held-locks hard limit motivated the old clamp
  // back when a group pinned every entry lock across the round trip.
  return std::numeric_limits<size_t>::max();
}

GCache::GCache(GCacheOptions options, Clock* clock, FlushFn flush, LoadFn load,
               MetricsRegistry* metrics)
    : options_(options),
      clock_(clock),
      flush_(std::move(flush)),
      load_(std::move(load)),
      metrics_(metrics) {
  options_.lru_shards = RoundUpPow2(options_.lru_shards);
  options_.dirty_shards = RoundUpPow2(options_.dirty_shards);
  if (options_.flush_threads < options_.dirty_shards) {
    options_.flush_threads = options_.dirty_shards;
  }
  // Round flush threads up to a multiple of the shard count so the shards
  // are covered evenly (the Fig 9 constraint).
  if (options_.flush_threads % options_.dirty_shards != 0) {
    options_.flush_threads +=
        options_.dirty_shards -
        options_.flush_threads % options_.dirty_shards;
  }
  for (size_t i = 0; i < options_.lru_shards; ++i) {
    lru_shards_.push_back(std::make_unique<LruShard>());
  }
  for (size_t i = 0; i < options_.dirty_shards; ++i) {
    dirty_shards_.push_back(std::make_unique<DirtyShard>());
  }
  if (options_.start_background_threads) {
    for (size_t i = 0; i < options_.swap_threads; ++i) {
      background_threads_.emplace_back([this] { SwapLoop(); });
    }
    for (size_t i = 0; i < options_.flush_threads; ++i) {
      background_threads_.emplace_back([this, i] { FlushLoop(i); });
    }
  }
}

GCache::~GCache() {
  shutdown_.store(true, std::memory_order_relaxed);
  bg_cv_.notify_all();
  for (auto& t : background_threads_) t.join();
  // Final write-back so no acknowledged update is lost on clean shutdown.
  FlushAll();
}

size_t GCache::LruIndex(ProfileId pid) const {
  return Mix64(pid) & (options_.lru_shards - 1);
}

size_t GCache::DirtyIndex(ProfileId pid) const {
  // Use a different bit range than the LRU shard index so the two shardings
  // are independent.
  return (Mix64(pid) >> 17) & (options_.dirty_shards - 1);
}

void GCache::TouchLru(LruShard& shard, LruShard::Slot& slot) {
  shard.lru.splice(shard.lru.begin(), shard.lru, slot.lru_it);
}

Result<std::pair<GCache::EntryPtr, bool>> GCache::GetOrLoad(
    ProfileId pid, bool create_if_missing) {
  LruShard& shard = *lru_shards_[LruIndex(pid)];
  // Every lookup — hit or miss — feeds the victim tier's admission sketch:
  // a profile hot because it is L1-resident must still look hot to the
  // admission check when it is eventually demoted.
  if (victim_cache_ != nullptr) victim_cache_->RecordAccess(pid);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(pid);
    if (it != shard.map.end()) {
      TouchLru(shard, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_ != nullptr) metrics_->GetCounter("cache.hit")->Increment();
      return std::make_pair(it->second.entry, true);
    }
  }

  // Miss: consult persistent storage outside the shard lock — loads can take
  // milliseconds and must not block unrelated traffic on this shard.
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) metrics_->GetCounter("cache.miss")->Increment();

  // The victim tier intercepts the miss before any storage round trip: a
  // demoted profile promotes back for the price of a decode.
  if (victim_cache_ != nullptr) {
    ScopedSpan l2_span("cache.l2_lookup");
    ProfileData promoted(options_.write_granularity_ms);
    bool promoted_degraded = false;
    if (TryPromoteFromL2(pid, &promoted, &promoted_degraded)) {
      return std::make_pair(
          InsertLoaded(pid, std::move(promoted), promoted_degraded), false);
    }
  }

  ProfileData loaded(options_.write_granularity_ms);
  bool degraded = false;
  {
    // Through the broker when installed (sharing the load with every other
    // concurrent miss for this pid), else the per-pid loader.
    Result<ProfileData> result = [&]() -> Result<ProfileData> {
      if (load_broker_ == nullptr) return load_(pid, &degraded);
      std::vector<ProfileId> one{pid};
      std::vector<bool> one_degraded;
      std::vector<Result<ProfileData>> results =
          load_broker_->Load(one, &one_degraded);
      if (results.empty()) {
        return Status::Internal("load broker returned a short result list");
      }
      degraded = !one_degraded.empty() && one_degraded[0];
      return std::move(results[0]);
    }();
    if (result.ok()) {
      // A degraded load means the loader fell back: the primary store is
      // still unhealthy even though the load itself succeeded.
      NoteStoreHealth(degraded ? Status::Unavailable("fallback load")
                               : Status::OK());
      loaded = std::move(result).value();
    } else if (result.status().IsNotFound()) {
      if (!create_if_missing) return result.status();
    } else {
      NoteStoreHealth(result.status());
      return result.status();  // storage unavailable etc.
    }
  }

  return std::make_pair(InsertLoaded(pid, std::move(loaded), degraded),
                        false);
}

GCache::EntryPtr GCache::InsertLoaded(ProfileId pid, ProfileData loaded,
                                      bool degraded) {
  LruShard& shard = *lru_shards_[LruIndex(pid)];
  auto entry = std::make_shared<Entry>(pid, std::move(loaded));
  {
    std::lock_guard<std::mutex> entry_lock(entry->mu);
    entry->bytes = entry->profile.ApproximateBytes();
    entry->degraded = degraded;
  }

  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.map.try_emplace(pid);
  if (!inserted) {
    // Lost a race with a concurrent loader; use the established entry and
    // drop ours. (Its loaded contents are equivalent.)
    TouchLru(shard, it->second);
    return it->second.entry;
  }
  shard.lru.push_front(pid);
  it->second.entry = entry;
  it->second.lru_it = shard.lru.begin();
  shard.bytes.fetch_add(entry->bytes, std::memory_order_relaxed);
  memory_bytes_.fetch_add(entry->bytes, std::memory_order_relaxed);
  return entry;
}

bool GCache::TryPromoteFromL2(ProfileId pid, ProfileData* out,
                              bool* out_degraded) {
  std::string encoded;
  bool degraded = false;
  if (!victim_cache_->Take(pid, &encoded, &degraded)) return false;
  const Status decoded = victim_decode_(encoded, out);
  if (!decoded.ok()) {
    // Corrupt demoted bytes: Take already removed them, so the tier cannot
    // serve them again; the miss falls through to the authoritative store.
    if (metrics_ != nullptr) {
      metrics_->GetCounter("cache_l2.decode_failures")->Increment();
    }
    return false;
  }
  *out_degraded = degraded;
  return true;
}

struct GCache::BatchScratch {
  std::vector<EntryPtr> entries;
  /// (pid, occurrence index) per missing occurrence; sorted to group
  /// duplicates without a per-call hash map.
  std::vector<std::pair<ProfileId, uint32_t>> misses;
  std::vector<ProfileId> miss_pids;  // unique, in loader order
  /// Phase-3 service order: occurrence indices grouped by entry.
  std::vector<uint32_t> order;
};

GCache::BatchScratch& GCache::ThreadBatchScratch() {
  thread_local BatchScratch scratch;
  return scratch;
}

std::vector<Result<ProfileData>> GCache::LoadMisses(
    const std::vector<ProfileId>& pids, std::vector<bool>* out_degraded,
    TimestampMs deadline_ms) {
  // Victim tier first: misses served by promoting demoted bytes never reach
  // the loader at all — a decode instead of a storage round trip.
  const bool tiered = victim_cache_ != nullptr;
  std::vector<Result<ProfileData>> results;
  std::vector<ProfileId> remaining;
  std::vector<size_t> remaining_ix;  // positions in `pids` still to load
  if (tiered) {
    ScopedSpan l2_span("cache.l2_lookup");
    out_degraded->assign(pids.size(), false);
    results.assign(pids.size(),
                   Result<ProfileData>(Status::NotFound("unresolved")));
    for (size_t i = 0; i < pids.size(); ++i) {
      ProfileData promoted(options_.write_granularity_ms);
      bool promoted_degraded = false;
      if (TryPromoteFromL2(pids[i], &promoted, &promoted_degraded)) {
        results[i] = std::move(promoted);
        (*out_degraded)[i] = promoted_degraded;
      } else {
        remaining.push_back(pids[i]);
        remaining_ix.push_back(i);
      }
    }
    if (remaining.empty()) return results;
  }
  const std::vector<ProfileId>& load_pids = tiered ? remaining : pids;

  // Dispatch what the tier could not serve: the broker when installed
  // (single-flight + cross-request window batching, with the caller's
  // deadline bounding the shared wait), else the batch loader, else per-pid
  // loads.
  std::vector<bool> loaded_degraded;
  std::vector<Result<ProfileData>> loaded;
  if (load_broker_ != nullptr) {
    loaded = load_broker_->Load(load_pids, &loaded_degraded, deadline_ms);
  } else if (batch_load_) {
    loaded_degraded.assign(load_pids.size(), false);
    loaded = batch_load_(load_pids, &loaded_degraded);
  } else {
    loaded_degraded.assign(load_pids.size(), false);
    loaded.reserve(load_pids.size());
    for (size_t m = 0; m < load_pids.size(); ++m) {
      bool degraded = false;
      loaded.push_back(load_(load_pids[m], &degraded));
      loaded_degraded[m] = degraded;
    }
  }
  if (loaded.size() != load_pids.size()) {
    loaded.assign(load_pids.size(),
                  Result<ProfileData>(Status::Internal(
                      "batch loader returned a short result list")));
  }
  if (loaded_degraded.size() != load_pids.size()) {
    loaded_degraded.assign(load_pids.size(), false);
  }

  // Store health is judged ONLY on outcomes that actually touched the
  // loader: a degraded profile served out of the victim tier carries its
  // historical staleness mark and says nothing about the store's current
  // state.
  bool any_unavailable = false;
  bool any_degraded = false;
  for (size_t m = 0; m < loaded.size(); ++m) {
    if (!loaded[m].ok()) {
      if (loaded[m].status().IsUnavailable()) any_unavailable = true;
    } else if (loaded_degraded[m]) {
      any_degraded = true;
    }
  }
  NoteStoreHealth(any_unavailable || any_degraded
                      ? Status::Unavailable("batch load")
                      : Status::OK());

  if (!tiered) {
    *out_degraded = std::move(loaded_degraded);
    return loaded;
  }
  for (size_t m = 0; m < remaining_ix.size(); ++m) {
    results[remaining_ix[m]] = std::move(loaded[m]);
    (*out_degraded)[remaining_ix[m]] = loaded_degraded[m];
  }
  return results;
}

size_t GCache::WithProfiles(
    const std::vector<ProfileId>& pids,
    const std::function<void(size_t, const ProfileData&)>& fn,
    std::vector<Status>* statuses, std::vector<bool>* out_degraded,
    TimestampMs deadline_ms) {
  // Phase 1: partition into hits and misses against the shard maps — a
  // single hash probe per pid resolves the entry and its LRU position
  // together. Misses are coalesced (via sort, not a per-call hash map) so
  // each unique pid is loaded once even when the incoming batch carries
  // duplicates. The cache.lookup span covers the scratch setup and this
  // in-memory partition; the storage round trip (phase 2) reports itself as
  // kv.load / codec.decode from the layers that do the work.
  size_t hits = 0;
  BatchScratch& scratch = ThreadBatchScratch();
  auto& entries = scratch.entries;
  auto& misses = scratch.misses;
  auto& miss_pids = scratch.miss_pids;
  {
    ScopedSpan lookup_span("cache.lookup");
    statuses->assign(pids.size(), Status::OK());
    if (out_degraded != nullptr) out_degraded->assign(pids.size(), false);
    entries.assign(pids.size(), EntryPtr());
    misses.clear();
    miss_pids.clear();
    for (size_t i = 0; i < pids.size(); ++i) {
      const ProfileId pid = pids[i];
      LruShard& shard = *lru_shards_[LruIndex(pid)];
      // Sketch bump outside the shard lock; every occurrence counts (see
      // GetOrLoad).
      if (victim_cache_ != nullptr) victim_cache_->RecordAccess(pid);
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.map.find(pid);
      if (it != shard.map.end()) {
        TouchLru(shard, it->second);
        entries[i] = it->second.entry;
        ++hits;
        continue;
      }
      misses.emplace_back(pid, static_cast<uint32_t>(i));
    }
    std::sort(misses.begin(), misses.end());
    for (const auto& [pid, i] : misses) {
      if (miss_pids.empty() || miss_pids.back() != pid) {
        miss_pids.push_back(pid);
      }
    }
    hits_.fetch_add(static_cast<int64_t>(hits), std::memory_order_relaxed);
    misses_.fetch_add(static_cast<int64_t>(miss_pids.size()),
                      std::memory_order_relaxed);
    if (metrics_ != nullptr) {
      if (hits > 0) {
        metrics_->GetCounter("cache.hit")->Increment(
            static_cast<int64_t>(hits));
      }
      if (!miss_pids.empty()) {
        metrics_->GetCounter("cache.miss")->Increment(
            static_cast<int64_t>(miss_pids.size()));
        metrics_->GetCounter("cache.batch_loads")->Increment();
      }
    }
  }

  // Phase 2: one LoadMisses call covers every miss, outside all shard locks.
  // With a broker installed this submits the miss set to the shared
  // coalescing stage — concurrent requests' misses merge into one storage
  // round trip and hot pids already on the wire are joined, not refetched.
  if (!miss_pids.empty()) {
    std::vector<bool> loaded_degraded;
    std::vector<Result<ProfileData>> loaded =
        LoadMisses(miss_pids, &loaded_degraded, deadline_ms);
    // Integrating loaded profiles back into the shard maps (entry creation,
    // LRU insert, accounting) is cache-index work like the phase-1 probe, so
    // it reports under the same cache.lookup stage.
    ScopedSpan insert_span("cache.lookup");
    size_t cursor = 0;  // walks `misses`, whose pids ascend like miss_pids
    for (size_t m = 0; m < miss_pids.size(); ++m) {
      const ProfileId pid = miss_pids[m];
      const size_t begin = cursor;
      while (cursor < misses.size() && misses[cursor].first == pid) ++cursor;
      if (m >= loaded.size() || !loaded[m].ok()) {
        const Status status = m >= loaded.size()
                                  ? Status::Internal("batch loader returned "
                                                     "a short result list")
                                  : loaded[m].status();
        for (size_t x = begin; x < cursor; ++x) {
          (*statuses)[misses[x].second] = status;
        }
        continue;
      }
      EntryPtr entry = InsertLoaded(pid, std::move(loaded[m]).value(),
                                    loaded_degraded[m]);
      for (size_t x = begin; x < cursor; ++x) {
        entries[misses[x].second] = entry;
      }
    }
    // Store health was already noted inside LoadMisses, judged only on the
    // subset of misses that actually reached the loader (a victim-tier
    // promotion says nothing about the store).
  }

  // Phase 3: serve each present profile under its entry lock. Occurrences
  // are grouped by entry so every entry is locked exactly ONCE per batch —
  // duplicate pids share a single lock hold and get a stable reference for
  // the whole group instead of re-locking per occurrence. Entries are still
  // locked one at a time, so no lock-order concerns.
  const bool store_unhealthy = StoreUnhealthy();
  auto& order = scratch.order;
  {
    // Grouping occurrences by entry is cache-index bookkeeping, same stage
    // as the phase-1 probe. The locked serve loop below is not spanned — it
    // nests the caller's feature.compute spans.
    ScopedSpan group_span("cache.lookup");
    order.clear();
    for (size_t i = 0; i < pids.size(); ++i) {
      if (entries[i]) order.push_back(static_cast<uint32_t>(i));
    }
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      const Entry* ea = entries[a].get();
      const Entry* eb = entries[b].get();
      if (ea != eb) return ea < eb;
      return a < b;  // per-entry occurrence order stays deterministic
    });
  }
  for (size_t x = 0; x < order.size();) {
    Entry* const entry = entries[order[x]].get();
    std::lock_guard<std::mutex> lock(entry->mu);
    const bool degraded = entry->degraded || store_unhealthy;
    do {
      const uint32_t i = order[x];
      fn(i, entry->profile);
      if (out_degraded != nullptr) (*out_degraded)[i] = degraded;
      ++x;
    } while (x < order.size() && entries[order[x]].get() == entry);
  }
  // Drop the entry references before the next batch reuses the buffer.
  entries.clear();
  return hits;
}

void GCache::UpdateAccounting(LruShard& shard, Entry& entry) {
  const size_t now_bytes = entry.profile.ApproximateBytes();
  const size_t old_bytes = entry.bytes;
  entry.bytes = now_bytes;
  if (now_bytes >= old_bytes) {
    const size_t delta = now_bytes - old_bytes;
    shard.bytes.fetch_add(delta, std::memory_order_relaxed);
    memory_bytes_.fetch_add(delta, std::memory_order_relaxed);
  } else {
    const size_t delta = old_bytes - now_bytes;
    shard.bytes.fetch_sub(delta, std::memory_order_relaxed);
    memory_bytes_.fetch_sub(delta, std::memory_order_relaxed);
  }
}

void GCache::MarkDirty(Entry& entry) {
  // Caller holds entry.mu. The epoch bump is what lets an unlocked
  // snapshot-flush detect writes that landed during its storage round trip.
  ++entry.mutation_epoch;
  if (entry.dirty) return;
  entry.dirty = true;
  DirtyShard& dshard = *dirty_shards_[DirtyIndex(entry.pid)];
  std::lock_guard<std::mutex> lock(dshard.mu);
  if (!entry.in_dirty_list) {
    dshard.dirty.push_back(entry.pid);
    entry.in_dirty_list = true;
  }
}

bool GCache::EntryDegraded(const EntryPtr& entry) const {
  if (StoreUnhealthy()) return true;
  std::lock_guard<std::mutex> lock(entry->mu);
  return entry->degraded;
}

void GCache::NoteStoreHealth(const Status& status, StoreHealthSource source) {
  if (status.IsUnavailable()) {
    point_success_streak_.store(0, std::memory_order_relaxed);
    store_unhealthy_.store(true, std::memory_order_relaxed);
    return;
  }
  if (source == StoreHealthSource::kBatch) {
    // A batch pass swept many pids against the store — representative, so
    // one success clears the flag outright (and resets the point streak;
    // it is only meaningful as *consecutive* successes).
    point_success_streak_.store(0, std::memory_order_relaxed);
    store_unhealthy_.store(false, std::memory_order_relaxed);
    return;
  }
  // Point observation (single-pid eviction/Invalidate write-back). One lucky
  // success mid-outage must not clear the flag while batch traffic is still
  // failing — that flapped the degraded-read marking on and off. Require a
  // streak before trusting it.
  if (!store_unhealthy_.load(std::memory_order_relaxed)) return;
  const int streak =
      point_success_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (streak >= kPointHealthClearStreak) {
    point_success_streak_.store(0, std::memory_order_relaxed);
    store_unhealthy_.store(false, std::memory_order_relaxed);
  }
}

Status GCache::WithProfile(ProfileId pid,
                           const std::function<void(const ProfileData&)>& fn,
                           bool* out_was_hit, bool* out_degraded) {
  if (out_was_hit != nullptr) *out_was_hit = false;
  if (out_degraded != nullptr) *out_degraded = false;
  IPS_ASSIGN_OR_RETURN(auto pair, GetOrLoad(pid, /*create_if_missing=*/false));
  auto& [entry, was_hit] = pair;
  if (out_was_hit != nullptr) *out_was_hit = was_hit;
  const bool store_unhealthy = StoreUnhealthy();
  std::lock_guard<std::mutex> lock(entry->mu);
  fn(entry->profile);
  if (out_degraded != nullptr) {
    *out_degraded = entry->degraded || store_unhealthy;
  }
  return Status::OK();
}

Status GCache::WithProfileMutable(
    ProfileId pid, const std::function<void(ProfileData&)>& fn,
    bool* out_was_hit) {
  if (out_was_hit != nullptr) *out_was_hit = false;
  LruShard& shard = *lru_shards_[LruIndex(pid)];
  // Retry loop: between GetOrLoad handing back the entry and this thread
  // acquiring its lock, a concurrent eviction/Invalidate may have unmapped
  // it. Writing into an unmapped entry would be silently lost (no flush pass
  // can reach it), so re-resolve instead. Terminates in practice: each retry
  // re-inserts the entry at the LRU front, where an eviction pass cannot
  // reach it without first draining the whole shard.
  while (true) {
    IPS_ASSIGN_OR_RETURN(auto pair,
                         GetOrLoad(pid, /*create_if_missing=*/true));
    auto& [entry, was_hit] = pair;
    std::lock_guard<std::mutex> lock(entry->mu);
    if (entry->evicted) continue;
    if (out_was_hit != nullptr) *out_was_hit = was_hit;
    fn(entry->profile);
    UpdateAccounting(shard, *entry);
    MarkDirty(*entry);
    return Status::OK();
  }
}

Status GCache::WithProfileOffLockMutate(
    ProfileId pid, const std::function<bool(ProfileData&)>& work,
    int max_retries) {
  LruShard& shard = *lru_shards_[LruIndex(pid)];
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    // Resolve the resident entry without touching LRU recency: a
    // maintenance pass reading a profile is not evidence of user interest,
    // and promoting victims-to-be would fight the eviction policy.
    EntryPtr entry;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.map.find(pid);
      if (it == shard.map.end()) {
        return Status::NotFound("profile not resident");
      }
      entry = it->second.entry;
    }
    ProfileData snapshot;
    uint64_t epoch = 0;
    {
      std::lock_guard<std::mutex> lock(entry->mu);
      if (entry->evicted) {
        // Unmapped between the shard lookup and the entry lock; re-resolve.
        continue;
      }
      snapshot = entry->profile;
      epoch = entry->mutation_epoch;
    }

    // The expensive part — merge/truncate/shrink — runs here with no lock
    // held, overlapping serving writes and dirty-shard flushes of the same
    // entry.
    if (!work(snapshot)) return Status::OK();

    {
      std::lock_guard<std::mutex> lock(entry->mu);
      if (entry->evicted || entry->mutation_epoch != epoch) {
        // A write (or an eviction) landed during the unlocked pass.
        // Committing the stale snapshot would silently drop that write, so
        // throw this pass away and redo it from the current state.
        if (metrics_ != nullptr) {
          metrics_->GetCounter("compaction.overlap_stalls")->Increment();
        }
        continue;
      }
      entry->profile = std::move(snapshot);
      UpdateAccounting(shard, *entry);
      MarkDirty(*entry);
    }
    return Status::OK();
  }
  return Status::Aborted("off-lock mutate kept losing the epoch race");
}

size_t GCache::EvictFromShard(LruShard& shard, size_t target_bytes) {
  // The eviction mirror of FlushShard's snapshot-then-store-unlocked design.
  // The old shape held shard.mu across FlushEntryLocked — every KV
  // millisecond of a dirty victim's write-back blocked ALL traffic on the
  // shard, and the store landed without any epoch protection against a
  // concurrent writer. Four phases now:
  //   1. collect victims under shard.mu (try_lock probing, Fig 8),
  //      snapshotting profile + epoch one entry lock at a time;
  //   2. write dirty victims back with NO lock held — through the store
  //      broker when installed (an eviction storm coalesces with a flush
  //      storm), else the batch flusher, else per-pid flushes;
  //   3. encode surviving victims for L2 demotion, still unlocked;
  //   4. commit per victim under shard.mu + entry try_lock with the flush
  //      path's mutation-epoch recheck — an entry re-dirtied during the
  //      round trip stays resident with its newer state. The demotion Put
  //      happens under shard.mu BEFORE the map erase, so no concurrent
  //      reload can slip a fresh entry in while stale bytes land in L2.
  struct Victim {
    EntryPtr entry;
    ProfileData snapshot;
    uint64_t epoch = 0;
    bool dirty = false;
    bool degraded = false;
  };
  std::vector<Victim> victims;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    size_t planned = 0;
    auto it = shard.lru.end();
    while (planned < target_bytes && it != shard.lru.begin()) {
      --it;
      const ProfileId pid = *it;
      auto map_it = shard.map.find(pid);
      if (map_it == shard.map.end()) {
        // Stale pid in the list; drop it. (Unreachable now that the map slot
        // owns the list position, kept as a cheap guard.)
        it = shard.lru.erase(it);
        continue;
      }
      EntryPtr entry = map_it->second.entry;
      // Fig 8: probe with try_lock; a contended entry is being served right
      // now — skip it and move up the list instead of blocking.
      std::unique_lock<std::mutex> entry_lock(entry->mu, std::try_to_lock);
      if (!entry_lock.owns_lock()) continue;
      Victim v;
      v.epoch = entry->mutation_epoch;
      v.dirty = entry->dirty;
      v.degraded = entry->degraded;
      // Clean victims only need the snapshot when a tier exists to demote
      // them into; dirty ones always need it for the write-back.
      if (entry->dirty || victim_cache_ != nullptr) {
        v.snapshot = entry->profile;
      }
      planned += entry->bytes;
      v.entry = std::move(entry);
      victims.push_back(std::move(v));
    }
  }
  if (victims.empty()) return 0;

  // Phase 2: dirty write-backs, no lock held. Point-source health: a lone
  // eviction success must not clear an outage flag batch traffic still sees.
  std::vector<Status> statuses(victims.size(), Status::OK());
  std::vector<size_t> dirty_ix;
  for (size_t i = 0; i < victims.size(); ++i) {
    if (victims[i].dirty) dirty_ix.push_back(i);
  }
  if (!dirty_ix.empty()) {
    if (store_broker_ != nullptr || batch_flush_) {
      std::vector<ProfileId> pids;
      std::vector<const ProfileData*> profiles;
      pids.reserve(dirty_ix.size());
      profiles.reserve(dirty_ix.size());
      for (size_t ix : dirty_ix) {
        pids.push_back(victims[ix].entry->pid);
        profiles.push_back(&victims[ix].snapshot);
      }
      std::vector<Status> flushed;
      if (store_broker_ != nullptr) {
        // Snapshot epochs ride along, as in FlushShard: the broker dedups an
        // eviction write-back against an identical in-flight flush of the
        // same pid and orders it behind an older one.
        std::vector<uint64_t> epochs;
        epochs.reserve(dirty_ix.size());
        for (size_t ix : dirty_ix) epochs.push_back(victims[ix].epoch);
        flushed = store_broker_->Store(pids, profiles, epochs);
      } else {
        flushed = batch_flush_(pids, profiles);
      }
      if (flushed.size() != pids.size()) {
        flushed.assign(pids.size(),
                       Status::Internal("batch flusher returned a short "
                                        "result list"));
      }
      for (size_t k = 0; k < dirty_ix.size(); ++k) {
        statuses[dirty_ix[k]] = flushed[k];
      }
    } else {
      for (size_t ix : dirty_ix) {
        statuses[ix] =
            flush_(victims[ix].entry->pid, victims[ix].snapshot);
      }
    }
    bool any_unavailable = false;
    size_t flush_ok = 0;
    for (size_t ix : dirty_ix) {
      if (statuses[ix].ok()) {
        ++flush_ok;
      } else if (statuses[ix].IsUnavailable()) {
        any_unavailable = true;
      }
    }
    NoteStoreHealth(any_unavailable ? Status::Unavailable("eviction flush")
                                    : Status::OK(),
                    StoreHealthSource::kPoint);
    if (metrics_ != nullptr) {
      if (flush_ok > 0) {
        metrics_->GetCounter("cache.flushed")
            ->Increment(static_cast<int64_t>(flush_ok));
      }
      if (flush_ok < dirty_ix.size()) {
        metrics_->GetCounter("cache.flush_failures")
            ->Increment(static_cast<int64_t>(dirty_ix.size() - flush_ok));
      }
    }
  }

  // Phase 3: encode demotions from the snapshots, still unlocked (the codec
  // walk can be hundreds of microseconds for large profiles). WouldAdmit
  // pre-check skips the encode for scan traffic the tier would reject.
  std::vector<std::string> encoded(victims.size());
  std::vector<bool> demote(victims.size(), false);
  if (victim_cache_ != nullptr) {
    for (size_t i = 0; i < victims.size(); ++i) {
      if (!statuses[i].ok()) continue;  // stays resident; nothing to demote
      if (!victim_cache_->WouldAdmit(victims[i].entry->pid)) continue;
      victim_encode_(victims[i].snapshot, &encoded[i]);
      demote[i] = true;
    }
  }

  // Phase 4: commit.
  size_t evicted = 0;
  size_t demoted = 0;
  for (size_t i = 0; i < victims.size(); ++i) {
    if (!statuses[i].ok()) continue;  // write-back failed: flush later, keep
    Victim& v = victims[i];
    const ProfileId pid = v.entry->pid;
    std::lock_guard<std::mutex> lock(shard.mu);
    auto map_it = shard.map.find(pid);
    if (map_it == shard.map.end() || map_it->second.entry != v.entry) {
      continue;  // already gone / replaced while unlocked
    }
    std::unique_lock<std::mutex> entry_lock(v.entry->mu, std::try_to_lock);
    if (!entry_lock.owns_lock()) continue;  // being served again — keep it
    Entry& entry = *v.entry;
    if (entry.mutation_epoch != v.epoch) continue;  // re-dirtied mid-flight
    if (v.dirty) {
      // The snapshot (== current state, by the epoch check) reached the
      // store: the entry is clean and authoritative again.
      entry.dirty = false;
      entry.degraded = false;
    }
    if (demote[i]) {
      if (victim_cache_->Put(pid, std::move(encoded[i]), entry.degraded)) {
        ++demoted;
      }
    }
    entry.evicted = true;
    const size_t bytes = entry.bytes;
    shard.lru.erase(map_it->second.lru_it);
    shard.map.erase(map_it);
    shard.bytes.fetch_sub(bytes, std::memory_order_relaxed);
    memory_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    ++evicted;
  }
  if (metrics_ != nullptr) {
    if (evicted > 0) {
      metrics_->GetCounter("cache.evicted")->Increment(evicted);
    }
    if (demoted > 0) {
      metrics_->GetCounter("cache.demoted")
          ->Increment(static_cast<int64_t>(demoted));
    }
  }
  return evicted;
}

size_t GCache::SwapOnce() {
  const size_t high = static_cast<size_t>(
      static_cast<double>(options_.memory_limit_bytes) *
      options_.high_watermark);
  const size_t low = static_cast<size_t>(
      static_cast<double>(options_.memory_limit_bytes) *
      options_.low_watermark);
  size_t evicted = 0;
  // Evict starting from the largest shard until usage drops under the low
  // watermark (the paper's largest-shard-first strategy).
  while (MemoryBytes() > high) {
    LruShard* largest = nullptr;
    size_t largest_bytes = 0;
    for (auto& shard : lru_shards_) {
      const size_t b = shard->bytes.load(std::memory_order_relaxed);
      if (b > largest_bytes) {
        largest_bytes = b;
        largest = shard.get();
      }
    }
    if (largest == nullptr || largest_bytes == 0) break;
    const size_t over = MemoryBytes() - low;
    const size_t pass = EvictFromShard(*largest, std::min(over, largest_bytes));
    if (pass == 0) break;  // everything contended or dirty-unflushable
    evicted += pass;
    if (MemoryBytes() <= low) break;
  }
  return evicted;
}

Status GCache::FlushEntryLocked(Entry& entry) {
  Status status = flush_(entry.pid, entry.profile);
  NoteStoreHealth(status, StoreHealthSource::kPoint);
  if (status.ok()) {
    entry.dirty = false;
    // The entry's state reached the primary store: whatever stale base it
    // was loaded from, the persisted copy is now the authoritative merge.
    entry.degraded = false;
    if (metrics_ != nullptr) {
      metrics_->GetCounter("cache.flushed")->Increment();
    }
  } else if (metrics_ != nullptr) {
    metrics_->GetCounter("cache.flush_failures")->Increment();
  }
  return status;
}

size_t GCache::FlushShard(DirtyShard& dshard, size_t* out_failures) {
  // Grab the current batch; new dirties accumulate behind it.
  std::list<ProfileId> batch;
  {
    std::lock_guard<std::mutex> lock(dshard.mu);
    batch.swap(dshard.dirty);
  }
  size_t flushed = 0;
  size_t failures = 0;
  std::list<ProfileId> requeue;
  auto it = batch.begin();
  while (it != batch.end()) {
    if (failures >= options_.max_flush_failures_per_pass) {
      // The store is misbehaving: stop the pass and requeue the untried
      // remainder rather than grinding through the whole dirty list (the
      // caller backs off between passes).
      requeue.insert(requeue.end(), it, batch.end());
      break;
    }

    // Gather the next group as unlocked SNAPSHOTS: each entry's profile is
    // copied under its own lock — entries locked strictly one at a time —
    // together with its mutation epoch, then the lock drops. The storage
    // round trip below runs with NO entry lock held, so a multi-millisecond
    // store never blocks readers or writers of the entries being flushed
    // (the old design pinned every entry lock in the group across the round
    // trip: a latency cliff and a lock-ordering hazard).
    const size_t group_max =
        (batch_flush_ || store_broker_ != nullptr)
            ? std::max<size_t>(1, options_.flush_batch_max)
            : 1;
    struct Snapshot {
      EntryPtr entry;
      ProfileData profile;
      uint64_t epoch = 0;
    };
    std::vector<Snapshot> group;
    while (it != batch.end() && group.size() < group_max) {
      const ProfileId pid = *it;
      ++it;
      LruShard& shard = *lru_shards_[LruIndex(pid)];
      EntryPtr entry;
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        auto map_it = shard.map.find(pid);
        if (map_it != shard.map.end()) entry = map_it->second.entry;
      }
      if (!entry) continue;  // evicted (was flushed on eviction)
      std::lock_guard<std::mutex> entry_lock(entry->mu);
      {
        std::lock_guard<std::mutex> dlock(dshard.mu);
        entry->in_dirty_list = false;
      }
      if (!entry->dirty) continue;
      ProfileData copy = entry->profile;
      const uint64_t epoch = entry->mutation_epoch;
      group.push_back(Snapshot{std::move(entry), std::move(copy), epoch});
    }
    if (group.empty()) continue;

    // One storage round trip per group, outside every entry lock: the store
    // broker (which may merge this group with other shards' concurrent
    // groups into one MultiSet, and share in-flight store-backs of hot
    // pids) when installed, else the batch flusher (one MultiSet below),
    // else the per-entry flusher on the group of one.
    std::vector<Status> statuses;
    if (store_broker_ != nullptr || batch_flush_) {
      std::vector<ProfileId> pids;
      std::vector<const ProfileData*> profiles;
      pids.reserve(group.size());
      profiles.reserve(group.size());
      for (const Snapshot& snap : group) {
        pids.push_back(snap.entry->pid);
        profiles.push_back(&snap.profile);
      }
      if (store_broker_ != nullptr) {
        // The snapshot epochs ride along so the broker can tell an
        // identical re-flush (piggyback on the in-flight write) from a
        // newer one (requeue behind it). The commit below still rechecks
        // each entry's live epoch — the broker never changes that contract.
        std::vector<uint64_t> epochs;
        epochs.reserve(group.size());
        for (const Snapshot& snap : group) epochs.push_back(snap.epoch);
        statuses = store_broker_->Store(pids, profiles, epochs);
      } else {
        statuses = batch_flush_(pids, profiles);
      }
      if (statuses.size() != pids.size()) {
        statuses.assign(pids.size(),
                        Status::Internal("batch flusher returned a short "
                                         "result list"));
      }
      if (metrics_ != nullptr) {
        metrics_->GetCounter("cache.batch_flushes")->Increment();
      }
    } else {
      statuses.push_back(flush_(group[0].entry->pid, group[0].profile));
    }

    // Commit: relock each entry and recheck its epoch. A write that landed
    // during the unlocked round trip means the store holds the snapshot but
    // the entry carries newer state — keep it dirty and requeue. The
    // snapshot itself persisted, so it still counts as progress.
    bool any_unavailable = false;
    for (size_t g = 0; g < group.size(); ++g) {
      Entry& entry = *group[g].entry;
      std::lock_guard<std::mutex> entry_lock(entry.mu);
      if (statuses[g].ok()) {
        ++flushed;
        // The snapshot reached the primary store: whatever stale base the
        // entry was loaded from, the persisted copy is now the
        // authoritative merge.
        entry.degraded = false;
        if (entry.mutation_epoch == group[g].epoch) {
          entry.dirty = false;
        } else {
          std::lock_guard<std::mutex> dlock(dshard.mu);
          if (!entry.in_dirty_list) {
            requeue.push_back(entry.pid);
            entry.in_dirty_list = true;
          }
        }
        if (metrics_ != nullptr) {
          metrics_->GetCounter("cache.flushed")->Increment();
        }
      } else {
        if (statuses[g].IsUnavailable()) any_unavailable = true;
        ++failures;
        {
          std::lock_guard<std::mutex> dlock(dshard.mu);
          if (!entry.in_dirty_list) {
            requeue.push_back(entry.pid);
            entry.in_dirty_list = true;
          }
        }
        if (metrics_ != nullptr) {
          metrics_->GetCounter("cache.flush_failures")->Increment();
        }
      }
    }
    NoteStoreHealth(any_unavailable ? Status::Unavailable("batch flush")
                                    : Status::OK());
  }
  if (!requeue.empty()) {
    std::lock_guard<std::mutex> lock(dshard.mu);
    dshard.dirty.splice(dshard.dirty.end(), requeue);
  }
  if (out_failures != nullptr) *out_failures = failures;
  return flushed;
}

size_t GCache::FlushOnce() {
  size_t total = 0;
  for (auto& shard : dirty_shards_) total += FlushShard(*shard);
  return total;
}

void GCache::FlushAll() {
  // Loop because flushes may fail transiently (injected storage errors) and
  // new dirties can appear. Failing rounds back off (doubling, capped) and
  // the loop gives up after a few rounds of zero progress — a dead store at
  // shutdown must not hold the destructor hostage.
  int64_t backoff_ms = 0;
  int stuck_rounds = 0;
  for (int round = 0; round < 64; ++round) {
    size_t failures = 0;
    size_t flushed = 0;
    for (auto& shard : dirty_shards_) {
      size_t shard_failures = 0;
      flushed += FlushShard(*shard, &shard_failures);
      failures += shard_failures;
    }
    if (flushed == 0 && failures == 0 && DirtyCount() == 0) return;
    if (flushed > 0) {
      backoff_ms = 0;
      stuck_rounds = 0;
      if (failures == 0) continue;
    } else if (++stuck_rounds >= 4) {
      // Zero progress — regardless of the failure count: a pass can flush
      // nothing while reporting no failures (e.g. max_flush_failures_per_pass
      // of 0 requeues everything untried), and that must back off and bail
      // like any other stuck pass instead of busy-spinning 64 rounds.
      break;
    }
    backoff_ms = std::min(options_.flush_backoff_max_ms,
                          backoff_ms > 0 ? backoff_ms * 2
                                         : options_.flush_backoff_ms);
    clock_->SleepMs(backoff_ms);
  }
  IPS_LOG(Warn) << "FlushAll: dirty entries remain after bounded retries";
}

Status GCache::Invalidate(ProfileId pid) {
  LruShard& shard = *lru_shards_[LruIndex(pid)];
  // The profile must leave EVERY tier: stale demoted bytes left in L2 would
  // serve a later miss after the handover.
  if (victim_cache_ != nullptr) victim_cache_->Erase(pid);
  // Retry loop: the old shape flushed under the entry lock, dropped it, then
  // erased under the shard lock — a write landing in that window re-dirtied
  // the entry and the erase silently discarded it. Now the erase only
  // happens after re-acquiring both locks and re-checking `dirty`; a write
  // that slipped in sends us back around to flush again.
  for (int attempt = 0; attempt < 16; ++attempt) {
    EntryPtr entry;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.map.find(pid);
      if (it == shard.map.end()) return Status::OK();
      entry = it->second.entry;
    }
    {
      std::lock_guard<std::mutex> entry_lock(entry->mu);
      if (entry->evicted) continue;  // raced an eviction; re-probe the map
      if (entry->dirty) IPS_RETURN_IF_ERROR(FlushEntryLocked(*entry));
    }
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(pid);
    if (it == shard.map.end() || it->second.entry != entry) {
      return Status::OK();
    }
    std::unique_lock<std::mutex> entry_lock(entry->mu, std::try_to_lock);
    // Contended: a writer may hold the lock right now — re-run the flush
    // check rather than erasing state we have not re-examined.
    if (!entry_lock.owns_lock()) continue;
    if (entry->dirty) continue;  // re-dirtied in the window: flush again
    entry->evicted = true;
    shard.lru.erase(it->second.lru_it);
    shard.map.erase(it);
    shard.bytes.fetch_sub(entry->bytes, std::memory_order_relaxed);
    memory_bytes_.fetch_sub(entry->bytes, std::memory_order_relaxed);
    return Status::OK();
  }
  return Status::Aborted("invalidate: entry kept being re-dirtied");
}

std::vector<ProfileId> GCache::CachedIds() const {
  std::vector<ProfileId> ids;
  for (const auto& shard : lru_shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [pid, slot] : shard->map) ids.push_back(pid);
  }
  return ids;
}

size_t GCache::EntryCount() const {
  size_t total = 0;
  for (const auto& shard : lru_shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

size_t GCache::DirtyCount() const {
  size_t total = 0;
  for (const auto& shard : dirty_shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->dirty.size();
  }
  return total;
}

double GCache::HitRatio() const {
  const int64_t h = hits_.load(std::memory_order_relaxed);
  const int64_t m = misses_.load(std::memory_order_relaxed);
  return h + m == 0 ? 0.0
                    : static_cast<double>(h) / static_cast<double>(h + m);
}

void GCache::SwapLoop() {
  std::unique_lock<std::mutex> lock(bg_mu_);
  while (!shutdown_.load(std::memory_order_relaxed)) {
    bg_cv_.wait_for(lock,
                    std::chrono::milliseconds(options_.swap_interval_ms));
    if (shutdown_.load(std::memory_order_relaxed)) return;
    lock.unlock();
    SwapOnce();
    lock.lock();
  }
}

void GCache::FlushLoop(size_t thread_index) {
  DirtyShard& my_shard =
      *dirty_shards_[thread_index % options_.dirty_shards];
  int64_t backoff_ms = 0;  // extra wait after failing passes, doubling
  std::unique_lock<std::mutex> lock(bg_mu_);
  while (!shutdown_.load(std::memory_order_relaxed)) {
    bg_cv_.wait_for(lock, std::chrono::milliseconds(
                              options_.flush_interval_ms + backoff_ms));
    if (shutdown_.load(std::memory_order_relaxed)) return;
    lock.unlock();
    size_t failures = 0;
    FlushShard(my_shard, &failures);
    if (failures == 0) {
      backoff_ms = 0;
    } else {
      backoff_ms = std::min(options_.flush_backoff_max_ms,
                            backoff_ms > 0 ? backoff_ms * 2
                                           : options_.flush_backoff_ms);
    }
    lock.lock();
  }
}

}  // namespace ips
