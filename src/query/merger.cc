#include "query/merger.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <queue>

namespace ips {

namespace {

struct HeapEntry {
  FeatureId fid;
  size_t run;
  size_t index;
};

struct HeapGreater {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.fid != b.fid) return a.fid > b.fid;
    return a.run > b.run;
  }
};

[[noreturn]] void DieUnsorted(size_t run, size_t index) {
  std::fprintf(stderr,
               "MergeSortedRuns: run %zu violates the sorted invariant at "
               "index %zu (non-ascending fid)\n",
               run, index);
  std::abort();
}

void CombineOrAppend(IndexedFeatureStats* out, const FeatureStat& src,
                     ReduceFn reduce) {
  if (!out->empty() && out->stats().back().fid == src.fid) {
    // Same fid as the previously emitted entry: combine in place.
    FeatureStat& dst = *out->MutableBack();
    switch (reduce) {
      case ReduceFn::kSum:
        dst.counts.AccumulateSum(src.counts);
        break;
      case ReduceFn::kMax:
        dst.counts.AccumulateMax(src.counts);
        break;
    }
  } else {
    out->AppendSortedUnchecked(src);
  }
}

// Few runs (the common case — compaction merges adjacent slices, queries
// see a handful of window slices): cursor array on the stack, min-fid by
// linear scan. No heap allocation beyond output growth.
constexpr size_t kMaxScanRuns = 16;

void MergeByScan(const std::vector<const IndexedFeatureStats*>& runs,
                 ReduceFn reduce, IndexedFeatureStats* out) {
  size_t cursor[kMaxScanRuns] = {};
  size_t total = 0;
  for (const auto* run : runs) total += run->size();
  out->Reserve(total);
  for (;;) {
    size_t best = runs.size();
    FeatureId best_fid = 0;
    for (size_t r = 0; r < runs.size(); ++r) {
      if (cursor[r] >= runs[r]->size()) continue;
      const FeatureId fid = runs[r]->stats()[cursor[r]].fid;
      if (best == runs.size() || fid < best_fid) {
        best = r;
        best_fid = fid;
      }
    }
    if (best == runs.size()) return;  // every cursor exhausted
    const size_t idx = cursor[best]++;
    CombineOrAppend(out, runs[best]->stats()[idx], reduce);
    if (cursor[best] < runs[best]->size() &&
        runs[best]->stats()[cursor[best]].fid <= best_fid) {
      DieUnsorted(best, cursor[best]);
    }
  }
}

void MergeByHeap(const std::vector<const IndexedFeatureStats*>& runs,
                 ReduceFn reduce, IndexedFeatureStats* out) {
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapGreater> heap;
  for (size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r]->empty()) {
      heap.push(HeapEntry{runs[r]->stats()[0].fid, r, 0});
    }
  }
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    CombineOrAppend(out, runs[top.run]->stats()[top.index], reduce);
    const size_t next = top.index + 1;
    if (next < runs[top.run]->size()) {
      const FeatureId next_fid = runs[top.run]->stats()[next].fid;
      if (next_fid <= top.fid) DieUnsorted(top.run, next);
      heap.push(HeapEntry{next_fid, top.run, next});
    }
  }
}

}  // namespace

const IndexedFeatureStats* MergeSortedRuns(
    const std::vector<const IndexedFeatureStats*>& runs, ReduceFn reduce,
    IndexedFeatureStats* out) {
  out->Clear();
  if (runs.empty()) return out;
  if (runs.size() == 1) return runs[0];
  if (runs.size() <= kMaxScanRuns) {
    MergeByScan(runs, reduce, out);
  } else {
    MergeByHeap(runs, reduce, out);
  }
  return out;
}

IndexedFeatureStats MergeSortedRuns(
    const std::vector<const IndexedFeatureStats*>& runs, ReduceFn reduce) {
  IndexedFeatureStats out;
  const IndexedFeatureStats* merged = MergeSortedRuns(runs, reduce, &out);
  if (merged != &out) out = *merged;
  return out;
}

}  // namespace ips
