#include "query/merger.h"

#include <algorithm>
#include <queue>

namespace ips {

namespace {

struct HeapEntry {
  FeatureId fid;
  size_t run;
  size_t index;
};

struct HeapGreater {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.fid != b.fid) return a.fid > b.fid;
    return a.run > b.run;
  }
};

}  // namespace

IndexedFeatureStats MergeSortedRuns(
    const std::vector<const IndexedFeatureStats*>& runs, ReduceFn reduce) {
  IndexedFeatureStats out;
  if (runs.empty()) return out;
  if (runs.size() == 1) {
    out = *runs[0];
    return out;
  }

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapGreater> heap;
  for (size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r]->empty()) {
      heap.push(HeapEntry{runs[r]->stats()[0].fid, r, 0});
    }
  }

  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    const FeatureStat& src = runs[top.run]->stats()[top.index];
    if (!out.empty() && out.stats().back().fid == src.fid) {
      // Same fid as the previously emitted entry: combine in place.
      FeatureStat& dst = *out.MutableBack();
      switch (reduce) {
        case ReduceFn::kSum:
          dst.counts.AccumulateSum(src.counts);
          break;
        case ReduceFn::kMax:
          dst.counts.AccumulateMax(src.counts);
          break;
      }
    } else {
      out.AppendSortedUnchecked(src);
    }
    const size_t next = top.index + 1;
    if (next < runs[top.run]->size()) {
      heap.push(HeapEntry{runs[top.run]->stats()[next].fid, top.run, next});
    }
  }
  return out;
}

}  // namespace ips
