// Config-driven feature definitions (Section V-a): after early adopters
// struggled with low-level APIs, IPS grew higher-level, hot-reloadable
// feature templates. A FeatureSpec names one feature-engineering query —
// table, scope, window, sort/decay/filter — and is parsed from the same
// JSON configuration channel as table schemas, so machine-learning engineers
// iterate on features without recompiling or restarting anything.
//
// Example document:
// {
//   "name": "top_sports_7d",
//   "table": "user_profile",
//   "slot": 1, "type": 10,            // type optional; omit = whole slot
//   "window": {"kind": "CURRENT", "span": "7d"},
//   "sort": {"by": "count", "action": "like"},
//   "k": 20,
//   "decay": {"function": "EXP", "factor": 0.9, "unit": "1d"},
//   "filter": {"op": "count_at_least", "action": "click", "operand": 2}
// }
#ifndef IPS_QUERY_FEATURE_SPEC_H_
#define IPS_QUERY_FEATURE_SPEC_H_

#include <optional>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "core/table_schema.h"
#include "query/query.h"

namespace ips {

/// A named, fully-resolved feature query.
struct FeatureSpec {
  std::string name;
  std::string table;
  QuerySpec query;
};

/// Parses one feature document. `schema`, when provided, resolves action
/// *names* ("like") to indices and validates them; without it, only numeric
/// action indices are accepted.
Result<FeatureSpec> ParseFeatureSpec(const ConfigValue& doc,
                                     const TableSchema* schema = nullptr);
Result<FeatureSpec> ParseFeatureSpecJson(std::string_view json,
                                         const TableSchema* schema = nullptr);

/// Parses a document of the form {"features": [<spec>, ...]} — the unit of
/// hot reload for a product's whole feature set.
Result<std::vector<FeatureSpec>> ParseFeatureSet(
    const ConfigValue& doc, const TableSchema* schema = nullptr);

}  // namespace ips

#endif  // IPS_QUERY_FEATURE_SPEC_H_
