#include "query/query.h"

#include <algorithm>

#include "common/hash.h"

namespace ips {

namespace {

using Accumulator = QueryScratch::Accumulator;

// Accumulator (re)initialization overwrites a possibly-reused element: the
// count/weight buffers keep whatever capacity a previous query grew them to,
// so a warmed scratch initializes without touching the heap.
void InitAccumulator(Accumulator& acc, const FeatureStat& stat, double weight,
                     TimestampMs slice_end_ms) {
  acc.fid = stat.fid;
  acc.counts = stat.counts;
  acc.weighted.assign(stat.counts.size(), 0.0);
  for (size_t i = 0; i < stat.counts.size(); ++i) {
    acc.weighted[i] = static_cast<double>(stat.counts[i]) * weight;
  }
  acc.newest_ms = slice_end_ms;
}

void AccumulateInto(Accumulator& acc, const FeatureStat& stat, double weight,
                    TimestampMs slice_end_ms, ReduceFn reduce) {
  switch (reduce) {
    case ReduceFn::kSum:
      acc.counts.AccumulateSum(stat.counts);
      break;
    case ReduceFn::kMax:
      acc.counts.AccumulateMax(stat.counts);
      break;
  }
  if (acc.weighted.size() < stat.counts.size()) {
    acc.weighted.resize(stat.counts.size(), 0.0);
  }
  for (size_t i = 0; i < stat.counts.size(); ++i) {
    const double contribution = static_cast<double>(stat.counts[i]) * weight;
    if (reduce == ReduceFn::kSum) {
      acc.weighted[i] += contribution;
    } else {
      acc.weighted[i] = std::max(acc.weighted[i], contribution);
    }
  }
  acc.newest_ms = std::max(acc.newest_ms, slice_end_ms);
}

// `sorted_fids` is the scratch-held sorted copy of filter.fids (only
// populated for the fid-set predicates).
bool PassesFilter(const FilterSpec& filter,
                  const std::vector<FeatureId>& sorted_fids, FeatureId fid,
                  const CountVector& counts) {
  switch (filter.op) {
    case FilterOp::kNone:
      return true;
    case FilterOp::kCountAtLeast:
      return counts.At(filter.action) >= filter.operand;
    case FilterOp::kCountLess:
      return counts.At(filter.action) < filter.operand;
    case FilterOp::kFidIn:
      return std::binary_search(sorted_fids.begin(), sorted_fids.end(), fid);
    case FilterOp::kFidNotIn:
      return !std::binary_search(sorted_fids.begin(), sorted_fids.end(), fid);
  }
  return true;
}

// Strict-weak ordering for the final sort; works over Accumulator (the
// serving path sorts accumulator indices) and FeatureResult alike. Weighted
// values are used for the count sort so decay queries rank by decayed score,
// as the API intends.
template <typename T>
bool ResultLess(const T& a, const T& b, SortBy sort_by, ActionIndex action) {
  switch (sort_by) {
    case SortBy::kActionCount: {
      const double wa = a.WeightedAt(action);
      const double wb = b.WeightedAt(action);
      if (wa != wb) return wa > wb;  // descending by score
      return a.fid < b.fid;         // deterministic tie-break
    }
    case SortBy::kTimestamp:
      if (a.newest_ms != b.newest_ms) return a.newest_ms > b.newest_ms;
      return a.fid < b.fid;
    case SortBy::kFeatureId:
      return a.fid < b.fid;
  }
  return a.fid < b.fid;
}

}  // namespace

Status ExecuteQueryInto(const ProfileData& profile, const QuerySpec& spec,
                        TimestampMs now_ms, QueryScratch* scratch,
                        QueryResult* out) {
  IPS_RETURN_IF_ERROR(spec.decay.Validate());
  IPS_ASSIGN_OR_RETURN(auto window, spec.time_range.Resolve(profile, now_ms));
  const auto [from_ms, to_ms] = window;

  ++scratch->uses;
  out->slices_scanned = 0;
  out->features_merged = 0;

  const FilterSpec& filter = spec.filter;
  if (filter.op == FilterOp::kFidIn || filter.op == FilterOp::kFidNotIn) {
    scratch->filter_fids.assign(filter.fids.begin(), filter.fids.end());
    std::sort(scratch->filter_fids.begin(), scratch->filter_fids.end());
  }

  // Step 1 (paper II-B): locate the sorted stat runs of the slices
  // overlapping the window. The slice list is newest-first; once a slice
  // ends at or before `from` every older slice is out of range too. Knowing
  // every run's length up front is what lets step 2 size its table exactly
  // once — the payoff of keeping per-slice stats as sorted fid_index runs.
  scratch->runs.clear();
  size_t total_entries = 0;
  for (const auto& slice : profile.slices()) {
    if (slice.start_ms() >= to_ms) continue;  // newer than the window
    if (slice.end_ms() <= from_ms) break;     // older; list is sorted
    const InstanceSet* set = slice.FindSlot(spec.slot);
    if (set == nullptr) continue;
    ++out->slices_scanned;

    // Decay weight depends on the age of the slice midpoint relative to the
    // window end (recent slices weigh ~1).
    const TimestampMs mid = slice.start_ms() + slice.DurationMs() / 2;
    const double weight = spec.decay.WeightForAge(to_ms - mid);

    auto add_run = [&](const IndexedFeatureStats& stats) {
      if (stats.empty()) return;
      scratch->runs.push_back({&stats, weight, slice.end_ms()});
      total_entries += stats.size();
    };
    if (spec.type.has_value()) {
      const IndexedFeatureStats* stats = set->Find(*spec.type);
      if (stats != nullptr) add_run(*stats);
    } else {
      for (const auto& [type, stats] : set->types()) add_run(stats);
    }
  }

  // Step 2: merge and aggregate feature counts across the runs into the
  // dense accumulator array, reusing elements (and their heap blocks) from
  // previous queries.
  scratch->acc_count = 0;
  auto& accs = scratch->accs;
  auto new_acc = [&](const FeatureStat& stat, double weight,
                     TimestampMs end_ms) -> uint32_t {
    const size_t idx = scratch->acc_count++;
    if (idx == accs.size()) accs.emplace_back();
    InitAccumulator(accs[idx], stat, weight, end_ms);
    return static_cast<uint32_t>(idx);
  };

  if (scratch->runs.size() == 1) {
    // Single overlapping run: fids are unique and already sorted, so the
    // accumulators are just the run in order — no index needed at all.
    const QueryScratch::Run& run = scratch->runs[0];
    for (const auto& stat : run.stats->stats()) {
      new_acc(stat, run.weight, run.end_ms);
    }
  } else if (!scratch->runs.empty()) {
    // Flat open-addressing index over the dense accumulators (slot value =
    // index + 1, 0 = empty; linear probing). Sized once from the known run
    // lengths to a load factor <= 0.5, cleared with one fill — no rehashing
    // and no per-node allocations, unlike the unordered_map it replaced.
    size_t needed = 16;
    while (needed < 2 * total_entries) needed <<= 1;
    if (scratch->table.size() < needed) scratch->table.resize(needed);
    scratch->table_size = needed;
    std::fill_n(scratch->table.begin(), needed, 0u);
    const size_t mask = needed - 1;

    for (const QueryScratch::Run& run : scratch->runs) {
      for (const auto& stat : run.stats->stats()) {
        size_t idx = static_cast<size_t>(Mix64(stat.fid)) & mask;
        for (;;) {
          const uint32_t slot = scratch->table[idx];
          if (slot == 0) {
            scratch->table[idx] = new_acc(stat, run.weight, run.end_ms) + 1;
            break;
          }
          Accumulator& acc = accs[slot - 1];
          if (acc.fid == stat.fid) {
            AccumulateInto(acc, stat, run.weight, run.end_ms, spec.reduce);
            break;
          }
          idx = (idx + 1) & mask;
        }
      }
    }
  }

  out->features_merged = scratch->acc_count;

  // Step 3: filter + top-K over accumulator INDICES. Sorting 4-byte indices
  // instead of FeatureResult objects avoids shuffling their heap buffers,
  // and only the K winners ever get materialized — so the result vector's
  // high-water size is the result size, not the merged-feature count, and
  // its elements (with their buffers) survive between queries.
  auto& order = scratch->emit_order;
  order.clear();
  for (size_t i = 0; i < scratch->acc_count; ++i) {
    const Accumulator& acc = accs[i];
    if (PassesFilter(filter, scratch->filter_fids, acc.fid, acc.counts)) {
      order.push_back(static_cast<uint32_t>(i));
    }
  }
  auto less = [&](uint32_t a, uint32_t b) {
    return ResultLess(accs[a], accs[b], spec.sort_by, spec.sort_action);
  };
  size_t count = order.size();
  if (spec.k > 0 && spec.k < count) {
    // partial_sort keeps the serving cost at O(n log k) for the common
    // small-k case.
    std::partial_sort(order.begin(), order.begin() + spec.k, order.end(),
                      less);
    count = spec.k;
  } else {
    std::sort(order.begin(), order.end(), less);
  }

  // Step 4: emit the winners, overwriting `out`'s existing feature elements
  // in place so their buffers are reused; the vector only grows past its
  // high-water size on a bigger-than-ever result.
  auto& features = out->features;
  for (size_t i = 0; i < count; ++i) {
    const Accumulator& acc = accs[order[i]];
    if (i == features.size()) features.emplace_back();
    FeatureResult& f = features[i];
    f.fid = acc.fid;
    f.counts = acc.counts;
    f.weighted.assign(acc.weighted.begin(), acc.weighted.end());
    f.newest_ms = acc.newest_ms;
  }
  features.resize(count);
  return Status::OK();
}

Result<QueryResult> ExecuteQuery(const ProfileData& profile,
                                 const QuerySpec& spec, TimestampMs now_ms) {
  QueryResult result;
  IPS_RETURN_IF_ERROR(ExecuteQueryInto(profile, spec, now_ms,
                                       &QueryScratch::ThreadLocal(), &result));
  return result;
}

Result<QueryResult> GetProfileTopK(const ProfileData& profile, SlotId slot,
                                   std::optional<TypeId> type,
                                   const TimeRange& range, SortBy sort_by,
                                   ActionIndex sort_action, size_t k,
                                   TimestampMs now_ms, ReduceFn reduce) {
  QuerySpec spec;
  spec.slot = slot;
  spec.type = type;
  spec.time_range = range;
  spec.sort_by = sort_by;
  spec.sort_action = sort_action;
  spec.k = k;
  spec.reduce = reduce;
  return ExecuteQuery(profile, spec, now_ms);
}

Result<QueryResult> GetProfileFilter(const ProfileData& profile, SlotId slot,
                                     std::optional<TypeId> type,
                                     const TimeRange& range,
                                     const FilterSpec& filter,
                                     TimestampMs now_ms, ReduceFn reduce) {
  QuerySpec spec;
  spec.slot = slot;
  spec.type = type;
  spec.time_range = range;
  spec.filter = filter;
  spec.sort_by = SortBy::kFeatureId;
  spec.reduce = reduce;
  return ExecuteQuery(profile, spec, now_ms);
}

Result<QueryResult> GetProfileDecay(const ProfileData& profile, SlotId slot,
                                    std::optional<TypeId> type,
                                    const TimeRange& range,
                                    const DecaySpec& decay,
                                    TimestampMs now_ms, ReduceFn reduce) {
  QuerySpec spec;
  spec.slot = slot;
  spec.type = type;
  spec.time_range = range;
  spec.decay = decay;
  spec.sort_by = SortBy::kActionCount;
  spec.reduce = reduce;
  return ExecuteQuery(profile, spec, now_ms);
}

}  // namespace ips
