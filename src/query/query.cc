#include "query/query.h"

#include <algorithm>
#include <unordered_map>

namespace ips {

namespace {

// Accumulator keyed by fid during the multi-way merge. A hash map (rather
// than a k-way heap over sorted runs) keeps the implementation simple while
// preserving the sorted-per-slice inputs for the heap variant benchmarked in
// bench_micro; slices overlapping a window are few (the compaction ladder
// bounds them) so both are fast.
struct Accumulator {
  CountVector counts;
  std::vector<double> weighted;
  TimestampMs newest_ms = 0;
  bool initialized = false;
};

void Accumulate(Accumulator& acc, const FeatureStat& stat, double weight,
                TimestampMs slice_end_ms, ReduceFn reduce) {
  if (!acc.initialized) {
    acc.counts = stat.counts;
    acc.weighted.assign(stat.counts.size(), 0.0);
    for (size_t i = 0; i < stat.counts.size(); ++i) {
      acc.weighted[i] = static_cast<double>(stat.counts[i]) * weight;
    }
    acc.newest_ms = slice_end_ms;
    acc.initialized = true;
    return;
  }
  switch (reduce) {
    case ReduceFn::kSum:
      acc.counts.AccumulateSum(stat.counts);
      break;
    case ReduceFn::kMax:
      acc.counts.AccumulateMax(stat.counts);
      break;
  }
  if (acc.weighted.size() < stat.counts.size()) {
    acc.weighted.resize(stat.counts.size(), 0.0);
  }
  for (size_t i = 0; i < stat.counts.size(); ++i) {
    const double contribution = static_cast<double>(stat.counts[i]) * weight;
    if (reduce == ReduceFn::kSum) {
      acc.weighted[i] += contribution;
    } else {
      acc.weighted[i] = std::max(acc.weighted[i], contribution);
    }
  }
  acc.newest_ms = std::max(acc.newest_ms, slice_end_ms);
}

bool PassesFilter(const FilterSpec& filter, const FeatureResult& feature) {
  switch (filter.op) {
    case FilterOp::kNone:
      return true;
    case FilterOp::kCountAtLeast:
      return feature.counts.At(filter.action) >= filter.operand;
    case FilterOp::kCountLess:
      return feature.counts.At(filter.action) < filter.operand;
    case FilterOp::kFidIn:
      return std::binary_search(filter.fids.begin(), filter.fids.end(),
                                feature.fid);
    case FilterOp::kFidNotIn:
      return !std::binary_search(filter.fids.begin(), filter.fids.end(),
                                 feature.fid);
  }
  return true;
}

// Strict-weak ordering for the final sort. Weighted values are used for the
// count sort so decay queries rank by decayed score, as the API intends.
bool ResultLess(const FeatureResult& a, const FeatureResult& b, SortBy sort_by,
                ActionIndex action) {
  switch (sort_by) {
    case SortBy::kActionCount: {
      const double wa = a.WeightedAt(action);
      const double wb = b.WeightedAt(action);
      if (wa != wb) return wa > wb;  // descending by score
      return a.fid < b.fid;         // deterministic tie-break
    }
    case SortBy::kTimestamp:
      if (a.newest_ms != b.newest_ms) return a.newest_ms > b.newest_ms;
      return a.fid < b.fid;
    case SortBy::kFeatureId:
      return a.fid < b.fid;
  }
  return a.fid < b.fid;
}

}  // namespace

Result<QueryResult> ExecuteQuery(const ProfileData& profile,
                                 const QuerySpec& spec, TimestampMs now_ms) {
  IPS_RETURN_IF_ERROR(spec.decay.Validate());
  IPS_ASSIGN_OR_RETURN(auto window, spec.time_range.Resolve(profile, now_ms));
  const auto [from_ms, to_ms] = window;

  FilterSpec filter = spec.filter;
  std::sort(filter.fids.begin(), filter.fids.end());

  QueryResult result;
  std::unordered_map<FeatureId, Accumulator> merged;

  // Step 1 (paper II-B): locate the slices overlapping the window. The slice
  // list is newest-first; once a slice ends at or before `from` every older
  // slice is out of range too.
  for (const auto& slice : profile.slices()) {
    if (slice.start_ms() >= to_ms) continue;  // newer than the window
    if (slice.end_ms() <= from_ms) break;     // older; list is sorted
    const InstanceSet* set = slice.FindSlot(spec.slot);
    if (set == nullptr) continue;
    ++result.slices_scanned;

    // Decay weight depends on the age of the slice midpoint relative to the
    // window end (recent slices weigh ~1).
    const TimestampMs mid = slice.start_ms() + slice.DurationMs() / 2;
    const double weight = spec.decay.WeightForAge(to_ms - mid);

    // Step 2: merge and aggregate feature counts under the scope.
    auto merge_stats = [&](const IndexedFeatureStats& stats) {
      for (const auto& stat : stats.stats()) {
        Accumulate(merged[stat.fid], stat, weight, slice.end_ms(),
                   spec.reduce);
      }
    };
    if (spec.type.has_value()) {
      const IndexedFeatureStats* stats = set->Find(*spec.type);
      if (stats != nullptr) merge_stats(*stats);
    } else {
      for (const auto& [type, stats] : set->types()) merge_stats(stats);
    }
  }

  result.features_merged = merged.size();
  result.features.reserve(merged.size());
  for (auto& [fid, acc] : merged) {
    FeatureResult feature;
    feature.fid = fid;
    feature.counts = std::move(acc.counts);
    feature.weighted = std::move(acc.weighted);
    feature.newest_ms = acc.newest_ms;
    if (PassesFilter(filter, feature)) {
      result.features.push_back(std::move(feature));
    }
  }

  // Step 3: final sort (+ top-K truncation). partial_sort keeps the serving
  // cost at O(n log k) for the common small-k case.
  auto less = [&](const FeatureResult& a, const FeatureResult& b) {
    return ResultLess(a, b, spec.sort_by, spec.sort_action);
  };
  if (spec.k > 0 && spec.k < result.features.size()) {
    std::partial_sort(result.features.begin(),
                      result.features.begin() + spec.k,
                      result.features.end(), less);
    result.features.resize(spec.k);
  } else {
    std::sort(result.features.begin(), result.features.end(), less);
  }
  return result;
}

Result<QueryResult> GetProfileTopK(const ProfileData& profile, SlotId slot,
                                   std::optional<TypeId> type,
                                   const TimeRange& range, SortBy sort_by,
                                   ActionIndex sort_action, size_t k,
                                   TimestampMs now_ms, ReduceFn reduce) {
  QuerySpec spec;
  spec.slot = slot;
  spec.type = type;
  spec.time_range = range;
  spec.sort_by = sort_by;
  spec.sort_action = sort_action;
  spec.k = k;
  spec.reduce = reduce;
  return ExecuteQuery(profile, spec, now_ms);
}

Result<QueryResult> GetProfileFilter(const ProfileData& profile, SlotId slot,
                                     std::optional<TypeId> type,
                                     const TimeRange& range,
                                     const FilterSpec& filter,
                                     TimestampMs now_ms, ReduceFn reduce) {
  QuerySpec spec;
  spec.slot = slot;
  spec.type = type;
  spec.time_range = range;
  spec.filter = filter;
  spec.sort_by = SortBy::kFeatureId;
  spec.reduce = reduce;
  return ExecuteQuery(profile, spec, now_ms);
}

Result<QueryResult> GetProfileDecay(const ProfileData& profile, SlotId slot,
                                    std::optional<TypeId> type,
                                    const TimeRange& range,
                                    const DecaySpec& decay,
                                    TimestampMs now_ms, ReduceFn reduce) {
  QuerySpec spec;
  spec.slot = slot;
  spec.type = type;
  spec.time_range = range;
  spec.decay = decay;
  spec.sort_by = SortBy::kActionCount;
  spec.reduce = reduce;
  return ExecuteQuery(profile, spec, now_ms);
}

}  // namespace ips
