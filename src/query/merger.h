// K-way merge over sorted IndexedFeatureStats runs. The hash-based
// accumulator in query.cc is the default serving path; this heap merger is
// the alternative that exploits the per-slice fid ordering (the reason the
// data model keeps stats sorted — Section III-B's fid_index). Compaction uses
// it to merge many slices without rehashing, and bench_micro compares the
// two strategies.
#ifndef IPS_QUERY_MERGER_H_
#define IPS_QUERY_MERGER_H_

#include <vector>

#include "core/feature_stat.h"
#include "core/types.h"

namespace ips {

/// Merges any number of sorted-by-fid stat runs into one sorted run,
/// combining same-fid entries with `reduce`. Inputs must satisfy IsSorted().
IndexedFeatureStats MergeSortedRuns(
    const std::vector<const IndexedFeatureStats*>& runs, ReduceFn reduce);

}  // namespace ips

#endif  // IPS_QUERY_MERGER_H_
