// K-way merge over sorted IndexedFeatureStats runs. The flat accumulator in
// query.cc is the default serving path; this heap merger is the alternative
// that exploits the per-slice fid ordering (the reason the data model keeps
// stats sorted — Section III-B's fid_index). Compaction uses it to merge many
// slices without rehashing, and bench_micro compares the two strategies.
#ifndef IPS_QUERY_MERGER_H_
#define IPS_QUERY_MERGER_H_

#include <vector>

#include "core/feature_stat.h"
#include "core/types.h"

namespace ips {

/// Merges any number of sorted-by-fid stat runs, combining same-fid entries
/// with `reduce`, into `*out` (cleared first; heap capacity is retained, so a
/// caller that merges repeatedly reuses one buffer). Returns the merged run:
/// `runs[0]` itself for the single-run case — a passthrough, NO copy is made
/// and `*out` stays empty; callers that need ownership copy explicitly —
/// and `out` otherwise.
///
/// Inputs must satisfy IsSorted(). A violation detected during the merge
/// aborts the process (even in release builds): continuing would silently
/// drop or mis-combine entries, and sorted-ness is a core data-model
/// invariant enforced at every decode boundary.
const IndexedFeatureStats* MergeSortedRuns(
    const std::vector<const IndexedFeatureStats*>& runs, ReduceFn reduce,
    IndexedFeatureStats* out);

/// Value-returning convenience wrapper (copies in the single-run case).
IndexedFeatureStats MergeSortedRuns(
    const std::vector<const IndexedFeatureStats*>& runs, ReduceFn reduce);

}  // namespace ips

#endif  // IPS_QUERY_MERGER_H_
