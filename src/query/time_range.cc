#include "query/time_range.h"

#include "common/config.h"

namespace ips {

TimeRange TimeRange::Current(int64_t span_ms) {
  TimeRange r;
  r.kind_ = TimeRangeKind::kCurrent;
  r.span_ms_ = span_ms;
  return r;
}

TimeRange TimeRange::Relative(int64_t span_ms) {
  TimeRange r;
  r.kind_ = TimeRangeKind::kRelative;
  r.span_ms_ = span_ms;
  return r;
}

TimeRange TimeRange::Absolute(TimestampMs from_ms, TimestampMs to_ms) {
  TimeRange r;
  r.kind_ = TimeRangeKind::kAbsolute;
  r.from_ms_ = from_ms;
  r.to_ms_ = to_ms;
  return r;
}

Result<std::pair<TimestampMs, TimestampMs>> TimeRange::Resolve(
    const ProfileData& profile, TimestampMs now_ms) const {
  TimestampMs from = 0, to = 0;
  switch (kind_) {
    case TimeRangeKind::kCurrent:
      if (span_ms_ <= 0) {
        return Status::InvalidArgument("CURRENT span must be positive");
      }
      to = now_ms;
      from = now_ms - span_ms_;
      break;
    case TimeRangeKind::kRelative: {
      if (span_ms_ <= 0) {
        return Status::InvalidArgument("RELATIVE span must be positive");
      }
      const TimestampMs anchor =
          profile.LastActionMs() > 0 ? profile.LastActionMs()
                                     : profile.NewestMs();
      to = anchor + 1;  // inclusive of the anchoring action
      from = anchor - span_ms_;
      break;
    }
    case TimeRangeKind::kAbsolute:
      from = from_ms_;
      to = to_ms_;
      if (from >= to) {
        return Status::InvalidArgument("ABSOLUTE window inverted or empty");
      }
      break;
  }
  return std::make_pair(from, to);
}

std::string TimeRange::ToString() const {
  switch (kind_) {
    case TimeRangeKind::kCurrent:
      return "CURRENT(" + FormatDurationMs(span_ms_) + ")";
    case TimeRangeKind::kRelative:
      return "RELATIVE(" + FormatDurationMs(span_ms_) + ")";
    case TimeRangeKind::kAbsolute:
      return "ABSOLUTE[" + std::to_string(from_ms_) + "," +
             std::to_string(to_ms_) + ")";
  }
  return "?";
}

}  // namespace ips
