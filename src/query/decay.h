// Decay functions for get_profile_decay (Section II-B): weight feature
// counts by the age of the slice they came from so recent behaviour
// dominates.
#ifndef IPS_QUERY_DECAY_H_
#define IPS_QUERY_DECAY_H_

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/status.h"

namespace ips {

enum class DecayFunction : int {
  kNone = 0,
  /// weight = decay_factor ^ (age / unit). factor in (0, 1].
  kExponential = 1,
  /// weight = max(0, 1 - decay_factor * age / unit).
  kLinear = 2,
  /// weight = 1 for age < unit, decay_factor otherwise (two-step).
  kStep = 3,
};

/// Decay specification: the function, its factor, and the time unit an "age
/// of 1" corresponds to (e.g. one day).
struct DecaySpec {
  DecayFunction function = DecayFunction::kNone;
  double factor = 1.0;
  int64_t unit_ms = kMillisPerDay;

  /// Weight for data of the given age. Ages <= 0 weigh 1.
  double WeightForAge(int64_t age_ms) const;

  /// Validates factor/unit ranges for the chosen function.
  Status Validate() const;

  std::string ToString() const;
};

Result<DecayFunction> ParseDecayFunction(std::string_view name);

}  // namespace ips

#endif  // IPS_QUERY_DECAY_H_
