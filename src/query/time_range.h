// Time-range specification for read APIs (Section II-B). Three kinds:
//   CURRENT  — window ending "now": [now - span, now)
//   RELATIVE — window anchored at the profile's most recent action:
//              [last_action - span, last_action]
//   ABSOLUTE — explicit [from, to) in history.
#ifndef IPS_QUERY_TIME_RANGE_H_
#define IPS_QUERY_TIME_RANGE_H_

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "core/profile_data.h"

namespace ips {

enum class TimeRangeKind : int {
  kCurrent = 0,
  kRelative = 1,
  kAbsolute = 2,
};

class TimeRange {
 public:
  /// CURRENT window of the given span.
  static TimeRange Current(int64_t span_ms);
  /// RELATIVE window of the given span anchored on the most recent action.
  static TimeRange Relative(int64_t span_ms);
  /// ABSOLUTE window [from_ms, to_ms).
  static TimeRange Absolute(TimestampMs from_ms, TimestampMs to_ms);

  TimeRangeKind kind() const { return kind_; }
  int64_t span_ms() const { return span_ms_; }

  /// Materializes the closed-open window [from, to) against a concrete
  /// profile and the current time. Returns InvalidArgument for empty or
  /// inverted windows.
  Result<std::pair<TimestampMs, TimestampMs>> Resolve(
      const ProfileData& profile, TimestampMs now_ms) const;

  std::string ToString() const;

 private:
  TimeRangeKind kind_ = TimeRangeKind::kCurrent;
  int64_t span_ms_ = 0;
  TimestampMs from_ms_ = 0;
  TimestampMs to_ms_ = 0;
};

}  // namespace ips

#endif  // IPS_QUERY_TIME_RANGE_H_
