// The feature-computation engine of IPS (Section II-B): given a profile, a
// (slot, type) scope and a time range, collect the overlapping slices, run a
// multi-way merge + aggregation over their feature stats (optionally decay-
// weighted by slice age), then filter / sort / top-K the aggregated result.
// This is the computation that runs inline on every feature query — the
// paper's core departure from plain key-value profile stores.
#ifndef IPS_QUERY_QUERY_H_
#define IPS_QUERY_QUERY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "core/profile_data.h"
#include "core/types.h"
#include "query/decay.h"
#include "query/scratch.h"
#include "query/time_range.h"

namespace ips {

/// One aggregated feature in a query result.
struct FeatureResult {
  FeatureId fid = 0;
  /// Counts aggregated across the window (reduce function of the table).
  CountVector counts;
  /// Decay-weighted counts; equals raw counts when no decay is applied.
  std::vector<double> weighted;
  /// End timestamp of the newest slice that contributed (for sort-by-time).
  TimestampMs newest_ms = 0;

  /// Weighted value of one action dimension (0 when out of range).
  double WeightedAt(size_t i) const {
    return i < weighted.size() ? weighted[i] : 0.0;
  }
};

/// Filter predicates for get_profile_filter.
enum class FilterOp : int {
  kNone = 0,
  kCountAtLeast = 1,   // counts[action] >= operand
  kCountLess = 2,      // counts[action] < operand
  kFidIn = 3,          // fid is in the provided set
  kFidNotIn = 4,
};

struct FilterSpec {
  FilterOp op = FilterOp::kNone;
  ActionIndex action = 0;
  int64_t operand = 0;
  std::vector<FeatureId> fids;  // for kFidIn / kFidNotIn (sorted internally)
};

/// Fully specified query. The three public read APIs are thin wrappers that
/// populate this struct.
struct QuerySpec {
  SlotId slot = 0;
  /// Type scope; nullopt means "all types in the slot" (the Listing 1 query
  /// groups over a whole slot).
  std::optional<TypeId> type;
  TimeRange time_range = TimeRange::Current(kMillisPerDay);
  SortBy sort_by = SortBy::kActionCount;
  /// Action dimension used when sort_by == kActionCount.
  ActionIndex sort_action = 0;
  /// Maximum results; 0 means unlimited.
  size_t k = 0;
  DecaySpec decay;
  FilterSpec filter;
  /// Reduce function for cross-slice aggregation (from the table schema).
  ReduceFn reduce = ReduceFn::kSum;
};

struct QueryResult {
  std::vector<FeatureResult> features;
  /// Number of slices that overlapped the window (observability; the paper
  /// reports average slice-list lengths).
  size_t slices_scanned = 0;
  /// Total feature entries merged before filter/top-K.
  size_t features_merged = 0;
  /// Graceful degradation: the profile behind this result may be stale — it
  /// was loaded from a fallback replica during a storage outage, or is a
  /// resident copy that currently cannot be revalidated. Callers choosing
  /// availability over freshness use it as-is; strict callers treat it as a
  /// miss.
  bool degraded = false;
};

/// Executes `spec` against `profile` at time `now_ms`.
///
/// Thread-compatibility: takes the profile by const reference; callers hold
/// whatever lock guards the profile (cache entry lock on the serving path).
Result<QueryResult> ExecuteQuery(const ProfileData& profile,
                                 const QuerySpec& spec, TimestampMs now_ms);

/// Allocation-free core of ExecuteQuery: all transient state lives in
/// `*scratch` and the result is written into `*out` reusing whatever storage
/// it already holds (`out->features` elements are overwritten in place and
/// the vector is resized to the result count). With a warmed scratch and a
/// reused `out` of stable shape, a query performs zero heap allocations —
/// the property the bench_micro --smoke gate asserts.
///
/// `out->degraded` is left untouched for the caller to set.
Status ExecuteQueryInto(const ProfileData& profile, const QuerySpec& spec,
                        TimestampMs now_ms, QueryScratch* scratch,
                        QueryResult* out);

/// Convenience wrappers mirroring the paper's three read APIs.
Result<QueryResult> GetProfileTopK(const ProfileData& profile, SlotId slot,
                                   std::optional<TypeId> type,
                                   const TimeRange& range, SortBy sort_by,
                                   ActionIndex sort_action, size_t k,
                                   TimestampMs now_ms,
                                   ReduceFn reduce = ReduceFn::kSum);

Result<QueryResult> GetProfileFilter(const ProfileData& profile, SlotId slot,
                                     std::optional<TypeId> type,
                                     const TimeRange& range,
                                     const FilterSpec& filter,
                                     TimestampMs now_ms,
                                     ReduceFn reduce = ReduceFn::kSum);

Result<QueryResult> GetProfileDecay(const ProfileData& profile, SlotId slot,
                                    std::optional<TypeId> type,
                                    const TimeRange& range,
                                    const DecaySpec& decay,
                                    TimestampMs now_ms,
                                    ReduceFn reduce = ReduceFn::kSum);

}  // namespace ips

#endif  // IPS_QUERY_QUERY_H_
