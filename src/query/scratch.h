// Reusable per-thread working memory for the query compute path.
//
// ExecuteQuery runs on every read; its transient state (the run list, the
// fid-keyed accumulator table, filter fid copies, merge buffers) used to be
// rebuilt on the heap per call. A QueryScratch owns all of it with retained
// capacity, so a warmed thread executes queries with ZERO steady-state heap
// allocations in the compute core — the property bench_micro's --smoke gate
// asserts with the operator-new counting hook.
//
// Not thread-safe; use ThreadLocal() or one instance per worker. Contents
// between queries are unspecified (buffers hold stale data on purpose).
#ifndef IPS_QUERY_SCRATCH_H_
#define IPS_QUERY_SCRATCH_H_

#include <cstdint>
#include <vector>

#include "core/feature_stat.h"
#include "core/types.h"

namespace ips {

struct QueryScratch {
  /// One window-overlapping sorted stat run: the slice's fid_index for the
  /// queried (slot, type) scope plus the slice-derived merge parameters.
  struct Run {
    const IndexedFeatureStats* stats;
    double weight;
    TimestampMs end_ms;
  };

  /// One merged feature. Dense storage: the first `acc_count` elements of
  /// `accs` are live; elements are overwritten in place across queries so
  /// their count/weight buffers keep their high-water capacity.
  struct Accumulator {
    FeatureId fid = 0;
    CountVector counts;
    std::vector<double> weighted;
    TimestampMs newest_ms = 0;

    /// Weighted value of one action dimension (0 when out of range), the
    /// sort key for count-ordered results.
    double WeightedAt(size_t i) const {
      return i < weighted.size() ? weighted[i] : 0.0;
    }
  };

  std::vector<Run> runs;
  std::vector<Accumulator> accs;
  size_t acc_count = 0;

  /// Open-addressing index over `accs`: slot value = accumulator index + 1,
  /// 0 = empty. Only the first `table_size` (a power of two) slots are
  /// active; the vector never shrinks.
  std::vector<uint32_t> table;
  size_t table_size = 0;

  /// Sorted copy of FilterSpec::fids for kFidIn / kFidNotIn queries.
  std::vector<FeatureId> filter_fids;

  /// Filter-surviving accumulator indices, sorted for emission. Top-K runs
  /// over these 4-byte indices, not over FeatureResult objects, and only the
  /// K winners are materialized into the caller's result.
  std::vector<uint32_t> emit_order;

  /// Merge buffer handed to IndexedFeatureStats::MergeFrom by callers that
  /// route bulk merges (compaction) through the shared scratch.
  std::vector<FeatureStat> merge_buf;

  /// IndexedFeatureStats output buffer for MergeSortedRuns callers.
  IndexedFeatureStats merge_out;

  /// Queries served by this scratch (the first one pays the warm-up
  /// allocations; the rest are the `query.scratch_reuse` counter).
  uint64_t uses = 0;

  /// The calling thread's scratch (one per thread, lazily created).
  static QueryScratch& ThreadLocal() {
    thread_local QueryScratch scratch;
    return scratch;
  }
};

}  // namespace ips

#endif  // IPS_QUERY_SCRATCH_H_
