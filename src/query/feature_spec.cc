#include "query/feature_spec.h"

namespace ips {

namespace {

Result<ActionIndex> ResolveAction(const ConfigValue& value,
                                  const TableSchema* schema) {
  if (value.is_number()) {
    const int64_t index = value.AsInt();
    if (index < 0) return Status::InvalidArgument("negative action index");
    if (schema != nullptr &&
        index >= static_cast<int64_t>(schema->actions.size())) {
      return Status::InvalidArgument("action index out of schema range");
    }
    return static_cast<ActionIndex>(index);
  }
  if (value.is_string()) {
    if (schema == nullptr) {
      return Status::InvalidArgument(
          "action name '" + value.AsString() +
          "' needs a table schema to resolve");
    }
    const int index = schema->ActionIndex(value.AsString());
    if (index < 0) {
      return Status::InvalidArgument("unknown action: " + value.AsString());
    }
    return static_cast<ActionIndex>(index);
  }
  return Status::InvalidArgument("action must be an index or a name");
}

Result<TimeRange> ParseWindow(const ConfigValue& doc) {
  const std::string& kind = doc.Get("kind").AsString();
  if (kind == "ABSOLUTE") {
    if (!doc.Has("from") || !doc.Has("to")) {
      return Status::InvalidArgument("ABSOLUTE window needs from/to");
    }
    return TimeRange::Absolute(doc.Get("from").AsInt(), doc.Get("to").AsInt());
  }
  IPS_ASSIGN_OR_RETURN(const int64_t span,
                       ParseDurationMs(doc.Get("span").AsString()));
  if (kind.empty() || kind == "CURRENT") return TimeRange::Current(span);
  if (kind == "RELATIVE") return TimeRange::Relative(span);
  return Status::InvalidArgument("unknown window kind: " + kind);
}

Result<FilterSpec> ParseFilter(const ConfigValue& doc,
                               const TableSchema* schema) {
  FilterSpec filter;
  const std::string& op = doc.Get("op").AsString();
  if (op == "count_at_least") {
    filter.op = FilterOp::kCountAtLeast;
  } else if (op == "count_less") {
    filter.op = FilterOp::kCountLess;
  } else if (op == "fid_in") {
    filter.op = FilterOp::kFidIn;
  } else if (op == "fid_not_in") {
    filter.op = FilterOp::kFidNotIn;
  } else {
    return Status::InvalidArgument("unknown filter op: " + op);
  }
  if (filter.op == FilterOp::kCountAtLeast ||
      filter.op == FilterOp::kCountLess) {
    IPS_ASSIGN_OR_RETURN(filter.action,
                         ResolveAction(doc.Get("action"), schema));
    filter.operand = doc.Get("operand").AsInt();
  } else {
    for (const auto& fid : doc.Get("fids").items()) {
      filter.fids.push_back(static_cast<FeatureId>(fid.AsInt()));
    }
    if (filter.fids.empty()) {
      return Status::InvalidArgument("fid filter needs a non-empty list");
    }
  }
  return filter;
}

}  // namespace

Result<FeatureSpec> ParseFeatureSpec(const ConfigValue& doc,
                                     const TableSchema* schema) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("feature spec must be an object");
  }
  FeatureSpec spec;
  spec.name = doc.Get("name").AsString();
  if (spec.name.empty()) {
    return Status::InvalidArgument("feature spec needs a name");
  }
  spec.table = doc.Get("table").AsString();
  if (spec.table.empty()) {
    return Status::InvalidArgument("feature spec needs a table");
  }
  if (schema != nullptr && schema->name != spec.table) {
    return Status::InvalidArgument("schema/table mismatch for feature " +
                                   spec.name);
  }

  if (!doc.Has("slot")) {
    return Status::InvalidArgument("feature spec needs a slot");
  }
  spec.query.slot = static_cast<SlotId>(doc.Get("slot").AsInt());
  if (doc.Has("type")) {
    spec.query.type = static_cast<TypeId>(doc.Get("type").AsInt());
  }

  if (doc.Has("window")) {
    IPS_ASSIGN_OR_RETURN(spec.query.time_range,
                         ParseWindow(doc.Get("window")));
  }

  const ConfigValue& sort = doc.Get("sort");
  if (sort.is_object()) {
    const std::string& by = sort.Get("by").AsString();
    if (by.empty() || by == "count") {
      spec.query.sort_by = SortBy::kActionCount;
      if (sort.Has("action")) {
        IPS_ASSIGN_OR_RETURN(spec.query.sort_action,
                             ResolveAction(sort.Get("action"), schema));
      }
    } else if (by == "time") {
      spec.query.sort_by = SortBy::kTimestamp;
    } else if (by == "fid") {
      spec.query.sort_by = SortBy::kFeatureId;
    } else {
      return Status::InvalidArgument("unknown sort key: " + by);
    }
  }

  spec.query.k = static_cast<size_t>(doc.Get("k").AsInt(0));

  const ConfigValue& decay = doc.Get("decay");
  if (decay.is_object()) {
    IPS_ASSIGN_OR_RETURN(spec.query.decay.function,
                         ParseDecayFunction(decay.Get("function").AsString()));
    spec.query.decay.factor = decay.Get("factor").AsDouble(1.0);
    if (decay.Has("unit")) {
      IPS_ASSIGN_OR_RETURN(spec.query.decay.unit_ms,
                           ParseDurationMs(decay.Get("unit").AsString()));
    }
    IPS_RETURN_IF_ERROR(spec.query.decay.Validate());
  }

  const ConfigValue& filter = doc.Get("filter");
  if (filter.is_object()) {
    IPS_ASSIGN_OR_RETURN(spec.query.filter, ParseFilter(filter, schema));
  }
  return spec;
}

Result<FeatureSpec> ParseFeatureSpecJson(std::string_view json,
                                         const TableSchema* schema) {
  IPS_ASSIGN_OR_RETURN(ConfigValue doc, ParseConfig(json));
  return ParseFeatureSpec(doc, schema);
}

Result<std::vector<FeatureSpec>> ParseFeatureSet(const ConfigValue& doc,
                                                 const TableSchema* schema) {
  const ConfigValue& list = doc.Get("features");
  if (!list.is_array() || list.size() == 0) {
    return Status::InvalidArgument(
        "feature set needs a non-empty 'features' array");
  }
  std::vector<FeatureSpec> specs;
  specs.reserve(list.size());
  for (const auto& item : list.items()) {
    IPS_ASSIGN_OR_RETURN(FeatureSpec spec, ParseFeatureSpec(item, schema));
    for (const auto& existing : specs) {
      if (existing.name == spec.name) {
        return Status::InvalidArgument("duplicate feature name: " +
                                       spec.name);
      }
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace ips
