#include "query/decay.h"

#include <algorithm>
#include <cmath>

#include "common/config.h"

namespace ips {

double DecaySpec::WeightForAge(int64_t age_ms) const {
  if (function == DecayFunction::kNone || age_ms <= 0) return 1.0;
  const double age_units =
      static_cast<double>(age_ms) / static_cast<double>(unit_ms);
  switch (function) {
    case DecayFunction::kNone:
      return 1.0;
    case DecayFunction::kExponential:
      return std::pow(factor, age_units);
    case DecayFunction::kLinear:
      return std::max(0.0, 1.0 - factor * age_units);
    case DecayFunction::kStep:
      return age_units < 1.0 ? 1.0 : factor;
  }
  return 1.0;
}

Status DecaySpec::Validate() const {
  if (unit_ms <= 0) return Status::InvalidArgument("decay unit must be > 0");
  switch (function) {
    case DecayFunction::kNone:
      return Status::OK();
    case DecayFunction::kExponential:
      if (factor <= 0.0 || factor > 1.0) {
        return Status::InvalidArgument(
            "exponential decay factor must be in (0, 1]");
      }
      return Status::OK();
    case DecayFunction::kLinear:
      if (factor < 0.0) {
        return Status::InvalidArgument("linear decay factor must be >= 0");
      }
      return Status::OK();
    case DecayFunction::kStep:
      if (factor < 0.0 || factor > 1.0) {
        return Status::InvalidArgument("step decay factor must be in [0, 1]");
      }
      return Status::OK();
  }
  return Status::InvalidArgument("unknown decay function");
}

std::string DecaySpec::ToString() const {
  const char* name = "NONE";
  switch (function) {
    case DecayFunction::kNone:
      name = "NONE";
      break;
    case DecayFunction::kExponential:
      name = "EXP";
      break;
    case DecayFunction::kLinear:
      name = "LINEAR";
      break;
    case DecayFunction::kStep:
      name = "STEP";
      break;
  }
  return std::string(name) + "(factor=" + std::to_string(factor) +
         ", unit=" + FormatDurationMs(unit_ms) + ")";
}

Result<DecayFunction> ParseDecayFunction(std::string_view name) {
  if (name == "NONE") return DecayFunction::kNone;
  if (name == "EXP" || name == "EXPONENTIAL") {
    return DecayFunction::kExponential;
  }
  if (name == "LINEAR") return DecayFunction::kLinear;
  if (name == "STEP") return DecayFunction::kStep;
  return Status::InvalidArgument("unknown decay function: " +
                                 std::string(name));
}

}  // namespace ips
