#include "core/slice.h"

#include <algorithm>

namespace ips {

int64_t Slice::Add(SlotId slot, TypeId type, FeatureId fid,
                   const CountVector& counts, ReduceFn reduce) {
  auto [it, inserted] = slots_.try_emplace(slot);
  int64_t delta =
      inserted
          ? static_cast<int64_t>(sizeof(SlotId) + sizeof(InstanceSet) + 32)
          : 0;
  delta += it->second.Add(type, fid, counts, reduce);
  return delta;
}

const InstanceSet* Slice::FindSlot(SlotId slot) const {
  auto it = slots_.find(slot);
  return it == slots_.end() ? nullptr : &it->second;
}

InstanceSet* Slice::FindSlotMutable(SlotId slot) {
  auto it = slots_.find(slot);
  return it == slots_.end() ? nullptr : &it->second;
}

void Slice::MergeFrom(const Slice& other, ReduceFn reduce) {
  for (const auto& [slot, set] : other.slots_) {
    slots_[slot].MergeFrom(set, reduce);
  }
  start_ms_ = std::min(start_ms_, other.start_ms_);
  end_ms_ = std::max(end_ms_, other.end_ms_);
}

void Slice::MergeFrom(const Slice& other, ReduceFn reduce,
                      std::vector<FeatureStat>* merge_scratch) {
  for (const auto& [slot, set] : other.slots_) {
    slots_[slot].MergeFrom(set, reduce, merge_scratch);
  }
  start_ms_ = std::min(start_ms_, other.start_ms_);
  end_ms_ = std::max(end_ms_, other.end_ms_);
}

size_t Slice::TotalFeatures() const {
  size_t total = 0;
  for (const auto& [slot, set] : slots_) total += set.TotalFeatures();
  return total;
}

size_t Slice::ApproximateBytes() const {
  size_t bytes = sizeof(Slice);
  for (const auto& [slot, set] : slots_) {
    bytes += sizeof(SlotId) + set.ApproximateBytes() + 32;
  }
  return bytes;
}

}  // namespace ips
