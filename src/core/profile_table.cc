#include "core/profile_table.h"

#include <cassert>

namespace ips {

ProfileTable::ProfileTable(TableSchema schema, size_t num_shards)
    : schema_(std::move(schema)) {
  assert(num_shards > 0 && (num_shards & (num_shards - 1)) == 0 &&
         "num_shards must be a power of two");
  shard_mask_ = num_shards - 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

Status ProfileTable::Add(ProfileId pid, TimestampMs timestamp, SlotId slot,
                         TypeId type, FeatureId fid,
                         const CountVector& counts) {
  Shard& shard = ShardFor(pid);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.profiles.try_emplace(
      pid, ProfileData(schema_.write_granularity_ms));
  return it->second.Add(timestamp, slot, type, fid, counts, schema_.reduce);
}

Status ProfileTable::WithProfile(
    ProfileId pid, const std::function<void(const ProfileData&)>& fn) const {
  const Shard& shard = ShardFor(pid);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.profiles.find(pid);
  if (it == shard.profiles.end()) {
    return Status::NotFound("profile " + std::to_string(pid));
  }
  fn(it->second);
  return Status::OK();
}

void ProfileTable::WithProfileMutable(
    ProfileId pid, const std::function<void(ProfileData&)>& fn) {
  Shard& shard = ShardFor(pid);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.profiles.try_emplace(
      pid, ProfileData(schema_.write_granularity_ms));
  fn(it->second);
}

bool ProfileTable::Erase(ProfileId pid) {
  Shard& shard = ShardFor(pid);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.profiles.erase(pid) > 0;
}

bool ProfileTable::Contains(ProfileId pid) const {
  const Shard& shard = ShardFor(pid);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.profiles.find(pid) != shard.profiles.end();
}

size_t ProfileTable::ProfileCount() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->profiles.size();
  }
  return total;
}

size_t ProfileTable::ApproximateBytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [pid, data] : shard->profiles) {
      total += sizeof(ProfileId) + data.ApproximateBytes() + 32;
    }
  }
  return total;
}

void ProfileTable::ForEach(
    const std::function<void(ProfileId, ProfileData&)>& fn) {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& [pid, data] : shard->profiles) fn(pid, data);
  }
}

void ProfileTable::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->profiles.clear();
  }
}

}  // namespace ips
