#include "core/feature_stat.h"

#include <algorithm>

namespace ips {

namespace {

struct FidLess {
  bool operator()(const FeatureStat& s, FeatureId fid) const {
    return s.fid < fid;
  }
};

}  // namespace

int64_t IndexedFeatureStats::Upsert(FeatureId fid, const CountVector& counts,
                                    ReduceFn reduce) {
  auto it = std::lower_bound(stats_.begin(), stats_.end(), fid, FidLess());
  if (it != stats_.end() && it->fid == fid) {
    const int64_t before =
        static_cast<int64_t>(it->counts.ApproximateBytes());
    switch (reduce) {
      case ReduceFn::kSum:
        it->counts.AccumulateSum(counts);
        break;
      case ReduceFn::kMax:
        it->counts.AccumulateMax(counts);
        break;
    }
    return static_cast<int64_t>(it->counts.ApproximateBytes()) - before;
  }
  FeatureStat stat;
  stat.fid = fid;
  stat.counts = counts;
  const int64_t delta = static_cast<int64_t>(stat.ApproximateBytes());
  stats_.insert(it, std::move(stat));
  return delta;
}

const FeatureStat* IndexedFeatureStats::Find(FeatureId fid) const {
  auto it = std::lower_bound(stats_.begin(), stats_.end(), fid, FidLess());
  if (it != stats_.end() && it->fid == fid) return &*it;
  return nullptr;
}

void IndexedFeatureStats::MergeFrom(const IndexedFeatureStats& other,
                                    ReduceFn reduce) {
  if (other.empty()) return;
  if (empty()) {
    stats_ = other.stats_;
    return;
  }
  // Linear two-way merge: both inputs are sorted by fid.
  std::vector<FeatureStat> merged;
  merged.reserve(stats_.size() + other.stats_.size());
  size_t i = 0, j = 0;
  while (i < stats_.size() && j < other.stats_.size()) {
    if (stats_[i].fid < other.stats_[j].fid) {
      merged.push_back(std::move(stats_[i++]));
    } else if (stats_[i].fid > other.stats_[j].fid) {
      merged.push_back(other.stats_[j++]);
    } else {
      FeatureStat combined = std::move(stats_[i++]);
      switch (reduce) {
        case ReduceFn::kSum:
          combined.counts.AccumulateSum(other.stats_[j].counts);
          break;
        case ReduceFn::kMax:
          combined.counts.AccumulateMax(other.stats_[j].counts);
          break;
      }
      ++j;
      merged.push_back(std::move(combined));
    }
  }
  while (i < stats_.size()) merged.push_back(std::move(stats_[i++]));
  while (j < other.stats_.size()) merged.push_back(other.stats_[j++]);
  stats_ = std::move(merged);
}

size_t IndexedFeatureStats::ApproximateBytes() const {
  size_t bytes = sizeof(IndexedFeatureStats);
  for (const auto& s : stats_) bytes += s.ApproximateBytes();
  // Unused vector capacity still occupies memory.
  bytes += (stats_.capacity() - stats_.size()) * sizeof(FeatureStat);
  return bytes;
}

bool IndexedFeatureStats::IsSorted() const {
  for (size_t i = 1; i < stats_.size(); ++i) {
    if (stats_[i - 1].fid >= stats_[i].fid) return false;
  }
  return true;
}

}  // namespace ips
