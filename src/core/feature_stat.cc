#include "core/feature_stat.h"

#include <algorithm>

namespace ips {

namespace {

struct FidLess {
  bool operator()(const FeatureStat& s, FeatureId fid) const {
    return s.fid < fid;
  }
};

}  // namespace

int64_t IndexedFeatureStats::Upsert(FeatureId fid, const CountVector& counts,
                                    ReduceFn reduce) {
  auto it = std::lower_bound(stats_.begin(), stats_.end(), fid, FidLess());
  if (it != stats_.end() && it->fid == fid) {
    const int64_t before =
        static_cast<int64_t>(it->counts.ApproximateBytes());
    switch (reduce) {
      case ReduceFn::kSum:
        it->counts.AccumulateSum(counts);
        break;
      case ReduceFn::kMax:
        it->counts.AccumulateMax(counts);
        break;
    }
    return static_cast<int64_t>(it->counts.ApproximateBytes()) - before;
  }
  FeatureStat stat;
  stat.fid = fid;
  stat.counts = counts;
  const int64_t delta = static_cast<int64_t>(stat.ApproximateBytes());
  stats_.insert(it, std::move(stat));
  return delta;
}

const FeatureStat* IndexedFeatureStats::Find(FeatureId fid) const {
  auto it = std::lower_bound(stats_.begin(), stats_.end(), fid, FidLess());
  if (it != stats_.end() && it->fid == fid) return &*it;
  return nullptr;
}

namespace {

// Shared two-way merge core. `TakeOther` controls whether entries only
// present in `other` are copied (const source) or moved (expiring source).
template <bool kTakeOther, typename TheirVec>
void MergeInto(std::vector<FeatureStat>& mine, TheirVec& theirs,
               ReduceFn reduce, std::vector<FeatureStat>* merged) {
  merged->clear();
  merged->reserve(mine.size() + theirs.size());
  size_t i = 0, j = 0;
  while (i < mine.size() && j < theirs.size()) {
    if (mine[i].fid < theirs[j].fid) {
      merged->push_back(std::move(mine[i++]));
    } else if (mine[i].fid > theirs[j].fid) {
      if constexpr (kTakeOther) {
        merged->push_back(std::move(theirs[j++]));
      } else {
        merged->push_back(theirs[j++]);
      }
    } else {
      FeatureStat combined = std::move(mine[i++]);
      switch (reduce) {
        case ReduceFn::kSum:
          combined.counts.AccumulateSum(theirs[j].counts);
          break;
        case ReduceFn::kMax:
          combined.counts.AccumulateMax(theirs[j].counts);
          break;
      }
      ++j;
      merged->push_back(std::move(combined));
    }
  }
  while (i < mine.size()) merged->push_back(std::move(mine[i++]));
  while (j < theirs.size()) {
    if constexpr (kTakeOther) {
      merged->push_back(std::move(theirs[j++]));
    } else {
      merged->push_back(theirs[j++]);
    }
  }
}

}  // namespace

void IndexedFeatureStats::MergeFrom(const IndexedFeatureStats& other,
                                    ReduceFn reduce) {
  std::vector<FeatureStat> scratch;
  MergeFrom(other, reduce, &scratch);
}

void IndexedFeatureStats::MergeFrom(const IndexedFeatureStats& other,
                                    ReduceFn reduce,
                                    std::vector<FeatureStat>* scratch) {
  if (other.empty()) return;
  if (empty()) {
    stats_ = other.stats_;
    return;
  }
  MergeInto<false>(stats_, other.stats_, reduce, scratch);
  stats_.swap(*scratch);
}

void IndexedFeatureStats::MergeFrom(IndexedFeatureStats&& other,
                                    ReduceFn reduce,
                                    std::vector<FeatureStat>* scratch) {
  if (other.empty()) return;
  if (empty()) {
    stats_ = std::move(other.stats_);
    return;
  }
  MergeInto<true>(stats_, other.stats_, reduce, scratch);
  stats_.swap(*scratch);
}

size_t IndexedFeatureStats::ApproximateBytes() const {
  size_t bytes = sizeof(IndexedFeatureStats);
  for (const auto& s : stats_) bytes += s.ApproximateBytes();
  // Unused vector capacity still occupies memory.
  bytes += (stats_.capacity() - stats_.size()) * sizeof(FeatureStat);
  return bytes;
}

bool IndexedFeatureStats::IsSorted() const {
  for (size_t i = 1; i < stats_.size(); ++i) {
    if (stats_[i - 1].fid >= stats_[i].fid) return false;
  }
  return true;
}

}  // namespace ips
