#include "core/instance_set.h"

namespace ips {

int64_t InstanceSet::Add(TypeId type, FeatureId fid,
                         const CountVector& counts, ReduceFn reduce) {
  auto [it, inserted] = types_.try_emplace(type);
  int64_t delta = inserted ? static_cast<int64_t>(
                                 sizeof(TypeId) +
                                 sizeof(IndexedFeatureStats) + 32)
                           : 0;
  delta += it->second.Upsert(fid, counts, reduce);
  return delta;
}

const IndexedFeatureStats* InstanceSet::Find(TypeId type) const {
  auto it = types_.find(type);
  return it == types_.end() ? nullptr : &it->second;
}

IndexedFeatureStats* InstanceSet::FindMutable(TypeId type) {
  auto it = types_.find(type);
  return it == types_.end() ? nullptr : &it->second;
}

void InstanceSet::MergeFrom(const InstanceSet& other, ReduceFn reduce) {
  for (const auto& [type, stats] : other.types_) {
    types_[type].MergeFrom(stats, reduce);
  }
}

void InstanceSet::MergeFrom(const InstanceSet& other, ReduceFn reduce,
                            std::vector<FeatureStat>* merge_scratch) {
  for (const auto& [type, stats] : other.types_) {
    types_[type].MergeFrom(stats, reduce, merge_scratch);
  }
}

size_t InstanceSet::TotalFeatures() const {
  size_t total = 0;
  for (const auto& [type, stats] : types_) total += stats.size();
  return total;
}

size_t InstanceSet::ApproximateBytes() const {
  size_t bytes = sizeof(InstanceSet);
  for (const auto& [type, stats] : types_) {
    bytes += sizeof(TypeId) + stats.ApproximateBytes() +
             32;  // hash node overhead estimate
  }
  return bytes;
}

}  // namespace ips
