// Profile Data (Sections II-A, III-B): one user's entire profile — a
// time-serial list of non-overlapping slices, newest first. Writes are
// append/insert (no in-place update of past intervals beyond count
// aggregation inside a slice); the slice boundaries are managed here and
// consolidated later by the compaction machinery.
#ifndef IPS_CORE_PROFILE_DATA_H_
#define IPS_CORE_PROFILE_DATA_H_

#include <cstddef>
#include <list>

#include "common/status.h"
#include "core/slice.h"
#include "core/types.h"

namespace ips {

class ProfileData {
 public:
  /// `write_granularity_ms` is the width of newly created slices (the paper's
  /// finest time dimension, e.g. "1s" or 5 minutes depending on the table).
  explicit ProfileData(int64_t write_granularity_ms = 60'000)
      : write_granularity_ms_(write_granularity_ms) {}

  /// Records `counts` for (slot, type, fid) at `timestamp`. The slice that
  /// covers `timestamp` is located (or created, aligned to the write
  /// granularity): a newer-than-head timestamp opens a new slice at the front
  /// of the list, matching Section II-B's add_profile contract.
  Status Add(TimestampMs timestamp, SlotId slot, TypeId type, FeatureId fid,
             const CountVector& counts, ReduceFn reduce = ReduceFn::kSum);

  /// Slices newest-first. Query code iterates this to collect the slices
  /// overlapping a window.
  const std::list<Slice>& slices() const { return slices_; }
  std::list<Slice>& mutable_slices() { return slices_; }

  size_t SliceCount() const { return slices_.size(); }
  bool empty() const { return slices_.empty(); }

  /// Timestamp of the most recent data (end of the newest slice), or 0 when
  /// empty. RELATIVE time ranges anchor here.
  TimestampMs NewestMs() const;
  /// Start of the oldest slice, or 0 when empty.
  TimestampMs OldestMs() const;

  /// Most recent single-action timestamp observed via Add (finer than slice
  /// granularity); RELATIVE windows anchor on this.
  TimestampMs LastActionMs() const { return last_action_ms_; }
  void set_last_action_ms(TimestampMs ts) { last_action_ms_ = ts; }

  int64_t write_granularity_ms() const { return write_granularity_ms_; }
  void set_write_granularity_ms(int64_t ms) { write_granularity_ms_ = ms; }

  size_t TotalFeatures() const;

  /// Approximate memory footprint. O(1): maintained incrementally by Add.
  /// Code that mutates the slice list directly (compaction, deserialization,
  /// anything going through mutable_slices()) must call RecomputeBytes()
  /// afterwards — the cache layer charges this value against its memory
  /// budget on every write, so it cannot afford a full walk per operation.
  size_t ApproximateBytes() const { return approx_bytes_; }

  /// Full re-measurement after direct structural mutation.
  size_t RecomputeBytes();

  /// True when slices are strictly newest-first and non-overlapping — the
  /// core invariant every mutation must preserve (checked by property tests).
  bool CheckInvariants() const;

  /// Merges the entire contents of `other` into this profile, slice
  /// boundaries included (used by the read-write isolation merge and by
  /// multi-region reconciliation).
  void MergeProfile(const ProfileData& other, ReduceFn reduce);

 private:
  /// Aligns `ts` down to the write granularity grid.
  TimestampMs AlignDown(TimestampMs ts) const;

  int64_t write_granularity_ms_;
  TimestampMs last_action_ms_ = 0;
  size_t approx_bytes_ = sizeof(ProfileData);
  std::list<Slice> slices_;  // newest first
};

}  // namespace ips

#endif  // IPS_CORE_PROFILE_DATA_H_
