// Profile Table (Section III-B): the logical container mapping profile IDs
// to profile data, sharded by hashed profile id. This is the plain in-memory
// table used directly by the library API and by the write-isolation side
// table; the serving path wraps profiles in the GCache layer (src/cache) for
// LRU/dirty management.
#ifndef IPS_CORE_PROFILE_TABLE_H_
#define IPS_CORE_PROFILE_TABLE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "core/profile_data.h"
#include "core/table_schema.h"
#include "core/types.h"

namespace ips {

class ProfileTable {
 public:
  /// `num_shards` must be a power of two.
  explicit ProfileTable(TableSchema schema, size_t num_shards = 16);

  const TableSchema& schema() const { return schema_; }

  /// Records one observation (the add_profile API of Section II-B).
  Status Add(ProfileId pid, TimestampMs timestamp, SlotId slot, TypeId type,
             FeatureId fid, const CountVector& counts);

  /// Runs `fn` with shared access to the profile; returns NotFound when the
  /// profile does not exist.
  Status WithProfile(ProfileId pid,
                     const std::function<void(const ProfileData&)>& fn) const;

  /// Runs `fn` with exclusive access, creating the profile when absent.
  void WithProfileMutable(ProfileId pid,
                          const std::function<void(ProfileData&)>& fn);

  /// Removes a profile entirely; returns whether it existed.
  bool Erase(ProfileId pid);

  bool Contains(ProfileId pid) const;
  size_t ProfileCount() const;
  size_t ApproximateBytes() const;

  /// Visits every profile (exclusive per-shard lock); used by the isolation
  /// merge and by bulk persistence sweeps.
  void ForEach(const std::function<void(ProfileId, ProfileData&)>& fn);

  /// Removes all profiles (the write-table drain after an isolation merge).
  void Clear();

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<ProfileId, ProfileData> profiles;
  };

  Shard& ShardFor(ProfileId pid) {
    return *shards_[Mix64(pid) & shard_mask_];
  }
  const Shard& ShardFor(ProfileId pid) const {
    return *shards_[Mix64(pid) & shard_mask_];
  }

  TableSchema schema_;
  size_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ips

#endif  // IPS_CORE_PROFILE_TABLE_H_
