// Fundamental identifier and count types of the IPS data model (Section II).
//
// Terminology mapping to the paper:
//   ProfileId  — 64-bit unsigned key of a profile inside a Profile Table.
//   SlotId     — coarse feature category ("Sports").
//   TypeId     — fine category within a slot ("Basketball"); the `type`
//                parameter of the read/write APIs. The paper's in-memory
//                description keys the Instance Set by an "action_type ID
//                defined by upstream applications"; we follow the API-level
//                meaning (category type) and keep per-action counts inside
//                the feature stat's count vector, which is the only reading
//                consistent with the motivating example (like/comment/share
//                counts attached to one feature).
//   FeatureId  — unique id of a feature ("Golden State Warriors"), hashed in
//                production; opaque 64-bit here.
//   ActionIndex — position in the count vector (0=click, 1=like, ... as the
//                table schema defines).
#ifndef IPS_CORE_TYPES_H_
#define IPS_CORE_TYPES_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/clock.h"

namespace ips {

using ProfileId = uint64_t;
using SlotId = uint32_t;
using TypeId = uint32_t;
using FeatureId = uint64_t;
using ActionIndex = uint32_t;

/// Vector of per-action counts attached to one feature, e.g.
/// [clicks, likes, shares, comments]. Small-buffer-optimized: profiles hold
/// millions of these, and production count vectors have <= 4 actions in the
/// common case, so the inline representation avoids a heap allocation per
/// feature.
class CountVector {
 public:
  static constexpr size_t kInlineCapacity = 4;

  CountVector() = default;
  explicit CountVector(size_t n) { Resize(n); }
  CountVector(std::initializer_list<int64_t> init) {
    Resize(init.size());
    size_t i = 0;
    for (int64_t v : init) (*this)[i++] = v;
  }

  CountVector(const CountVector& other) { CopyFrom(other); }
  CountVector& operator=(const CountVector& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  CountVector(CountVector&& other) noexcept { MoveFrom(std::move(other)); }
  CountVector& operator=(CountVector&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  int64_t& operator[](size_t i) { return data()[i]; }
  int64_t operator[](size_t i) const { return data()[i]; }

  /// Value at `i`, or 0 when out of range (queries may name an action the
  /// writer never recorded).
  int64_t At(size_t i) const { return i < size_ ? data()[i] : 0; }

  int64_t* data() { return size_ <= kInlineCapacity ? inline_ : heap_.data(); }
  const int64_t* data() const {
    return size_ <= kInlineCapacity ? inline_ : heap_.data();
  }

  /// Grows or shrinks; new elements are zero.
  void Resize(size_t n);

  /// Element-wise accumulate, growing to other's width; the SUM reduce path.
  void AccumulateSum(const CountVector& other);
  /// Element-wise max, growing to other's width; the MAX reduce path.
  void AccumulateMax(const CountVector& other);

  /// Sum of all elements (used by size-agnostic importance scoring).
  int64_t Total() const;

  bool operator==(const CountVector& other) const;

  /// Approximate heap + inline footprint for cache memory accounting.
  size_t ApproximateBytes() const {
    return sizeof(CountVector) +
           (size_ > kInlineCapacity ? heap_.capacity() * sizeof(int64_t) : 0);
  }

 private:
  void CopyFrom(const CountVector& other);
  void MoveFrom(CountVector&& other);

  size_t size_ = 0;
  int64_t inline_[kInlineCapacity] = {0, 0, 0, 0};
  std::vector<int64_t> heap_;
};

/// Sort orders for top-K queries (Section II-B get_profile_topK sort_type):
/// by one action's count, by timestamp (slice recency), or by feature id.
enum class SortBy : int {
  kActionCount = 0,
  kTimestamp = 1,
  kFeatureId = 2,
};

/// Reduce functions applied when merging the same feature across slices
/// (compaction, Listing 2) or across the write table and the main table.
enum class ReduceFn : int {
  kSum = 0,
  kMax = 1,
};

}  // namespace ips

#endif  // IPS_CORE_TYPES_H_
