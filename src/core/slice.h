// Slice (Sections II-A, III-B): a snapshot of one profile's feature behaviour
// over a non-overlapping time interval, holding a map slot -> InstanceSet.
// A profile's history is a time-serial list of slices; compaction merges
// consecutive slices into wider ones (Fig 10).
#ifndef IPS_CORE_SLICE_H_
#define IPS_CORE_SLICE_H_

#include <cstddef>
#include <unordered_map>

#include "core/instance_set.h"
#include "core/types.h"

namespace ips {

class Slice {
 public:
  Slice() = default;
  /// Creates an empty slice covering [start_ms, end_ms).
  Slice(TimestampMs start_ms, TimestampMs end_ms)
      : start_ms_(start_ms), end_ms_(end_ms) {}

  TimestampMs start_ms() const { return start_ms_; }
  TimestampMs end_ms() const { return end_ms_; }
  void set_range(TimestampMs start_ms, TimestampMs end_ms) {
    start_ms_ = start_ms;
    end_ms_ = end_ms;
  }

  /// Width of the covered interval.
  int64_t DurationMs() const { return end_ms_ - start_ms_; }

  /// True when `ts` falls inside [start, end).
  bool Contains(TimestampMs ts) const {
    return ts >= start_ms_ && ts < end_ms_;
  }

  /// True when this slice overlaps the closed-open window [from, to).
  bool Overlaps(TimestampMs from, TimestampMs to) const {
    return start_ms_ < to && end_ms_ > from;
  }

  /// Records counts for (slot, type, fid). Returns the approximate
  /// memory-footprint delta for incremental accounting.
  int64_t Add(SlotId slot, TypeId type, FeatureId fid,
              const CountVector& counts, ReduceFn reduce = ReduceFn::kSum);

  /// Instance set for `slot`, or nullptr.
  const InstanceSet* FindSlot(SlotId slot) const;
  InstanceSet* FindSlotMutable(SlotId slot);

  /// Absorbs all data of `other` (an adjacent slice) and widens this slice's
  /// interval to cover both. The reduce function aggregates same-fid counts,
  /// exactly the Compact merge of Fig 10.
  void MergeFrom(const Slice& other, ReduceFn reduce);

  /// MergeFrom with a caller-owned merge buffer threaded through to the
  /// per-type IndexedFeatureStats merges, so repeated merges (compaction)
  /// reuse one allocation instead of building a fresh vector per type.
  void MergeFrom(const Slice& other, ReduceFn reduce,
                 std::vector<FeatureStat>* merge_scratch);

  const std::unordered_map<SlotId, InstanceSet>& slots() const {
    return slots_;
  }
  std::unordered_map<SlotId, InstanceSet>& mutable_slots() { return slots_; }

  bool empty() const { return slots_.empty(); }
  size_t TotalFeatures() const;
  size_t ApproximateBytes() const;

 private:
  TimestampMs start_ms_ = 0;
  TimestampMs end_ms_ = 0;
  std::unordered_map<SlotId, InstanceSet> slots_;
};

}  // namespace ips

#endif  // IPS_CORE_SLICE_H_
