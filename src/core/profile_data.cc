#include "core/profile_data.h"

#include <algorithm>

namespace ips {

TimestampMs ProfileData::AlignDown(TimestampMs ts) const {
  const int64_t g = write_granularity_ms_;
  if (g <= 1) return ts;
  TimestampMs aligned = (ts / g) * g;
  if (ts < 0 && aligned > ts) aligned -= g;  // floor for negative timestamps
  return aligned;
}

Status ProfileData::Add(TimestampMs timestamp, SlotId slot, TypeId type,
                        FeatureId fid, const CountVector& counts,
                        ReduceFn reduce) {
  if (counts.empty()) {
    return Status::InvalidArgument("empty count vector");
  }
  last_action_ms_ = std::max(last_action_ms_, timestamp);

  const TimestampMs aligned = AlignDown(timestamp);
  const TimestampMs aligned_end = aligned + write_granularity_ms_;

  // Overhead charged per freshly created slice (list node + empty slice).
  constexpr int64_t kNewSliceBytes = static_cast<int64_t>(sizeof(Slice)) + 16;

  if (slices_.empty()) {
    slices_.emplace_front(aligned, aligned_end);
    approx_bytes_ += kNewSliceBytes +
                     slices_.front().Add(slot, type, fid, counts, reduce);
    return Status::OK();
  }

  // Newer than (or at) the head's end: open a new head slice. Its start is
  // clamped to the head's end so intervals stay disjoint even when the head
  // has been compacted into a non-grid-aligned width.
  Slice& head = slices_.front();
  if (timestamp >= head.end_ms()) {
    const TimestampMs start = std::max(aligned, head.end_ms());
    slices_.emplace_front(start, std::max(aligned_end, start + 1));
    approx_bytes_ += kNewSliceBytes +
                     slices_.front().Add(slot, type, fid, counts, reduce);
    return Status::OK();
  }

  // Walk newest -> oldest to find the covering slice or the insertion gap.
  for (auto it = slices_.begin(); it != slices_.end(); ++it) {
    if (it->Contains(timestamp)) {
      approx_bytes_ += it->Add(slot, type, fid, counts, reduce);
      return Status::OK();
    }
    if (timestamp >= it->end_ms()) {
      // Gap between the previous (newer) slice and *it.
      auto newer = std::prev(it);
      const TimestampMs lo = std::max(aligned, it->end_ms());
      const TimestampMs hi = std::min(aligned_end, newer->start_ms());
      auto inserted = slices_.emplace(it, lo, std::max(hi, lo + 1));
      approx_bytes_ +=
          kNewSliceBytes + inserted->Add(slot, type, fid, counts, reduce);
      return Status::OK();
    }
  }

  // Older than everything: append at the tail.
  Slice& tail = slices_.back();
  const TimestampMs hi = std::min(aligned_end, tail.start_ms());
  const TimestampMs lo = std::min(aligned, hi - 1);
  slices_.emplace_back(lo, hi);
  approx_bytes_ +=
      kNewSliceBytes + slices_.back().Add(slot, type, fid, counts, reduce);
  return Status::OK();
}

TimestampMs ProfileData::NewestMs() const {
  return slices_.empty() ? 0 : slices_.front().end_ms();
}

TimestampMs ProfileData::OldestMs() const {
  return slices_.empty() ? 0 : slices_.back().start_ms();
}

size_t ProfileData::TotalFeatures() const {
  size_t total = 0;
  for (const auto& s : slices_) total += s.TotalFeatures();
  return total;
}

size_t ProfileData::RecomputeBytes() {
  size_t bytes = sizeof(ProfileData);
  for (const auto& s : slices_) bytes += s.ApproximateBytes() + 16;
  approx_bytes_ = bytes;
  return bytes;
}

bool ProfileData::CheckInvariants() const {
  TimestampMs prev_start = 0;
  bool first = true;
  for (const auto& s : slices_) {
    if (s.start_ms() >= s.end_ms()) return false;
    if (!first && s.end_ms() > prev_start) return false;  // overlap/disorder
    prev_start = s.start_ms();
    first = false;
    for (const auto& [slot, set] : s.slots()) {
      for (const auto& [type, stats] : set.types()) {
        if (!stats.IsSorted()) return false;
      }
    }
  }
  return true;
}

void ProfileData::MergeProfile(const ProfileData& other, ReduceFn reduce) {
  for (auto it = other.slices_.rbegin(); it != other.slices_.rend(); ++it) {
    // Re-add every feature of the foreign slice through the normal write
    // path, stamped at the slice's start. This keeps the disjointness
    // invariant without needing interval surgery; isolation-merge slices are
    // narrow (seconds wide) so the aggregation error is bounded by the write
    // granularity, the same trade-off the paper accepts for compaction.
    for (const auto& [slot, set] : it->slots()) {
      for (const auto& [type, stats] : set.types()) {
        for (const auto& stat : stats.stats()) {
          Add(it->start_ms(), slot, type, stat.fid, stat.counts, reduce)
              .ok();
        }
      }
    }
  }
  last_action_ms_ = std::max(last_action_ms_, other.last_action_ms_);
}

}  // namespace ips
