#include "core/table_schema.h"

#include <algorithm>

namespace ips {

int TableSchema::ActionIndex(const std::string& action) const {
  for (size_t i = 0; i < actions.size(); ++i) {
    if (actions[i] == action) return static_cast<int>(i);
  }
  return -1;
}

Status TableSchema::Validate() const {
  if (name.empty()) return Status::InvalidArgument("table name empty");
  if (write_granularity_ms <= 0) {
    return Status::InvalidArgument("write granularity must be positive");
  }
  int64_t prev_to = -1;
  for (const auto& rule : time_dimensions) {
    if (rule.granularity_ms <= 0) {
      return Status::InvalidArgument("time dimension granularity <= 0");
    }
    if (rule.from_age_ms >= rule.to_age_ms) {
      return Status::InvalidArgument("time dimension range inverted");
    }
    if (prev_to >= 0 && rule.from_age_ms != prev_to) {
      return Status::InvalidArgument(
          "time dimension ladder has gaps or overlaps");
    }
    prev_to = rule.to_age_ms;
  }
  if (truncate.max_age_ms < 0 || truncate.max_slices < 0) {
    return Status::InvalidArgument("negative truncate limit");
  }
  if (shrink.default_retain < 0) {
    return Status::InvalidArgument("negative shrink budget");
  }
  return Status::OK();
}

Result<TableSchema> ParseTableSchema(const ConfigValue& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("schema document must be an object");
  }
  TableSchema schema;
  schema.name = doc.Get("name").AsString();

  for (const auto& a : doc.Get("actions").items()) {
    schema.actions.push_back(a.AsString());
  }

  const std::string& reduce = doc.Get("reduce").AsString();
  if (reduce.empty() || reduce == "SUM") {
    schema.reduce = ReduceFn::kSum;
  } else if (reduce == "MAX") {
    schema.reduce = ReduceFn::kMax;
  } else {
    return Status::InvalidArgument("unknown reduce function: " + reduce);
  }

  if (doc.Has("write_granularity")) {
    IPS_ASSIGN_OR_RETURN(
        schema.write_granularity_ms,
        ParseDurationMs(doc.Get("write_granularity").AsString()));
  }

  // time_dimension: {"<granularity>": ["<from_age>", "<to_age>"], ...}
  // (Listing 2/3). Rules are sorted by from-age to form the ladder.
  const ConfigValue& dims = doc.Get("time_dimension");
  for (const auto& [gran_text, range] : dims.members()) {
    if (range.size() != 2) {
      return Status::InvalidArgument("time dimension range needs 2 entries");
    }
    TimeDimensionRule rule;
    IPS_ASSIGN_OR_RETURN(rule.granularity_ms, ParseDurationMs(gran_text));
    IPS_ASSIGN_OR_RETURN(rule.from_age_ms,
                         ParseDurationMs(range.items()[0].AsString()));
    IPS_ASSIGN_OR_RETURN(rule.to_age_ms,
                         ParseDurationMs(range.items()[1].AsString()));
    schema.time_dimensions.push_back(rule);
  }
  std::sort(schema.time_dimensions.begin(), schema.time_dimensions.end(),
            [](const TimeDimensionRule& a, const TimeDimensionRule& b) {
              return a.from_age_ms < b.from_age_ms;
            });

  const ConfigValue& trunc = doc.Get("truncate");
  if (trunc.is_object()) {
    if (trunc.Has("max_age")) {
      IPS_ASSIGN_OR_RETURN(schema.truncate.max_age_ms,
                           ParseDurationMs(trunc.Get("max_age").AsString()));
    }
    schema.truncate.max_slices = trunc.Get("max_slices").AsInt(0);
  }

  const ConfigValue& shrink = doc.Get("shrink");
  if (shrink.is_object()) {
    schema.shrink.default_retain = shrink.Get("default_retain").AsInt(0);
    for (const auto& [slot_text, budget] : shrink.Get("slots").members()) {
      schema.shrink.retain_per_slot[static_cast<SlotId>(
          std::stoul(slot_text))] = budget.AsInt(0);
    }
    for (const auto& w : shrink.Get("action_weights").items()) {
      schema.shrink.action_weights.push_back(w.AsDouble(1.0));
    }
    if (shrink.Has("freshness")) {
      IPS_ASSIGN_OR_RETURN(
          schema.shrink.freshness_horizon_ms,
          ParseDurationMs(shrink.Get("freshness").AsString()));
    }
  }

  IPS_RETURN_IF_ERROR(schema.Validate());
  return schema;
}

Result<TableSchema> ParseTableSchemaJson(std::string_view json) {
  IPS_ASSIGN_OR_RETURN(ConfigValue doc, ParseConfig(json));
  return ParseTableSchema(doc);
}

TableSchema DefaultTableSchema(std::string name) {
  TableSchema schema;
  schema.name = std::move(name);
  schema.actions = {"click", "like", "share", "comment"};
  schema.reduce = ReduceFn::kSum;
  schema.write_granularity_ms = kMillisPerMinute;
  // The Listing 3 production ladder, minus the 1s rung (our default write
  // granularity is already 1m).
  schema.time_dimensions = {
      {kMillisPerMinute, 0, kMillisPerHour},
      {kMillisPerHour, kMillisPerHour, kMillisPerDay},
      {kMillisPerDay, kMillisPerDay, 30 * kMillisPerDay},
      {30 * kMillisPerDay, 30 * kMillisPerDay, 365 * kMillisPerDay},
  };
  schema.truncate.max_age_ms = 365 * kMillisPerDay;
  schema.truncate.max_slices = 0;
  schema.shrink.default_retain = 100;
  schema.shrink.action_weights = {1.0, 2.0, 2.0, 3.0};
  schema.shrink.freshness_horizon_ms = kMillisPerHour;
  return schema;
}

}  // namespace ips
