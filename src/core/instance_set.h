// Instance Set (Section III-B): the per-slot map from category type to the
// indexed feature stats recorded for that type within one slice.
#ifndef IPS_CORE_INSTANCE_SET_H_
#define IPS_CORE_INSTANCE_SET_H_

#include <cstddef>
#include <unordered_map>

#include "core/feature_stat.h"
#include "core/types.h"

namespace ips {

/// Map: TypeId -> IndexedFeatureStats. A flat hash layout is unnecessary —
/// each slice touches a handful of types — but memory is accounted so the
/// cache layer can enforce its thresholds.
class InstanceSet {
 public:
  /// Adds counts for (type, fid). Returns the approximate memory-footprint
  /// delta (see IndexedFeatureStats::Upsert).
  int64_t Add(TypeId type, FeatureId fid, const CountVector& counts,
              ReduceFn reduce = ReduceFn::kSum);

  /// Stats for `type`, or nullptr when the type is absent.
  const IndexedFeatureStats* Find(TypeId type) const;
  IndexedFeatureStats* FindMutable(TypeId type);

  /// Merges all of `other` into this set.
  void MergeFrom(const InstanceSet& other, ReduceFn reduce);

  /// MergeFrom with a caller-owned merge buffer (see
  /// IndexedFeatureStats::MergeFrom); used by compaction to reuse one
  /// buffer across every per-type merge of a slice merge.
  void MergeFrom(const InstanceSet& other, ReduceFn reduce,
                 std::vector<FeatureStat>* merge_scratch);

  const std::unordered_map<TypeId, IndexedFeatureStats>& types() const {
    return types_;
  }
  std::unordered_map<TypeId, IndexedFeatureStats>& mutable_types() {
    return types_;
  }

  bool empty() const { return types_.empty(); }
  size_t TotalFeatures() const;
  size_t ApproximateBytes() const;

 private:
  std::unordered_map<TypeId, IndexedFeatureStats> types_;
};

}  // namespace ips

#endif  // IPS_CORE_INSTANCE_SET_H_
