// Per-table configuration: the action schema (names of the count-vector
// dimensions), default reduce function, write slice granularity, and the
// compaction/truncation/shrink policies (Listings 2-4). Tables are the unit
// of logical data organization (Section III-B) and of hot reconfiguration
// (Section V-b).
#ifndef IPS_CORE_TABLE_SCHEMA_H_
#define IPS_CORE_TABLE_SCHEMA_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "core/types.h"

namespace ips {

/// One rung of the time-dimension ladder (Listing 2/3): slices whose age is
/// within [from_age_ms, to_age_ms) are compacted to `granularity_ms` wide
/// windows.
struct TimeDimensionRule {
  int64_t granularity_ms = 0;
  int64_t from_age_ms = 0;
  int64_t to_age_ms = 0;
};

/// Truncation policy (Section III-D b): drop slices past a maximum age and/or
/// beyond a maximum count. Zero means "no limit".
struct TruncatePolicy {
  int64_t max_age_ms = 0;
  int64_t max_slices = 0;
};

/// Shrink policy (Listing 4): per-slot retained feature budget, with action
/// significance weights for the multi-dimensional importance sort and a
/// freshness horizon protecting recent data from elimination.
struct ShrinkPolicy {
  /// slot -> max features kept per (slot, type) per slice group.
  std::map<SlotId, int64_t> retain_per_slot;
  /// Default budget for slots not listed; 0 disables shrinking for them.
  int64_t default_retain = 0;
  /// Importance weights per action index; missing entries weigh 1.
  std::vector<double> action_weights;
  /// Features inside slices newer than this age are never shrunk.
  int64_t freshness_horizon_ms = 0;
};

/// Full table schema.
struct TableSchema {
  std::string name;
  /// Names of the count-vector dimensions, e.g. {"click","like","share"}.
  std::vector<std::string> actions;
  ReduceFn reduce = ReduceFn::kSum;
  /// Width of freshly written slices.
  int64_t write_granularity_ms = 60'000;
  /// Compaction ladder, sorted by from_age ascending. Empty = no compaction.
  std::vector<TimeDimensionRule> time_dimensions;
  TruncatePolicy truncate;
  ShrinkPolicy shrink;

  /// Index of an action name, or -1.
  int ActionIndex(const std::string& action) const;

  /// Validates internal consistency (ladder contiguity, positive widths).
  Status Validate() const;
};

/// Parses a schema from its JSON document. Accepts the paper's config shape:
///
/// {
///   "name": "user_profile",
///   "actions": ["click", "like", "share"],
///   "reduce": "SUM",
///   "write_granularity": "1m",
///   "time_dimension": {"1m": ["0s","1h"], "1h": ["1h","24h"]},
///   "truncate": {"max_age": "365d", "max_slices": 100},
///   "shrink": {"default_retain": 50, "slots": {"3": 100},
///              "action_weights": [1.0, 2.0, 3.0], "freshness": "1h"}
/// }
Result<TableSchema> ParseTableSchema(const ConfigValue& doc);
Result<TableSchema> ParseTableSchemaJson(std::string_view json);

/// A reasonable production-like default: 1-minute write slices, the Listing 3
/// ladder, 365-day truncation and a 100-feature shrink budget.
TableSchema DefaultTableSchema(std::string name);

}  // namespace ips

#endif  // IPS_CORE_TABLE_SCHEMA_H_
