// Indexed Feature Stat (Section III-B): the per-(slot, type) collection of
// feature statistics inside one Slice. Entries are kept sorted by feature id
// so that window queries can run a multi-way merge across slices without
// per-slice sorting; this is the role of the paper's "fid_index".
#ifndef IPS_CORE_FEATURE_STAT_H_
#define IPS_CORE_FEATURE_STAT_H_

#include <cstddef>
#include <vector>

#include "core/types.h"

namespace ips {

/// One feature's statistics within a slice: its id plus per-action counts.
struct FeatureStat {
  FeatureId fid = 0;
  CountVector counts;

  size_t ApproximateBytes() const {
    return sizeof(FeatureStat) - sizeof(CountVector) +
           counts.ApproximateBytes();
  }
};

/// Sorted-by-fid feature list with upsert and merge support.
///
/// Sizes are small in steady state (the paper reports ~730-byte average
/// slices, i.e. tens of features), so binary-search + vector insert is both
/// cache-friendly and asymptotically irrelevant; the sorted invariant is what
/// the query layer's k-way merge relies on.
class IndexedFeatureStats {
 public:
  /// Adds `counts` for `fid` using the reduce function; creates the entry if
  /// absent. Returns the approximate change in memory footprint, so callers
  /// can maintain O(1) byte accounting (the cache layer charges every write
  /// against its memory budget without re-walking the profile).
  int64_t Upsert(FeatureId fid, const CountVector& counts,
                 ReduceFn reduce = ReduceFn::kSum);

  /// Returns the entry for `fid`, or nullptr.
  const FeatureStat* Find(FeatureId fid) const;

  /// Merges all entries of `other` into this set with `reduce`.
  void MergeFrom(const IndexedFeatureStats& other, ReduceFn reduce);

  /// MergeFrom with a caller-owned merge buffer. The merged vector is built
  /// in `*scratch` and swapped in, so a caller that merges repeatedly (the
  /// compaction pool) reuses one heap block at its high-water capacity
  /// instead of allocating a fresh vector per merge. After the call
  /// `*scratch` holds this set's previous (moved-from) storage.
  void MergeFrom(const IndexedFeatureStats& other, ReduceFn reduce,
                 std::vector<FeatureStat>* scratch);

  /// Move-merging variant: entries only present in `other` are moved, not
  /// copied, so their count storage changes owner without reallocating.
  void MergeFrom(IndexedFeatureStats&& other, ReduceFn reduce,
                 std::vector<FeatureStat>* scratch);

  /// Keeps only the features for which `keep(stat)` is true.
  template <typename Pred>
  void Retain(Pred keep) {
    size_t out = 0;
    for (size_t i = 0; i < stats_.size(); ++i) {
      if (keep(stats_[i])) {
        if (out != i) stats_[out] = std::move(stats_[i]);
        ++out;
      }
    }
    stats_.resize(out);
  }

  const std::vector<FeatureStat>& stats() const { return stats_; }
  size_t size() const { return stats_.size(); }
  bool empty() const { return stats_.empty(); }
  void Clear() { stats_.clear(); }
  void Reserve(size_t n) { stats_.reserve(n); }

  /// Direct append for deserialization; caller guarantees ascending fids.
  void AppendSortedUnchecked(FeatureStat stat) {
    stats_.push_back(std::move(stat));
  }

  /// Last appended entry, for in-place combination during k-way merges.
  /// Callers must not change the fid (that would break ordering).
  FeatureStat* MutableBack() { return stats_.empty() ? nullptr : &stats_.back(); }

  size_t ApproximateBytes() const;

  /// True when entries are strictly ascending by fid (invariant check used
  /// by property tests and debug assertions).
  bool IsSorted() const;

 private:
  std::vector<FeatureStat> stats_;
};

}  // namespace ips

#endif  // IPS_CORE_FEATURE_STAT_H_
