#include "core/types.h"

#include <algorithm>
#include <cstring>

namespace ips {

void CountVector::Resize(size_t n) {
  if (n == size_) return;
  if (n <= kInlineCapacity) {
    if (size_ > kInlineCapacity) {
      // Shrink heap -> inline.
      for (size_t i = 0; i < n; ++i) inline_[i] = heap_[i];
      heap_.clear();
      heap_.shrink_to_fit();
    } else {
      for (size_t i = size_; i < n; ++i) inline_[i] = 0;
    }
  } else {
    if (size_ <= kInlineCapacity) {
      std::vector<int64_t> grown(n, 0);
      for (size_t i = 0; i < size_; ++i) grown[i] = inline_[i];
      heap_ = std::move(grown);
    } else {
      heap_.resize(n, 0);
    }
  }
  size_ = n;
}

void CountVector::AccumulateSum(const CountVector& other) {
  if (other.size_ > size_) Resize(other.size_);
  const int64_t* src = other.data();
  int64_t* dst = data();
  for (size_t i = 0; i < other.size_; ++i) dst[i] += src[i];
}

void CountVector::AccumulateMax(const CountVector& other) {
  if (other.size_ > size_) Resize(other.size_);
  const int64_t* src = other.data();
  int64_t* dst = data();
  for (size_t i = 0; i < other.size_; ++i) dst[i] = std::max(dst[i], src[i]);
}

int64_t CountVector::Total() const {
  const int64_t* p = data();
  int64_t sum = 0;
  for (size_t i = 0; i < size_; ++i) sum += p[i];
  return sum;
}

bool CountVector::operator==(const CountVector& other) const {
  if (size_ != other.size_) return false;
  return std::memcmp(data(), other.data(), size_ * sizeof(int64_t)) == 0;
}

void CountVector::CopyFrom(const CountVector& other) {
  Resize(other.size_);
  std::memcpy(data(), other.data(), other.size_ * sizeof(int64_t));
}

void CountVector::MoveFrom(CountVector&& other) {
  if (other.size_ <= kInlineCapacity) {
    Resize(other.size_);
    std::memcpy(inline_, other.inline_, other.size_ * sizeof(int64_t));
  } else {
    heap_ = std::move(other.heap_);
    size_ = other.size_;
  }
  other.size_ = 0;
}

}  // namespace ips
