// Minimal JSON-style configuration values with the duration literals the
// paper's configs use ("10m", "1h", "30d" — Listings 2-4), plus a registry
// with hot-reload callbacks (Section V-b: "most changes can be made live in
// minutes", via hot-reloadable feature configuration).
#ifndef IPS_COMMON_CONFIG_H_
#define IPS_COMMON_CONFIG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ips {

/// A parsed configuration value: null, bool, int, double, string, array or
/// object. Objects preserve key order via std::map for deterministic dumps.
class ConfigValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  ConfigValue() : type_(Type::kNull) {}
  static ConfigValue Bool(bool b);
  static ConfigValue Int(int64_t i);
  static ConfigValue Double(double d);
  static ConfigValue String(std::string s);
  static ConfigValue Array();
  static ConfigValue Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }

  bool AsBool(bool fallback = false) const;
  int64_t AsInt(int64_t fallback = 0) const;
  double AsDouble(double fallback = 0.0) const;
  const std::string& AsString() const;

  /// Object access. Returns a shared null value when missing.
  const ConfigValue& Get(std::string_view key) const;
  bool Has(std::string_view key) const;
  ConfigValue& Set(std::string key, ConfigValue value);

  /// Array access.
  const std::vector<ConfigValue>& items() const { return array_; }
  void Append(ConfigValue value);
  size_t size() const;

  const std::map<std::string, ConfigValue>& members() const {
    return object_;
  }

  /// Serializes back to compact JSON.
  std::string Dump() const;

 private:
  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<ConfigValue> array_;
  std::map<std::string, ConfigValue> object_;
};

/// Parses a JSON document (objects, arrays, strings, numbers, true/false/
/// null). Rejects trailing garbage. No exceptions; malformed input returns an
/// error status.
Result<ConfigValue> ParseConfig(std::string_view text);

/// Parses a duration literal like "500ms", "10s", "10m", "1h", "30d" into
/// milliseconds. A bare integer is treated as seconds, matching the paper's
/// config listings where "0s"/"1m" style units are the norm.
Result<int64_t> ParseDurationMs(std::string_view text);

/// Formats milliseconds back to the most compact exact unit ("90s", "2h").
std::string FormatDurationMs(int64_t ms);

/// Hot-reloadable configuration registry. Components subscribe to a key and
/// are invoked synchronously whenever a new document is published under it.
class ConfigRegistry {
 public:
  using Listener = std::function<void(const ConfigValue&)>;

  /// Publishes a new config under `key`, replacing the previous one and
  /// notifying all subscribers. Returns the number of listeners notified.
  int Publish(const std::string& key, ConfigValue value);

  /// Parses `text` and publishes it; malformed documents are rejected and the
  /// previous config stays live (the hot-reload safety contract).
  Status PublishJson(const std::string& key, std::string_view text);

  /// Subscribes to `key`. If a value is already present the listener fires
  /// immediately. Returns a subscription id usable with Unsubscribe.
  int64_t Subscribe(const std::string& key, Listener listener);

  void Unsubscribe(int64_t subscription_id);

  /// Snapshot of the current value (null when absent).
  ConfigValue Current(const std::string& key) const;

 private:
  struct Subscription {
    std::string key;
    Listener listener;
  };

  mutable std::mutex mu_;
  std::map<std::string, ConfigValue> values_;
  std::map<int64_t, Subscription> subs_;
  int64_t next_id_ = 1;
};

}  // namespace ips

#endif  // IPS_COMMON_CONFIG_H_
