#include "common/config.h"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "common/clock.h"

namespace ips {

namespace {

const ConfigValue& NullValue() {
  static const ConfigValue* const kNull = new ConfigValue();
  return *kNull;
}

// Recursive-descent JSON parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<ConfigValue> Parse() {
    IPS_ASSIGN_OR_RETURN(ConfigValue v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters at offset " +
                                     std::to_string(pos_));
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Err(const std::string& what) {
    return Status::InvalidArgument(what + " at offset " +
                                   std::to_string(pos_));
  }

  Result<ConfigValue> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        IPS_ASSIGN_OR_RETURN(std::string s, ParseString());
        return ConfigValue::String(std::move(s));
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return ConfigValue::Bool(true);
        }
        return Err("bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return ConfigValue::Bool(false);
        }
        return Err("bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return ConfigValue();
        }
        return Err("bad literal");
      default:
        return ParseNumber();
    }
  }

  Result<ConfigValue> ParseObject() {
    if (!Consume('{')) return Err("expected '{'");
    ConfigValue obj = ConfigValue::Object();
    SkipWs();
    if (Consume('}')) return obj;
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key");
      }
      IPS_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (!Consume(':')) return Err("expected ':'");
      IPS_ASSIGN_OR_RETURN(ConfigValue v, ParseValue());
      obj.Set(std::move(key), std::move(v));
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Err("expected ',' or '}'");
    }
  }

  Result<ConfigValue> ParseArray() {
    if (!Consume('[')) return Err("expected '['");
    ConfigValue arr = ConfigValue::Array();
    SkipWs();
    if (Consume(']')) return arr;
    for (;;) {
      IPS_ASSIGN_OR_RETURN(ConfigValue v, ParseValue());
      arr.Append(std::move(v));
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Err("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    // Caller guarantees text_[pos_] == '"'.
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Err("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          default:
            return Err("unsupported escape");
        }
      } else {
        out += c;
      }
    }
    return Err("unterminated string");
  }

  Result<ConfigValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        // '-'/'+' only valid after exponent, but we let from_chars validate.
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty()) return Err("expected value");
    if (!is_double) {
      int64_t v = 0;
      auto [p, ec] =
          std::from_chars(token.data(), token.data() + token.size(), v);
      if (ec == std::errc() && p == token.data() + token.size()) {
        return ConfigValue::Int(v);
      }
    }
    // Fall back to double parsing (std::from_chars<double> exists in gcc 12).
    double d = 0.0;
    auto [p, ec] =
        std::from_chars(token.data(), token.data() + token.size(), d);
    if (ec != std::errc() || p != token.data() + token.size()) {
      return Err("malformed number");
    }
    return ConfigValue::Double(d);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void DumpValue(const ConfigValue& v, std::string& out) {
  switch (v.type()) {
    case ConfigValue::Type::kNull:
      out += "null";
      return;
    case ConfigValue::Type::kBool:
      out += v.AsBool() ? "true" : "false";
      return;
    case ConfigValue::Type::kInt:
      out += std::to_string(v.AsInt());
      return;
    case ConfigValue::Type::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
      out += buf;
      return;
    }
    case ConfigValue::Type::kString:
      out += '"';
      for (char c : v.AsString()) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
      }
      out += '"';
      return;
    case ConfigValue::Type::kArray: {
      out += '[';
      bool first = true;
      for (const auto& item : v.items()) {
        if (!first) out += ',';
        first = false;
        DumpValue(item, out);
      }
      out += ']';
      return;
    }
    case ConfigValue::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, val] : v.members()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += k;
        out += "\":";
        DumpValue(val, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

ConfigValue ConfigValue::Bool(bool b) {
  ConfigValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

ConfigValue ConfigValue::Int(int64_t i) {
  ConfigValue v;
  v.type_ = Type::kInt;
  v.int_ = i;
  return v;
}

ConfigValue ConfigValue::Double(double d) {
  ConfigValue v;
  v.type_ = Type::kDouble;
  v.double_ = d;
  return v;
}

ConfigValue ConfigValue::String(std::string s) {
  ConfigValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

ConfigValue ConfigValue::Array() {
  ConfigValue v;
  v.type_ = Type::kArray;
  return v;
}

ConfigValue ConfigValue::Object() {
  ConfigValue v;
  v.type_ = Type::kObject;
  return v;
}

bool ConfigValue::AsBool(bool fallback) const {
  return type_ == Type::kBool ? bool_ : fallback;
}

int64_t ConfigValue::AsInt(int64_t fallback) const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kDouble) return static_cast<int64_t>(double_);
  return fallback;
}

double ConfigValue::AsDouble(double fallback) const {
  if (type_ == Type::kDouble) return double_;
  if (type_ == Type::kInt) return static_cast<double>(int_);
  return fallback;
}

const std::string& ConfigValue::AsString() const { return string_; }

const ConfigValue& ConfigValue::Get(std::string_view key) const {
  if (type_ == Type::kObject) {
    auto it = object_.find(std::string(key));
    if (it != object_.end()) return it->second;
  }
  return NullValue();
}

bool ConfigValue::Has(std::string_view key) const {
  return type_ == Type::kObject &&
         object_.find(std::string(key)) != object_.end();
}

ConfigValue& ConfigValue::Set(std::string key, ConfigValue value) {
  type_ = Type::kObject;
  return object_[std::move(key)] = std::move(value);
}

void ConfigValue::Append(ConfigValue value) {
  type_ = Type::kArray;
  array_.push_back(std::move(value));
}

size_t ConfigValue::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

std::string ConfigValue::Dump() const {
  std::string out;
  DumpValue(*this, out);
  return out;
}

Result<ConfigValue> ParseConfig(std::string_view text) {
  return Parser(text).Parse();
}

Result<int64_t> ParseDurationMs(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty duration");
  size_t i = 0;
  while (i < text.size() && (std::isdigit(static_cast<unsigned char>(
                                 text[i])) ||
                             (i == 0 && text[i] == '-'))) {
    ++i;
  }
  if (i == 0 || (i == 1 && text[0] == '-')) {
    return Status::InvalidArgument("duration missing magnitude: " +
                                   std::string(text));
  }
  int64_t magnitude = 0;
  {
    auto [p, ec] = std::from_chars(text.data(), text.data() + i, magnitude);
    if (ec != std::errc() || p != text.data() + i) {
      return Status::InvalidArgument("bad duration magnitude: " +
                                     std::string(text));
    }
  }
  const std::string_view unit = text.substr(i);
  int64_t scale;
  if (unit.empty() || unit == "s") {
    scale = kMillisPerSecond;
  } else if (unit == "ms") {
    scale = 1;
  } else if (unit == "m") {
    scale = kMillisPerMinute;
  } else if (unit == "h") {
    scale = kMillisPerHour;
  } else if (unit == "d") {
    scale = kMillisPerDay;
  } else {
    return Status::InvalidArgument("unknown duration unit: " +
                                   std::string(text));
  }
  return magnitude * scale;
}

std::string FormatDurationMs(int64_t ms) {
  struct Unit {
    int64_t scale;
    const char* suffix;
  };
  static constexpr Unit kUnits[] = {{kMillisPerDay, "d"},
                                    {kMillisPerHour, "h"},
                                    {kMillisPerMinute, "m"},
                                    {kMillisPerSecond, "s"}};
  for (const auto& u : kUnits) {
    if (ms != 0 && ms % u.scale == 0) {
      return std::to_string(ms / u.scale) + u.suffix;
    }
  }
  return std::to_string(ms) + "ms";
}

int ConfigRegistry::Publish(const std::string& key, ConfigValue value) {
  std::vector<Listener> to_notify;
  ConfigValue snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    values_[key] = std::move(value);
    snapshot = values_[key];
    for (const auto& [id, sub] : subs_) {
      if (sub.key == key) to_notify.push_back(sub.listener);
    }
  }
  for (const auto& l : to_notify) l(snapshot);
  return static_cast<int>(to_notify.size());
}

Status ConfigRegistry::PublishJson(const std::string& key,
                                   std::string_view text) {
  IPS_ASSIGN_OR_RETURN(ConfigValue v, ParseConfig(text));
  Publish(key, std::move(v));
  return Status::OK();
}

int64_t ConfigRegistry::Subscribe(const std::string& key, Listener listener) {
  ConfigValue snapshot;
  bool have_value = false;
  int64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    subs_[id] = Subscription{key, listener};
    auto it = values_.find(key);
    if (it != values_.end()) {
      snapshot = it->second;
      have_value = true;
    }
  }
  if (have_value) listener(snapshot);
  return id;
}

void ConfigRegistry::Unsubscribe(int64_t subscription_id) {
  std::lock_guard<std::mutex> lock(mu_);
  subs_.erase(subscription_id);
}

ConfigValue ConfigRegistry::Current(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = values_.find(key);
  return it == values_.end() ? ConfigValue() : it->second;
}

}  // namespace ips
