// Per-request call metadata propagated through the request path: the
// deadline and the tracing context. Every Query/MultiQuery/AddProfiles
// carries an absolute deadline that the transport and the serving instance
// both check, so a request that cannot finish in time fails fast with
// DeadlineExceeded instead of spending (simulated) latency past the point
// anyone is waiting. The TraceContext, when active, makes every layer the
// request crosses record named latency spans (see common/trace.h).
//
// Deadlines are absolute timestamps in the caller's Clock domain (simulated
// or wall time), so forwarding a context through layers costs nothing and
// the remaining budget shrinks naturally as time passes.
#ifndef IPS_COMMON_CALL_CONTEXT_H_
#define IPS_COMMON_CALL_CONTEXT_H_

#include <algorithm>
#include <cstdint>
#include <limits>

#include "common/clock.h"
#include "common/trace.h"

namespace ips {

struct CallContext {
  /// Sentinel meaning "no deadline": the request waits forever.
  static constexpr TimestampMs kNoDeadline =
      std::numeric_limits<TimestampMs>::max();

  /// Absolute deadline in the request's clock domain.
  TimestampMs deadline_ms = kNoDeadline;

  /// Tracing context for this request (inactive by default). Layers that may
  /// hop threads install it thread-locally (TraceInstallScope) so deeper
  /// layers can record spans without threading a context through every call.
  TraceContext trace;

  bool has_deadline() const { return deadline_ms != kNoDeadline; }

  bool Expired(TimestampMs now_ms) const {
    return has_deadline() && now_ms >= deadline_ms;
  }

  /// Milliseconds of budget left (never negative). kNoDeadline when no
  /// deadline is set.
  int64_t RemainingMs(TimestampMs now_ms) const {
    if (!has_deadline()) return kNoDeadline;
    return std::max<int64_t>(0, deadline_ms - now_ms);
  }

  static CallContext WithDeadline(TimestampMs deadline_ms) {
    CallContext ctx;
    ctx.deadline_ms = deadline_ms;
    return ctx;
  }

  /// Deadline `timeout_ms` from now on `clock`. A non-positive timeout means
  /// "no deadline" (the disabled default of IpsClientOptions).
  static CallContext WithTimeout(const Clock& clock, int64_t timeout_ms) {
    if (timeout_ms <= 0) return CallContext{};
    return WithDeadline(clock.NowMs() + timeout_ms);
  }
};

}  // namespace ips

#endif  // IPS_COMMON_CALL_CONTEXT_H_
