// Per-request call metadata propagated through the request path. The only
// field today is the deadline: every Query/MultiQuery/AddProfiles carries an
// absolute deadline that the transport and the serving instance both check,
// so a request that cannot finish in time fails fast with DeadlineExceeded
// instead of spending (simulated) latency past the point anyone is waiting.
//
// Deadlines are absolute timestamps in the caller's Clock domain (simulated
// or wall time), so forwarding a context through layers costs nothing and
// the remaining budget shrinks naturally as time passes.
#ifndef IPS_COMMON_CALL_CONTEXT_H_
#define IPS_COMMON_CALL_CONTEXT_H_

#include <algorithm>
#include <cstdint>
#include <limits>

#include "common/clock.h"

namespace ips {

struct CallContext {
  /// Sentinel meaning "no deadline": the request waits forever.
  static constexpr TimestampMs kNoDeadline =
      std::numeric_limits<TimestampMs>::max();

  /// Absolute deadline in the request's clock domain.
  TimestampMs deadline_ms = kNoDeadline;

  bool has_deadline() const { return deadline_ms != kNoDeadline; }

  bool Expired(TimestampMs now_ms) const {
    return has_deadline() && now_ms >= deadline_ms;
  }

  /// Milliseconds of budget left (never negative). kNoDeadline when no
  /// deadline is set.
  int64_t RemainingMs(TimestampMs now_ms) const {
    if (!has_deadline()) return kNoDeadline;
    return std::max<int64_t>(0, deadline_ms - now_ms);
  }

  static CallContext WithDeadline(TimestampMs deadline_ms) {
    CallContext ctx;
    ctx.deadline_ms = deadline_ms;
    return ctx;
  }

  /// Deadline `timeout_ms` from now on `clock`. A non-positive timeout means
  /// "no deadline" (the disabled default of IpsClientOptions).
  static CallContext WithTimeout(const Clock& clock, int64_t timeout_ms) {
    if (timeout_ms <= 0) return CallContext{};
    return WithDeadline(clock.NowMs() + timeout_ms);
  }
};

}  // namespace ips

#endif  // IPS_COMMON_CALL_CONTEXT_H_
