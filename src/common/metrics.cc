#include "common/metrics.h"

#include <sstream>

namespace ips {

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::map<std::string, int64_t> MetricsRegistry::SnapshotValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->Value();
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->Value();
  return out;
}

std::vector<std::string> MetricsRegistry::MetricNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, counter] : counters_) out.push_back(name);
  for (const auto& [name, gauge] : gauges_) out.push_back(name);
  for (const auto& [name, histogram] : histograms_) out.push_back(name);
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string MetricsRegistry::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    out << name << " = " << counter->Value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out << name << " = " << gauge->Value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    out << name << " : " << histogram->Summary() << "\n";
  }
  return out.str();
}

}  // namespace ips
