#include "common/trace.h"

#include <algorithm>
#include <string_view>

namespace ips {

namespace {
std::atomic<int64_t> g_allocations{0};
}  // namespace

namespace trace_internal {
TraceContext& CurrentSlot() {
  thread_local TraceContext slot;
  return slot;
}
}  // namespace trace_internal

Trace::Trace(uint64_t trace_id, TimestampMs start_ms)
    : trace_id_(trace_id), start_ms_(start_ms) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  spans_.reserve(16);
}

SpanId Trace::BeginSpan(const char* name, SpanId parent) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const int64_t now_ns = MonotonicNanos();
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(TraceSpan{name, parent, now_ns, 0});
  return static_cast<SpanId>(spans_.size() - 1);
}

void Trace::EndSpan(SpanId id) {
  // The end timestamp is captured after the lock: the cost of recording the
  // span closure charges to the span itself instead of leaking into the
  // untraced gap before the next stage (mirrors BeginSpan, whose push_back
  // runs after the start timestamp, i.e. inside the span).
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= 0 && static_cast<size_t>(id) < spans_.size()) {
    spans_[static_cast<size_t>(id)].end_ns = MonotonicNanos();
  }
}

std::vector<TraceSpan> Trace::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

int64_t Trace::DurationNs() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t first = 0;
  int64_t last = 0;
  bool any = false;
  for (const TraceSpan& span : spans_) {
    if (span.end_ns == 0) continue;
    if (!any) {
      first = span.start_ns;
      last = span.end_ns;
      any = true;
    } else {
      first = std::min(first, span.start_ns);
      last = std::max(last, span.end_ns);
    }
  }
  return any ? last - first : 0;
}

int64_t Trace::StageNs(const char* name) const {
  const std::string_view want(name);
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const TraceSpan& span : spans_) {
    if (span.end_ns != 0 && want == span.name) {
      total += span.end_ns - span.start_ns;
    }
  }
  return total;
}

int64_t Trace::Allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace ips
