#include "common/clock.h"

namespace ips {

SystemClock* SystemClock::Instance() {
  static SystemClock* const kInstance = new SystemClock();
  return kInstance;
}

}  // namespace ips
