#include "common/rate_limiter.h"

#include <algorithm>

namespace ips {

TokenBucket::TokenBucket(double rate_per_sec, double burst, Clock* clock)
    : rate_per_sec_(rate_per_sec),
      burst_(burst),
      available_(burst),
      last_refill_ms_(clock->NowMs()),
      clock_(clock) {}

void TokenBucket::RefillLocked(TimestampMs now_ms) {
  if (now_ms <= last_refill_ms_) return;
  const double elapsed_sec =
      static_cast<double>(now_ms - last_refill_ms_) / 1000.0;
  available_ = std::min(burst_, available_ + elapsed_sec * rate_per_sec_);
  last_refill_ms_ = now_ms;
}

bool TokenBucket::TryAcquire(double tokens) {
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked(clock_->NowMs());
  if (available_ < tokens) return false;
  available_ -= tokens;
  return true;
}

void TokenBucket::Reconfigure(double rate_per_sec, double burst) {
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked(clock_->NowMs());
  rate_per_sec_ = rate_per_sec;
  burst_ = burst;
  available_ = std::min(available_, burst_);
}

double TokenBucket::rate_per_sec() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rate_per_sec_;
}

}  // namespace ips
