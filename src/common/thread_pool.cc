#include "common/thread_pool.h"

namespace ips {

ThreadPool::ThreadPool(size_t num_threads, size_t max_queue)
    : max_queue_(max_queue) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || queue_.size() >= max_queue_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

// ------------------------------------------------------ StripedThreadPool ---

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

StripedThreadPool::StripedThreadPool(size_t num_threads, size_t num_shards,
                                     size_t max_queue)
    : max_queue_(max_queue) {
  if (num_threads == 0) num_threads = 1;
  num_workers_ = num_threads;
  num_shards = RoundUpPow2(std::max(num_shards, num_threads));
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

StripedThreadPool::~StripedThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool StripedThreadPool::Submit(uint64_t shard_hint,
                               std::function<void()> task) {
  // The bound check and the increments are racy against each other by
  // design: two submitters may both pass the check at max_queue_-1 and land
  // one task over the bound. The bound is a pressure valve, not an
  // accounting invariant, and an off-by-a-few overshoot is harmless.
  if (queued_.load(std::memory_order_relaxed) >= max_queue_) return false;
  Shard& shard = *shards_[shard_hint & (shards_.size() - 1)];
  {
    // wake_mu_ does double duty: checking shutdown_ under it BEFORE the push
    // means a task is either enqueued strictly before the destructor flips
    // shutdown_ (the drain loop then runs it) or rejected outright — there is
    // no acknowledged-then-discarded window, and no rollback that could pop
    // a different submitter's task. Holding it across the push also pairs
    // with the predicate check in WorkerLoop so a worker deciding to sleep
    // cannot miss this task.
    std::lock_guard<std::mutex> lock(wake_mu_);
    if (shutdown_) return false;
    {
      std::lock_guard<std::mutex> shard_lock(shard.mu);
      shard.queue.push_back(std::move(task));
    }
    pending_.fetch_add(1, std::memory_order_relaxed);
    queued_.fetch_add(1, std::memory_order_release);
  }
  work_cv_.notify_one();
  return true;
}

size_t StripedThreadPool::ShardQueueDepth(size_t shard) const {
  const Shard& s = *shards_[shard & (shards_.size() - 1)];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.queue.size();
}

bool StripedThreadPool::PopTask(size_t worker,
                                std::function<void()>* out_task) {
  const size_t num_shards = shards_.size();
  const size_t num_workers = num_workers_;
  // Home stripe first (FIFO within each shard), then steal. Both passes scan
  // with stride 1 so every worker can reach every shard: a stride-num_workers
  // scan only visits shards congruent to the start mod gcd(num_workers,
  // num_shards), which strands tasks on the unreachable shards until an
  // unrelated Submit happens to wake a capable worker. The steal pass starts
  // just past the home shard so concurrent stealers spread out instead of
  // piling onto shard 0.
  for (size_t pass = 0; pass < 2; ++pass) {
    const bool stealing = pass == 1;
    for (size_t i = 0; i < num_shards; ++i) {
      const size_t s = (worker + i + (stealing ? 1 : 0)) % num_shards;
      const bool home = s % num_workers == worker % num_workers;
      if (home == stealing) continue;
      Shard& shard = *shards_[s];
      std::lock_guard<std::mutex> lock(shard.mu);
      if (shard.queue.empty()) continue;
      *out_task = std::move(shard.queue.front());
      shard.queue.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      if (stealing) steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void StripedThreadPool::WorkerLoop(size_t worker) {
  for (;;) {
    std::function<void()> task;
    if (!PopTask(worker, &task)) {
      std::unique_lock<std::mutex> lock(wake_mu_);
      work_cv_.wait(lock, [this] {
        return shutdown_ || queued_.load(std::memory_order_acquire) > 0;
      });
      if (shutdown_ && queued_.load(std::memory_order_acquire) == 0) return;
      continue;
    }
    task();
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(wake_mu_);
      idle_cv_.notify_all();
    }
  }
}

void StripedThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  idle_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace ips
