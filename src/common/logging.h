// Minimal leveled logger. Off by default at DEBUG; bench binaries raise the
// level for progress lines. Thread-safe via a single mutex (the hot paths do
// not log).
#ifndef IPS_COMMON_LOGGING_H_
#define IPS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace ips {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one log line (already formatted) at the given level.
void LogMessage(LogLevel level, const std::string& message);

namespace logging_internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace logging_internal
}  // namespace ips

#define IPS_LOG(level)                                        \
  if (::ips::GetLogLevel() <= ::ips::LogLevel::k##level)      \
  ::ips::logging_internal::LogLine(::ips::LogLevel::k##level)

#endif  // IPS_COMMON_LOGGING_H_
