// Streaming latency histogram with log-bucketed resolution, used by every
// bench harness to report the p50/p99 series the paper's figures show.
#ifndef IPS_COMMON_HISTOGRAM_H_
#define IPS_COMMON_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ips {

/// Thread-safe histogram over non-negative integer samples (typically
/// microseconds). Buckets grow geometrically (~4% relative error), which is
/// ample for millisecond-scale service latency reporting.
class Histogram {
 public:
  Histogram();

  /// Records one sample. Lock-free.
  void Record(int64_t value);

  /// Records `count` occurrences of `value`.
  void RecordMultiple(int64_t value, int64_t count);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t min() const;
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;

  /// Value at quantile q in [0, 1], e.g. Percentile(0.99). Returns 0 when
  /// empty.
  int64_t Percentile(double q) const;

  /// Resets all counters; not atomic with respect to concurrent Record calls
  /// (bench harnesses call it between windows on quiesced load).
  void Reset();

  /// Merges `other` into this histogram.
  void Merge(const Histogram& other);

  /// One-line summary: count/mean/p50/p99/max.
  std::string Summary() const;

  static constexpr int kNumBuckets = 512;

  /// Exposed for tests: bucket index for a value.
  static int BucketFor(int64_t value);
  /// Exposed for tests: representative (upper bound) value of a bucket.
  static int64_t BucketUpperBound(int bucket);

 private:
  std::atomic<int64_t> buckets_[kNumBuckets];
  std::atomic<int64_t> count_;
  std::atomic<int64_t> sum_;
  std::atomic<int64_t> min_;
  std::atomic<int64_t> max_;
};

}  // namespace ips

#endif  // IPS_COMMON_HISTOGRAM_H_
