#include "common/random.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ips {

ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  // Hard validation even under NDEBUG: the Gray/Jain approximation is only
  // defined for theta in (0, 1) — at theta >= 1 the eta/alpha terms
  // silently degenerate (division by 1-theta) and every benchmark built on
  // the sampler reports skew it never generated. Misconfiguration here must
  // be loud, not a subtly wrong result.
  if (n == 0 || !(theta > 0.0) || !(theta < 1.0)) {
    std::fprintf(stderr,
                 "ZipfGenerator: invalid parameters n=%llu theta=%f "
                 "(need n > 0 and theta in (0, 1) exclusive)\n",
                 static_cast<unsigned long long>(n), theta);
    std::abort();
  }
  zeta_two_theta_ = Zeta(2, theta);
  zeta_n_ = Zeta(n, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta_two_theta_ / zeta_n_);
}

double ZipfGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfGenerator::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  const double uz = u * zeta_n_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

uint64_t ScrambleId(uint64_t rank) {
  // Stafford variant 13 of the murmur3 finalizer — a bijection on 64 bits.
  uint64_t z = rank + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace ips
