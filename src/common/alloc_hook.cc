#include "common/alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

// Counting replacement for the global allocation functions. Kept deliberately
// boring: forward to malloc/free (so sanitizer interceptors still see every
// allocation) and bump counters. No locks, no heap use of our own.
//
// The thread-local counters are plain integers: they are only read by the
// owning thread, so the hot path is a single increment. The global total is
// relaxed-atomic — it is reporting-only and never used for synchronization.

namespace ips {
namespace {

thread_local std::uint64_t tls_alloc_count = 0;
thread_local std::uint64_t tls_alloc_bytes = 0;
std::atomic<std::uint64_t> g_alloc_count{0};

inline void* CountedAlloc(std::size_t size) {
  // malloc(0) may return nullptr legally; operator new must not.
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) return nullptr;
  ++tls_alloc_count;
  tls_alloc_bytes += size;
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return p;
}

inline void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  if (size == 0) size = align;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size) != 0) {
    return nullptr;
  }
  ++tls_alloc_count;
  tls_alloc_bytes += size;
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return p;
}

}  // namespace

std::uint64_t ThreadAllocCount() { return tls_alloc_count; }
std::uint64_t ThreadAllocBytes() { return tls_alloc_bytes; }
std::uint64_t GlobalAllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}
bool AllocHookInstalled() { return true; }

}  // namespace ips

void* operator new(std::size_t size) {
  void* p = ips::CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = ips::CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return ips::CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ips::CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = ips::CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = ips::CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return ips::CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return ips::CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
