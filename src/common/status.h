// Error handling primitives for IPS. The codebase does not use exceptions;
// every fallible operation returns a Status or a Result<T>.
#ifndef IPS_COMMON_STATUS_H_
#define IPS_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace ips {

/// Canonical error space, loosely modelled after absl::StatusCode. Only the
/// codes IPS actually produces are defined.
enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kAlreadyExists = 3,
  kResourceExhausted = 4,   // quota rejections, memory caps
  kUnavailable = 5,         // injected node/region failures, dropped RPCs
  kDeadlineExceeded = 6,
  kAborted = 7,             // version conflicts on XSet (Fig 14 protocol)
  kCorruption = 8,          // codec / checksum failures
  kInternal = 9,
  kUnimplemented = 10,
};

/// Returns the canonical spelling of a code, e.g. "NOT_FOUND".
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic status object. An OK status carries no message and no
/// allocation; error statuses carry a code and a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// Load-shed rejection from the overload controller: ResourceExhausted
  /// plus a server-computed retry-after hint. Distinct from a plain quota
  /// rejection only through the hint — both are throttle decisions, never
  /// transient faults, so neither is IsRetryable() (an immediate re-dispatch
  /// would hit the same admission gate).
  static Status Overloaded(std::string msg, int64_t retry_after_ms) {
    Status s(StatusCode::kResourceExhausted, std::move(msg));
    s.retry_after_ms_ = retry_after_ms;
    return s;
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Server-suggested backoff before re-offering the request, in
  /// milliseconds. 0 means "no hint" (plain quota rejections, every other
  /// code). Survives copies so the hint reaches the client's retry policy
  /// through every Result/Status hand-off.
  int64_t retry_after_ms() const { return retry_after_ms_; }
  bool has_retry_after() const { return retry_after_ms_ > 0; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const {
    return code_ == StatusCode::kAlreadyExists;
  }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  /// A throttle decision by the server (quota or load shed): the request was
  /// well-formed and the target healthy, but admission said no. Retrying
  /// against another replica is pointless (they enforce the same policy);
  /// the only sane reactions are backing off by the hint or failing fast.
  bool IsThrottled() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }

  /// Whether a retry (possibly against another replica) could plausibly
  /// succeed. Only transient transport/storage faults qualify: Unavailable
  /// (node down, dropped RPC, partition) and Aborted (lost a version race —
  /// the conflict resolves on reload). Everything else is terminal for the
  /// request: quota rejections and caller bugs repeat deterministically, a
  /// blown deadline means nobody is waiting anymore, and corruption will not
  /// heal by asking again.
  bool IsRetryable() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kAborted;
  }

  /// "OK" or "CODE: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
  int64_t retry_after_ms_ = 0;
};

/// Result<T> holds either a value or an error Status, like absl::StatusOr.
template <typename T>
class Result {
 public:
  // Implicit conversions from value / status intentionally mirror StatusOr
  // ergonomics: `return value;` and `return Status::NotFound(...)` both work.
  Result(T value) : value_(std::move(value)) {}            // NOLINT
  Result(Status status) : status_(std::move(status)) {     // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

// Propagates errors to the caller, Rust-`?`-style.
#define IPS_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::ips::Status _ips_status = (expr);             \
    if (!_ips_status.ok()) return _ips_status;      \
  } while (0)

#define IPS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define IPS_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define IPS_ASSIGN_OR_RETURN_NAME(a, b) IPS_ASSIGN_OR_RETURN_CONCAT(a, b)

// `IPS_ASSIGN_OR_RETURN(auto v, Fn());` — assigns on success, returns the
// error Status on failure.
#define IPS_ASSIGN_OR_RETURN(lhs, rexpr) \
  IPS_ASSIGN_OR_RETURN_IMPL(             \
      IPS_ASSIGN_OR_RETURN_NAME(_ips_result_, __LINE__), lhs, rexpr)

}  // namespace ips

#endif  // IPS_COMMON_STATUS_H_
