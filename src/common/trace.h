// Request tracing: named spans attributing one request's latency to the
// pipeline stages it crossed (rpc transfer, server queueing, cache lookup,
// KV load, codec decode, feature compute).
//
// Design notes:
//  - A `Trace` is owned by whoever started the request (usually via
//    TraceCollector::MaybeStartTrace) and outlives every layer the request
//    crosses. Layers never allocate or free traces.
//  - `TraceContext` rides on CallContext through the API layers (client ->
//    channel -> instance). At each boundary that may hop threads, the layer
//    installs the context into a thread-local slot (TraceInstallScope), so
//    deep layers with no CallContext parameter (GCache, Persister, KvStore)
//    can open spans with a bare `ScopedSpan span("kv.load");`.
//  - Span timestamps are MONOTONIC WALL-CLOCK nanoseconds, not simulated
//    clock. Simulated network/KV latencies are *burned* in real time
//    (Channel/MemKvStore spin or sleep for the drawn delay), so wall time is
//    the only domain in which per-stage spans sum to the end-to-end latency
//    a benchmark measures. The trace additionally stamps the simulated-clock
//    start (start_ms) so exported traces can be lined up against
//    deadline/compaction events that live in the simulated domain.
//  - When no trace is installed, ScopedSpan is a thread-local read and a
//    branch: no allocation, no lock. Trace::Allocations() counts every
//    trace/span allocation so tests can assert the disabled hot path stays
//    at zero.
#ifndef IPS_COMMON_TRACE_H_
#define IPS_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace ips {

/// Index of a span within its trace. kNoSpan marks a root span's parent.
using SpanId = int32_t;
inline constexpr SpanId kNoSpan = -1;

struct TraceSpan {
  const char* name;  // string literal owned by the instrumentation site
  SpanId parent = kNoSpan;
  int64_t start_ns = 0;  // MonotonicNanos()
  int64_t end_ns = 0;    // 0 while the span is still open
};

/// One sampled request: an append-only list of closed-over spans. Spans may
/// be appended concurrently (MultiQuery scatter-gather workers record rpc
/// spans in parallel), so the span list is mutex-guarded; the lock is only
/// ever taken for sampled requests.
class Trace {
 public:
  Trace(uint64_t trace_id, TimestampMs start_ms);

  uint64_t trace_id() const { return trace_id_; }
  /// Simulated-clock timestamp at which the trace was started.
  TimestampMs start_ms() const { return start_ms_; }

  SpanId BeginSpan(const char* name, SpanId parent);
  void EndSpan(SpanId id);

  /// Snapshot of all spans recorded so far.
  std::vector<TraceSpan> Spans() const;

  /// Wall-clock extent of the trace: latest end minus earliest start over
  /// all closed spans. Zero when no span has closed.
  int64_t DurationNs() const;

  /// Total nanoseconds spent in spans with exactly this name. Stage spans
  /// never self-nest, so summing occurrences is double-count free.
  int64_t StageNs(const char* name) const;

  /// Process-wide count of trace and span allocations, for the
  /// tracing-disabled-is-free test.
  static int64_t Allocations();

 private:
  const uint64_t trace_id_;
  const TimestampMs start_ms_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
};

/// The (trace, parent span) pair a request carries. Copyable and cheap; an
/// inactive context (null trace) is the default everywhere.
struct TraceContext {
  Trace* trace = nullptr;
  SpanId parent = kNoSpan;

  bool active() const { return trace != nullptr; }
};

namespace trace_internal {
/// Thread-local "current position in the current trace" slot.
TraceContext& CurrentSlot();
}  // namespace trace_internal

/// The trace context currently installed on this thread (inactive if none).
inline TraceContext CurrentTrace() { return trace_internal::CurrentSlot(); }

/// Installs a request's TraceContext into the thread-local slot for the
/// scope of one layer's work, restoring the previous value on exit. An
/// inactive context installs nothing, so layers that receive a default
/// CallContext (e.g. batch-of-one wrappers) do not sever an outer trace.
class TraceInstallScope {
 public:
  explicit TraceInstallScope(const TraceContext& ctx)
      : saved_(trace_internal::CurrentSlot()), restore_(ctx.active()) {
    if (restore_) trace_internal::CurrentSlot() = ctx;
  }
  ~TraceInstallScope() {
    if (restore_) trace_internal::CurrentSlot() = saved_;
  }
  TraceInstallScope(const TraceInstallScope&) = delete;
  TraceInstallScope& operator=(const TraceInstallScope&) = delete;

 private:
  TraceContext saved_;
  bool restore_;
};

/// RAII span against the thread-local current trace. While open, it becomes
/// the parent for spans opened below it on the same thread. A no-op (one
/// thread-local read, no allocation) when no trace is installed.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    TraceContext& cur = trace_internal::CurrentSlot();
    trace_ = cur.trace;
    if (trace_ == nullptr) return;
    saved_parent_ = cur.parent;
    id_ = trace_->BeginSpan(name, saved_parent_);
    cur.parent = id_;
  }
  ~ScopedSpan() {
    if (trace_ == nullptr) return;
    trace_->EndSpan(id_);
    trace_internal::CurrentSlot().parent = saved_parent_;
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return trace_ != nullptr; }
  SpanId id() const { return id_; }

 private:
  Trace* trace_ = nullptr;
  SpanId id_ = kNoSpan;
  SpanId saved_parent_ = kNoSpan;
};

}  // namespace ips

#endif  // IPS_COMMON_TRACE_H_
