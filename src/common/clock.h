// Time sources. All IPS components take a Clock* so that tests and the
// workload-replay benchmarks can run on simulated time (a year of profile
// history replays in milliseconds) while examples run on real time.
#ifndef IPS_COMMON_CLOCK_H_
#define IPS_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

namespace ips {

/// Milliseconds since the epoch. All profile timestamps, slice boundaries and
/// time-range queries use this unit (matching the paper's ms-level latencies
/// and second-to-day level window configs).
using TimestampMs = int64_t;

/// Abstract time source.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in milliseconds.
  virtual TimestampMs NowMs() const = 0;

  /// Blocks (real clock) or advances time (manual clock) for `ms`.
  virtual void SleepMs(int64_t ms) = 0;
};

/// Wall-clock time source.
class SystemClock final : public Clock {
 public:
  TimestampMs NowMs() const override {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
  }

  void SleepMs(int64_t ms) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }

  /// Process-wide instance; Clock is stateless so sharing is safe.
  static SystemClock* Instance();
};

/// Deterministic, manually advanced time source for tests and simulation.
/// Thread-safe: multiple simulated workers may read while a driver advances.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimestampMs start_ms = 0) : now_ms_(start_ms) {}

  TimestampMs NowMs() const override {
    return now_ms_.load(std::memory_order_relaxed);
  }

  /// SleepMs on a manual clock advances simulated time instead of blocking.
  void SleepMs(int64_t ms) override { AdvanceMs(ms); }

  void AdvanceMs(int64_t delta_ms) {
    now_ms_.fetch_add(delta_ms, std::memory_order_relaxed);
  }

  void SetMs(TimestampMs now_ms) {
    now_ms_.store(now_ms, std::memory_order_relaxed);
  }

 private:
  std::atomic<TimestampMs> now_ms_;
};

/// Monotonic nanosecond timer for latency measurement (bench harnesses).
inline int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int64_t kMillisPerSecond = 1000;
constexpr int64_t kMillisPerMinute = 60 * kMillisPerSecond;
constexpr int64_t kMillisPerHour = 60 * kMillisPerMinute;
constexpr int64_t kMillisPerDay = 24 * kMillisPerHour;

}  // namespace ips

#endif  // IPS_COMMON_CLOCK_H_
