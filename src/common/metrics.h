// Lightweight process-local metrics: named counters, gauges and histograms.
// Every subsystem (cache swap/flush, compaction, quota, RPC transport)
// publishes here so the bench harnesses can report the same series the
// paper's production dashboards show (hit ratio, memory usage, error rate).
#ifndef IPS_COMMON_METRICS_H_
#define IPS_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace ips {

/// Monotonically increasing counter.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-writer-wins gauge.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Registry of named metrics. Lookup is mutex-guarded but callers cache the
/// returned pointer, so the hot path is a single relaxed atomic op.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Snapshot of all counter/gauge values, for test assertions and reports.
  std::map<std::string, int64_t> SnapshotValues() const;

  /// Every metric name the registry has seen — counters, gauges AND
  /// histograms (which SnapshotValues omits because a histogram has no
  /// single value). The docs/METRICS.md completeness test walks this.
  std::vector<std::string> MetricNames() const;

  /// Zeroes every counter and histogram (gauges keep their last value).
  void ResetAll();

  std::string Report() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ips

#endif  // IPS_COMMON_METRICS_H_
