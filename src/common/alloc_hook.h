// Allocation-counting harness for bench/test builds.
//
// Linking `ips_alloc_hook` into a binary replaces the global operator
// new/delete with counting wrappers (still backed by malloc/free). Production
// targets never link it, so the serving binaries pay nothing. The counters
// answer one question precisely: "how many heap allocations did this thread
// perform between two points?" — which is what the zero-steady-state-
// allocation gates in bench_micro and query_scratch_test assert on.
//
// Thread-local counting keeps the hot assertion race-free under TSan without
// atomics on every allocation; a relaxed global total is kept as well for
// whole-process reporting.
#pragma once

#include <cstdint>

namespace ips {

// Allocations performed by the calling thread since it started. Monotonic.
std::uint64_t ThreadAllocCount();

// Bytes requested by the calling thread since it started. Monotonic.
std::uint64_t ThreadAllocBytes();

// Process-wide allocation count (relaxed; approximate ordering only).
std::uint64_t GlobalAllocCount();

// True when the counting operator new/delete replacement is present.
bool AllocHookInstalled();

}  // namespace ips
