#include "common/trace_collector.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <string_view>

namespace ips {

namespace {

// Stage spans aggregated into MetricsRegistry. Histogram names are spelled
// out in full (not concatenated) so scripts/check_docs.sh can cross-check
// them against docs/METRICS.md with a plain grep.
struct StageMetric {
  const char* span;       // span name as recorded by instrumentation sites
  const char* histogram;  // "trace.stage.<span>" registry histogram
};

// The first kDisjointStages entries are the disjoint pipeline stages whose
// per-request sum approximates end-to-end latency; the rest are umbrella
// spans that overlap them (useful for nesting, excluded from any sum).
constexpr StageMetric kStageMetrics[] = {
    {"rpc.dispatch", "trace.stage.rpc.dispatch"},
    {"rpc.transfer", "trace.stage.rpc.transfer"},
    {"server.queue", "trace.stage.server.queue"},
    {"cache.lookup", "trace.stage.cache.lookup"},
    {"cache.l2_lookup", "trace.stage.cache.l2_lookup"},
    {"server.coalesce", "trace.stage.server.coalesce"},
    {"kv.load", "trace.stage.kv.load"},
    {"kv.load.shared", "trace.stage.kv.load.shared"},
    {"codec.decode", "trace.stage.codec.decode"},
    {"feature.compute", "trace.stage.feature.compute"},
    {"kv.store", "trace.stage.kv.store"},
    {"server.store_coalesce", "trace.stage.server.store_coalesce"},
    {"kv.store.shared", "trace.stage.kv.store.shared"},
    {"server.query", "trace.stage.server.query"},
    {"server.add", "trace.stage.server.add"},
    {"client.query", "trace.stage.client.query"},
    {"client.multi_query", "trace.stage.client.multi_query"},
    {"client.multi_add", "trace.stage.client.multi_add"},
    {"assembler.batch", "trace.stage.assembler.batch"},
    {"compaction.run", "trace.stage.compaction.run"},
};
constexpr size_t kDisjointStages = 13;

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
}

int64_t TraceBaseNs(const std::vector<TraceSpan>& spans) {
  int64_t base = 0;
  bool any = false;
  for (const TraceSpan& span : spans) {
    if (!any || span.start_ns < base) {
      base = span.start_ns;
      any = true;
    }
  }
  return base;
}

}  // namespace

TraceCollector::TraceCollector(TraceCollectorOptions options, Clock* clock,
                               MetricsRegistry* metrics)
    : options_(options), clock_(clock), metrics_(metrics) {}

std::unique_ptr<Trace> TraceCollector::MaybeStartTrace() {
  if (options_.sample_every_n <= 0) return nullptr;
  const int64_t seq = request_seq_.fetch_add(1, std::memory_order_relaxed);
  if (seq % options_.sample_every_n != 0) return nullptr;
  metrics_->GetCounter("trace.sampled")->Increment();
  const uint64_t id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  return std::make_unique<Trace>(id, clock_->NowMs());
}

void TraceCollector::Finish(std::unique_ptr<Trace> trace) {
  if (trace == nullptr) return;
  metrics_->GetCounter("trace.finished")->Increment();

  const std::vector<TraceSpan> spans = trace->Spans();
  SlowQueryEntry entry;
  entry.trace_id = trace->trace_id();
  entry.start_ms = trace->start_ms();
  entry.duration_us = trace->DurationNs() / 1000;
  for (const StageMetric& stage : kStageMetrics) {
    int64_t total_ns = 0;
    bool present = false;
    for (const TraceSpan& span : spans) {
      if (span.end_ns != 0 && std::string_view(stage.span) == span.name) {
        total_ns += span.end_ns - span.start_ns;
        present = true;
      }
    }
    if (!present) continue;
    metrics_->GetHistogram(stage.histogram)->Record(total_ns / 1000);
    entry.stages.emplace_back(stage.span, total_ns / 1000);
  }

  std::lock_guard<std::mutex> lock(mu_);
  slow_log_.push_back(std::move(entry));
  std::stable_sort(slow_log_.begin(), slow_log_.end(),
                   [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
                     return a.duration_us > b.duration_us;
                   });
  if (slow_log_.size() > options_.slow_log_capacity) {
    slow_log_.resize(options_.slow_log_capacity);
  }

  ring_.push_back(std::move(trace));
  while (ring_.size() > options_.ring_capacity) {
    ring_.pop_front();
    metrics_->GetCounter("trace.ring_evicted")->Increment();
  }
  metrics_->GetGauge("trace.ring_size")->Set(
      static_cast<int64_t>(ring_.size()));
}

size_t TraceCollector::RetainedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::string TraceCollector::ExportJsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const std::unique_ptr<Trace>& trace : ring_) {
    const std::vector<TraceSpan> spans = trace->Spans();
    const int64_t base_ns = TraceBaseNs(spans);
    Appendf(&out, "{\"trace_id\":%" PRIu64 ",\"start_ms\":%lld",
            trace->trace_id(),
            static_cast<long long>(trace->start_ms()));
    Appendf(&out, ",\"duration_us\":%lld,\"spans\":[",
            static_cast<long long>(trace->DurationNs() / 1000));
    for (size_t i = 0; i < spans.size(); ++i) {
      if (i > 0) out.push_back(',');
      out.append("{\"name\":");
      AppendJsonString(&out, spans[i].name);
      const double start_us =
          static_cast<double>(spans[i].start_ns - base_ns) / 1000.0;
      const double dur_us =
          spans[i].end_ns == 0
              ? 0.0
              : static_cast<double>(spans[i].end_ns - spans[i].start_ns) /
                    1000.0;
      Appendf(&out, ",\"parent\":%d,\"start_us\":%.3f,\"dur_us\":%.3f}",
              spans[i].parent, start_us, dur_us);
    }
    out.append("]}\n");
  }
  return out;
}

std::string TraceCollector::ExportChromeTrace() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const std::unique_ptr<Trace>& trace : ring_) {
    const std::vector<TraceSpan> spans = trace->Spans();
    const int64_t base_ns = TraceBaseNs(spans);
    for (size_t i = 0; i < spans.size(); ++i) {
      if (spans[i].end_ns == 0) continue;
      if (!first) out.push_back(',');
      first = false;
      out.append("{\"name\":");
      AppendJsonString(&out, spans[i].name);
      // One chrome "process" per trace keeps concurrent scatter-gather
      // siblings from stacking onto one timeline row.
      Appendf(&out,
              ",\"cat\":\"ips\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
              "\"pid\":%" PRIu64 ",\"tid\":%d,\"args\":{\"parent\":%d}}",
              static_cast<double>(spans[i].start_ns - base_ns) / 1000.0,
              static_cast<double>(spans[i].end_ns - spans[i].start_ns) /
                  1000.0,
              trace->trace_id(), spans[i].parent, spans[i].parent);
    }
  }
  out.append("]}");
  return out;
}

std::vector<SlowQueryEntry> TraceCollector::SlowQueries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_log_;
}

std::string TraceCollector::SlowQueryReport() const {
  const std::vector<SlowQueryEntry> entries = SlowQueries();
  std::string out;
  Appendf(&out, "slow queries (%zu retained, worst first):\n",
          entries.size());
  for (const SlowQueryEntry& entry : entries) {
    Appendf(&out, "  trace %" PRIu64 ": %lld us @ sim t=%lld ms |",
            entry.trace_id, static_cast<long long>(entry.duration_us),
            static_cast<long long>(entry.start_ms));
    for (const auto& [stage, us] : entry.stages) {
      Appendf(&out, " %s=%lldus", stage.c_str(),
              static_cast<long long>(us));
    }
    out.push_back('\n');
  }
  return out;
}

const std::vector<std::string>& TraceCollector::StageNames() {
  static const std::vector<std::string>* names = [] {
    auto* v = new std::vector<std::string>();
    for (const StageMetric& stage : kStageMetrics) v->push_back(stage.span);
    return v;
  }();
  return *names;
}

size_t TraceCollector::DisjointStageCount() { return kDisjointStages; }

}  // namespace ips
