// Fixed-size worker pool with a bounded queue. Used for the asynchronous
// compaction path (Section III-D: compaction runs off the serving path in a
// dedicated pool "with capped parallelism") and for the flush/swap machinery
// tests.
#ifndef IPS_COMMON_THREAD_POOL_H_
#define IPS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ips {

class ThreadPool {
 public:
  /// Starts `num_threads` workers. `max_queue` bounds the number of pending
  /// tasks; submissions beyond it are rejected (the caller decides whether to
  /// degrade, e.g. skip a partial compaction under load).
  explicit ThreadPool(size_t num_threads, size_t max_queue = 4096);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns false when the queue is full or the pool is
  /// shutting down.
  bool Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  size_t max_queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ips

#endif  // IPS_COMMON_THREAD_POOL_H_
