// Fixed-size worker pools with bounded queues. ThreadPool is the single-queue
// original (flush/swap machinery tests, small helpers). StripedThreadPool is
// the sharded variant used by the asynchronous compaction drain (Section
// III-D: compaction runs off the serving path in a dedicated pool "with
// capped parallelism"): tasks land in per-shard FIFO queues and N workers
// drain N shards concurrently, stealing from foreign shards when their own
// stripe runs dry, so a drain storm never funnels through one queue mutex.
#ifndef IPS_COMMON_THREAD_POOL_H_
#define IPS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ips {

class ThreadPool {
 public:
  /// Starts `num_threads` workers. `max_queue` bounds the number of pending
  /// tasks; submissions beyond it are rejected (the caller decides whether to
  /// degrade, e.g. skip a partial compaction under load).
  explicit ThreadPool(size_t num_threads, size_t max_queue = 4096);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns false when the queue is full or the pool is
  /// shutting down.
  bool Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  size_t max_queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Sharded work queue + striped workers. Submissions carry a shard hint
/// (e.g. a pid hash): tasks for one shard run in FIFO order, different
/// shards drain concurrently. Each worker owns the stripe of shards
/// `{s : s % num_threads == worker}` and scans it first; when the stripe is
/// empty it steals from foreign shards (oldest-first within each), so a
/// skewed shard cannot idle the rest of the pool. Queue mutexes are
/// per-shard — submitters and workers touching different shards never
/// contend; the pool-wide mutex is only taken around condition-variable
/// sleeps and wakeups, never across queue operations or task bodies.
class StripedThreadPool {
 public:
  /// `num_shards` is rounded up to a power of two and to at least
  /// `num_threads`. `max_queue` bounds the TOTAL queued (not yet running)
  /// tasks across all shards; submissions beyond it are rejected (callers
  /// degrade, e.g. drop a compaction trigger for later traffic to re-raise).
  StripedThreadPool(size_t num_threads, size_t num_shards,
                    size_t max_queue = 4096);

  /// Drains queued tasks and joins all workers.
  ~StripedThreadPool();

  StripedThreadPool(const StripedThreadPool&) = delete;
  StripedThreadPool& operator=(const StripedThreadPool&) = delete;

  /// Enqueues a task on the shard `shard_hint % num_shards`; returns false
  /// when the pool-wide queue bound is hit or the pool is shutting down.
  bool Submit(uint64_t shard_hint, std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  size_t num_threads() const { return num_workers_; }
  size_t num_shards() const { return shards_.size(); }

  /// Total queued (not yet running) tasks.
  size_t QueueDepth() const {
    return queued_.load(std::memory_order_relaxed);
  }
  /// Queued tasks on one shard (shard < num_shards()).
  size_t ShardQueueDepth(size_t shard) const;

  /// Tasks a worker popped from a shard outside its home stripe. Monotone;
  /// the compaction manager surfaces deltas as the compaction.steals metric.
  uint64_t StealCount() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::deque<std::function<void()>> queue;
  };

  void WorkerLoop(size_t worker);
  /// Pops the next task for `worker`, home stripe first, then steals.
  /// Returns false when every shard is empty.
  bool PopTask(size_t worker, std::function<void()>* out_task);

  /// unique_ptr so shards stay put; the vector itself is immutable after
  /// construction.
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Fixed before any worker spawns: a worker's PopTask must not read
  /// workers_.size() while the constructor is still appending threads.
  size_t num_workers_;
  size_t max_queue_;

  /// Tasks sitting in shard queues (not yet popped).
  std::atomic<size_t> queued_{0};
  /// queued + running, for Wait().
  std::atomic<size_t> pending_{0};
  std::atomic<uint64_t> steals_{0};

  /// Guards only the sleep/wake protocol (see class comment).
  mutable std::mutex wake_mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  bool shutdown_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace ips

#endif  // IPS_COMMON_THREAD_POOL_H_
