// Token-bucket rate limiter backing the per-caller QPS quotas of Section V-b:
// each upstream caller gets a quota and the server rejects requests above it
// until the usage falls back under the limit.
#ifndef IPS_COMMON_RATE_LIMITER_H_
#define IPS_COMMON_RATE_LIMITER_H_

#include <cstdint>
#include <mutex>

#include "common/clock.h"

namespace ips {

/// Classic token bucket. Thread-safe. Time comes from a Clock so quota
/// behaviour is testable under simulated time.
class TokenBucket {
 public:
  /// `rate_per_sec` tokens accrue per second up to `burst` capacity.
  TokenBucket(double rate_per_sec, double burst, Clock* clock);

  /// Attempts to take `tokens`; returns false (and consumes nothing) when the
  /// bucket lacks them — the quota-exceeded rejection path.
  bool TryAcquire(double tokens = 1.0);

  /// Replaces the rate/burst on the fly (hot reconfiguration, §V-b).
  void Reconfigure(double rate_per_sec, double burst);

  double rate_per_sec() const;

 private:
  void RefillLocked(TimestampMs now_ms);

  mutable std::mutex mu_;
  double rate_per_sec_;
  double burst_;
  double available_;
  TimestampMs last_refill_ms_;
  Clock* clock_;
};

}  // namespace ips

#endif  // IPS_COMMON_RATE_LIMITER_H_
