// Hashing utilities shared by the shard routers, the consistent-hash ring
// and the cache partitioning.
#ifndef IPS_COMMON_HASH_H_
#define IPS_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace ips {

/// 64-bit finalizer-style mixer (murmur3 fmix64). Bijective; used to spread
/// sequential profile IDs across shards.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

/// FNV-1a over arbitrary bytes; used for string keys (table names, node ids).
inline uint64_t Fnv1a(std::string_view data) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Combines two hashes (boost-style with 64-bit constant).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 12) + (a >> 4));
}

/// CRC-ish checksum for codec framing. Not a real CRC32C (no hardware
/// dependency) but detects the corruption classes the tests inject.
inline uint32_t Checksum32(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0x811C9DC5ULL ^ len;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x01000193ULL;
    h ^= h >> 17;
  }
  return static_cast<uint32_t>(h ^ (h >> 32));
}

}  // namespace ips

#endif  // IPS_COMMON_HASH_H_
