// TraceCollector: owns the sampling decision and everything that happens to
// a trace after its request completes — per-stage histogram aggregation into
// MetricsRegistry (so the Table II decomposition falls out of normal load),
// a ring buffer of recent full traces exportable as JSONL or chrome-trace
// JSON (load the latter in chrome://tracing or https://ui.perfetto.dev), and
// a slow-query log of the N worst traces with their stage breakdowns.
#ifndef IPS_COMMON_TRACE_COLLECTOR_H_
#define IPS_COMMON_TRACE_COLLECTOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace ips {

struct TraceCollectorOptions {
  /// Sample one request out of every N. 0 disables tracing entirely
  /// (MaybeStartTrace always returns null); 1 traces every request.
  int64_t sample_every_n = 0;
  /// How many finished traces the ring buffer retains for export.
  size_t ring_capacity = 64;
  /// How many worst-latency traces the slow-query log keeps.
  size_t slow_log_capacity = 8;
};

/// One slow-query log entry: a finished trace's identity plus its stage
/// breakdown, cheap enough to retain after the full trace is evicted.
struct SlowQueryEntry {
  uint64_t trace_id = 0;
  TimestampMs start_ms = 0;   // simulated clock at trace start
  int64_t duration_us = 0;    // wall-clock extent of the trace
  /// (stage name, total us) for every known stage present in the trace.
  std::vector<std::pair<std::string, int64_t>> stages;
};

class TraceCollector {
 public:
  /// `clock` stamps the simulated-clock start on new traces; `metrics`
  /// receives the per-stage histograms. Both must outlive the collector.
  TraceCollector(TraceCollectorOptions options, Clock* clock,
                 MetricsRegistry* metrics);

  /// Per-request sampling decision. Returns an owned trace when this request
  /// is sampled, null otherwise. With sampling off this is one relaxed
  /// atomic load — no allocation.
  std::unique_ptr<Trace> MaybeStartTrace();

  /// The context to place on the request's CallContext (inactive for null).
  static TraceContext ContextFor(Trace* trace) {
    return TraceContext{trace, kNoSpan};
  }

  /// Ingests a finished trace: records per-stage histograms, retains the
  /// trace in the ring buffer, and updates the slow-query log. Null is
  /// accepted and ignored so callers can finish unconditionally.
  void Finish(std::unique_ptr<Trace> trace);

  size_t RetainedCount() const;

  /// One JSON object per line per retained trace:
  ///   {"trace_id":..,"start_ms":..,"duration_us":..,"spans":[...]}
  std::string ExportJsonl() const;

  /// Chrome trace-event JSON ("X" complete events, microsecond timestamps).
  std::string ExportChromeTrace() const;

  /// The N worst traces by duration, worst first.
  std::vector<SlowQueryEntry> SlowQueries() const;

  /// Human-readable slow-query log for reports and the quickstart example.
  std::string SlowQueryReport() const;

  /// Stage names aggregated into "trace.stage.<name>" histograms, in
  /// display order: the disjoint pipeline stages first (see
  /// DisjointStageCount), then the umbrella spans (which overlap the stages
  /// and must not be summed with them).
  static const std::vector<std::string>& StageNames();
  /// Number of leading StageNames() entries that are disjoint pipeline
  /// stages (safe to sum per request).
  static size_t DisjointStageCount();

 private:
  const TraceCollectorOptions options_;
  Clock* const clock_;
  MetricsRegistry* const metrics_;
  std::atomic<int64_t> request_seq_{0};
  std::atomic<uint64_t> next_trace_id_{1};

  mutable std::mutex mu_;
  std::deque<std::unique_ptr<Trace>> ring_;
  std::vector<SlowQueryEntry> slow_log_;  // sorted worst-first
};

}  // namespace ips

#endif  // IPS_COMMON_TRACE_COLLECTOR_H_
