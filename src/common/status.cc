#include "common/status.h"

namespace ips {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  if (retry_after_ms_ > 0) {
    out += " (retry after ";
    out += std::to_string(retry_after_ms_);
    out += "ms)";
  }
  return out;
}

}  // namespace ips
