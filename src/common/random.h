// Deterministic pseudo-random sources used by workload generators, failure
// injection and the simulated transports. Everything is seedable so every
// benchmark run is reproducible.
#ifndef IPS_COMMON_RANDOM_H_
#define IPS_COMMON_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace ips {

/// xoshiro256** generator: fast, high quality, and state is four words so a
/// per-shard instance costs nothing. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed, the canonical initializer.
    for (auto& word : state_) {
      seed += 0x9E3779B97F4A7C15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    // Lemire's multiply-shift rejection-free mapping is fine here; slight
    // modulo bias is irrelevant for workload generation.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(hi >= lo);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponential variate with the given mean (> 0); used for simulated
  /// network/storage latency tails.
  double Exponential(double mean) {
    double u = NextDouble();
    if (u >= 1.0) u = 0.9999999999999999;
    return -mean * std::log1p(-u);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// Zipfian sampler over [0, n). Uses the Gray/Jain rejection-inversion-free
/// approximation with precomputed zeta; draws are O(1).
///
/// User popularity in consumer recommendation traffic is heavily skewed; the
/// paper's cache-hit-ratio and compaction results only arise under such skew,
/// so all profile-ID workloads in bench/ sample from this distribution.
class ZipfGenerator {
 public:
  /// `n` items (> 0), skew `theta` strictly inside (0, 1); theta ~0.99
  /// matches YCSB's default and approximates measured content-consumption
  /// skew. The domain is hard: the approximation's alpha = 1/(1-theta) and
  /// eta terms degenerate at theta >= 1 (theta = 1.0 divides by zero and
  /// silently yields a non-Zipfian sampler), so out-of-domain values abort
  /// with a diagnostic rather than misreport every downstream benchmark —
  /// in release builds too, not just under assert.
  ZipfGenerator(uint64_t n, double theta);

  /// Draws an item rank in [0, n); rank 0 is the most popular.
  uint64_t Next(Rng& rng) const;

  uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zeta_n_;
  double eta_;
  double zeta_two_theta_;
};

/// Scrambles a dense rank into a sparse 64-bit ID so consecutive hot users do
/// not land on the same hash shard (mirrors hashed profile IDs in the paper).
uint64_t ScrambleId(uint64_t rank);

}  // namespace ips

#endif  // IPS_COMMON_RANDOM_H_
