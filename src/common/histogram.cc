#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace ips {

namespace {

// Geometric bucket boundaries: first 64 buckets are exact (0..63), then each
// subsequent group of 16 doubles the range, giving ~4% relative resolution.
constexpr int kLinearBuckets = 64;
constexpr int kSubBucketsPerOctave = 16;

}  // namespace

int Histogram::BucketFor(int64_t value) {
  if (value < 0) value = 0;
  if (value < kLinearBuckets) return static_cast<int>(value);
  // Position within the geometric region.
  const int msb = 63 - __builtin_clzll(static_cast<uint64_t>(value));
  const int octave = msb - 5;  // values >= 64 have msb >= 6
  const int64_t base = int64_t{1} << msb;
  const int sub = static_cast<int>(((value - base) * kSubBucketsPerOctave) /
                                   base);
  int idx = kLinearBuckets + (octave - 1) * kSubBucketsPerOctave + sub;
  if (idx >= kNumBuckets) idx = kNumBuckets - 1;
  return idx;
}

int64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket < kLinearBuckets) return bucket;
  const int rel = bucket - kLinearBuckets;
  const int octave = rel / kSubBucketsPerOctave + 1;
  const int sub = rel % kSubBucketsPerOctave;
  const int64_t base = int64_t{1} << (octave + 5);
  return base + (base * (sub + 1)) / kSubBucketsPerOctave - 1;
}

Histogram::Histogram() { Reset(); }

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<int64_t>::max(), std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Histogram::Record(int64_t value) { RecordMultiple(value, 1); }

void Histogram::RecordMultiple(int64_t value, int64_t count) {
  if (count <= 0) return;
  if (value < 0) value = 0;
  buckets_[BucketFor(value)].fetch_add(count, std::memory_order_relaxed);
  count_.fetch_add(count, std::memory_order_relaxed);
  sum_.fetch_add(value * count, std::memory_order_relaxed);
  int64_t prev_min = min_.load(std::memory_order_relaxed);
  while (value < prev_min &&
         !min_.compare_exchange_weak(prev_min, value,
                                     std::memory_order_relaxed)) {
  }
  int64_t prev_max = max_.load(std::memory_order_relaxed);
  while (value > prev_max &&
         !max_.compare_exchange_weak(prev_max, value,
                                     std::memory_order_relaxed)) {
  }
}

int64_t Histogram::min() const {
  const int64_t m = min_.load(std::memory_order_relaxed);
  return m == std::numeric_limits<int64_t>::max() ? 0 : m;
}

double Histogram::Mean() const {
  const int64_t c = count();
  return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
}

int64_t Histogram::Percentile(double q) const {
  const int64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const int64_t target = static_cast<int64_t>(std::ceil(q * total));
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target && seen > 0) {
      return std::min(BucketUpperBound(i), max());
    }
  }
  return max();
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    const int64_t v = other.buckets_[i].load(std::memory_order_relaxed);
    if (v != 0) buckets_[i].fetch_add(v, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  const int64_t omin = other.min_.load(std::memory_order_relaxed);
  int64_t prev_min = min_.load(std::memory_order_relaxed);
  while (omin < prev_min &&
         !min_.compare_exchange_weak(prev_min, omin,
                                     std::memory_order_relaxed)) {
  }
  const int64_t omax = other.max();
  int64_t prev_max = max_.load(std::memory_order_relaxed);
  while (omax > prev_max &&
         !max_.compare_exchange_weak(prev_max, omax,
                                     std::memory_order_relaxed)) {
  }
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%lld mean=%.1f p50=%lld p99=%lld max=%lld",
                static_cast<long long>(count()), Mean(),
                static_cast<long long>(Percentile(0.50)),
                static_cast<long long>(Percentile(0.99)),
                static_cast<long long>(max()));
  return buf;
}

}  // namespace ips
