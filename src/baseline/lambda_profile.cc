#include "baseline/lambda_profile.h"

#include <algorithm>
#include <map>

#include "codec/coding.h"

namespace ips {

void ContentStore::Put(FeatureId item, SlotId slot, TypeId type) {
  std::lock_guard<std::mutex> lock(mu_);
  items_[item] = {slot, type};
}

Status ContentStore::Lookup(FeatureId item, SlotId* slot,
                            TypeId* type) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = items_.find(item);
  if (it == items_.end()) {
    return Status::NotFound("item " + std::to_string(item));
  }
  *slot = it->second.first;
  *type = it->second.second;
  return Status::OK();
}

size_t ContentStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

namespace {

// Long-term profile value encoding: a flat list of (fid, slot, type, counts)
// sorted by slot then descending primary count — the precomputed form the
// batch job produces.
void EncodeLongTerm(const std::vector<LongTermFeature>& features,
                    std::string* out) {
  PutVarint64(out, features.size());
  for (const auto& f : features) {
    PutVarint64(out, f.fid);
    PutVarint64(out, f.slot);
    PutVarint64(out, f.type);
    PutVarint64(out, f.counts.size());
    for (size_t i = 0; i < f.counts.size(); ++i) {
      PutVarintSigned64(out, f.counts[i]);
    }
  }
}

bool DecodeLongTerm(std::string_view data,
                    std::vector<LongTermFeature>* features) {
  Decoder dec(data);
  uint64_t n;
  if (!dec.GetVarint64(&n)) return false;
  if (n > 1u << 24) return false;
  features->clear();
  features->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    LongTermFeature f;
    uint64_t slot, type, counts_n;
    if (!dec.GetVarint64(&f.fid) || !dec.GetVarint64(&slot) ||
        !dec.GetVarint64(&type) || !dec.GetVarint64(&counts_n)) {
      return false;
    }
    if (counts_n > 64) return false;
    f.slot = static_cast<SlotId>(slot);
    f.type = static_cast<TypeId>(type);
    f.counts.Resize(counts_n);
    for (uint64_t j = 0; j < counts_n; ++j) {
      int64_t v;
      if (!dec.GetVarintSigned64(&v)) return false;
      f.counts[j] = v;
    }
    features->push_back(std::move(f));
  }
  return dec.Empty();
}

}  // namespace

LambdaProfileService::LambdaProfileService(LambdaOptions options,
                                           KvStore* long_term_kv,
                                           ContentStore* content, Clock* clock)
    : options_(options),
      long_term_kv_(long_term_kv),
      content_(content),
      clock_(clock) {}

std::string LambdaProfileService::LongTermKey(ProfileId uid) const {
  return "lt/" + std::to_string(uid);
}

Status LambdaProfileService::RecordAction(ProfileId uid, FeatureId item,
                                          TimestampMs timestamp,
                                          const CountVector& counts) {
  std::lock_guard<std::mutex> lock(mu_);
  batch_log_.push_back(LoggedAction{uid, item, timestamp, counts});
  auto& recent = short_term_[uid];
  recent.push_back(ShortTermEntry{item, timestamp});
  while (recent.size() > options_.short_term_capacity) recent.pop_front();
  return Status::OK();
}

size_t LambdaProfileService::RunDailyBatch(TimestampMs now_ms) {
  std::vector<LoggedAction> log;
  {
    std::lock_guard<std::mutex> lock(mu_);
    log.swap(batch_log_);
    last_batch_ms_ = now_ms;
  }
  if (log.empty()) return 0;

  // Fold the day's actions into the stored profiles, user by user.
  std::map<ProfileId, std::vector<LoggedAction>> by_user;
  for (auto& action : log) by_user[action.uid].push_back(std::move(action));

  size_t users = 0;
  for (auto& [uid, actions] : by_user) {
    std::vector<LongTermFeature> profile;
    std::string stored;
    if (long_term_kv_->Get(LongTermKey(uid), &stored).ok()) {
      DecodeLongTerm(stored, &profile);
    }
    // Merge new actions into the aggregate.
    std::map<FeatureId, LongTermFeature> merged;
    for (auto& f : profile) merged[f.fid] = std::move(f);
    for (const auto& action : actions) {
      auto it = merged.find(action.item);
      if (it == merged.end()) {
        LongTermFeature f;
        f.fid = action.item;
        if (!content_->Lookup(action.item, &f.slot, &f.type).ok()) continue;
        f.counts = action.counts;
        merged[action.item] = std::move(f);
      } else {
        it->second.counts.AccumulateSum(action.counts);
      }
    }
    // Keep the top N per slot by primary count.
    std::map<SlotId, std::vector<LongTermFeature>> per_slot;
    for (auto& [fid, f] : merged) per_slot[f.slot].push_back(std::move(f));
    std::vector<LongTermFeature> kept;
    for (auto& [slot, features] : per_slot) {
      std::sort(features.begin(), features.end(),
                [](const LongTermFeature& a, const LongTermFeature& b) {
                  const int64_t ca = a.counts.At(0), cb = b.counts.At(0);
                  if (ca != cb) return ca > cb;
                  return a.fid < b.fid;
                });
      if (features.size() > options_.long_term_top_n) {
        features.resize(options_.long_term_top_n);
      }
      for (auto& f : features) kept.push_back(std::move(f));
    }
    std::string encoded;
    EncodeLongTerm(kept, &encoded);
    if (long_term_kv_->Set(LongTermKey(uid), encoded).ok()) ++users;
  }
  return users;
}

Result<std::vector<LongTermFeature>> LambdaProfileService::QueryLongTerm(
    ProfileId uid, SlotId slot, size_t k) const {
  std::string stored;
  Status status = long_term_kv_->Get(LongTermKey(uid), &stored);
  if (status.IsNotFound()) return std::vector<LongTermFeature>{};
  IPS_RETURN_IF_ERROR(status);
  std::vector<LongTermFeature> profile;
  if (!DecodeLongTerm(stored, &profile)) {
    return Status::Corruption("malformed long-term profile");
  }
  std::vector<LongTermFeature> out;
  for (auto& f : profile) {
    if (f.slot == slot) out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end(),
            [](const LongTermFeature& a, const LongTermFeature& b) {
              const int64_t ca = a.counts.At(0), cb = b.counts.At(0);
              if (ca != cb) return ca > cb;
              return a.fid < b.fid;
            });
  if (k > 0 && out.size() > k) out.resize(k);
  return out;
}

Result<std::vector<LongTermFeature>> LambdaProfileService::QueryShortTerm(
    ProfileId uid, SlotId slot, size_t k, size_t* lookups) const {
  std::vector<ShortTermEntry> recent;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = short_term_.find(uid);
    if (it != short_term_.end()) {
      recent.assign(it->second.begin(), it->second.end());
    }
  }
  // The upstream-visible assembly step: resolve every recent id against the
  // content store, then aggregate — work IPS performs server-side, once.
  std::map<FeatureId, LongTermFeature> agg;
  size_t lookup_count = 0;
  for (const auto& entry : recent) {
    SlotId item_slot;
    TypeId item_type;
    ++lookup_count;
    if (!content_->Lookup(entry.item, &item_slot, &item_type).ok()) continue;
    if (item_slot != slot) continue;
    auto it = agg.find(entry.item);
    if (it == agg.end()) {
      LongTermFeature f;
      f.fid = entry.item;
      f.slot = item_slot;
      f.type = item_type;
      f.counts.Resize(options_.num_actions);
      f.counts[0] = 1;
      agg[entry.item] = std::move(f);
    } else {
      it->second.counts[0] += 1;
    }
  }
  if (lookups != nullptr) *lookups = lookup_count;
  std::vector<LongTermFeature> out;
  out.reserve(agg.size());
  for (auto& [fid, f] : agg) out.push_back(std::move(f));
  std::sort(out.begin(), out.end(),
            [](const LongTermFeature& a, const LongTermFeature& b) {
              const int64_t ca = a.counts.At(0), cb = b.counts.At(0);
              if (ca != cb) return ca > cb;
              return a.fid < b.fid;
            });
  if (k > 0 && out.size() > k) out.resize(k);
  return out;
}

size_t LambdaProfileService::pending_log_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batch_log_.size();
}

}  // namespace ips
