// The legacy Lambda-architecture profile service of Section I (Fig 2) — the
// baseline IPS replaced. Two independent services:
//
//  * Long Term Profile: a key-value store holding each user's top features
//    over their entire history, refreshed by a daily offline batch job over
//    the action logs. Fresh at best as of the last batch run.
//  * Short Term Profile: only the content ids of the user's most recent
//    clicks; at query time the caller resolves each id against a content
//    store to obtain categorical information and assembles features itself.
//
// The benchmark contrast with IPS: no arbitrary time windows (only "all
// history as of yesterday" and "last N clicks"), day-scale freshness lag on
// aggregates, and per-item content lookups on every short-term query.
#ifndef IPS_BASELINE_LAMBDA_PROFILE_H_
#define IPS_BASELINE_LAMBDA_PROFILE_H_

#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "core/types.h"
#include "kvstore/kv_store.h"

namespace ips {

/// item -> (slot, type) resolution service (the "content data store").
class ContentStore {
 public:
  void Put(FeatureId item, SlotId slot, TypeId type);
  /// NotFound for unknown items.
  Status Lookup(FeatureId item, SlotId* slot, TypeId* type) const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<FeatureId, std::pair<SlotId, TypeId>> items_;
};

struct LambdaOptions {
  /// Top features kept per (user, slot) by the batch job.
  size_t long_term_top_n = 50;
  /// Recent click ids kept per user.
  size_t short_term_capacity = 100;
  size_t num_actions = 4;
};

/// One aggregated long-term feature.
struct LongTermFeature {
  FeatureId fid = 0;
  SlotId slot = 0;
  TypeId type = 0;
  CountVector counts;
};

class LambdaProfileService {
 public:
  LambdaProfileService(LambdaOptions options, KvStore* long_term_kv,
                       ContentStore* content, Clock* clock);

  /// Write path: the action is appended to the batch log (long-term input)
  /// and pushed onto the user's recent-click list (short-term state).
  Status RecordAction(ProfileId uid, FeatureId item, TimestampMs timestamp,
                      const CountVector& counts);

  /// Runs the daily batch job: folds every logged action into the long-term
  /// profiles and persists them to the KV store. Returns users updated.
  size_t RunDailyBatch(TimestampMs now_ms);

  /// Long-term query: top features of a slot as of the last batch run.
  Result<std::vector<LongTermFeature>> QueryLongTerm(ProfileId uid,
                                                     SlotId slot,
                                                     size_t k) const;

  /// Short-term query: the user's recent clicks resolved through the
  /// content store and aggregated per feature by the caller-visible logic —
  /// one content lookup per distinct recent item, the cost the paper calls
  /// out.
  Result<std::vector<LongTermFeature>> QueryShortTerm(ProfileId uid,
                                                      SlotId slot, size_t k,
                                                      size_t* lookups) const;

  TimestampMs last_batch_ms() const { return last_batch_ms_; }
  size_t pending_log_records() const;

 private:
  struct LoggedAction {
    ProfileId uid;
    FeatureId item;
    TimestampMs timestamp;
    CountVector counts;
  };

  struct ShortTermEntry {
    FeatureId item;
    TimestampMs timestamp;
  };

  std::string LongTermKey(ProfileId uid) const;

  LambdaOptions options_;
  KvStore* long_term_kv_;
  ContentStore* content_;
  Clock* clock_;

  mutable std::mutex mu_;
  std::vector<LoggedAction> batch_log_;
  std::unordered_map<ProfileId, std::deque<ShortTermEntry>> short_term_;
  TimestampMs last_batch_ms_ = 0;
};

}  // namespace ips

#endif  // IPS_BASELINE_LAMBDA_PROFILE_H_
