// Block compression for persisted profiles. The production system compresses
// serialized profiles with Snappy before writing them to the key-value store
// (Section III-E) to cut network traffic and storage; this is a from-scratch
// byte-oriented LZ77-family codec with the same design point: speed over
// ratio, greedy hash-table matching, no entropy stage.
#ifndef IPS_CODEC_COMPRESS_H_
#define IPS_CODEC_COMPRESS_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace ips {

/// Compresses `input` into `*output` (replacing its contents). The frame is
/// self-describing: decompressed length, a checksum of the payload and a
/// sequence of literal/copy ops. Always succeeds; incompressible input grows
/// by at most input/255 + 16 bytes.
void BlockCompress(std::string_view input, std::string* output);

/// Decompresses a frame produced by BlockCompress. Returns Corruption on any
/// malformed frame, out-of-range copy or checksum mismatch.
Status BlockUncompress(std::string_view compressed, std::string* output);

/// Returns the decompressed size recorded in the frame header without
/// decompressing (used by cache memory accounting on load).
Result<size_t> GetUncompressedLength(std::string_view compressed);

}  // namespace ips

#endif  // IPS_CODEC_COMPRESS_H_
