// Block compression for persisted profiles. The production system compresses
// serialized profiles with Snappy before writing them to the key-value store
// (Section III-E) to cut network traffic and storage; this is a from-scratch
// byte-oriented LZ77-family codec with the same design point: speed over
// ratio, greedy hash-table matching, no entropy stage.
#ifndef IPS_CODEC_COMPRESS_H_
#define IPS_CODEC_COMPRESS_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace ips {

/// Compresses `input` into `*output` (replacing its contents). The frame is
/// self-describing: decompressed length, a checksum of the payload and a
/// sequence of literal/copy ops. Always succeeds; incompressible input grows
/// by at most input/255 + 16 bytes.
void BlockCompress(std::string_view input, std::string* output);

/// Decompresses a frame produced by BlockCompress. Returns Corruption on any
/// malformed frame, out-of-range copy or checksum mismatch.
Status BlockUncompress(std::string_view compressed, std::string* output);

/// Zero-copy variant of BlockUncompress. When the frame stores its payload
/// as one literal (the raw-store path BlockCompress takes for incompressible
/// input), `*out` aliases the payload bytes inside `compressed` and nothing
/// is copied; otherwise the frame is decompressed into `*scratch` and `*out`
/// views it. Either way the payload checksum is verified. `out_aliased`,
/// when non-null, reports which case ran. `*out` is valid only while both
/// `compressed` and `*scratch` stay alive and unmodified.
Status BlockUncompressView(std::string_view compressed, std::string* scratch,
                           std::string_view* out, bool* out_aliased = nullptr);

/// Process-wide count of BlockUncompressView calls that aliased (took the
/// zero-copy path). Feeds the per-instance `codec.zero_copy_decodes` counter
/// and the bench_micro allocation columns. Relaxed; reporting only.
uint64_t ZeroCopyDecodeCount();

/// Returns the decompressed size recorded in the frame header without
/// decompressing (used by cache memory accounting on load).
Result<size_t> GetUncompressedLength(std::string_view compressed);

}  // namespace ips

#endif  // IPS_CODEC_COMPRESS_H_
