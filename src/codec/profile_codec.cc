#include "codec/profile_codec.h"

#include <algorithm>
#include <map>

#include "codec/coding.h"
#include "codec/compress.h"

namespace ips {

namespace {

constexpr uint32_t kProfileMagic = 0x49505346;  // "IPSF"
constexpr uint32_t kSliceMetaMagic = 0x49505349;

void EncodeCounts(const CountVector& counts, std::string* out) {
  PutVarint64(out, counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    PutVarintSigned64(out, counts[i]);
  }
}

bool DecodeCounts(Decoder* dec, CountVector* counts) {
  uint64_t n;
  if (!dec->GetVarint64(&n)) return false;
  if (n > 1u << 20) return false;  // sanity bound against corrupt lengths
  counts->Resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    int64_t v;
    if (!dec->GetVarintSigned64(&v)) return false;
    (*counts)[i] = v;
  }
  return true;
}

void EncodeStats(const IndexedFeatureStats& stats, std::string* out) {
  PutVarint64(out, stats.size());
  // Delta-encode the sorted fids: adjacency compresses hashed ids poorly but
  // costs nothing, and production fids are often dense per type.
  FeatureId prev = 0;
  for (const auto& stat : stats.stats()) {
    PutVarint64(out, stat.fid - prev);
    prev = stat.fid;
    EncodeCounts(stat.counts, out);
  }
}

bool DecodeStats(Decoder* dec, IndexedFeatureStats* stats) {
  uint64_t n;
  if (!dec->GetVarint64(&n)) return false;
  if (n > 1u << 26) return false;
  // Reserve what the header claims, capped so a corrupt length can't force
  // a huge allocation before the per-entry parses start failing.
  stats->Reserve(static_cast<size_t>(std::min<uint64_t>(n, 4096)));
  FeatureId prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t delta;
    if (!dec->GetVarint64(&delta)) return false;
    FeatureStat stat;
    stat.fid = prev + delta;
    // Deltas of zero would break strict ordering except for the first entry.
    if (i > 0 && delta == 0) return false;
    prev = stat.fid;
    if (!DecodeCounts(dec, &stat.counts)) return false;
    stats->AppendSortedUnchecked(std::move(stat));
  }
  return true;
}

void EncodeSliceBody(const Slice& slice, std::string* out) {
  PutVarintSigned64(out, slice.start_ms());
  PutVarintSigned64(out, slice.end_ms());
  // Deterministic order: sort slot and type ids.
  std::map<SlotId, const InstanceSet*> slots;
  for (const auto& [slot, set] : slice.slots()) slots[slot] = &set;
  PutVarint64(out, slots.size());
  for (const auto& [slot, set] : slots) {
    PutVarint64(out, slot);
    std::map<TypeId, const IndexedFeatureStats*> types;
    for (const auto& [type, stats] : set->types()) types[type] = &stats;
    PutVarint64(out, types.size());
    for (const auto& [type, stats] : types) {
      PutVarint64(out, type);
      EncodeStats(*stats, out);
    }
  }
}

bool DecodeSliceBody(Decoder* dec, Slice* slice) {
  int64_t start, end;
  if (!dec->GetVarintSigned64(&start) || !dec->GetVarintSigned64(&end)) {
    return false;
  }
  slice->set_range(start, end);
  uint64_t num_slots;
  if (!dec->GetVarint64(&num_slots)) return false;
  if (num_slots > 1u << 20) return false;
  for (uint64_t s = 0; s < num_slots; ++s) {
    uint64_t slot, num_types;
    if (!dec->GetVarint64(&slot) || !dec->GetVarint64(&num_types)) {
      return false;
    }
    if (num_types > 1u << 20) return false;
    InstanceSet& set =
        slice->mutable_slots()[static_cast<SlotId>(slot)];
    for (uint64_t t = 0; t < num_types; ++t) {
      uint64_t type;
      if (!dec->GetVarint64(&type)) return false;
      IndexedFeatureStats& stats =
          set.mutable_types()[static_cast<TypeId>(type)];
      if (!DecodeStats(dec, &stats)) return false;
    }
  }
  return true;
}

}  // namespace

void EncodeSlice(const Slice& slice, std::string* out) {
  out->clear();
  EncodeSliceBody(slice, out);
}

Status DecodeSlice(std::string_view data, Slice* slice) {
  *slice = Slice();
  Decoder dec(data);
  if (!DecodeSliceBody(&dec, slice) || !dec.Empty()) {
    return Status::Corruption("malformed slice encoding");
  }
  return Status::OK();
}

void EncodeProfileRaw(const ProfileData& profile, std::string* raw) {
  raw->clear();
  PutFixed32(raw, kProfileMagic);
  PutVarint64(raw, profile.write_granularity_ms());
  PutVarintSigned64(raw, profile.LastActionMs());
  PutVarint64(raw, profile.SliceCount());
  for (const auto& slice : profile.slices()) {
    EncodeSliceBody(slice, raw);
  }
}

void EncodeProfile(const ProfileData& profile, std::string* out) {
  // Thread-local staging buffer: steady-state encodes reuse one heap block
  // at its high-water capacity instead of rebuilding `raw` per call.
  thread_local std::string raw;
  EncodeProfileRaw(profile, &raw);
  BlockCompress(raw, out);
}

Status DecodeProfile(std::string_view data, ProfileData* profile) {
  return DecodeProfile(data, profile, nullptr);
}

Status DecodeProfile(std::string_view data, ProfileData* profile,
                     bool* out_zero_copy) {
  thread_local std::string scratch;
  std::string_view raw;
  IPS_RETURN_IF_ERROR(BlockUncompressView(data, &scratch, &raw, out_zero_copy));
  Decoder dec(raw);
  uint32_t magic;
  if (!dec.GetFixed32(&magic) || magic != kProfileMagic) {
    return Status::Corruption("bad profile magic");
  }
  uint64_t granularity;
  int64_t last_action;
  uint64_t num_slices;
  if (!dec.GetVarint64(&granularity) ||
      !dec.GetVarintSigned64(&last_action) ||
      !dec.GetVarint64(&num_slices)) {
    return Status::Corruption("truncated profile header");
  }
  if (num_slices > 1u << 24) {
    return Status::Corruption("implausible slice count");
  }
  *profile = ProfileData(static_cast<int64_t>(granularity));
  profile->set_last_action_ms(last_action);
  for (uint64_t i = 0; i < num_slices; ++i) {
    Slice slice;
    if (!DecodeSliceBody(&dec, &slice)) {
      return Status::Corruption("malformed slice in profile");
    }
    profile->mutable_slices().push_back(std::move(slice));
  }
  if (!dec.Empty()) {
    return Status::Corruption("trailing bytes after profile");
  }
  if (!profile->CheckInvariants()) {
    return Status::Corruption("decoded profile violates slice invariants");
  }
  profile->RecomputeBytes();  // slices were attached directly
  return Status::OK();
}

void EncodeSliceMeta(const SliceMeta& meta, std::string* out) {
  out->clear();
  PutFixed32(out, kSliceMetaMagic);
  PutVarint64(out, meta.write_granularity_ms);
  PutVarintSigned64(out, meta.last_action_ms);
  PutVarint64(out, meta.entries.size());
  for (const auto& e : meta.entries) {
    PutVarint64(out, e.slice_key);
    PutVarintSigned64(out, e.start_ms);
    PutVarintSigned64(out, e.end_ms);
  }
}

Status DecodeSliceMeta(std::string_view data, SliceMeta* meta) {
  Decoder dec(data);
  uint32_t magic;
  if (!dec.GetFixed32(&magic) || magic != kSliceMetaMagic) {
    return Status::Corruption("bad slice-meta magic");
  }
  uint64_t granularity, num;
  int64_t last_action;
  if (!dec.GetVarint64(&granularity) ||
      !dec.GetVarintSigned64(&last_action) || !dec.GetVarint64(&num)) {
    return Status::Corruption("truncated slice-meta header");
  }
  if (num > 1u << 24) return Status::Corruption("implausible entry count");
  meta->write_granularity_ms = static_cast<int64_t>(granularity);
  meta->last_action_ms = last_action;
  meta->entries.clear();
  meta->entries.reserve(num);
  for (uint64_t i = 0; i < num; ++i) {
    SliceMetaEntry e;
    if (!dec.GetVarint64(&e.slice_key) ||
        !dec.GetVarintSigned64(&e.start_ms) ||
        !dec.GetVarintSigned64(&e.end_ms)) {
      return Status::Corruption("truncated slice-meta entry");
    }
    meta->entries.push_back(e);
  }
  if (!dec.Empty()) return Status::Corruption("trailing bytes in slice-meta");
  return Status::OK();
}

size_t EncodedProfileSizeUncompressed(const ProfileData& profile) {
  thread_local std::string raw;
  EncodeProfileRaw(profile, &raw);
  return raw.size();
}

}  // namespace ips
