// Profile (de)serialization for persistence (Section III-E).
//
// Two granularities are supported, matching the paper:
//  * Bulk mode (Fig 12): the whole ProfileData is encoded hierarchically,
//    compressed, and stored under the profile id.
//  * Fine-grained mode (Fig 13): each slice is encoded and stored as its own
//    value; a compact SliceMeta record lists the slice keys, ranges and a
//    generation number for the version-controlled consistency protocol of
//    Fig 14.
#ifndef IPS_CODEC_PROFILE_CODEC_H_
#define IPS_CODEC_PROFILE_CODEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/profile_data.h"
#include "core/slice.h"

namespace ips {

/// Encodes one slice (interval + all slot/type/feature stats).
void EncodeSlice(const Slice& slice, std::string* out);
/// Decodes a slice; Corruption on malformed input.
Status DecodeSlice(std::string_view data, Slice* slice);

/// Encodes the whole profile (bulk mode) and compresses it.
void EncodeProfile(const ProfileData& profile, std::string* out);

/// Encodes the whole profile WITHOUT the compression stage, into `*raw`
/// (replacing its contents, retaining its capacity). Callers that need both
/// the uncompressed size and the stored bytes (the persister's split-mode
/// threshold test) encode once with this and BlockCompress the result,
/// instead of paying the encode walk twice.
void EncodeProfileRaw(const ProfileData& profile, std::string* raw);

/// Decodes a compressed bulk-mode profile.
Status DecodeProfile(std::string_view data, ProfileData* profile);

/// DecodeProfile, reporting whether the uncompressed bytes were aliased
/// straight out of `data` (raw-stored frame, zero copy) rather than
/// decompressed into a scratch buffer. Either way `*profile` owns all of its
/// storage — only the intermediate uncompressed image may alias.
Status DecodeProfile(std::string_view data, ProfileData* profile,
                     bool* out_zero_copy);

/// Metadata describing one persisted slice in fine-grained mode.
struct SliceMetaEntry {
  /// Key suffix of the slice value in the KV store.
  uint64_t slice_key = 0;
  TimestampMs start_ms = 0;
  TimestampMs end_ms = 0;
};

/// The slice-meta value (Fig 13): an ordered list of slice entries plus the
/// profile-level attributes needed to reconstruct ProfileData.
struct SliceMeta {
  int64_t write_granularity_ms = 60'000;
  TimestampMs last_action_ms = 0;
  std::vector<SliceMetaEntry> entries;  // newest first
};

void EncodeSliceMeta(const SliceMeta& meta, std::string* out);
Status DecodeSliceMeta(std::string_view data, SliceMeta* meta);

/// Uncompressed encoded size of a profile, handy for the paper's ~40 KB
/// serialized-profile observations in benches. Encodes into a thread-local
/// scratch buffer; prefer EncodeProfileRaw when the bytes are needed too.
size_t EncodedProfileSizeUncompressed(const ProfileData& profile);

}  // namespace ips

#endif  // IPS_CODEC_PROFILE_CODEC_H_
