// Byte-oriented primitives for the profile wire format: little-endian fixed
// integers, LEB128 varints and zigzag signed mapping. This is the substrate
// for the Protocol-Buffers-style hierarchical profile encoding of Fig 12.
#ifndef IPS_CODEC_CODING_H_
#define IPS_CODEC_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace ips {

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

/// Appends an unsigned LEB128 varint (1-10 bytes).
void PutVarint64(std::string* dst, uint64_t value);

/// Appends a zigzag-mapped signed varint.
void PutVarintSigned64(std::string* dst, int64_t value);

/// Appends varint length + raw bytes.
void PutLengthPrefixed(std::string* dst, std::string_view value);

/// Sequential decoder over an input buffer. All getters return false on
/// truncated/malformed input and leave the cursor unspecified; callers wrap
/// failures into Status::Corruption.
class Decoder {
 public:
  explicit Decoder(std::string_view input) : input_(input) {}

  bool GetFixed32(uint32_t* value);
  bool GetFixed64(uint64_t* value);
  bool GetVarint64(uint64_t* value);
  bool GetVarintSigned64(int64_t* value);
  bool GetLengthPrefixed(std::string_view* value);
  /// Reads exactly n raw bytes.
  bool GetBytes(size_t n, std::string_view* value);

  bool Empty() const { return input_.empty(); }
  size_t Remaining() const { return input_.size(); }

 private:
  std::string_view input_;
};

inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace ips

#endif  // IPS_CODEC_CODING_H_
