#include "codec/compress.h"

#include <atomic>
#include <cstring>

#include "codec/coding.h"
#include "common/hash.h"

namespace ips {

namespace {

std::atomic<uint64_t> g_zero_copy_decodes{0};

}  // namespace

uint64_t ZeroCopyDecodeCount() {
  return g_zero_copy_decodes.load(std::memory_order_relaxed);
}

namespace {

// Greedy LZ with a 14-bit hash table over 4-byte sequences. Ops:
//   literal: varint(len << 1 | 0) + raw bytes
//   copy:    varint(len << 1 | 1) + varint(offset)
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 1 << 16;
constexpr int kHashBits = 14;
constexpr size_t kHashSize = 1 << kHashBits;

inline uint32_t HashQuad(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 0x9E3779B1u) >> (32 - kHashBits);
}

inline void EmitLiteral(std::string* out, const char* data, size_t len) {
  if (len == 0) return;
  PutVarint64(out, (static_cast<uint64_t>(len) << 1) | 0);
  out->append(data, len);
}

inline void EmitCopy(std::string* out, size_t len, size_t offset) {
  PutVarint64(out, (static_cast<uint64_t>(len) << 1) | 1);
  PutVarint64(out, offset);
}

}  // namespace

void BlockCompress(std::string_view input, std::string* output) {
  output->clear();
  PutVarint64(output, input.size());
  PutFixed32(output, Checksum32(input.data(), input.size()));
  if (input.empty()) return;

  const char* const base = input.data();
  const size_t n = input.size();
  size_t table[kHashSize];
  // Positions are stored +1 so zero means "empty".
  std::memset(table, 0, sizeof(table));

  const size_t header_len = output->size();
  size_t pos = 0;
  size_t literal_start = 0;
  while (pos + kMinMatch <= n) {
    const uint32_t h = HashQuad(base + pos);
    const size_t candidate = table[h];
    table[h] = pos + 1;
    bool matched = false;
    if (candidate != 0) {
      const size_t cand_pos = candidate - 1;
      const size_t offset = pos - cand_pos;
      if (offset > 0 && offset <= kMaxOffset &&
          std::memcmp(base + cand_pos, base + pos, kMinMatch) == 0) {
        // Extend the match.
        size_t len = kMinMatch;
        while (pos + len < n && base[cand_pos + len] == base[pos + len]) {
          ++len;
        }
        EmitLiteral(output, base + literal_start, pos - literal_start);
        EmitCopy(output, len, offset);
        // Seed hash entries inside the match sparsely to keep speed.
        const size_t end = pos + len;
        for (size_t i = pos + 1; i + kMinMatch <= end && i + kMinMatch <= n;
             i += 3) {
          table[HashQuad(base + i)] = i + 1;
        }
        pos = end;
        literal_start = pos;
        matched = true;
      }
    }
    if (!matched) ++pos;
  }
  EmitLiteral(output, base + literal_start, n - literal_start);

  // Raw-store fallback: when matching saved less than 1/8th of the input,
  // re-emit the payload as ONE literal. The frame format is unchanged (a
  // single-literal op sequence was always legal); what it buys is the
  // decode side — BlockUncompressView can alias a single-literal payload
  // straight out of the stored value instead of copying it.
  if (output->size() - header_len + n / 8 >= n) {
    output->resize(header_len);
    EmitLiteral(output, base, n);
  }
}

Status BlockUncompressView(std::string_view compressed, std::string* scratch,
                           std::string_view* out, bool* out_aliased) {
  Decoder dec(compressed);
  uint64_t expected_len;
  uint32_t checksum;
  if (!dec.GetVarint64(&expected_len) || !dec.GetFixed32(&checksum)) {
    return Status::Corruption("compressed frame header truncated");
  }
  if (expected_len == 0 && dec.Empty()) {
    if (checksum != Checksum32(nullptr, 0)) {
      return Status::Corruption("payload checksum mismatch");
    }
    *out = std::string_view();
    if (out_aliased != nullptr) *out_aliased = true;
    g_zero_copy_decodes.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  uint64_t tag;
  if (dec.GetVarint64(&tag) && (tag & 1) == 0 && (tag >> 1) == expected_len &&
      dec.Remaining() == expected_len) {
    // Whole payload is one literal: alias it, no copy.
    std::string_view literal;
    dec.GetBytes(expected_len, &literal);
    if (Checksum32(literal.data(), literal.size()) != checksum) {
      return Status::Corruption("payload checksum mismatch");
    }
    *out = literal;
    if (out_aliased != nullptr) *out_aliased = true;
    g_zero_copy_decodes.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  IPS_RETURN_IF_ERROR(BlockUncompress(compressed, scratch));
  *out = *scratch;
  if (out_aliased != nullptr) *out_aliased = false;
  return Status::OK();
}

Status BlockUncompress(std::string_view compressed, std::string* output) {
  Decoder dec(compressed);
  uint64_t expected_len;
  uint32_t checksum;
  if (!dec.GetVarint64(&expected_len) || !dec.GetFixed32(&checksum)) {
    return Status::Corruption("compressed frame header truncated");
  }
  output->clear();
  output->reserve(expected_len);
  while (!dec.Empty()) {
    uint64_t tag;
    if (!dec.GetVarint64(&tag)) {
      return Status::Corruption("truncated op tag");
    }
    const uint64_t len = tag >> 1;
    if (len == 0) return Status::Corruption("zero-length op");
    if ((tag & 1) == 0) {
      std::string_view literal;
      if (!dec.GetBytes(len, &literal)) {
        return Status::Corruption("truncated literal");
      }
      output->append(literal.data(), literal.size());
    } else {
      uint64_t offset;
      if (!dec.GetVarint64(&offset)) {
        return Status::Corruption("truncated copy offset");
      }
      if (offset == 0 || offset > output->size()) {
        return Status::Corruption("copy offset out of range");
      }
      // Overlapping copies are legal (RLE-style); copy byte-wise.
      size_t src = output->size() - offset;
      for (uint64_t i = 0; i < len; ++i) {
        output->push_back((*output)[src + i]);
      }
    }
    if (output->size() > expected_len) {
      return Status::Corruption("decompressed past declared length");
    }
  }
  if (output->size() != expected_len) {
    return Status::Corruption("decompressed length mismatch");
  }
  if (Checksum32(output->data(), output->size()) != checksum) {
    return Status::Corruption("payload checksum mismatch");
  }
  return Status::OK();
}

Result<size_t> GetUncompressedLength(std::string_view compressed) {
  Decoder dec(compressed);
  uint64_t len;
  if (!dec.GetVarint64(&len)) {
    return Status::Corruption("compressed frame header truncated");
  }
  return static_cast<size_t>(len);
}

}  // namespace ips
