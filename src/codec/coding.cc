#include "codec/coding.h"

namespace ips {

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  buf[0] = static_cast<char>(value & 0xFF);
  buf[1] = static_cast<char>((value >> 8) & 0xFF);
  buf[2] = static_cast<char>((value >> 16) & 0xFF);
  buf[3] = static_cast<char>((value >> 24) & 0xFF);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  PutFixed32(dst, static_cast<uint32_t>(value & 0xFFFFFFFFULL));
  PutFixed32(dst, static_cast<uint32_t>(value >> 32));
}

void PutVarint64(std::string* dst, uint64_t value) {
  char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<char>((value & 0x7F) | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<char>(value);
  dst->append(buf, n);
}

void PutVarintSigned64(std::string* dst, int64_t value) {
  PutVarint64(dst, ZigZagEncode(value));
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

bool Decoder::GetFixed32(uint32_t* value) {
  if (input_.size() < 4) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(input_.data());
  *value = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
  input_.remove_prefix(4);
  return true;
}

bool Decoder::GetFixed64(uint64_t* value) {
  uint32_t lo, hi;
  if (!GetFixed32(&lo) || !GetFixed32(&hi)) return false;
  *value = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

bool Decoder::GetVarint64(uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input_.empty(); shift += 7) {
    const uint64_t byte = static_cast<unsigned char>(input_.front());
    input_.remove_prefix(1);
    result |= (byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
  }
  return false;
}

bool Decoder::GetVarintSigned64(int64_t* value) {
  uint64_t raw;
  if (!GetVarint64(&raw)) return false;
  *value = ZigZagDecode(raw);
  return true;
}

bool Decoder::GetLengthPrefixed(std::string_view* value) {
  uint64_t len;
  if (!GetVarint64(&len)) return false;
  return GetBytes(static_cast<size_t>(len), value);
}

bool Decoder::GetBytes(size_t n, std::string_view* value) {
  if (input_.size() < n) return false;
  *value = input_.substr(0, n);
  input_.remove_prefix(n);
  return true;
}

}  // namespace ips
