#include "kvstore/mem_kv_store.h"

#include <thread>

#include "common/hash.h"
#include "common/trace.h"

namespace ips {

namespace {

// Sleeps `us` microseconds: OS sleep for millisecond-scale waits, spin for
// sub-millisecond ones (OS sleep granularity would distort the simulated
// distribution).
void BurnMicros(int64_t us) {
  if (us <= 0) return;
  if (us >= 1000) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
    return;
  }
  const int64_t deadline = MonotonicNanos() + us * 1000;
  while (MonotonicNanos() < deadline) {
    // spin
  }
}

}  // namespace

MemKvStore::MemKvStore(MemKvOptions options) : options_(options) {
  size_t n = options_.num_shards;
  if (n == 0) n = 1;
  // Round up to a power of two for mask-based routing.
  while ((n & (n - 1)) != 0) ++n;
  options_.num_shards = n;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->rng.Seed(options_.seed * 0x9E3779B97F4A7C15ULL + i);
    shard->failure_probability = options_.failure_probability;
    shards_.push_back(std::move(shard));
  }
}

MemKvStore::Shard& MemKvStore::ShardFor(std::string_view key) {
  return *shards_[Fnv1a(key) & (options_.num_shards - 1)];
}

const MemKvStore::Shard& MemKvStore::ShardFor(std::string_view key) const {
  return *shards_[Fnv1a(key) & (options_.num_shards - 1)];
}

Status MemKvStore::SimulateOp(Shard& shard, size_t payload_bytes) {
  if (down_.load(std::memory_order_relaxed)) {
    return Status::Unavailable("kv store down");
  }
  int64_t delay_us = 0;
  bool fail = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.failure_probability > 0.0 &&
        shard.rng.Bernoulli(shard.failure_probability)) {
      fail = true;
    }
    if (options_.base_latency_us > 0 || options_.tail_latency_us > 0) {
      delay_us = options_.base_latency_us;
      if (options_.tail_latency_us > 0) {
        delay_us += static_cast<int64_t>(shard.rng.Exponential(
            static_cast<double>(options_.tail_latency_us)));
      }
    }
    if (options_.per_kib_us > 0) {
      delay_us += options_.per_kib_us *
                  static_cast<int64_t>(payload_bytes / 1024);
    }
  }
  BurnMicros(delay_us);
  if (fail) return Status::Unavailable("injected kv failure");
  return Status::OK();
}

Status MemKvStore::Set(std::string_view key, std::string_view value) {
  ScopedSpan store_span("kv.store");
  point_writes_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(key);
  IPS_RETURN_IF_ERROR(SimulateOp(shard, value.size()));
  std::lock_guard<std::mutex> lock(shard.mu);
  KvEntry& entry = shard.map[std::string(key)];
  entry.value.assign(value.data(), value.size());
  ++entry.version;
  bytes_written_.fetch_add(static_cast<int64_t>(value.size()),
                           std::memory_order_relaxed);
  return Status::OK();
}

Status MemKvStore::Get(std::string_view key, std::string* value) {
  ScopedSpan load_span("kv.load");
  point_reads_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(key);
  size_t payload = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(std::string(key));
    if (it == shard.map.end()) {
      // Misses still pay the round trip.
      payload = 0;
    } else {
      payload = it->second.value.size();
    }
  }
  IPS_RETURN_IF_ERROR(SimulateOp(shard, payload));
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(std::string(key));
  if (it == shard.map.end()) {
    return Status::NotFound("key: " + std::string(key));
  }
  *value = it->second.value;
  return Status::OK();
}

Status MemKvStore::Delete(std::string_view key) {
  ScopedSpan store_span("kv.store");
  point_writes_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(key);
  IPS_RETURN_IF_ERROR(SimulateOp(shard, 0));
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.map.erase(std::string(key));
  return Status::OK();
}

Status MemKvStore::XGet(std::string_view key, KvEntry* entry) {
  ScopedSpan load_span("kv.load");
  point_reads_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(key);
  IPS_RETURN_IF_ERROR(SimulateOp(shard, 0));
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(std::string(key));
  if (it == shard.map.end()) {
    return Status::NotFound("key: " + std::string(key));
  }
  *entry = it->second;
  return Status::OK();
}

Status MemKvStore::XSet(std::string_view key, std::string_view value,
                        KvVersion expected_version, KvVersion* new_version) {
  ScopedSpan store_span("kv.store");
  point_writes_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(key);
  IPS_RETURN_IF_ERROR(SimulateOp(shard, value.size()));
  std::lock_guard<std::mutex> lock(shard.mu);
  const std::string k(key);
  auto it = shard.map.find(k);
  const KvVersion current = it == shard.map.end() ? 0 : it->second.version;
  if (current != expected_version) {
    return Status::Aborted("version mismatch: held " +
                           std::to_string(expected_version) + " current " +
                           std::to_string(current));
  }
  KvEntry& entry = shard.map[k];
  entry.value.assign(value.data(), value.size());
  entry.version = current + 1;
  if (new_version != nullptr) *new_version = entry.version;
  bytes_written_.fetch_add(static_cast<int64_t>(value.size()),
                           std::memory_order_relaxed);
  return Status::OK();
}

void MemKvStore::MultiGet(const std::vector<std::string>& keys,
                          std::vector<std::string>* values,
                          std::vector<Status>* statuses) {
  ScopedSpan load_span("kv.load");
  multi_get_calls_.fetch_add(1, std::memory_order_relaxed);
  multi_get_keys_.fetch_add(static_cast<int64_t>(keys.size()),
                            std::memory_order_relaxed);
  values->assign(keys.size(), std::string());
  statuses->assign(keys.size(), Status::OK());
  if (keys.empty()) return;
  if (down_.load(std::memory_order_relaxed)) {
    statuses->assign(keys.size(), Status::Unavailable("kv store down"));
    return;
  }

  // Resolve every key and draw its failure first, so the latency charge can
  // cover the aggregate response size. Failures stay per-key: a multi-get
  // spanning storage shards can lose some keys and still return the rest.
  size_t total_payload = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    Shard& shard = ShardFor(keys[i]);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.failure_probability > 0.0 &&
        shard.rng.Bernoulli(shard.failure_probability)) {
      (*statuses)[i] = Status::Unavailable("injected kv failure");
      continue;
    }
    auto it = shard.map.find(keys[i]);
    if (it == shard.map.end()) {
      (*statuses)[i] = Status::NotFound("key: " + keys[i]);
    } else {
      (*values)[i] = it->second.value;
      total_payload += it->second.value.size();
    }
  }

  // One round trip for the whole batch: base + tail charged once, payload
  // cost proportional to the combined response.
  int64_t delay_us = 0;
  {
    Shard& shard = ShardFor(keys[0]);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (options_.base_latency_us > 0 || options_.tail_latency_us > 0) {
      delay_us = options_.base_latency_us;
      if (options_.tail_latency_us > 0) {
        delay_us += static_cast<int64_t>(shard.rng.Exponential(
            static_cast<double>(options_.tail_latency_us)));
      }
    }
    if (options_.per_kib_us > 0) {
      delay_us += options_.per_kib_us *
                  static_cast<int64_t>(total_payload / 1024);
    }
  }
  BurnMicros(delay_us);
}

void MemKvStore::MultiSet(const std::vector<std::string>& keys,
                          const std::vector<std::string>& values,
                          std::vector<Status>* statuses) {
  ScopedSpan store_span("kv.store");
  multi_set_calls_.fetch_add(1, std::memory_order_relaxed);
  multi_set_keys_.fetch_add(static_cast<int64_t>(keys.size()),
                            std::memory_order_relaxed);
  statuses->assign(keys.size(), Status::OK());
  if (keys.empty()) return;
  if (values.size() != keys.size()) {
    statuses->assign(keys.size(),
                     Status::InvalidArgument("MultiSet keys/values mismatch"));
    return;
  }
  if (down_.load(std::memory_order_relaxed)) {
    statuses->assign(keys.size(), Status::Unavailable("kv store down"));
    return;
  }

  // Apply every key and draw its failure first, so the latency charge can
  // cover the aggregate request size. Failures stay per-key: a batched
  // mutation spanning storage shards can land some keys and bounce the rest.
  size_t total_payload = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    Shard& shard = ShardFor(keys[i]);
    std::lock_guard<std::mutex> lock(shard.mu);
    total_payload += values[i].size();
    if (shard.failure_probability > 0.0 &&
        shard.rng.Bernoulli(shard.failure_probability)) {
      (*statuses)[i] = Status::Unavailable("injected kv failure");
      continue;
    }
    KvEntry& entry = shard.map[keys[i]];
    entry.value = values[i];
    ++entry.version;
    bytes_written_.fetch_add(static_cast<int64_t>(values[i].size()),
                             std::memory_order_relaxed);
  }

  // One round trip for the whole batch: base + tail charged once, payload
  // cost proportional to the combined request.
  int64_t delay_us = 0;
  {
    Shard& shard = ShardFor(keys[0]);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (options_.base_latency_us > 0 || options_.tail_latency_us > 0) {
      delay_us = options_.base_latency_us;
      if (options_.tail_latency_us > 0) {
        delay_us += static_cast<int64_t>(shard.rng.Exponential(
            static_cast<double>(options_.tail_latency_us)));
      }
    }
    if (options_.per_kib_us > 0) {
      delay_us += options_.per_kib_us *
                  static_cast<int64_t>(total_payload / 1024);
    }
  }
  BurnMicros(delay_us);
}

size_t MemKvStore::KeyCount() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

void MemKvStore::SetFailureProbability(double p) {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->failure_probability = p;
  }
}

size_t MemKvStore::TotalValueBytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, entry] : shard->map) {
      total += key.size() + entry.value.size();
    }
  }
  return total;
}

void MemKvStore::ForEach(
    const std::function<void(const std::string&, const KvEntry&)>& fn)
    const {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, entry] : shard->map) fn(key, entry);
  }
}

}  // namespace ips
