#include "kvstore/kv_store.h"

namespace ips {

void KvStore::MultiGet(const std::vector<std::string>& keys,
                       std::vector<std::string>* values,
                       std::vector<Status>* statuses) {
  values->assign(keys.size(), std::string());
  statuses->assign(keys.size(), Status::OK());
  for (size_t i = 0; i < keys.size(); ++i) {
    (*statuses)[i] = Get(keys[i], &(*values)[i]);
  }
}

void KvStore::MultiSet(const std::vector<std::string>& keys,
                       const std::vector<std::string>& values,
                       std::vector<Status>* statuses) {
  statuses->assign(keys.size(), Status::OK());
  if (values.size() != keys.size()) {
    statuses->assign(keys.size(),
                     Status::InvalidArgument("MultiSet keys/values mismatch"));
    return;
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    (*statuses)[i] = Set(keys[i], values[i]);
  }
}

}  // namespace ips
