// Master/slave replicated key-value store (Section III-G, Fig 15): in the
// multi-region deployment only one region's IPS persists to the master
// cluster; all other regions read from their local slave cluster, which lags
// the master by an asynchronous replication delay. A failed-over node can
// therefore load stale data — the weak-consistency trade-off the paper
// explicitly accepts.
#ifndef IPS_KVSTORE_REPLICATED_KV_H_
#define IPS_KVSTORE_REPLICATED_KV_H_

#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/clock.h"
#include "kvstore/mem_kv_store.h"

namespace ips {

struct ReplicatedKvOptions {
  size_t num_slaves = 1;
  /// Asynchronous replication delay applied to every mutation.
  int64_t replication_lag_ms = 1000;
  MemKvOptions store_options;
};

class ReplicatedKv {
 public:
  ReplicatedKv(ReplicatedKvOptions options, Clock* clock);
  ~ReplicatedKv();  // out of line: proxy/view types are incomplete here

  /// The writable master cluster.
  KvStore* master();
  MemKvStore* master_store() { return master_.get(); }

  /// Read-only view of slave `i`; mutations return Unavailable. Reads first
  /// apply every replicated mutation whose lag has elapsed.
  KvStore* slave(size_t i);
  MemKvStore* slave_store(size_t i) { return slaves_[i]->store.get(); }

  size_t num_slaves() const { return slaves_.size(); }

  /// Read-preference fallback for degraded reads (graceful degradation):
  /// a reader bound to the master falls back to a slave replica when the
  /// master is unavailable, and a slave-bound reader escalates to the
  /// master. Fallback data may lag replication — callers must flag results
  /// served this way as degraded.
  KvStore* read_fallback(bool primary_region, size_t slave_index) {
    if (primary_region) return slave(slave_index % slaves_.size());
    return master();
  }

  /// Applies all pending mutations regardless of lag (used on controlled
  /// failover, where operators wait for replication to catch up).
  void CatchUpAll();

  /// Mutations queued but not yet applied to slave `i`.
  size_t PendingMutations(size_t i) const;

 private:
  struct PendingWrite {
    TimestampMs apply_at_ms;
    bool is_delete;
    std::string key;
    std::string value;
  };

  struct SlaveState {
    std::unique_ptr<MemKvStore> store;
    mutable std::mutex mu;
    std::deque<PendingWrite> pending;
  };

  // Forwards master mutations into each slave's pending queue.
  class MasterProxy;
  class SlaveView;

  void EnqueueReplication(bool is_delete, std::string_view key,
                          std::string_view value);
  void DrainSlave(SlaveState& slave, TimestampMs now_ms, bool force);

  ReplicatedKvOptions options_;
  Clock* clock_;
  std::unique_ptr<MemKvStore> master_;
  std::unique_ptr<MasterProxy> master_proxy_;
  std::vector<std::unique_ptr<SlaveState>> slaves_;
  std::vector<std::unique_ptr<SlaveView>> slave_views_;
};

}  // namespace ips

#endif  // IPS_KVSTORE_REPLICATED_KV_H_
