// Durable key-value store interface (Section III-E). Production IPS persists
// to HBase through exactly this surface: whole-value set/get for bulk mode,
// plus version-checked xset/xget for the fine-grained slice persistence
// protocol of Fig 14. The in-memory implementation simulates storage latency
// and failures so the cache layer above behaves as it would against a real
// remote store.
#ifndef IPS_KVSTORE_KV_STORE_H_
#define IPS_KVSTORE_KV_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ips {

/// Monotonic per-key version ("generation" in Fig 13/14). Version 0 means
/// "key never written"; xset with expected_version 0 is a create.
using KvVersion = uint64_t;

struct KvEntry {
  std::string value;
  KvVersion version = 0;
};

class KvStore {
 public:
  virtual ~KvStore() = default;

  /// Unconditional write; bumps the key's version.
  virtual Status Set(std::string_view key, std::string_view value) = 0;

  /// Point read. NotFound when absent.
  virtual Status Get(std::string_view key, std::string* value) = 0;

  virtual Status Delete(std::string_view key) = 0;

  /// Versioned read: returns value + current version (Fig 14 xget).
  virtual Status XGet(std::string_view key, KvEntry* entry) = 0;

  /// Versioned conditional write (Fig 14 xset): succeeds only when the key's
  /// current version equals `expected_version` (0 = must not exist), and
  /// returns the new version through `new_version`. On mismatch returns
  /// Aborted — the caller must reload before retrying.
  virtual Status XSet(std::string_view key, std::string_view value,
                      KvVersion expected_version, KvVersion* new_version) = 0;

  /// Batched point reads; outputs align with `keys`, missing keys yield
  /// NotFound in `statuses`. Implementations with a remote cost model charge
  /// one round trip per batch (HBase multi-get semantics), so the batch read
  /// path pays transport latency once instead of once per key; keys may
  /// still fail individually (partial batches). The default implementation
  /// degrades to per-key Get.
  virtual void MultiGet(const std::vector<std::string>& keys,
                        std::vector<std::string>* values,
                        std::vector<Status>* statuses);

  /// Batched unconditional writes; `statuses` aligns with `keys` and each
  /// accepted key has its version bumped exactly as a single Set would. The
  /// write-side mirror of MultiGet (HBase batched-mutation semantics): one
  /// round trip per batch under a remote cost model, failures drawn per key
  /// so a batch can partially land. `keys` and `values` must be the same
  /// length. The default implementation degrades to per-key Set.
  virtual void MultiSet(const std::vector<std::string>& keys,
                        const std::vector<std::string>& values,
                        std::vector<Status>* statuses);

  /// Approximate number of keys (observability).
  virtual size_t KeyCount() const = 0;
};

}  // namespace ips

#endif  // IPS_KVSTORE_KV_STORE_H_
