// In-memory KvStore with simulated remote-storage behaviour: configurable
// latency distribution (base + exponential tail, scaled by payload size) and
// failure injection (transient unavailability, hard down state). This is the
// HBase substitute — the cache layer's hit/miss latency split (Table II) and
// the availability experiments (Fig 17) depend on these two knobs.
#ifndef IPS_KVSTORE_MEM_KV_STORE_H_
#define IPS_KVSTORE_MEM_KV_STORE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "kvstore/kv_store.h"

namespace ips {

struct MemKvOptions {
  /// Fixed cost per operation in microseconds (network round trip + store
  /// work). Zero disables latency simulation entirely (unit tests).
  int64_t base_latency_us = 0;
  /// Mean of the additional exponential tail in microseconds.
  int64_t tail_latency_us = 0;
  /// Extra microseconds per KiB transferred (payload-proportional cost; the
  /// paper notes network overhead "grows proportionally to the response
  /// size").
  int64_t per_kib_us = 0;
  /// Probability that any single operation fails with Unavailable.
  double failure_probability = 0.0;
  /// Shards for the key map.
  size_t num_shards = 16;
  /// RNG seed for latency/failure draws.
  uint64_t seed = 1;
};

class MemKvStore final : public KvStore {
 public:
  explicit MemKvStore(MemKvOptions options = {});

  Status Set(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) override;
  Status Delete(std::string_view key) override;
  Status XGet(std::string_view key, KvEntry* entry) override;
  Status XSet(std::string_view key, std::string_view value,
              KvVersion expected_version, KvVersion* new_version) override;
  /// Batched read charging ONE simulated round trip for the whole batch
  /// (base + tail once, payload cost over the aggregate response size).
  /// Failures are still drawn per key, so a batch can partially succeed the
  /// way a multi-get spanning region servers does.
  void MultiGet(const std::vector<std::string>& keys,
                std::vector<std::string>* values,
                std::vector<Status>* statuses) override;
  /// Batched write charging ONE simulated round trip for the whole batch
  /// (base + tail once, payload cost over the aggregate request size).
  /// Failures are drawn per key — a batched mutation spanning region servers
  /// can land some keys and bounce the rest.
  void MultiSet(const std::vector<std::string>& keys,
                const std::vector<std::string>& values,
                std::vector<Status>* statuses) override;
  size_t KeyCount() const override;

  /// Marks the store down/up. While down every operation returns
  /// Unavailable — the region-failure lever of the availability bench.
  void SetDown(bool down) { down_.store(down, std::memory_order_relaxed); }
  bool IsDown() const { return down_.load(std::memory_order_relaxed); }

  /// Reconfigures failure probability at runtime.
  void SetFailureProbability(double p);

  /// Total bytes of stored values (memory observability).
  size_t TotalValueBytes() const;

  /// Cumulative value bytes accepted by Set/XSet since construction — the
  /// write-traffic counter the persistence-mode ablation measures.
  int64_t TotalBytesWritten() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

  /// Read-op counters: single-key reads (Get/XGet) vs batched calls. The
  /// batch-read tests assert "one MultiGet per owning shard" through these.
  int64_t PointReadCalls() const {
    return point_reads_.load(std::memory_order_relaxed);
  }
  int64_t MultiGetCalls() const {
    return multi_get_calls_.load(std::memory_order_relaxed);
  }
  int64_t MultiGetKeys() const {
    return multi_get_keys_.load(std::memory_order_relaxed);
  }

  /// Write-op counters, mirroring the read side: single-key mutations
  /// (Set/XSet/Delete) vs batched MultiSet calls. The batch-write tests
  /// assert "one MultiSet round trip per flush batch" through these.
  int64_t PointWriteCalls() const {
    return point_writes_.load(std::memory_order_relaxed);
  }
  int64_t MultiSetCalls() const {
    return multi_set_calls_.load(std::memory_order_relaxed);
  }
  int64_t MultiSetKeys() const {
    return multi_set_keys_.load(std::memory_order_relaxed);
  }

  /// Visits every (key, entry) pair; used by replication catch-up and by
  /// the batch-import simulation.
  void ForEach(
      const std::function<void(const std::string&, const KvEntry&)>& fn)
      const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, KvEntry> map;
    Rng rng{1};
    double failure_probability = 0.0;
  };

  Shard& ShardFor(std::string_view key);
  const Shard& ShardFor(std::string_view key) const;

  /// Simulates the operation's latency and draws failure; returns
  /// Unavailable when the op should fail.
  Status SimulateOp(Shard& shard, size_t payload_bytes);

  MemKvOptions options_;
  std::atomic<bool> down_{false};
  std::atomic<int64_t> bytes_written_{0};
  std::atomic<int64_t> point_reads_{0};
  std::atomic<int64_t> multi_get_calls_{0};
  std::atomic<int64_t> multi_get_keys_{0};
  std::atomic<int64_t> point_writes_{0};
  std::atomic<int64_t> multi_set_calls_{0};
  std::atomic<int64_t> multi_set_keys_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ips

#endif  // IPS_KVSTORE_MEM_KV_STORE_H_
