#include "kvstore/replicated_kv.h"

namespace ips {

/// Writable facade over the master store that also fans mutations into the
/// slaves' pending queues.
class ReplicatedKv::MasterProxy final : public KvStore {
 public:
  explicit MasterProxy(ReplicatedKv* parent) : parent_(parent) {}

  Status Set(std::string_view key, std::string_view value) override {
    IPS_RETURN_IF_ERROR(parent_->master_->Set(key, value));
    parent_->EnqueueReplication(/*is_delete=*/false, key, value);
    return Status::OK();
  }

  Status Get(std::string_view key, std::string* value) override {
    return parent_->master_->Get(key, value);
  }

  Status Delete(std::string_view key) override {
    IPS_RETURN_IF_ERROR(parent_->master_->Delete(key));
    parent_->EnqueueReplication(/*is_delete=*/true, key, {});
    return Status::OK();
  }

  Status XGet(std::string_view key, KvEntry* entry) override {
    return parent_->master_->XGet(key, entry);
  }

  Status XSet(std::string_view key, std::string_view value,
              KvVersion expected_version, KvVersion* new_version) override {
    IPS_RETURN_IF_ERROR(
        parent_->master_->XSet(key, value, expected_version, new_version));
    parent_->EnqueueReplication(/*is_delete=*/false, key, value);
    return Status::OK();
  }

  void MultiGet(const std::vector<std::string>& keys,
                std::vector<std::string>* values,
                std::vector<Status>* statuses) override {
    parent_->master_->MultiGet(keys, values, statuses);
  }

  void MultiSet(const std::vector<std::string>& keys,
                const std::vector<std::string>& values,
                std::vector<Status>* statuses) override {
    parent_->master_->MultiSet(keys, values, statuses);
    // Only keys the master actually accepted replicate; bounced keys must
    // not resurrect on a slave.
    for (size_t i = 0; i < keys.size() && i < statuses->size(); ++i) {
      if ((*statuses)[i].ok()) {
        parent_->EnqueueReplication(/*is_delete=*/false, keys[i], values[i]);
      }
    }
  }

  size_t KeyCount() const override { return parent_->master_->KeyCount(); }

 private:
  ReplicatedKv* parent_;
};

/// Read-only facade over one slave that applies matured replication entries
/// before serving a read.
class ReplicatedKv::SlaveView final : public KvStore {
 public:
  SlaveView(ReplicatedKv* parent, size_t index)
      : parent_(parent), index_(index) {}

  Status Set(std::string_view, std::string_view) override {
    return Status::Unavailable("slave cluster is read-only");
  }

  Status Get(std::string_view key, std::string* value) override {
    auto& slave = *parent_->slaves_[index_];
    parent_->DrainSlave(slave, parent_->clock_->NowMs(), /*force=*/false);
    return slave.store->Get(key, value);
  }

  Status Delete(std::string_view) override {
    return Status::Unavailable("slave cluster is read-only");
  }

  Status XGet(std::string_view key, KvEntry* entry) override {
    auto& slave = *parent_->slaves_[index_];
    parent_->DrainSlave(slave, parent_->clock_->NowMs(), /*force=*/false);
    return slave.store->XGet(key, entry);
  }

  Status XSet(std::string_view, std::string_view, KvVersion,
              KvVersion*) override {
    return Status::Unavailable("slave cluster is read-only");
  }

  void MultiGet(const std::vector<std::string>& keys,
                std::vector<std::string>* values,
                std::vector<Status>* statuses) override {
    auto& slave = *parent_->slaves_[index_];
    parent_->DrainSlave(slave, parent_->clock_->NowMs(), /*force=*/false);
    slave.store->MultiGet(keys, values, statuses);
  }

  void MultiSet(const std::vector<std::string>& keys,
                const std::vector<std::string>&,
                std::vector<Status>* statuses) override {
    statuses->assign(keys.size(),
                     Status::Unavailable("slave cluster is read-only"));
  }

  size_t KeyCount() const override {
    return parent_->slaves_[index_]->store->KeyCount();
  }

 private:
  ReplicatedKv* parent_;
  size_t index_;
};

ReplicatedKv::ReplicatedKv(ReplicatedKvOptions options, Clock* clock)
    : options_(options), clock_(clock) {
  master_ = std::make_unique<MemKvStore>(options_.store_options);
  master_proxy_ = std::make_unique<MasterProxy>(this);
  for (size_t i = 0; i < options_.num_slaves; ++i) {
    auto state = std::make_unique<SlaveState>();
    MemKvOptions slave_options = options_.store_options;
    slave_options.seed = options_.store_options.seed + 1000 + i;
    state->store = std::make_unique<MemKvStore>(slave_options);
    slaves_.push_back(std::move(state));
    slave_views_.push_back(std::make_unique<SlaveView>(this, i));
  }
}

ReplicatedKv::~ReplicatedKv() = default;

KvStore* ReplicatedKv::master() { return master_proxy_.get(); }

KvStore* ReplicatedKv::slave(size_t i) { return slave_views_[i].get(); }

void ReplicatedKv::EnqueueReplication(bool is_delete, std::string_view key,
                                      std::string_view value) {
  const TimestampMs apply_at = clock_->NowMs() + options_.replication_lag_ms;
  for (auto& slave : slaves_) {
    std::lock_guard<std::mutex> lock(slave->mu);
    slave->pending.push_back(PendingWrite{apply_at, is_delete,
                                          std::string(key),
                                          std::string(value)});
  }
}

void ReplicatedKv::DrainSlave(SlaveState& slave, TimestampMs now_ms,
                              bool force) {
  std::deque<PendingWrite> ready;
  {
    std::lock_guard<std::mutex> lock(slave.mu);
    while (!slave.pending.empty() &&
           (force || slave.pending.front().apply_at_ms <= now_ms)) {
      ready.push_back(std::move(slave.pending.front()));
      slave.pending.pop_front();
    }
  }
  for (const auto& w : ready) {
    // Applies go through the plain store interface, so a down slave keeps
    // its backlog and retries later (the write is re-queued on failure).
    Status status = w.is_delete ? slave.store->Delete(w.key)
                                : slave.store->Set(w.key, w.value);
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(slave.mu);
      slave.pending.push_front(w);
      break;
    }
  }
}

void ReplicatedKv::CatchUpAll() {
  const TimestampMs now = clock_->NowMs();
  for (auto& slave : slaves_) DrainSlave(*slave, now, /*force=*/true);
}

size_t ReplicatedKv::PendingMutations(size_t i) const {
  std::lock_guard<std::mutex> lock(slaves_[i]->mu);
  return slaves_[i]->pending.size();
}

}  // namespace ips
