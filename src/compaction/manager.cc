#include "compaction/manager.h"

#include "common/hash.h"
#include "common/trace.h"

namespace ips {

CompactionManager::CompactionManager(
    CompactionManagerOptions options, Clock* clock,
    std::function<void(ProfileId, bool)> run_compaction,
    MetricsRegistry* metrics, std::unique_ptr<CompactionController> controller)
    : options_(std::move(options)),
      clock_(clock),
      run_compaction_(std::move(run_compaction)),
      metrics_(metrics),
      controller_(std::move(controller)) {
  if (controller_ == nullptr) {
    controller_ = MakeCompactionController(options_.policy);
  }
  if (controller_ == nullptr) {
    // Unknown policy name: fail safe to the legacy behavior rather than
    // crash the serving process over a config typo.
    controller_ = std::make_unique<DefaultCompactionController>();
  }
  if (!options_.synchronous) {
    pool_ = std::make_unique<StripedThreadPool>(
        options_.num_threads, options_.queue_shards, options_.max_queue);
  }
}

CompactionManager::~CompactionManager() {
  if (pool_) {
    pool_->Wait();
    SyncStealMetric();
  }
}

void CompactionManager::ClearInFlight(ProfileId pid, TriggerShard& shard) {
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.in_flight.erase(pid);
}

bool CompactionManager::MaybeTrigger(ProfileId pid) {
  if (!enabled_.load(std::memory_order_relaxed)) return false;
  const TimestampMs now = clock_->NowMs();
  const uint64_t hash = Mix64(pid);
  TriggerShard& shard = shards_[static_cast<size_t>(hash) &
                                (kTriggerShards - 1)];
  const int64_t interval =
      controller_->MinIntervalMs(options_.min_interval_ms);
  size_t cap_evicted = 0;
  {
    // Admission only: dedupe + per-profile rate limit. The dispatch below
    // (queue-depth probe, controller classify, pool submit) stays outside
    // the critical section so serving threads contend only on their pid's
    // shard, and only briefly.
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.in_flight.count(pid) > 0) return false;
    auto it = shard.last_run_ms.find(pid);
    if (it != shard.last_run_ms.end() && now - it->second < interval) {
      return false;
    }
    shard.in_flight.insert(pid);
    shard.last_run_ms[pid] = now;
    // Bound the rate-limit map: it only needs recent entries. Age out stale
    // ones first; if the shard is still over budget (a flood of distinct
    // pids all inside the interval), evict arbitrarily down to the cap — a
    // prematurely forgotten pid merely becomes re-triggerable early, which
    // the in-flight dedupe and queue bound absorb, whereas an unbounded map
    // is a slow memory leak proportional to the live pid universe.
    const size_t cap = RateLimitShardCap();
    if (shard.last_run_ms.size() > cap) {
      for (auto li = shard.last_run_ms.begin();
           li != shard.last_run_ms.end();) {
        if (now - li->second >= interval) {
          li = shard.last_run_ms.erase(li);
        } else {
          ++li;
        }
      }
      for (auto li = shard.last_run_ms.begin();
           shard.last_run_ms.size() > cap &&
           li != shard.last_run_ms.end();) {
        if (li->first == pid) {
          ++li;  // keep the entry just written for this trigger
          continue;
        }
        li = shard.last_run_ms.erase(li);
        ++cap_evicted;
      }
    }
  }

  if (metrics_ != nullptr) {
    metrics_->GetCounter("compaction.triggered")->Increment();
    if (cap_evicted > 0) {
      metrics_->GetCounter("compaction.rate_limit_evictions")
          ->Increment(static_cast<int64_t>(cap_evicted));
    }
  }

  CompactionPressure pressure;
  pressure.max_queue = options_.max_queue;
  pressure.partial_threshold = options_.partial_threshold;
  if (pool_) {
    pressure.queue_depth = pool_->QueueDepth();
    pressure.shard_queue_depth =
        pool_->ShardQueueDepth(static_cast<size_t>(hash));
    if (metrics_ != nullptr) {
      metrics_->GetHistogram("compaction.queue_depth")
          ->Record(static_cast<int64_t>(pressure.queue_depth));
      metrics_->GetHistogram("compaction.shard_queue_depth")
          ->Record(static_cast<int64_t>(pressure.shard_queue_depth));
    }
  }

  const CompactionKind kind = controller_->Classify(pressure);
  if (kind == CompactionKind::kSkip) {
    ClearInFlight(pid, shard);
    if (metrics_ != nullptr) {
      metrics_->GetCounter("compaction.backoff")->Increment();
    }
    return false;
  }
  const bool full = kind == CompactionKind::kFull;

  if (options_.synchronous) {
    Execute(pid, full);
    return true;
  }

  const bool submitted =
      pool_->Submit(hash, [this, pid, full] { Execute(pid, full); });
  if (!submitted) {
    ClearInFlight(pid, shard);
    if (metrics_ != nullptr) {
      metrics_->GetCounter("compaction.dropped")->Increment();
    }
    return false;
  }
  return true;
}

void CompactionManager::Execute(ProfileId pid, bool full) {
  const int64_t begin_ns = MonotonicNanos();
  {
    // Umbrella stage: in sync mode this attributes the inline pass to the
    // triggering request's trace; on pool workers no trace is installed and
    // the span is a free no-op.
    ScopedSpan span("compaction.run");
    run_compaction_(pid, full);
  }
  if (metrics_ != nullptr) {
    metrics_->GetCounter(full ? "compaction.full" : "compaction.partial")
        ->Increment();
    metrics_->GetHistogram("compaction.micros")
        ->Record((MonotonicNanos() - begin_ns) / 1000);
  }
  TriggerShard& shard = shards_[static_cast<size_t>(Mix64(pid)) &
                                (kTriggerShards - 1)];
  ClearInFlight(pid, shard);
}

void CompactionManager::SyncStealMetric() {
  if (pool_ == nullptr) return;
  const uint64_t total = pool_->StealCount();
  const uint64_t prev = steals_reported_.exchange(total);
  if (metrics_ != nullptr && total > prev) {
    metrics_->GetCounter("compaction.steals")
        ->Increment(static_cast<int64_t>(total - prev));
  }
}

void CompactionManager::Drain() {
  if (pool_) {
    pool_->Wait();
    SyncStealMetric();
  }
}

size_t CompactionManager::QueueDepth() const {
  return pool_ ? pool_->QueueDepth() : 0;
}

uint64_t CompactionManager::StealCount() const {
  return pool_ ? pool_->StealCount() : 0;
}

size_t CompactionManager::RateLimitEntriesForTest() const {
  size_t total = 0;
  for (const TriggerShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.last_run_ms.size();
  }
  return total;
}

}  // namespace ips
