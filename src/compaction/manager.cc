#include "compaction/manager.h"

namespace ips {

CompactionManager::CompactionManager(
    CompactionManagerOptions options, Clock* clock,
    std::function<void(ProfileId, bool)> run_compaction,
    MetricsRegistry* metrics)
    : options_(options),
      clock_(clock),
      run_compaction_(std::move(run_compaction)),
      metrics_(metrics) {
  if (!options_.synchronous) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads,
                                         options_.max_queue);
  }
}

CompactionManager::~CompactionManager() {
  if (pool_) pool_->Wait();
}

bool CompactionManager::MaybeTrigger(ProfileId pid) {
  if (!enabled_.load(std::memory_order_relaxed)) return false;
  const TimestampMs now = clock_->NowMs();
  bool full = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (in_flight_.count(pid) > 0) return false;
    auto it = last_run_ms_.find(pid);
    if (it != last_run_ms_.end() &&
        now - it->second < options_.min_interval_ms) {
      return false;
    }
    in_flight_.insert(pid);
    last_run_ms_[pid] = now;
    // Bound the rate-limit map: it only needs recent entries.
    if (last_run_ms_.size() > 4 * options_.max_queue + 1024) {
      for (auto li = last_run_ms_.begin(); li != last_run_ms_.end();) {
        if (now - li->second >= options_.min_interval_ms) {
          li = last_run_ms_.erase(li);
        } else {
          ++li;
        }
      }
    }
  }

  if (metrics_ != nullptr) {
    metrics_->GetCounter("compaction.triggered")->Increment();
  }

  if (options_.synchronous) {
    Execute(pid, /*full=*/true);
    return true;
  }

  // Degrade to partial compaction when the queue backs up (peak traffic).
  full = pool_->QueueDepth() < options_.partial_threshold;
  const bool submitted =
      pool_->Submit([this, pid, full] { Execute(pid, full); });
  if (!submitted) {
    std::lock_guard<std::mutex> lock(mu_);
    in_flight_.erase(pid);
    if (metrics_ != nullptr) {
      metrics_->GetCounter("compaction.dropped")->Increment();
    }
    return false;
  }
  return true;
}

void CompactionManager::Execute(ProfileId pid, bool full) {
  const int64_t begin_ns = MonotonicNanos();
  run_compaction_(pid, full);
  if (metrics_ != nullptr) {
    metrics_->GetCounter(full ? "compaction.full" : "compaction.partial")
        ->Increment();
    metrics_->GetHistogram("compaction.micros")
        ->Record((MonotonicNanos() - begin_ns) / 1000);
  }
  std::lock_guard<std::mutex> lock(mu_);
  in_flight_.erase(pid);
}

void CompactionManager::Drain() {
  if (pool_) pool_->Wait();
}

size_t CompactionManager::QueueDepth() const {
  return pool_ ? pool_->QueueDepth() : 0;
}

}  // namespace ips
