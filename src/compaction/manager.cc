#include "compaction/manager.h"

#include "common/hash.h"

namespace ips {

CompactionManager::CompactionManager(
    CompactionManagerOptions options, Clock* clock,
    std::function<void(ProfileId, bool)> run_compaction,
    MetricsRegistry* metrics)
    : options_(options),
      clock_(clock),
      run_compaction_(std::move(run_compaction)),
      metrics_(metrics) {
  if (!options_.synchronous) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads,
                                         options_.max_queue);
  }
}

CompactionManager::~CompactionManager() {
  if (pool_) pool_->Wait();
}

CompactionManager::TriggerShard& CompactionManager::ShardFor(ProfileId pid) {
  return shards_[static_cast<size_t>(Mix64(pid)) & (kTriggerShards - 1)];
}

bool CompactionManager::MaybeTrigger(ProfileId pid) {
  if (!enabled_.load(std::memory_order_relaxed)) return false;
  const TimestampMs now = clock_->NowMs();
  TriggerShard& shard = ShardFor(pid);
  {
    // Admission only: dedupe + per-profile rate limit. The dispatch below
    // (queue-depth probe, pool submit) stays outside the critical section so
    // serving threads contend only on their pid's shard, and only briefly.
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.in_flight.count(pid) > 0) return false;
    auto it = shard.last_run_ms.find(pid);
    if (it != shard.last_run_ms.end() &&
        now - it->second < options_.min_interval_ms) {
      return false;
    }
    shard.in_flight.insert(pid);
    shard.last_run_ms[pid] = now;
    // Bound the rate-limit map: it only needs recent entries. The budget is
    // split across shards, so a sweep scans one shard's worth of entries.
    if (shard.last_run_ms.size() >
        (4 * options_.max_queue + 1024) / kTriggerShards) {
      for (auto li = shard.last_run_ms.begin();
           li != shard.last_run_ms.end();) {
        if (now - li->second >= options_.min_interval_ms) {
          li = shard.last_run_ms.erase(li);
        } else {
          ++li;
        }
      }
    }
  }

  if (metrics_ != nullptr) {
    metrics_->GetCounter("compaction.triggered")->Increment();
  }

  if (options_.synchronous) {
    Execute(pid, /*full=*/true);
    return true;
  }

  // Degrade to partial compaction when the queue backs up (peak traffic).
  const bool full = pool_->QueueDepth() < options_.partial_threshold;
  const bool submitted =
      pool_->Submit([this, pid, full] { Execute(pid, full); });
  if (!submitted) {
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.in_flight.erase(pid);
    }
    if (metrics_ != nullptr) {
      metrics_->GetCounter("compaction.dropped")->Increment();
    }
    return false;
  }
  return true;
}

void CompactionManager::Execute(ProfileId pid, bool full) {
  const int64_t begin_ns = MonotonicNanos();
  run_compaction_(pid, full);
  if (metrics_ != nullptr) {
    metrics_->GetCounter(full ? "compaction.full" : "compaction.partial")
        ->Increment();
    metrics_->GetHistogram("compaction.micros")
        ->Record((MonotonicNanos() - begin_ns) / 1000);
  }
  TriggerShard& shard = ShardFor(pid);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.in_flight.erase(pid);
}

void CompactionManager::Drain() {
  if (pool_) pool_->Wait();
}

size_t CompactionManager::QueueDepth() const {
  return pool_ ? pool_->QueueDepth() : 0;
}

}  // namespace ips
