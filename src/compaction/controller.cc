#include "compaction/controller.h"

namespace ips {

CompactionKind DefaultCompactionController::Classify(
    const CompactionPressure& pressure) const {
  return pressure.queue_depth < pressure.partial_threshold
             ? CompactionKind::kFull
             : CompactionKind::kPartial;
}

int64_t DecayBiasedCompactionController::MinIntervalMs(
    int64_t configured_ms) const {
  return configured_ms > 1 ? configured_ms / 2 : configured_ms;
}

CompactionKind DecayBiasedCompactionController::Classify(
    const CompactionPressure& pressure) const {
  if (pressure.max_queue > 0 &&
      pressure.queue_depth >= pressure.max_queue - pressure.max_queue / 8) {
    return CompactionKind::kSkip;
  }
  if (2 * pressure.queue_depth >= pressure.partial_threshold ||
      pressure.shard_queue_depth > 2) {
    return CompactionKind::kPartial;
  }
  return CompactionKind::kFull;
}

std::unique_ptr<CompactionController> MakeCompactionController(
    std::string_view policy) {
  if (policy.empty() || policy == "default") {
    return std::make_unique<DefaultCompactionController>();
  }
  if (policy == "decay") {
    return std::make_unique<DecayBiasedCompactionController>();
  }
  return nullptr;
}

}  // namespace ips
