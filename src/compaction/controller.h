// CompactionController: the policy half of the compaction manager. The
// manager owns the mechanism — trigger dedupe, the sharded drain pool, the
// per-profile bookkeeping — and delegates every judgement call to a
// controller: how aggressively to rate-limit one profile, and whether a
// trigger under the observed drain pressure should run a full pass, degrade
// to a partial pass, or back off entirely. Policies are stateless and
// swappable at construction, so the ablation bench can A/B them over an
// identical replayed trace (cf. dariadb's ICompactionController, which
// separates the compaction decision from the engine the same way).
#ifndef IPS_COMPACTION_CONTROLLER_H_
#define IPS_COMPACTION_CONTROLLER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

namespace ips {

/// What a trigger should schedule, in increasing order of work.
enum class CompactionKind {
  /// Back off: do not schedule anything; later traffic re-triggers.
  kSkip,
  /// Cheap pass: truncate/decay-side work only (Compactor::PartialCompact).
  kPartial,
  /// Full pass: merge + truncate + shrink (Compactor::FullCompact).
  kFull,
};

/// Drain-pressure snapshot a controller classifies against. The queue-depth
/// counts are instantaneous reads of the striped drain pool and are zero in
/// synchronous mode (there is no queue to be behind); max_queue and
/// partial_threshold always reflect the configured values.
struct CompactionPressure {
  /// Queued (not yet running) compactions across all drain shards.
  size_t queue_depth = 0;
  /// Queued compactions on the target profile's drain shard.
  size_t shard_queue_depth = 0;
  /// The pool-wide queue bound (drops beyond it).
  size_t max_queue = 0;
  /// Configured full-vs-partial degradation threshold.
  size_t partial_threshold = 0;
};

class CompactionController {
 public:
  virtual ~CompactionController() = default;

  /// Policy name, for logs/bench JSON.
  virtual const char* name() const = 0;

  /// Effective per-profile rate-limit interval given the configured one.
  /// Policies that bias toward cheaper passes may shorten it (more frequent
  /// but lighter work); the default passes it through.
  virtual int64_t MinIntervalMs(int64_t configured_ms) const {
    return configured_ms;
  }

  /// Classifies one admitted trigger under the observed drain pressure.
  virtual CompactionKind Classify(const CompactionPressure& pressure) const = 0;
};

/// The pre-refactor manager behavior, verbatim: full passes while the drain
/// queue is shallower than partial_threshold, partial beyond it, never a
/// skip (the pool's queue bound is the only drop point), and the configured
/// rate-limit interval unchanged. The equivalence test in compaction_test
/// pins this policy against the legacy outcomes.
class DefaultCompactionController : public CompactionController {
 public:
  const char* name() const override { return "default"; }
  CompactionKind Classify(const CompactionPressure& pressure) const override;
};

/// Decay/truncate-biased alternate: compacts each profile twice as often but
/// degrades to cheap partial (truncate/decay) passes at half the default
/// pressure, and backs off entirely when the drain queue is near saturation
/// (>= 7/8 of max_queue) instead of letting the pool's bound drop triggers.
/// Trades slice-merge thoroughness for steadier tail behavior under storms.
class DecayBiasedCompactionController : public CompactionController {
 public:
  const char* name() const override { return "decay"; }
  int64_t MinIntervalMs(int64_t configured_ms) const override;
  CompactionKind Classify(const CompactionPressure& pressure) const override;
};

/// Policy factory: "default" (or empty) and "decay". Null for unknown names
/// so callers can surface a configuration error.
std::unique_ptr<CompactionController> MakeCompactionController(
    std::string_view policy);

}  // namespace ips

#endif  // IPS_COMPACTION_CONTROLLER_H_
