// Background compaction manager (Section III-D): compaction is triggered by
// serving traffic but executed asynchronously in a sharded drain pool with
// capped parallelism, keeping the CPU cost off the main serving path. Jobs
// are sharded by pid hash onto a striped work queue, so N workers drain N
// shards concurrently (stealing across shards when theirs run dry) instead
// of funnelling through one queue mutex. All judgement calls — full vs
// partial degradation, per-profile rate limiting, queue-pressure backoff —
// live behind the CompactionController policy interface; the manager is
// pure mechanism.
#ifndef IPS_COMPACTION_MANAGER_H_
#define IPS_COMPACTION_MANAGER_H_

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "compaction/compactor.h"
#include "compaction/controller.h"
#include "core/types.h"

namespace ips {

struct CompactionManagerOptions {
  /// Worker threads for asynchronous compactions (capped parallelism).
  size_t num_threads = 2;
  /// Drain-queue shards of the striped pool (rounded up to a power of two
  /// and to at least num_threads). More shards than workers smooths skew.
  size_t queue_shards = 16;
  /// Maximum queued compaction jobs across all shards; beyond this,
  /// triggers are dropped (the profile will be re-triggered by later
  /// traffic).
  size_t max_queue = 1024;
  /// Minimum interval between two compactions of the same profile. The
  /// controller may shorten it (see CompactionController::MinIntervalMs).
  int64_t min_interval_ms = 60'000;
  /// Queue depth beyond which full compactions degrade to partial ones
  /// (the paper's load-adaptive full-vs-partial strategy). Interpreted by
  /// the controller policy.
  size_t partial_threshold = 64;
  /// Controller policy name ("default", "decay"); see
  /// MakeCompactionController. An explicit controller passed to the
  /// constructor wins over this.
  std::string policy = "default";
  /// When true, compactions run inline in the caller thread — the
  /// non-optimized strategy the paper started from; kept for the ablation
  /// bench.
  bool synchronous = false;
};

class CompactionManager {
 public:
  /// `run_compaction(pid, full)` performs the actual work against the
  /// owning table's cache; the manager only decides *when* and *what kind*.
  /// Metrics may be null. `controller` overrides options.policy when
  /// non-null; an unknown options.policy falls back to the default policy.
  CompactionManager(CompactionManagerOptions options, Clock* clock,
                    std::function<void(ProfileId, bool full)> run_compaction,
                    MetricsRegistry* metrics = nullptr,
                    std::unique_ptr<CompactionController> controller = nullptr);
  ~CompactionManager();

  CompactionManager(const CompactionManager&) = delete;
  CompactionManager& operator=(const CompactionManager&) = delete;

  /// Called from the serving path after a write or query touched `pid`.
  /// Cheap: dedupes in-flight profiles and rate-limits per profile. Returns
  /// true when a compaction was scheduled (or executed, in sync mode).
  bool MaybeTrigger(ProfileId pid);

  /// True when compactions run inline on the triggering thread (tests and
  /// the III-D ablation) rather than on the async pool. Serving-path callers
  /// use this to decide whether MaybeTrigger may open trace spans.
  bool synchronous() const { return options_.synchronous; }

  const CompactionController& controller() const { return *controller_; }

  /// Kill switch: while disabled, MaybeTrigger is a no-op. Operators pause
  /// compaction during heavy back-fills and run a sweep afterwards.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool IsEnabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Blocks until queued compactions complete (tests/benches), then settles
  /// the steal-count metric.
  void Drain();

  size_t QueueDepth() const;

  /// Cross-shard steals the drain pool has performed so far (0 in sync
  /// mode). Deltas surface as the compaction.steals counter on Drain.
  uint64_t StealCount() const;

  /// Total per-profile rate-limit entries across trigger shards; the
  /// bounded-growth regression test asserts this stays capped under a flood
  /// of distinct pids.
  size_t RateLimitEntriesForTest() const;

 private:
  /// Trigger bookkeeping is sharded by pid hash: MaybeTrigger runs on every
  /// served query, and a single mutex over the dedupe/rate-limit state would
  /// serialize all serving threads. Each shard's critical section covers
  /// only the admission decision — the dispatch (queue-depth probe, pool
  /// submit, metrics) happens outside any lock.
  struct TriggerShard {
    mutable std::mutex mu;
    std::unordered_set<ProfileId> in_flight;
    std::unordered_map<ProfileId, TimestampMs> last_run_ms;
  };
  static constexpr size_t kTriggerShards = 16;

  /// Per-shard cap on last_run_ms entries (admission sweeps age out stale
  /// entries first, then evicts arbitrarily down to this bound, so a flood
  /// of distinct fresh pids cannot grow the maps without limit).
  size_t RateLimitShardCap() const {
    return (4 * options_.max_queue + 1024) / kTriggerShards;
  }

  void Execute(ProfileId pid, bool full);
  void ClearInFlight(ProfileId pid, TriggerShard& shard);
  /// Folds new pool steals into the compaction.steals counter.
  void SyncStealMetric();

  CompactionManagerOptions options_;
  Clock* clock_;
  std::function<void(ProfileId, bool)> run_compaction_;
  MetricsRegistry* metrics_;
  std::unique_ptr<CompactionController> controller_;
  std::unique_ptr<StripedThreadPool> pool_;

  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> steals_reported_{0};
  std::array<TriggerShard, kTriggerShards> shards_;
};

}  // namespace ips

#endif  // IPS_COMPACTION_MANAGER_H_
