// Background compaction manager (Section III-D): compaction is triggered by
// serving traffic but executed asynchronously in a dedicated thread pool with
// capped parallelism, keeping the CPU cost off the main serving path. Under
// load, the manager downgrades full compactions to partial ones.
#ifndef IPS_COMPACTION_MANAGER_H_
#define IPS_COMPACTION_MANAGER_H_

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "compaction/compactor.h"
#include "core/types.h"

namespace ips {

struct CompactionManagerOptions {
  /// Worker threads for asynchronous compactions (capped parallelism).
  size_t num_threads = 2;
  /// Maximum queued compaction jobs; beyond this, triggers are dropped
  /// (the profile will be re-triggered by later traffic).
  size_t max_queue = 1024;
  /// Minimum interval between two compactions of the same profile.
  int64_t min_interval_ms = 60'000;
  /// Queue depth beyond which full compactions degrade to partial ones
  /// (the paper's load-adaptive full-vs-partial strategy).
  size_t partial_threshold = 64;
  /// When true, compactions run inline in the caller thread — the
  /// non-optimized strategy the paper started from; kept for the ablation
  /// bench.
  bool synchronous = false;
};

class CompactionManager {
 public:
  /// `run_compaction(pid, full)` performs the actual work under the profile
  /// lock of the owning table; the manager only decides *when* and *what
  /// kind*. Metrics may be null.
  CompactionManager(CompactionManagerOptions options, Clock* clock,
                    std::function<void(ProfileId, bool full)> run_compaction,
                    MetricsRegistry* metrics = nullptr);
  ~CompactionManager();

  CompactionManager(const CompactionManager&) = delete;
  CompactionManager& operator=(const CompactionManager&) = delete;

  /// Called from the serving path after a write or query touched `pid`.
  /// Cheap: dedupes in-flight profiles and rate-limits per profile. Returns
  /// true when a compaction was scheduled (or executed, in sync mode).
  bool MaybeTrigger(ProfileId pid);

  /// True when compactions run inline on the triggering thread (tests and
  /// the III-D ablation) rather than on the async pool. Serving-path callers
  /// use this to decide whether MaybeTrigger may open trace spans.
  bool synchronous() const { return options_.synchronous; }

  /// Kill switch: while disabled, MaybeTrigger is a no-op. Operators pause
  /// compaction during heavy back-fills and run a sweep afterwards.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool IsEnabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Blocks until queued compactions complete (tests/benches).
  void Drain();

  size_t QueueDepth() const;

 private:
  /// Trigger bookkeeping is sharded by pid hash: MaybeTrigger runs on every
  /// served query, and a single mutex over the dedupe/rate-limit state would
  /// serialize all serving threads. Each shard's critical section covers
  /// only the admission decision — the dispatch (queue-depth probe, pool
  /// submit, metrics) happens outside any lock.
  struct TriggerShard {
    std::mutex mu;
    std::unordered_set<ProfileId> in_flight;
    std::unordered_map<ProfileId, TimestampMs> last_run_ms;
  };
  static constexpr size_t kTriggerShards = 16;

  TriggerShard& ShardFor(ProfileId pid);
  void Execute(ProfileId pid, bool full);

  CompactionManagerOptions options_;
  Clock* clock_;
  std::function<void(ProfileId, bool)> run_compaction_;
  MetricsRegistry* metrics_;
  std::unique_ptr<ThreadPool> pool_;

  std::atomic<bool> enabled_{true};
  std::array<TriggerShard, kTriggerShards> shards_;
};

}  // namespace ips

#endif  // IPS_COMPACTION_MANAGER_H_
