// Profile compaction and elimination (Section III-D): the mechanisms that
// keep a profile's memory bounded while preserving feature quality.
//
//  * Compact  — merge consecutive slices into wider windows per the
//               time-dimension ladder (Listings 2/3, Fig 10). Lossless in
//               counts, lossy only in time precision.
//  * Truncate — drop slices older than a maximum age or beyond a maximum
//               slice count (Fig 11).
//  * Shrink   — eliminate low-value long-tail features per slot, keeping the
//               top features by a multi-dimensional importance score and
//               never touching data inside the freshness horizon (Listing 4).
#ifndef IPS_COMPACTION_COMPACTOR_H_
#define IPS_COMPACTION_COMPACTOR_H_

#include <cstddef>

#include "common/clock.h"
#include "core/profile_data.h"
#include "core/table_schema.h"

namespace ips {

/// Outcome counters for one compaction pass, surfaced into metrics.
struct CompactionStats {
  size_t slices_merged = 0;      // removed by Compact
  size_t slices_truncated = 0;   // removed by Truncate
  size_t features_shrunk = 0;    // removed by Shrink
  size_t bytes_before = 0;
  size_t bytes_after = 0;

  bool AnyWork() const {
    return slices_merged + slices_truncated + features_shrunk > 0;
  }
};

/// Stateless compaction engine configured by a table schema. All operations
/// mutate the profile in place; the caller holds the profile's lock.
class Compactor {
 public:
  explicit Compactor(const TableSchema* schema) : schema_(schema) {}

  /// Full pass: Compact + Truncate + Shrink, in that order (merging first
  /// makes the shrink budgets apply to consolidated windows).
  CompactionStats FullCompact(ProfileData& profile, TimestampMs now_ms) const;

  /// Partial pass: only the cheap steps (Truncate + at most one ladder rung
  /// of merging). Used under load per Section III-D's partial-compaction
  /// strategy.
  CompactionStats PartialCompact(ProfileData& profile,
                                 TimestampMs now_ms) const;

  /// Merges consecutive slices according to the time-dimension ladder.
  /// When `max_merges` > 0 the pass stops after that many merge operations
  /// (the partial mode). Returns the number of slices eliminated.
  size_t Compact(ProfileData& profile, TimestampMs now_ms,
                 size_t max_merges = 0) const;

  /// Applies the truncate policy; returns slices dropped.
  size_t Truncate(ProfileData& profile, TimestampMs now_ms) const;

  /// Applies the shrink policy; returns features eliminated.
  size_t Shrink(ProfileData& profile, TimestampMs now_ms) const;

  /// Importance score of a feature under the schema's action weights:
  /// sum_i weight[i] * counts[i]. Exposed for tests and benches.
  double ImportanceScore(const CountVector& counts) const;

 private:
  const TableSchema* schema_;
};

}  // namespace ips

#endif  // IPS_COMPACTION_COMPACTOR_H_
