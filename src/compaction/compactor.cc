#include "compaction/compactor.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "query/scratch.h"

namespace ips {

namespace {

// Granularity the ladder prescribes for data of the given age; falls back to
// the write granularity for ages before the ladder and to the coarsest rung
// for ages past its end.
int64_t GranularityForAge(const TableSchema& schema, int64_t age_ms) {
  if (schema.time_dimensions.empty()) return schema.write_granularity_ms;
  for (const auto& rule : schema.time_dimensions) {
    if (age_ms >= rule.from_age_ms && age_ms < rule.to_age_ms) {
      return rule.granularity_ms;
    }
  }
  if (age_ms >= schema.time_dimensions.back().to_age_ms) {
    return schema.time_dimensions.back().granularity_ms;
  }
  return schema.write_granularity_ms;
}

int64_t BucketOf(TimestampMs ts, int64_t granularity) {
  int64_t b = ts / granularity;
  if (ts < 0 && b * granularity > ts) --b;
  return b;
}

}  // namespace

double Compactor::ImportanceScore(const CountVector& counts) const {
  const auto& weights = schema_->shrink.action_weights;
  double score = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const double w = i < weights.size() ? weights[i] : 1.0;
    score += w * static_cast<double>(counts[i]);
  }
  return score;
}

size_t Compactor::Compact(ProfileData& profile, TimestampMs now_ms,
                          size_t max_merges) const {
  if (schema_->time_dimensions.empty()) return 0;
  auto& slices = profile.mutable_slices();
  // Compaction workers merge constantly; routing every per-type merge
  // through the thread's shared scratch buffer keeps the merge loop from
  // allocating a fresh vector per (slice, slot, type).
  std::vector<FeatureStat>* merge_scratch =
      &QueryScratch::ThreadLocal().merge_buf;
  size_t merged = 0;
  auto it = slices.begin();  // newest first
  while (it != slices.end()) {
    auto older = std::next(it);
    if (older == slices.end()) break;
    // The rung is chosen by the newer slice's age: as data ages it migrates
    // down the ladder, and using the finer (newer) granularity guarantees we
    // never produce a window wider than either member's prescription.
    const int64_t age_ms = now_ms - it->end_ms();
    const int64_t g = GranularityForAge(*schema_, age_ms);
    const bool same_bucket =
        BucketOf(older->start_ms(), g) == BucketOf(it->end_ms() - 1, g);
    if (same_bucket && it->end_ms() - older->start_ms() <= g) {
      it->MergeFrom(*older, schema_->reduce, merge_scratch);
      slices.erase(older);
      ++merged;
      if (max_merges > 0 && merged >= max_merges) break;
      // Stay on `it`: it may absorb further older neighbours in this bucket.
    } else {
      ++it;
    }
  }
  if (merged > 0) profile.RecomputeBytes();
  return merged;
}

size_t Compactor::Truncate(ProfileData& profile, TimestampMs now_ms) const {
  const TruncatePolicy& policy = schema_->truncate;
  auto& slices = profile.mutable_slices();
  size_t dropped = 0;

  if (policy.max_age_ms > 0) {
    const TimestampMs horizon = now_ms - policy.max_age_ms;
    while (!slices.empty() && slices.back().end_ms() <= horizon) {
      slices.pop_back();
      ++dropped;
    }
  }

  if (policy.max_slices > 0 &&
      slices.size() > static_cast<size_t>(policy.max_slices)) {
    const size_t excess = slices.size() - policy.max_slices;
    for (size_t i = 0; i < excess; ++i) {
      slices.pop_back();
      ++dropped;
    }
  }
  if (dropped > 0) profile.RecomputeBytes();
  return dropped;
}

size_t Compactor::Shrink(ProfileData& profile, TimestampMs now_ms) const {
  const ShrinkPolicy& policy = schema_->shrink;
  if (policy.default_retain == 0 && policy.retain_per_slot.empty()) return 0;

  const TimestampMs fresh_after = now_ms - policy.freshness_horizon_ms;
  size_t removed = 0;

  for (auto& slice : profile.mutable_slices()) {
    // Freshness principle: recent slices are exempt — a low count on recent
    // data may still grow, so eliminating it would destroy signal.
    if (slice.end_ms() > fresh_after) continue;

    for (auto& [slot, set] : slice.mutable_slots()) {
      auto budget_it = policy.retain_per_slot.find(slot);
      const int64_t budget = budget_it != policy.retain_per_slot.end()
                                 ? budget_it->second
                                 : policy.default_retain;
      if (budget <= 0) continue;  // shrink disabled for this slot

      const size_t total = set.TotalFeatures();
      if (total <= static_cast<size_t>(budget)) continue;

      // Multi-dimensional importance: weighted sum across action counts.
      // The budget applies per slot per slice, across all types.
      struct Entry {
        double score;
        TypeId type;
        FeatureId fid;
      };
      std::vector<Entry> entries;
      entries.reserve(total);
      for (const auto& [type, stats] : set.types()) {
        for (const auto& stat : stats.stats()) {
          entries.push_back(Entry{ImportanceScore(stat.counts), type,
                                  stat.fid});
        }
      }
      auto better = [](const Entry& a, const Entry& b) {
        if (a.score != b.score) return a.score > b.score;
        if (a.type != b.type) return a.type < b.type;
        return a.fid < b.fid;
      };
      std::nth_element(entries.begin(), entries.begin() + budget - 1,
                       entries.end(), better);
      entries.resize(budget);

      std::unordered_set<uint64_t> kept;
      kept.reserve(entries.size());
      for (const auto& e : entries) {
        kept.insert((static_cast<uint64_t>(e.type) << 48) ^ e.fid);
      }
      for (auto& [type, stats] : set.mutable_types()) {
        const TypeId t = type;
        const size_t before = stats.size();
        stats.Retain([&](const FeatureStat& stat) {
          return kept.count((static_cast<uint64_t>(t) << 48) ^ stat.fid) > 0;
        });
        removed += before - stats.size();
      }
    }
  }
  if (removed > 0) profile.RecomputeBytes();
  return removed;
}

CompactionStats Compactor::FullCompact(ProfileData& profile,
                                       TimestampMs now_ms) const {
  CompactionStats stats;
  stats.bytes_before = profile.ApproximateBytes();
  stats.slices_merged = Compact(profile, now_ms);
  stats.slices_truncated = Truncate(profile, now_ms);
  stats.features_shrunk = Shrink(profile, now_ms);
  // The passes above mutate the slice list directly, so the incremental
  // byte counter must be re-measured.
  stats.bytes_after = profile.RecomputeBytes();
  return stats;
}

CompactionStats Compactor::PartialCompact(ProfileData& profile,
                                          TimestampMs now_ms) const {
  // Cheap steps only: bounded merging plus truncation. Shrink's scoring pass
  // is the expensive part, deferred to full compactions.
  constexpr size_t kPartialMergeBudget = 4;
  CompactionStats stats;
  stats.bytes_before = profile.ApproximateBytes();
  stats.slices_merged = Compact(profile, now_ms, kPartialMergeBudget);
  stats.slices_truncated = Truncate(profile, now_ms);
  stats.bytes_after = profile.RecomputeBytes();
  return stats;
}

}  // namespace ips
