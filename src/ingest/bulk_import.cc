#include "ingest/bulk_import.h"

namespace ips {

BulkImporter::BulkImporter(BulkImportOptions options, IpsClient* client,
                           Deployment* deployment, Clock* clock)
    : options_(std::move(options)),
      client_(client),
      deployment_(deployment),
      clock_(clock) {}

void BulkImporter::SetIsolationEverywhere(bool enabled) {
  for (const auto& region : deployment_->region_names()) {
    for (auto* node : deployment_->NodesInRegion(region)) {
      node->instance().SetIsolationEnabled(enabled);
    }
  }
}

Result<BulkImportReport> BulkImporter::Run(
    const std::vector<Instance>& instances,
    const std::function<void(size_t processed)>& progress) {
  if (!client_->HasTableAnywhere(options_.table)) {
    return Status::NotFound("table " + options_.table);
  }
  if (options_.manage_isolation) SetIsolationEverywhere(true);

  BulkImportReport report;
  size_t processed = 0;
  for (const Instance& instance : instances) {
    AddRecord record;
    record.timestamp = instance.timestamp;
    record.slot = instance.slot;
    record.type = instance.type;
    record.fid = instance.item_id;
    record.counts = instance.counts;

    Status status = Status::OK();
    int attempts = 0;
    for (;;) {
      status = client_->AddProfilesAs(options_.caller, options_.table,
                                      instance.uid, {record});
      if (!status.IsResourceExhausted()) break;
      // Quota pacing: the server told the back-fill job to slow down.
      ++report.quota_backoffs;
      if (++attempts > options_.retry_limit) break;
      clock_->SleepMs(options_.backoff_ms);
    }
    if (status.ok()) {
      ++report.imported;
    } else {
      ++report.failed;
    }
    if (++processed % options_.batch_size == 0 && progress != nullptr) {
      progress(processed);
    }
  }
  if (progress != nullptr && processed % options_.batch_size != 0) {
    progress(processed);
  }

  if (options_.manage_isolation) {
    // Turning isolation back off drains the buffered writes immediately.
    SetIsolationEverywhere(false);
  }
  return report;
}

}  // namespace ips
