#include "ingest/events.h"

#include "codec/coding.h"

namespace ips {

std::string EncodeInstance(const Instance& instance) {
  std::string out;
  PutVarint64(&out, instance.uid);
  PutVarint64(&out, instance.item_id);
  PutVarintSigned64(&out, instance.timestamp);
  PutVarint64(&out, instance.slot);
  PutVarint64(&out, instance.type);
  PutVarint64(&out, instance.counts.size());
  for (size_t i = 0; i < instance.counts.size(); ++i) {
    PutVarintSigned64(&out, instance.counts[i]);
  }
  return out;
}

bool DecodeInstance(const std::string& data, Instance* instance) {
  Decoder dec(data);
  uint64_t slot, type, n;
  if (!dec.GetVarint64(&instance->uid) ||
      !dec.GetVarint64(&instance->item_id) ||
      !dec.GetVarintSigned64(&instance->timestamp) ||
      !dec.GetVarint64(&slot) || !dec.GetVarint64(&type) ||
      !dec.GetVarint64(&n)) {
    return false;
  }
  if (n > 64) return false;
  instance->slot = static_cast<SlotId>(slot);
  instance->type = static_cast<TypeId>(type);
  instance->counts.Resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    int64_t v;
    if (!dec.GetVarintSigned64(&v)) return false;
    instance->counts[i] = v;
  }
  return dec.Empty();
}

}  // namespace ips
