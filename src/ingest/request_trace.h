// Request-arrival traces: record an arrival sequence from the workload
// generator once, replay it any number of times. This is the first slice of
// workload replay (ROADMAP): the overload bench must drive the SAME arrival
// sequence — same users, same read/write mix, same Poisson arrival offsets —
// through controller-on and controller-off configurations, or the goodput
// comparison measures sampling noise instead of admission policy. A trace
// captures only what admission and routing see (arrival offset, kind,
// profile id, query shape); replayers scale the time axis to produce 1x/2x/
// 5x overload from one recording.
//
// The on-disk format is a versioned text file, one request per line —
// greppable, diffable, and committable next to the BENCH_*.json it produced.
#ifndef IPS_INGEST_REQUEST_TRACE_H_
#define IPS_INGEST_REQUEST_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "ingest/workload.h"

namespace ips {

/// One recorded arrival. Offsets are relative to the trace start so a replay
/// can scale the time axis (offset / multiplier = overload factor).
struct TraceRequest {
  /// Arrival time, microseconds from trace start.
  int64_t offset_us = 0;
  /// false = read (MultiQuery), true = write (MultiAdd).
  bool is_write = false;
  /// Profile the request targets (Zipf-sampled at record time).
  ProfileId pid = 0;
  /// Read shape: slot + top-k. Write shape: `k` is the record-batch size.
  SlotId slot = 0;
  uint32_t k = 0;
};

struct RequestTrace {
  std::vector<TraceRequest> requests;

  /// Duration from first to last arrival (0 for traces of < 2 requests).
  int64_t DurationUs() const;

  /// Writes the trace as "ips-request-trace v1" + one line per request.
  Status SaveTo(const std::string& path) const;

  /// Parses a file written by SaveTo. Corrupt headers or rows are an error,
  /// not a silent truncation.
  static Result<RequestTrace> LoadFrom(const std::string& path);
};

struct TraceRecordOptions {
  /// Mean arrival rate of the recorded (1x) trace; replayers scale this.
  double base_qps = 1000;
  /// Trace length in requests.
  size_t num_requests = 10'000;
  /// Fraction of arrivals that are reads (the paper's ~10:1 read:write).
  double read_fraction = 0.9;
  /// Records per write batch.
  uint32_t write_batch = 4;
  uint64_t seed = 97;
};

/// Samples a Poisson arrival process over `gen`'s user/query distributions.
/// Deterministic for a fixed (generator state, options) pair.
RequestTrace RecordTrace(WorkloadGenerator& gen,
                         const TraceRecordOptions& options);

}  // namespace ips

#endif  // IPS_INGEST_REQUEST_TRACE_H_
