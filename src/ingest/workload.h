// Workload generation: the production-traffic substitute. Consumer
// recommendation traffic has three structural properties the evaluation
// depends on — Zipf-skewed user popularity, a roughly 10:1 read:write ratio,
// and strong diurnal load variation (Fig 16/19 were captured during the 2020
// Spring Festival peak). The generator reproduces all three with seeded
// determinism.
#ifndef IPS_INGEST_WORKLOAD_H_
#define IPS_INGEST_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "core/types.h"
#include "ingest/events.h"
#include "query/query.h"
#include "server/ips_instance.h"

namespace ips {

struct WorkloadOptions {
  uint64_t num_users = 100'000;
  double user_zipf_theta = 0.99;
  uint64_t num_items = 1'000'000;
  double item_zipf_theta = 0.8;
  uint32_t num_slots = 8;
  uint32_t types_per_slot = 16;
  size_t num_actions = 4;
  /// Probability that an action event of index i occurs given a click;
  /// index 0 (click) is implicit.
  std::vector<double> action_rates = {1.0, 0.15, 0.05, 0.03};
  uint64_t seed = 42;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadOptions options);

  /// A user id drawn from the Zipf popularity distribution.
  ProfileId SampleUser();
  /// An item and its categorization.
  void SampleItem(FeatureId* item, SlotId* slot, TypeId* type);

  /// One user-item interaction as an add record batch (write path).
  std::vector<AddRecord> NextAddBatch(TimestampMs now_ms, ProfileId* uid);

  /// One realistic feature query: random user, slot-scoped, common window
  /// sizes (1h/1d/7d/30d), top-K with K in 10..100 (the paper's "10s to
  /// 100s of features per request" is modelled as multiple such queries).
  QuerySpec NextQuerySpec(ProfileId* uid);

  /// Raw event triple for the stream-join path. Returns the number of
  /// events written (impression always; feature always; 0+ actions).
  struct EventTriple {
    ImpressionEvent impression;
    FeatureEvent feature;
    std::vector<ActionEvent> actions;
  };
  EventTriple NextEventGroup(TimestampMs now_ms);

  const WorkloadOptions& options() const { return options_; }
  Rng& rng() { return rng_; }

 private:
  WorkloadOptions options_;
  Rng rng_;
  ZipfGenerator user_zipf_;
  ZipfGenerator item_zipf_;
  RequestId next_request_id_ = 1;
};

/// Diurnal load curve: a smooth day/night cycle with an evening peak,
/// normalized so the value is in [trough_fraction, 1]. Multiply by the peak
/// rate to get the instantaneous offered load (Fig 16/19's shape).
double DiurnalLoadFactor(TimestampMs time_of_day_ms,
                         double trough_fraction = 0.35);

}  // namespace ips

#endif  // IPS_INGEST_WORKLOAD_H_
