#include "ingest/stream_join.h"

#include <algorithm>

namespace ips {

StreamJoiner::StreamJoiner(StreamJoinOptions options, Sink sink)
    : options_(options), sink_(std::move(sink)) {}

void StreamJoiner::OnImpression(const ImpressionEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  Group& group = pending_[event.request_id];
  if (group.first_seen_ms == 0) group.first_seen_ms = event.timestamp;
  // Server and client impressions may both arrive; keep the earliest.
  if (!group.impression.has_value() ||
      event.timestamp < group.impression->timestamp) {
    group.impression = event;
  }
}

void StreamJoiner::OnAction(const ActionEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  Group& group = pending_[event.request_id];
  if (group.first_seen_ms == 0) group.first_seen_ms = event.timestamp;
  group.actions.push_back(event);
}

void StreamJoiner::OnFeature(const FeatureEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  Group& group = pending_[event.request_id];
  if (group.first_seen_ms == 0) group.first_seen_ms = event.timestamp;
  group.feature = event;
}

bool StreamJoiner::EmitLocked(Group& group) {
  if (!group.impression.has_value()) return false;
  if (group.actions.empty() && !options_.emit_actionless) return false;

  Instance instance;
  instance.uid = group.impression->uid;
  instance.item_id = group.impression->item_id;
  instance.timestamp = group.impression->timestamp;
  if (group.feature.has_value()) {
    instance.slot = group.feature->slot;
    instance.type = group.feature->type;
  }
  instance.counts.Resize(options_.num_actions);
  for (const auto& action : group.actions) {
    if (action.action < options_.num_actions) {
      instance.counts[action.action] += action.count;
      instance.timestamp = std::max(instance.timestamp, action.timestamp);
    }
  }
  sink_(instance);
  return true;
}

size_t StreamJoiner::AdvanceWatermark(TimestampMs now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t emitted = 0;
  for (auto it = pending_.begin(); it != pending_.end();) {
    Group& group = it->second;
    const bool expired = now_ms - group.first_seen_ms >= options_.window_ms;
    // A group with all three streams present can be emitted eagerly; others
    // wait for the window in case late events still arrive.
    const bool complete = group.impression.has_value() &&
                          group.feature.has_value() &&
                          !group.actions.empty();
    if (complete || expired) {
      if (EmitLocked(group)) ++emitted;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  return emitted;
}

size_t StreamJoiner::PendingGroups() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

}  // namespace ips
