// Bulk (batch) import — the Spark-job path of Fig 5 and the back-fill
// scenario of Section III-F: an offline job loads a large volume of
// historical instance data into an IPS cluster while the cluster keeps
// serving online traffic. The job:
//   * turns read-write isolation ON for the duration (the hot switch the
//     paper provides exactly for this case), so buffered bulk writes do not
//     contend with online queries on the main tables;
//   * writes under its own caller identity so the server-side quota can
//     pace it independently of online callers;
//   * processes its input in deterministic batches with retry-on-quota
//     backoff, reporting progress.
#ifndef IPS_INGEST_BULK_IMPORT_H_
#define IPS_INGEST_BULK_IMPORT_H_

#include <functional>
#include <string>
#include <vector>

#include "cluster/client.h"
#include "common/clock.h"
#include "common/status.h"
#include "ingest/events.h"

namespace ips {

struct BulkImportOptions {
  std::string table = "user_profile";
  std::string caller = "bulk-import";
  /// Records per batch between progress callbacks.
  size_t batch_size = 1024;
  /// On quota rejection, wait this long (simulated) before retrying.
  int64_t backoff_ms = 200;
  /// Give up on a record after this many quota retries (counted as failed).
  int retry_limit = 50;
  /// Toggle isolation on the target nodes for the duration of the import.
  bool manage_isolation = true;
};

struct BulkImportReport {
  size_t imported = 0;
  size_t failed = 0;
  size_t quota_backoffs = 0;
};

class BulkImporter {
 public:
  BulkImporter(BulkImportOptions options, IpsClient* client,
               Deployment* deployment, Clock* clock);

  /// Imports all instances. Blocking; `progress` (optional) is invoked after
  /// each batch with records processed so far.
  Result<BulkImportReport> Run(
      const std::vector<Instance>& instances,
      const std::function<void(size_t processed)>& progress = nullptr);

 private:
  void SetIsolationEverywhere(bool enabled);

  BulkImportOptions options_;
  IpsClient* client_;
  Deployment* deployment_;
  Clock* clock_;
};

}  // namespace ips

#endif  // IPS_INGEST_BULK_IMPORT_H_
