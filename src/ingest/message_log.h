// Partitioned, append-only message log — the Kafka substitute on the
// ingestion path (Section III-A): joined instances are written to topics and
// consumed by the IPS extraction job. Partitioning is by key (uid) so one
// user's instances stay ordered; consumers track per-partition offsets and
// can replay (the back-fill scenario of Section III-F).
#ifndef IPS_INGEST_MESSAGE_LOG_H_
#define IPS_INGEST_MESSAGE_LOG_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace ips {

struct LogRecord {
  uint64_t key = 0;
  std::string value;
  int64_t offset = 0;
};

class MessageLog {
 public:
  explicit MessageLog(size_t num_partitions = 4);

  /// Appends to the partition owning `key`; returns the record's offset.
  int64_t Append(const std::string& topic, uint64_t key,
                 std::string value);

  /// Reads up to `max_records` starting at `offset` in one partition.
  std::vector<LogRecord> Read(const std::string& topic, size_t partition,
                              int64_t offset, size_t max_records) const;

  /// End offset (next to be written) of a partition.
  int64_t EndOffset(const std::string& topic, size_t partition) const;

  size_t num_partitions() const { return num_partitions_; }
  size_t PartitionFor(uint64_t key) const;

  /// Committed consumer-group offsets, for resumable consumption.
  void CommitOffset(const std::string& group, const std::string& topic,
                    size_t partition, int64_t offset);
  int64_t CommittedOffset(const std::string& group, const std::string& topic,
                          size_t partition) const;

 private:
  struct Partition {
    std::vector<LogRecord> records;
  };

  size_t num_partitions_;
  mutable std::mutex mu_;
  std::map<std::string, std::vector<Partition>> topics_;
  std::map<std::string, int64_t> offsets_;  // "group/topic/partition" -> off
};

}  // namespace ips

#endif  // IPS_INGEST_MESSAGE_LOG_H_
