// Ingestion job (Section III-A): the Flink-style streaming job that consumes
// joined instances from the message log and, through user-defined extraction
// logic, writes them into IPS via the unified client. One job instance owns
// a set of log partitions and advances its committed offsets as it goes, so
// processing is resumable and replayable (back-fill).
#ifndef IPS_INGEST_INGESTION_JOB_H_
#define IPS_INGEST_INGESTION_JOB_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/client.h"
#include "common/status.h"
#include "ingest/events.h"
#include "ingest/message_log.h"

namespace ips {

struct IngestionJobOptions {
  std::string topic = "instances";
  std::string consumer_group = "ips-ingest";
  std::string table = "user_profile";
  /// Records pulled per partition per poll.
  size_t batch_size = 256;
};

/// Maps one joined instance to the add_profile record(s) it produces. The
/// default extraction writes (slot, type, item_id) with the instance's
/// counts — the common case; products install custom logic here.
using ExtractFn =
    std::function<std::vector<AddRecord>(const Instance& instance)>;

class IngestionJob {
 public:
  IngestionJob(IngestionJobOptions options, MessageLog* log,
               IpsClient* client, ExtractFn extract = nullptr);

  /// Drains every partition up to its current end; returns instances
  /// written. Call repeatedly from a driver loop ("micro-batches").
  size_t PollOnce();

  /// Instances that failed to decode or write.
  int64_t error_count() const { return errors_; }

 private:
  IngestionJobOptions options_;
  MessageLog* log_;
  IpsClient* client_;
  ExtractFn extract_;
  int64_t errors_ = 0;
};

}  // namespace ips

#endif  // IPS_INGEST_INGESTION_JOB_H_
