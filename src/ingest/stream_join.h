// Windowed three-stream join (Section III-A): impression, action and feature
// events correlated by request id are combined into Instances, the training
// samples that feed IPS. This mirrors the production Flink join jobs: events
// buffer in a time window; a group is emitted when complete (impression +
// categorization seen) or when its window expires (late/missing streams are
// tolerated with defaults — weak completeness, as in the real pipeline).
#ifndef IPS_INGEST_STREAM_JOIN_H_
#define IPS_INGEST_STREAM_JOIN_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "common/clock.h"
#include "ingest/events.h"

namespace ips {

struct StreamJoinOptions {
  /// How long a pending group may wait for its remaining streams.
  int64_t window_ms = 60'000;
  /// Width of the count vector in produced instances (action schema size).
  size_t num_actions = 4;
  /// Emit groups that saw an impression but no action (negative samples are
  /// training signal too; their counts are all zero except impressions are
  /// not part of the count vector here).
  bool emit_actionless = false;
};

class StreamJoiner {
 public:
  using Sink = std::function<void(const Instance&)>;

  StreamJoiner(StreamJoinOptions options, Sink sink);

  void OnImpression(const ImpressionEvent& event);
  void OnAction(const ActionEvent& event);
  void OnFeature(const FeatureEvent& event);

  /// Flushes every group whose window expired at `now_ms`. Returns the
  /// number of instances emitted.
  size_t AdvanceWatermark(TimestampMs now_ms);

  /// Groups still buffered.
  size_t PendingGroups() const;

 private:
  struct Group {
    std::optional<ImpressionEvent> impression;
    std::optional<FeatureEvent> feature;
    std::vector<ActionEvent> actions;
    TimestampMs first_seen_ms = 0;
  };

  /// Emits the group if it has enough information; returns whether emitted.
  bool EmitLocked(Group& group);

  StreamJoinOptions options_;
  Sink sink_;
  mutable std::mutex mu_;
  std::map<RequestId, Group> pending_;
};

}  // namespace ips

#endif  // IPS_INGEST_STREAM_JOIN_H_
