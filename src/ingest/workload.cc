#include "ingest/workload.h"

#include <cmath>

namespace ips {

WorkloadGenerator::WorkloadGenerator(WorkloadOptions options)
    : options_(options),
      rng_(options.seed),
      user_zipf_(options.num_users, options.user_zipf_theta),
      item_zipf_(options.num_items, options.item_zipf_theta) {}

ProfileId WorkloadGenerator::SampleUser() {
  // Scramble the rank so hot users spread across shards, as hashed profile
  // ids do in production.
  return ScrambleId(user_zipf_.Next(rng_));
}

void WorkloadGenerator::SampleItem(FeatureId* item, SlotId* slot,
                                   TypeId* type) {
  const uint64_t rank = item_zipf_.Next(rng_);
  *item = ScrambleId(rank) | 1;  // avoid fid 0
  // Categorization is a deterministic function of the item so the same item
  // always lands in the same (slot, type) — as backend feature streams do.
  const uint64_t h = Mix64(rank + 0x5bd1e995);
  *slot = static_cast<SlotId>(h % options_.num_slots);
  *type = static_cast<TypeId>((h >> 32) % options_.types_per_slot);
}

std::vector<AddRecord> WorkloadGenerator::NextAddBatch(TimestampMs now_ms,
                                                       ProfileId* uid) {
  *uid = SampleUser();
  FeatureId item;
  SlotId slot;
  TypeId type;
  SampleItem(&item, &slot, &type);

  AddRecord record;
  record.timestamp = now_ms;
  record.slot = slot;
  record.type = type;
  record.fid = item;
  record.counts.Resize(options_.num_actions);
  for (size_t i = 0; i < options_.num_actions; ++i) {
    const double rate =
        i < options_.action_rates.size() ? options_.action_rates[i] : 0.0;
    if (rate >= 1.0 || rng_.Bernoulli(rate)) record.counts[i] = 1;
  }
  return {record};
}

QuerySpec WorkloadGenerator::NextQuerySpec(ProfileId* uid) {
  *uid = SampleUser();
  QuerySpec spec;
  spec.slot = static_cast<SlotId>(rng_.Uniform(options_.num_slots));
  if (rng_.Bernoulli(0.5)) {
    spec.type = static_cast<TypeId>(rng_.Uniform(options_.types_per_slot));
  }
  static constexpr int64_t kWindows[] = {kMillisPerHour, kMillisPerDay,
                                         7 * kMillisPerDay,
                                         30 * kMillisPerDay};
  spec.time_range = TimeRange::Current(kWindows[rng_.Uniform(4)]);
  spec.sort_by = SortBy::kActionCount;
  spec.sort_action =
      static_cast<ActionIndex>(rng_.Uniform(options_.num_actions));
  spec.k = 10 + rng_.Uniform(91);  // 10..100
  if (rng_.Bernoulli(0.2)) {
    spec.decay.function = DecayFunction::kExponential;
    spec.decay.factor = 0.9;
    spec.decay.unit_ms = kMillisPerDay;
  }
  return spec;
}

WorkloadGenerator::EventTriple WorkloadGenerator::NextEventGroup(
    TimestampMs now_ms) {
  EventTriple triple;
  const RequestId rid = next_request_id_++;
  const ProfileId uid = SampleUser();
  FeatureId item;
  SlotId slot;
  TypeId type;
  SampleItem(&item, &slot, &type);

  triple.impression.request_id = rid;
  triple.impression.uid = uid;
  triple.impression.item_id = item;
  triple.impression.timestamp = now_ms;

  triple.feature.request_id = rid;
  triple.feature.uid = uid;
  triple.feature.timestamp = now_ms;
  triple.feature.slot = slot;
  triple.feature.type = type;

  for (size_t i = 0; i < options_.num_actions; ++i) {
    const double rate =
        i < options_.action_rates.size() ? options_.action_rates[i] : 0.0;
    if (rate >= 1.0 || rng_.Bernoulli(rate)) {
      ActionEvent action;
      action.request_id = rid;
      action.uid = uid;
      action.item_id = item;
      // Actions trail the impression by a few seconds.
      action.timestamp = now_ms + static_cast<int64_t>(rng_.Uniform(5000));
      action.action = static_cast<ActionIndex>(i);
      triple.actions.push_back(action);
    }
  }
  return triple;
}

double DiurnalLoadFactor(TimestampMs time_of_day_ms, double trough_fraction) {
  // Day curve: sinusoidal base with its trough around 06:00 plus a Gaussian
  // evening bump centred at 21:00 — the shape of consumer-app traffic.
  int64_t tod = time_of_day_ms % kMillisPerDay;
  if (tod < 0) tod += kMillisPerDay;
  const double t =
      static_cast<double>(tod) / static_cast<double>(kMillisPerDay);
  const double base = 0.5 + 0.5 * std::sin((t - 0.5) * 2.0 * M_PI);
  const double evening_dist = (t - 0.875) / 0.08;  // 21:00, ~2h wide
  const double evening = 0.25 * std::exp(-evening_dist * evening_dist);
  double shape = base + evening;
  if (shape < 0.0) shape = 0.0;
  if (shape > 1.0) shape = 1.0;
  return trough_fraction + (1.0 - trough_fraction) * shape;
}

}  // namespace ips
