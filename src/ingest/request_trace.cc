#include "ingest/request_trace.h"

#include <cinttypes>
#include <cstdio>
#include <string>

namespace ips {

namespace {
constexpr char kHeader[] = "ips-request-trace v1";
}  // namespace

int64_t RequestTrace::DurationUs() const {
  if (requests.size() < 2) return 0;
  return requests.back().offset_us - requests.front().offset_us;
}

Status RequestTrace::SaveTo(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file for write: " + path);
  }
  std::fprintf(f, "%s %zu\n", kHeader, requests.size());
  for (const auto& r : requests) {
    std::fprintf(f, "%" PRId64 " %c %" PRIu64 " %u %u\n", r.offset_us,
                 r.is_write ? 'w' : 'r', static_cast<uint64_t>(r.pid),
                 static_cast<unsigned>(r.slot), static_cast<unsigned>(r.k));
  }
  const bool ok = std::fclose(f) == 0;
  if (!ok) return Status::Internal("short write to trace file: " + path);
  return Status::OK();
}

Result<RequestTrace> RequestTrace::LoadFrom(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::NotFound("trace file not found: " + path);
  }
  RequestTrace trace;
  char header[64] = {0};
  size_t count = 0;
  // "%63[^ ] v1 %zu" would accept any version; match the header literally.
  if (std::fscanf(f, "ips-request-trace v%63s %zu\n", header, &count) != 2 ||
      std::string(header) != "1") {
    std::fclose(f);
    return Status::Corruption("bad trace header in " + path);
  }
  trace.requests.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    TraceRequest r;
    char kind = 0;
    uint64_t pid = 0;
    unsigned slot = 0;
    unsigned k = 0;
    if (std::fscanf(f, "%" SCNd64 " %c %" SCNu64 " %u %u\n", &r.offset_us,
                    &kind, &pid, &slot, &k) != 5 ||
        (kind != 'r' && kind != 'w')) {
      std::fclose(f);
      return Status::Corruption("bad trace row " + std::to_string(i) +
                                " in " + path);
    }
    r.is_write = kind == 'w';
    r.pid = static_cast<ProfileId>(pid);
    r.slot = static_cast<SlotId>(slot);
    r.k = k;
    trace.requests.push_back(r);
  }
  std::fclose(f);
  return trace;
}

RequestTrace RecordTrace(WorkloadGenerator& gen,
                         const TraceRecordOptions& options) {
  RequestTrace trace;
  trace.requests.reserve(options.num_requests);
  Rng rng(options.seed);
  const double mean_gap_us =
      options.base_qps > 0 ? 1e6 / options.base_qps : 1000;
  double now_us = 0;
  for (size_t i = 0; i < options.num_requests; ++i) {
    now_us += rng.Exponential(mean_gap_us);
    TraceRequest r;
    r.offset_us = static_cast<int64_t>(now_us);
    r.is_write = !rng.Bernoulli(options.read_fraction);
    r.pid = gen.SampleUser();
    if (r.is_write) {
      r.k = options.write_batch;
    } else {
      // Sample the query shape from the generator's realistic spec stream,
      // keeping only what the replayer needs (slot + top-k).
      ProfileId spec_uid = 0;
      QuerySpec spec = gen.NextQuerySpec(&spec_uid);
      r.slot = spec.slot;
      r.k = static_cast<uint32_t>(spec.k);
    }
    trace.requests.push_back(r);
  }
  return trace;
}

}  // namespace ips
