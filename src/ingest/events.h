// Instance-data event types (Section III-A). Instance data — the training
// samples that double as IPS's input — is formed by joining three streams:
// impressions (an item was shown), actions (the user did something), and
// features (backend ranking signals).
#ifndef IPS_INGEST_EVENTS_H_
#define IPS_INGEST_EVENTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "core/types.h"

namespace ips {

/// Correlates the three streams for one (user, item) presentation.
using RequestId = uint64_t;

struct ImpressionEvent {
  RequestId request_id = 0;
  ProfileId uid = 0;
  FeatureId item_id = 0;
  TimestampMs timestamp = 0;
  /// Server-side or client-side impression (both exist in production).
  bool client_side = false;
};

struct ActionEvent {
  RequestId request_id = 0;
  ProfileId uid = 0;
  FeatureId item_id = 0;
  TimestampMs timestamp = 0;
  /// Index into the table's action schema (click/like/share/comment...).
  ActionIndex action = 0;
  int64_t count = 1;
};

struct FeatureEvent {
  RequestId request_id = 0;
  ProfileId uid = 0;
  TimestampMs timestamp = 0;
  /// Backend categorization of the item.
  SlotId slot = 0;
  TypeId type = 0;
};

/// The joined instance: one user-item interaction with its categorization
/// and per-action counts — exactly what the extraction job writes into IPS.
struct Instance {
  ProfileId uid = 0;
  FeatureId item_id = 0;
  TimestampMs timestamp = 0;
  SlotId slot = 0;
  TypeId type = 0;
  CountVector counts;
};

/// Serialization for the message log (values are opaque bytes, as in Kafka).
std::string EncodeInstance(const Instance& instance);
bool DecodeInstance(const std::string& data, Instance* instance);

}  // namespace ips

#endif  // IPS_INGEST_EVENTS_H_
