#include "ingest/ingestion_job.h"

namespace ips {

namespace {

std::vector<AddRecord> DefaultExtract(const Instance& instance) {
  AddRecord record;
  record.timestamp = instance.timestamp;
  record.slot = instance.slot;
  record.type = instance.type;
  record.fid = instance.item_id;
  record.counts = instance.counts;
  return {record};
}

}  // namespace

IngestionJob::IngestionJob(IngestionJobOptions options, MessageLog* log,
                           IpsClient* client, ExtractFn extract)
    : options_(options),
      log_(log),
      client_(client),
      extract_(extract != nullptr ? std::move(extract) : DefaultExtract) {}

size_t IngestionJob::PollOnce() {
  size_t written = 0;
  for (size_t partition = 0; partition < log_->num_partitions();
       ++partition) {
    int64_t offset = log_->CommittedOffset(options_.consumer_group,
                                           options_.topic, partition);
    const int64_t end = log_->EndOffset(options_.topic, partition);
    while (offset < end) {
      const auto records = log_->Read(options_.topic, partition, offset,
                                      options_.batch_size);
      if (records.empty()) break;
      for (const auto& record : records) {
        Instance instance;
        if (!DecodeInstance(record.value, &instance)) {
          ++errors_;
          continue;
        }
        const auto adds = extract_(instance);
        if (adds.empty()) continue;
        Status status =
            client_->AddProfiles(options_.table, instance.uid, adds);
        if (status.ok()) {
          ++written;
        } else {
          ++errors_;
        }
      }
      offset = records.back().offset + 1;
      log_->CommitOffset(options_.consumer_group, options_.topic, partition,
                         offset);
    }
  }
  return written;
}

}  // namespace ips
