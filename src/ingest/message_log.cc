#include "ingest/message_log.h"

#include "common/hash.h"

namespace ips {

MessageLog::MessageLog(size_t num_partitions)
    : num_partitions_(num_partitions == 0 ? 1 : num_partitions) {}

size_t MessageLog::PartitionFor(uint64_t key) const {
  return Mix64(key) % num_partitions_;
}

int64_t MessageLog::Append(const std::string& topic, uint64_t key,
                           std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& partitions = topics_[topic];
  if (partitions.empty()) partitions.resize(num_partitions_);
  Partition& p = partitions[PartitionFor(key)];
  LogRecord record;
  record.key = key;
  record.value = std::move(value);
  record.offset = static_cast<int64_t>(p.records.size());
  p.records.push_back(std::move(record));
  return static_cast<int64_t>(p.records.size()) - 1;
}

std::vector<LogRecord> MessageLog::Read(const std::string& topic,
                                        size_t partition, int64_t offset,
                                        size_t max_records) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogRecord> out;
  auto it = topics_.find(topic);
  if (it == topics_.end() || partition >= it->second.size()) return out;
  const Partition& p = it->second[partition];
  if (offset < 0) offset = 0;
  for (size_t i = static_cast<size_t>(offset);
       i < p.records.size() && out.size() < max_records; ++i) {
    out.push_back(p.records[i]);
  }
  return out;
}

int64_t MessageLog::EndOffset(const std::string& topic,
                              size_t partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end() || partition >= it->second.size()) return 0;
  return static_cast<int64_t>(it->second[partition].records.size());
}

void MessageLog::CommitOffset(const std::string& group,
                              const std::string& topic, size_t partition,
                              int64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  offsets_[group + "/" + topic + "/" + std::to_string(partition)] = offset;
}

int64_t MessageLog::CommittedOffset(const std::string& group,
                                    const std::string& topic,
                                    size_t partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it =
      offsets_.find(group + "/" + topic + "/" + std::to_string(partition));
  return it == offsets_.end() ? 0 : it->second;
}

}  // namespace ips
