// Adaptive overload control (the robustness layer in front of QuotaManager):
// queue-aware admission, deadline-derived shedding, and a graceful brown-out
// ladder. IPS clusters are multi-tenant and front heavy fan-out traffic
// (Sections IV, V-b); the static per-caller QPS quota cannot tell "caller is
// greedy" from "server is drowning" — under a 2-5x overload burst every
// queued request still runs to completion, burning CPU on work that will
// miss its deadline while client retries amplify the storm.
//
// The controller keeps a lightweight sliding estimate of server queue time
// (an EWMA over reported `server.queue` stage samples, plus a Little's-law
// depth estimate when a front-end reports its queue depth — NOT the sampled
// trace collector, which sees only 1-in-N requests) and sheds at admission,
// cheapest first:
//
//   * Deadline-derived shed: a request whose remaining deadline headroom
//     cannot cover the current queue estimate plus its expected service cost
//     is going to miss its deadline anyway — reject it in nanoseconds
//     instead of serving it in milliseconds nobody waits for (CoDel's "is
//     the standing queue useful work" question asked per request).
//   * Brown-out ladder: when the queue estimate is above the CoDel-style
//     target, traffic tiers shed lowest-value first — bulk/batch traffic at
//     1x target, writes (deferrable; ingestion pipelines retry) at 2x,
//     normal serving reads at 4x, and critical reads only at 8x, so a
//     saturated instance degrades by dropping the cheapest work instead of
//     timing out uniformly at random.
//
// Shed responses are Status::Overloaded — ResourceExhausted carrying a
// retry-after hint derived from the estimated drain time — and the client
// side (RetryPolicy) backs off by the hint without burning retry-budget
// tokens, so shedding reduces re-offered load instead of reshaping it.
#ifndef IPS_SERVER_OVERLOAD_H_
#define IPS_SERVER_OVERLOAD_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/call_context.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"

namespace ips {

/// Traffic tiers for the brown-out ladder, ordered by shed priority:
/// higher-numbered tiers shed first.
enum class RequestTier : int {
  kCritical = 0,  // interactive reads from callers ops marked critical
  kRead = 1,      // normal serving reads
  kWrite = 2,     // ingestion writes (deferrable; upstream pipelines retry)
  kBulk = 3,      // back-fill / batch jobs (pure background)
};

const char* RequestTierName(RequestTier tier);

/// Parses "critical"/"read"/"write"/"bulk" (the config-registry spelling);
/// nullopt for anything else.
std::optional<RequestTier> ParseRequestTier(std::string_view name);

struct OverloadControllerOptions {
  /// Master switch. Off = the pre-controller behaviour: quota is the only
  /// admission gate (the bench_overload ablation baseline).
  bool enabled = true;

  /// CoDel-style acceptable standing queue time. Below this the instance is
  /// healthy and every tier admits.
  int64_t target_queue_us = 5'000;

  /// Brown-out ladder: tier T sheds when the queue estimate exceeds
  /// target_queue_us * <tier factor>. Factors must be non-decreasing from
  /// bulk to critical.
  double bulk_factor = 1.0;
  double write_factor = 2.0;
  double read_factor = 4.0;
  double critical_factor = 8.0;

  /// EWMA smoothing for queue and service samples (weight of the newest
  /// sample).
  double ewma_alpha = 0.2;

  /// Expected per-profile service cost before any sample has been observed
  /// (replaced by the live service EWMA as soon as requests complete).
  int64_t default_service_us = 2'000;

  /// Number of workers the admission queue drains through. Supplied by the
  /// serving front-end; 0 = unknown, which disables the depth-based estimate
  /// (the wait EWMA still works).
  int workers = 0;

  /// Bounds on the retry-after hint attached to shed responses.
  int64_t min_retry_after_ms = 2;
  int64_t max_retry_after_ms = 500;

  /// Half-life of the queue-wait EWMA in real (monotonic) time: with no
  /// fresh samples the estimate decays toward zero instead of pinning the
  /// instance in brown-out after a burst ends.
  int64_t estimate_half_life_ms = 100;
};

/// Thread-safe. One controller per instance; every admission point
/// (Query/MultiQuery/AddProfiles/MultiAdd) consults it before the quota
/// check, and serving front-ends feed it queue observations.
class OverloadController {
 public:
  OverloadController(OverloadControllerOptions options, Clock* clock,
                     MetricsRegistry* metrics);

  const OverloadControllerOptions& options() const { return options_; }
  bool enabled() const { return options_.enabled; }

  /// Admission decision for one request (batch = one decision, mirroring the
  /// quota charge). `cost` is the batch size in profiles/items. OK, or
  /// Status::Overloaded with a retry-after hint.
  Status Admit(RequestTier tier, double cost, const CallContext& ctx,
               TimestampMs now_ms);

  // --- Signal feeds ---------------------------------------------------

  /// One observed `server.queue` duration: the time a request spent between
  /// arrival and the start of its per-profile work. Front-ends report their
  /// real queue wait here; the instance feeds its own admission-stage span.
  void RecordQueueSample(int64_t queue_us);

  /// One completed request's service time, normalized per profile/item.
  void RecordServiceSample(int64_t service_us, double cost);

  /// Front-end queue depth hooks (the RPC server's request queue). Together
  /// with options().workers they drive the Little's-law component of the
  /// estimate, which reacts to a burst instantly instead of after the first
  /// delayed request drains.
  void OnEnqueue();
  void OnDequeue(int64_t waited_us);

  // --- Caller tiers ---------------------------------------------------

  /// Ops marking of a caller's criticality (hot-reconfigurable alongside
  /// quotas). Unmarked callers default to kRead for reads and kWrite for
  /// writes.
  void SetCallerTier(const std::string& caller, RequestTier tier);
  void RemoveCallerTier(const std::string& caller);

  /// The tier a request from `caller` lands in. Explicit marks win; a
  /// caller marked kBulk stays kBulk for reads AND writes.
  RequestTier TierFor(const std::string& caller, bool is_write) const;

  // --- Observability / ops --------------------------------------------

  /// Current queue-time estimate in microseconds.
  int64_t EstimateQueueUs() const;

  /// Brown-out level: 0 = healthy, 1 = shedding bulk, 2 = +writes,
  /// 3 = +reads, 4 = shedding everything including critical reads.
  int Level() const;

  /// Manual brown-out override (ops kill switch, tests): forces Level() to
  /// `level` regardless of the estimate. -1 restores automatic control.
  void SetLevelOverride(int level);

  /// Retry-after hint for the current estimate: the time the queue needs to
  /// drain back to target, clamped to [min, max].
  int64_t RetryAfterMsForEstimate(int64_t estimate_us) const;

 private:
  int LevelForEstimate(int64_t estimate_us) const;
  int64_t EstimateQueueUsLocked() const;
  int64_t ServiceUsLocked() const;

  OverloadControllerOptions options_;
  Clock* clock_;
  MetricsRegistry* metrics_;
  Counter* shed_deadline_;
  Counter* shed_brownout_;
  Histogram* retry_after_hist_;
  Gauge* queue_est_gauge_;
  Gauge* level_gauge_;

  mutable std::mutex mu_;
  double queue_ewma_us_ = 0;
  int64_t last_queue_sample_ns_ = 0;  // MonotonicNanos of the newest sample
  double service_ewma_us_ = 0;        // 0 until the first service sample
  int64_t queued_ = 0;                // front-end reported depth
  int level_override_ = -1;

  mutable std::mutex tiers_mu_;
  std::unordered_map<std::string, RequestTier> caller_tiers_;
};

}  // namespace ips

#endif  // IPS_SERVER_OVERLOAD_H_
