#include "server/overload.h"

#include <algorithm>
#include <cmath>

namespace ips {

const char* RequestTierName(RequestTier tier) {
  switch (tier) {
    case RequestTier::kCritical:
      return "critical";
    case RequestTier::kRead:
      return "read";
    case RequestTier::kWrite:
      return "write";
    case RequestTier::kBulk:
      return "bulk";
  }
  return "unknown";
}

std::optional<RequestTier> ParseRequestTier(std::string_view name) {
  if (name == "critical") return RequestTier::kCritical;
  if (name == "read") return RequestTier::kRead;
  if (name == "write") return RequestTier::kWrite;
  if (name == "bulk") return RequestTier::kBulk;
  return std::nullopt;
}

OverloadController::OverloadController(OverloadControllerOptions options,
                                       Clock* clock, MetricsRegistry* metrics)
    : options_(options),
      clock_(clock),
      metrics_(metrics),
      shed_deadline_(metrics->GetCounter("admission.shed_deadline")),
      shed_brownout_(metrics->GetCounter("admission.shed_brownout")),
      retry_after_hist_(metrics->GetHistogram("admission.retry_after_ms")),
      queue_est_gauge_(metrics->GetGauge("overload.queue_est_us")),
      level_gauge_(metrics->GetGauge("overload.level")) {}

int64_t OverloadController::ServiceUsLocked() const {
  return service_ewma_us_ > 0
             ? static_cast<int64_t>(service_ewma_us_)
             : options_.default_service_us;
}

int64_t OverloadController::EstimateQueueUsLocked() const {
  // Wait-EWMA component, decayed toward zero by real elapsed time since the
  // newest sample: a burst that ended must not pin the instance in brown-out
  // (samples stop arriving exactly when everything drains).
  double wait_est = 0;
  if (queue_ewma_us_ > 0 && last_queue_sample_ns_ > 0) {
    const double age_ms =
        static_cast<double>(MonotonicNanos() - last_queue_sample_ns_) / 1e6;
    const double half_life =
        static_cast<double>(std::max<int64_t>(1, options_.estimate_half_life_ms));
    wait_est = queue_ewma_us_ * std::exp2(-age_ms / half_life);
  }
  // Little's-law component: with `queued_` requests ahead and `workers`
  // drains, a new arrival waits ~ depth * service / workers. This reacts to
  // a burst the instant it lands, before any delayed request has drained to
  // report a wait sample.
  double depth_est = 0;
  if (options_.workers > 0 && queued_ > 0) {
    depth_est = static_cast<double>(queued_) *
                static_cast<double>(ServiceUsLocked()) /
                static_cast<double>(options_.workers);
  }
  return static_cast<int64_t>(std::max(wait_est, depth_est));
}

int64_t OverloadController::EstimateQueueUs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return EstimateQueueUsLocked();
}

int OverloadController::LevelForEstimate(int64_t estimate_us) const {
  const double est = static_cast<double>(estimate_us);
  const double target = static_cast<double>(options_.target_queue_us);
  if (est > target * options_.critical_factor) return 4;
  if (est > target * options_.read_factor) return 3;
  if (est > target * options_.write_factor) return 2;
  if (est > target * options_.bulk_factor) return 1;
  return 0;
}

int OverloadController::Level() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (level_override_ >= 0) return level_override_;
  return LevelForEstimate(EstimateQueueUsLocked());
}

void OverloadController::SetLevelOverride(int level) {
  std::lock_guard<std::mutex> lock(mu_);
  level_override_ = level;
}

int64_t OverloadController::RetryAfterMsForEstimate(int64_t estimate_us) const {
  // Time for the standing queue to drain back to target, i.e. the excess
  // queue converted to milliseconds. Clamped: never so small the client
  // hot-loops, never so large a brief spike parks callers for seconds.
  const int64_t excess_us =
      std::max<int64_t>(0, estimate_us - options_.target_queue_us);
  const int64_t ms = excess_us / 1000;
  return std::clamp(ms, options_.min_retry_after_ms,
                    options_.max_retry_after_ms);
}

Status OverloadController::Admit(RequestTier tier, double cost,
                                 const CallContext& ctx, TimestampMs now_ms) {
  if (!options_.enabled) return Status::OK();

  int64_t estimate_us;
  int level;
  int64_t service_us;
  {
    std::lock_guard<std::mutex> lock(mu_);
    estimate_us = EstimateQueueUsLocked();
    level = level_override_ >= 0 ? level_override_
                                 : LevelForEstimate(estimate_us);
    service_us = ServiceUsLocked();
  }
  queue_est_gauge_->Set(estimate_us);
  level_gauge_->Set(level);

  // Deadline-derived shed: queue wait plus this request's expected service
  // time must fit in the remaining deadline budget, or the work is already
  // dead on arrival — reject now, in nanoseconds, instead of completing it
  // milliseconds after the caller gave up.
  if (ctx.has_deadline()) {
    const int64_t needed_us =
        estimate_us +
        static_cast<int64_t>(service_us * std::max(cost, 1.0));
    const int64_t budget_us = ctx.RemainingMs(now_ms) * 1000;
    if (needed_us > budget_us) {
      const int64_t hint = RetryAfterMsForEstimate(estimate_us);
      shed_deadline_->Increment();
      retry_after_hist_->Record(hint);
      return Status::Overloaded("overloaded: queue exceeds deadline headroom",
                                hint);
    }
  }

  // Brown-out ladder: at level L every tier numbered >= 4 - L sheds, so
  // bulk (tier 3) goes first at level 1 and critical reads (tier 0) only at
  // level 4.
  if (level > 0 && static_cast<int>(tier) >= 4 - level) {
    const int64_t hint = RetryAfterMsForEstimate(estimate_us);
    shed_brownout_->Increment();
    retry_after_hist_->Record(hint);
    return Status::Overloaded(
        std::string("overloaded: shedding ") + RequestTierName(tier) +
            " tier at brown-out level " + std::to_string(level),
        hint);
  }
  return Status::OK();
}

void OverloadController::RecordQueueSample(int64_t queue_us) {
  if (queue_us < 0) queue_us = 0;
  std::lock_guard<std::mutex> lock(mu_);
  // Decay the EWMA for the time elapsed since the previous sample before
  // folding in the new one, so the estimate is consistent with what
  // EstimateQueueUs() reported a moment ago.
  const int64_t now_ns = MonotonicNanos();
  if (queue_ewma_us_ > 0 && last_queue_sample_ns_ > 0) {
    const double age_ms =
        static_cast<double>(now_ns - last_queue_sample_ns_) / 1e6;
    const double half_life =
        static_cast<double>(std::max<int64_t>(1, options_.estimate_half_life_ms));
    queue_ewma_us_ *= std::exp2(-age_ms / half_life);
  }
  queue_ewma_us_ = queue_ewma_us_ +
                   options_.ewma_alpha *
                       (static_cast<double>(queue_us) - queue_ewma_us_);
  last_queue_sample_ns_ = now_ns;
}

void OverloadController::RecordServiceSample(int64_t service_us, double cost) {
  if (service_us < 0 || cost <= 0) return;
  const double per_item = static_cast<double>(service_us) / cost;
  std::lock_guard<std::mutex> lock(mu_);
  if (service_ewma_us_ <= 0) {
    service_ewma_us_ = per_item;
  } else {
    service_ewma_us_ += options_.ewma_alpha * (per_item - service_ewma_us_);
  }
}

void OverloadController::OnEnqueue() {
  std::lock_guard<std::mutex> lock(mu_);
  ++queued_;
}

void OverloadController::OnDequeue(int64_t waited_us) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queued_ > 0) --queued_;
  }
  RecordQueueSample(waited_us);
}

void OverloadController::SetCallerTier(const std::string& caller,
                                       RequestTier tier) {
  std::lock_guard<std::mutex> lock(tiers_mu_);
  caller_tiers_[caller] = tier;
}

void OverloadController::RemoveCallerTier(const std::string& caller) {
  std::lock_guard<std::mutex> lock(tiers_mu_);
  caller_tiers_.erase(caller);
}

RequestTier OverloadController::TierFor(const std::string& caller,
                                        bool is_write) const {
  {
    std::lock_guard<std::mutex> lock(tiers_mu_);
    auto it = caller_tiers_.find(caller);
    if (it != caller_tiers_.end()) return it->second;
  }
  return is_write ? RequestTier::kWrite : RequestTier::kRead;
}

}  // namespace ips
