// Profile persistence strategies (Section III-E).
//
// Bulk mode (Fig 12): the whole profile is serialized, compressed and stored
// under one key. Simple, but very large profiles make every flush/load pay
// serialization and network cost proportional to the full profile.
//
// Slice-split mode (Fig 13/14): the profile is stored as a slice-meta record
// plus one value per slice, so flushes only rewrite changed slices and loads
// can be partial. Meta and slice values are not updated atomically, so a
// version (generation) protocol orders the operations: slice values are
// written before the meta that references them, and every meta update is a
// version-checked xset — a stale writer gets Aborted and must reload.
#ifndef IPS_SERVER_PERSISTENCE_H_
#define IPS_SERVER_PERSISTENCE_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "codec/profile_codec.h"
#include "common/metrics.h"
#include "common/status.h"
#include "core/profile_data.h"
#include "core/types.h"
#include "kvstore/kv_store.h"

namespace ips {

enum class PersistenceMode : int {
  kBulk = 0,
  kSliceSplit = 1,
};

struct PersisterOptions {
  PersistenceMode mode = PersistenceMode::kBulk;
  /// In slice-split mode, profiles whose encoded size is under this bound
  /// still use bulk storage (split only pays off for large values).
  size_t split_threshold_bytes = 0;
  /// Degraded-read fallback store (non-owning, may be null): when the
  /// primary store answers Unavailable, loads retry against this replica —
  /// the other side of the master/slave pair — and the result is flagged
  /// degraded (it may lag replication). Flushes never use the fallback.
  KvStore* fallback_kv = nullptr;
  /// Optional registry (non-owning, may be null) for the persister's codec
  /// observability: `codec.zero_copy_decodes` counts decodes whose
  /// uncompressed image was aliased straight out of the stored bytes.
  MetricsRegistry* metrics = nullptr;
};

/// Persists/loads profiles for one table against a KvStore. Thread-safe; the
/// version cache (slice-split mode) is internally synchronized.
class Persister {
 public:
  Persister(std::string table_name, KvStore* kv, PersisterOptions options);

  /// Writes the profile using the configured mode. Batch-of-one wrapper
  /// over StoreBatch.
  Status Flush(ProfileId pid, const ProfileData& profile);

  /// Batched write: statuses align with `pids`. Every changed value across
  /// the batch (bulk blobs, changed slice values) ships to the store in ONE
  /// KvStore::MultiSet round trip; split metas then commit individually via
  /// the version-checked XSet of Fig 14, preserving its ordering — a meta is
  /// only written after every slice value it references landed, so a profile
  /// whose values bounced keeps its old meta and readers never see dangling
  /// references. The write-side mirror of LoadBatch.
  std::vector<Status> StoreBatch(
      const std::vector<ProfileId>& pids,
      const std::vector<const ProfileData*>& profiles);

  /// Reads the profile back. NotFound when the profile was never persisted.
  /// `out_degraded`, when non-null, is set when the profile was served by
  /// the fallback replica because the primary store was unavailable; such a
  /// result may be stale by up to the replication lag.
  Result<ProfileData> Load(ProfileId pid, bool* out_degraded = nullptr);

  /// Batched load: results align with `pids`. Bulk mode fetches every
  /// profile's value with one KvStore::MultiGet; slice-split mode reads the
  /// metas, then fetches ALL referenced slice values (plus bulk fallbacks
  /// for meta-less profiles) in one MultiGet — the batch-miss-coalescing
  /// step of the MultiQuery read path. Pids the primary store failed with
  /// Unavailable are retried as one batch against the fallback replica;
  /// `out_degraded` (aligned with `pids`) marks the ones served that way.
  std::vector<Result<ProfileData>> LoadBatch(
      const std::vector<ProfileId>& pids,
      std::vector<bool>* out_degraded = nullptr);

  /// Removes all stored values for the profile.
  Status Erase(ProfileId pid);

  /// Encode-for-demotion: produces the same compressed block bytes a bulk
  /// flush would store (raw hierarchical encode + block compression, through
  /// the thread-local scratch), without touching the KV store. The victim
  /// tier stores these bytes so a demoted profile costs compressed size in
  /// memory and one decode — not a storage round trip — to come back.
  void EncodeForCache(const ProfileData& profile, std::string* out) const;

  /// Decodes EncodeForCache bytes back into a profile (promotion).
  /// Corruption on malformed input.
  Status DecodeCached(std::string_view bytes, ProfileData* profile) const;

  const std::string& table_name() const { return table_name_; }
  PersistenceMode mode() const { return options_.mode; }

  /// Key helpers exposed for tests.
  std::string BulkKey(ProfileId pid) const;
  std::string MetaKey(ProfileId pid) const;
  std::string SliceKey(ProfileId pid, uint64_t slice_key) const;

 private:
  /// Fig 14 meta commit for one split profile whose slice values already
  /// landed: version-checked XSet (with one refresh-retry on Aborted),
  /// version + slice-checksum bookkeeping, GC of dropped slices, and
  /// retirement of any stale bulk value.
  Status CommitSplitMeta(
      ProfileId pid, const std::string& meta_value,
      const std::unordered_map<uint64_t, uint32_t>& prior,
      std::unordered_map<uint64_t, uint32_t> new_sums);

  /// Single-profile load against `kv`. `record_bookkeeping` gates the
  /// version / slice-checksum caches: true on the primary path, false on
  /// the fallback path (replica state must not gate future master flushes).
  Result<ProfileData> LoadFrom(KvStore* kv, ProfileId pid,
                               bool record_bookkeeping);
  /// Batched load against `kv`; the LoadBatch strategy with an explicit
  /// store so the degraded path can rerun it against the fallback replica.
  std::vector<Result<ProfileData>> LoadBatchFrom(
      KvStore* kv, const std::vector<ProfileId>& pids,
      bool record_bookkeeping);
  Result<ProfileData> LoadBulk(KvStore* kv, ProfileId pid);
  Result<ProfileData> LoadSplit(KvStore* kv, ProfileId pid,
                                const std::string& meta_value,
                                bool record_bookkeeping);

  /// Rebuilds a split profile from already-fetched compressed slice values,
  /// aligned with `meta.entries` (both arrays have meta.entries.size()
  /// elements). Updates the slice-checksum bookkeeping when
  /// `record_bookkeeping` is set.
  Result<ProfileData> AssembleSplit(ProfileId pid, const SliceMeta& meta,
                                    const std::string* slice_values,
                                    const Status* slice_statuses,
                                    bool record_bookkeeping);

  /// Drops the version + slice-checksum state for `pid` so the next flush
  /// rewrites everything (called after a degraded fallback load).
  void ForgetFlushState(ProfileId pid);

  /// Remembered meta version per profile (Fig 14 "holds a valid version").
  KvVersion HeldVersion(ProfileId pid);
  void RememberVersion(ProfileId pid, KvVersion version);
  void ForgetVersion(ProfileId pid);

  std::string table_name_;
  KvStore* kv_;
  PersisterOptions options_;
  /// Cached from options_.metrics (null when metrics are not wired).
  Counter* zero_copy_decodes_ = nullptr;

  std::mutex version_mu_;
  std::unordered_map<ProfileId, KvVersion> held_versions_;
  /// Checksums of the slice values referenced by the last flushed/loaded
  /// meta, keyed by slice key. Serves two purposes: GC of slice values
  /// dropped by compaction, and — the point of the slice split — skipping
  /// the rewrite of unchanged slices so a steady-state flush only ships the
  /// slices that actually changed. Guarded by version_mu_.
  std::unordered_map<ProfileId, std::unordered_map<uint64_t, uint32_t>>
      last_slices_;
};

}  // namespace ips

#endif  // IPS_SERVER_PERSISTENCE_H_
