#include "server/quota.h"

namespace ips {

QuotaManager::QuotaManager(Clock* clock, double default_qps)
    : clock_(clock), default_qps_(default_qps) {}

void QuotaManager::SetQuota(const std::string& caller, double qps,
                            double burst) {
  if (burst <= 0) burst = qps;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(caller);
  if (it != buckets_.end()) {
    it->second->Reconfigure(qps, burst);
  } else {
    buckets_[caller] = std::make_unique<TokenBucket>(qps, burst, clock_);
  }
}

void QuotaManager::RemoveQuota(const std::string& caller) {
  std::lock_guard<std::mutex> lock(mu_);
  buckets_.erase(caller);
}

Status QuotaManager::Check(const std::string& caller, double cost) {
  TokenBucket* bucket = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = buckets_.find(caller);
    if (it == buckets_.end()) {
      if (default_qps_ <= 0) return Status::OK();  // unlimited by default
      buckets_[caller] = std::make_unique<TokenBucket>(
          default_qps_, default_qps_, clock_);
      it = buckets_.find(caller);
    }
    bucket = it->second.get();
  }
  if (bucket->TryAcquire(cost)) return Status::OK();
  return Status::ResourceExhausted("quota exceeded for caller " + caller);
}

double QuotaManager::QuotaFor(const std::string& caller) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(caller);
  if (it == buckets_.end()) return default_qps_;
  return it->second->rate_per_sec();
}

}  // namespace ips
