#include "server/quota.h"

namespace ips {

QuotaManager::QuotaManager(Clock* clock, double default_qps)
    : clock_(clock), default_qps_(default_qps) {}

void QuotaManager::SetQuota(const std::string& caller, double qps,
                            double burst) {
  if (burst <= 0) burst = qps;
  Shard& shard = ShardFor(caller);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.buckets.find(caller);
  if (it != shard.buckets.end()) {
    it->second->Reconfigure(qps, burst);
  } else {
    shard.buckets[caller] = std::make_shared<TokenBucket>(qps, burst, clock_);
  }
}

void QuotaManager::RemoveQuota(const std::string& caller) {
  Shard& shard = ShardFor(caller);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.buckets.erase(caller);
}

Status QuotaManager::Check(const std::string& caller, double cost) {
  Shard& shard = ShardFor(caller);
  std::shared_ptr<TokenBucket> bucket;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.buckets.find(caller);
    if (it == shard.buckets.end()) {
      if (default_qps_ <= 0) return Status::OK();  // unlimited by default
      it = shard.buckets
               .emplace(caller, std::make_shared<TokenBucket>(
                                    default_qps_, default_qps_, clock_))
               .first;
    }
    bucket = it->second;
  }
  // TryAcquire runs outside the shard lock (TokenBucket is internally
  // synchronized); the shared_ptr keeps the bucket alive across a
  // concurrent RemoveQuota.
  if (bucket->TryAcquire(cost)) return Status::OK();
  return Status::ResourceExhausted("quota exceeded for caller " + caller);
}

double QuotaManager::QuotaFor(const std::string& caller) const {
  const Shard& shard = ShardFor(caller);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.buckets.find(caller);
  if (it == shard.buckets.end()) return default_qps_;
  return it->second->rate_per_sec();
}

}  // namespace ips
