#include "server/persistence.h"

#include <algorithm>
#include <charconv>
#include <optional>

#include "common/hash.h"
#include "common/trace.h"

#include "codec/compress.h"

namespace ips {

namespace {

// Encode/decode working buffers reused across flushes and loads on the same
// thread. The store path re-encodes every flushed profile and the load path
// uncompresses every fetched value; per-call string churn here is visible in
// the Table II codec.decode span, so the buffers keep their high-water
// capacity between calls.
struct PersistScratch {
  std::string raw;         // uncompressed profile/slice encoding
  std::string compressed;  // compressed image before it is kept or skipped
  std::string uncompress;  // BlockUncompressView spill target
};

PersistScratch& Scratch() {
  thread_local PersistScratch scratch;
  return scratch;
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[20];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, static_cast<size_t>(res.ptr - buf));
}

}  // namespace

Persister::Persister(std::string table_name, KvStore* kv,
                     PersisterOptions options)
    : table_name_(std::move(table_name)), kv_(kv), options_(options) {
  if (options_.metrics != nullptr) {
    zero_copy_decodes_ = options_.metrics->GetCounter("codec.zero_copy_decodes");
  }
}

std::string Persister::BulkKey(ProfileId pid) const {
  std::string key;
  key.reserve(table_name_.size() + 23);
  key += table_name_;
  key += "/p/";
  AppendU64(&key, pid);
  return key;
}

std::string Persister::MetaKey(ProfileId pid) const {
  std::string key;
  key.reserve(table_name_.size() + 23);
  key += table_name_;
  key += "/m/";
  AppendU64(&key, pid);
  return key;
}

std::string Persister::SliceKey(ProfileId pid, uint64_t slice_key) const {
  std::string key;
  key.reserve(table_name_.size() + 44);
  key += table_name_;
  key += "/s/";
  AppendU64(&key, pid);
  key += '/';
  AppendU64(&key, slice_key);
  return key;
}

KvVersion Persister::HeldVersion(ProfileId pid) {
  std::lock_guard<std::mutex> lock(version_mu_);
  auto it = held_versions_.find(pid);
  return it == held_versions_.end() ? 0 : it->second;
}

void Persister::RememberVersion(ProfileId pid, KvVersion version) {
  std::lock_guard<std::mutex> lock(version_mu_);
  held_versions_[pid] = version;
}

void Persister::ForgetVersion(ProfileId pid) {
  std::lock_guard<std::mutex> lock(version_mu_);
  held_versions_.erase(pid);
}

void Persister::ForgetFlushState(ProfileId pid) {
  std::lock_guard<std::mutex> lock(version_mu_);
  held_versions_.erase(pid);
  last_slices_.erase(pid);
}

Status Persister::Flush(ProfileId pid, const ProfileData& profile) {
  return StoreBatch({pid}, {&profile})[0];
}

void Persister::EncodeForCache(const ProfileData& profile,
                               std::string* out) const {
  PersistScratch& scratch = Scratch();
  EncodeProfileRaw(profile, &scratch.raw);
  BlockCompress(scratch.raw, out);
}

Status Persister::DecodeCached(std::string_view bytes,
                               ProfileData* profile) const {
  return DecodeProfile(bytes, profile);
}

std::vector<Status> Persister::StoreBatch(
    const std::vector<ProfileId>& pids,
    const std::vector<const ProfileData*>& profiles) {
  std::vector<Status> out(pids.size(), Status::OK());
  if (profiles.size() != pids.size()) {
    out.assign(pids.size(),
               Status::InvalidArgument("StoreBatch pids/profiles mismatch"));
    return out;
  }

  struct Pending {
    size_t index = 0;
    bool split = false;
    bool retire_meta = false;  // threshold-bulk: split leftovers to retire
    size_t first_key = 0;      // offset of this profile's values in `keys`
    size_t num_keys = 0;
    std::string meta_value;
    std::unordered_map<uint64_t, uint32_t> prior;
    std::unordered_map<uint64_t, uint32_t> new_sums;
  };

  // Prepare: encode every profile's changed values into one key/value batch.
  // Fig 14 ordering survives batching because no meta is written until the
  // whole value batch has been applied.
  std::vector<Pending> pending;
  pending.reserve(pids.size());
  std::vector<std::string> keys;
  std::vector<std::string> vals;
  PersistScratch& scratch = Scratch();
  for (size_t i = 0; i < pids.size(); ++i) {
    const ProfileData& profile = *profiles[i];
    Pending p;
    p.index = i;
    // One encode serves both the split-threshold test and the stored bytes
    // (the raw image used to be produced twice: once by the size probe, once
    // by EncodeProfile).
    const bool threshold_mode =
        options_.mode == PersistenceMode::kSliceSplit &&
        options_.split_threshold_bytes > 0;
    const bool need_raw = options_.mode == PersistenceMode::kBulk ||
                          threshold_mode;
    if (need_raw) EncodeProfileRaw(profile, &scratch.raw);
    const bool bulk =
        options_.mode == PersistenceMode::kBulk ||
        (threshold_mode &&
         scratch.raw.size() < options_.split_threshold_bytes);
    if (bulk) {
      // Small profiles in split mode keep the bulk representation; any split
      // leftovers must be retired so a later load cannot observe a stale
      // meta shadowing the fresh bulk value.
      p.retire_meta = options_.mode == PersistenceMode::kSliceSplit;
      p.first_key = keys.size();
      p.num_keys = 1;
      keys.push_back(BulkKey(pids[i]));
      vals.emplace_back();
      BlockCompress(scratch.raw, &vals.back());
      pending.push_back(std::move(p));
      continue;
    }

    p.split = true;
    SliceMeta meta;
    meta.write_granularity_ms = profile.write_granularity_ms();
    meta.last_action_ms = profile.LastActionMs();
    {
      std::lock_guard<std::mutex> lock(version_mu_);
      auto it = last_slices_.find(pids[i]);
      if (it != last_slices_.end()) p.prior = it->second;
    }
    // Only changed slices are rewritten — the granularity benefit the slice
    // split exists for: steady-state traffic touches the newest slice, so a
    // flush ships one slice value plus the meta instead of the whole
    // profile.
    p.first_key = keys.size();
    for (const auto& slice : profile.slices()) {
      SliceMetaEntry entry;
      entry.slice_key = static_cast<uint64_t>(slice.start_ms());
      entry.start_ms = slice.start_ms();
      entry.end_ms = slice.end_ms();
      meta.entries.push_back(entry);

      // Encode + compress in the reused scratch buffers; only slices that
      // actually changed pay for an owned copy into the value batch. In
      // steady state most slices are unchanged, so most iterations are
      // allocation-free.
      EncodeSlice(slice, &scratch.raw);
      BlockCompress(scratch.raw, &scratch.compressed);
      const uint32_t sum =
          Checksum32(scratch.compressed.data(), scratch.compressed.size());
      p.new_sums[entry.slice_key] = sum;
      auto prior_it = p.prior.find(entry.slice_key);
      if (prior_it != p.prior.end() && prior_it->second == sum) {
        continue;  // unchanged since the last successful flush
      }
      keys.push_back(SliceKey(pids[i], entry.slice_key));
      vals.push_back(scratch.compressed);
    }
    p.num_keys = keys.size() - p.first_key;
    EncodeSliceMeta(meta, &p.meta_value);
    pending.push_back(std::move(p));
  }

  // One round trip for every changed value in the batch.
  std::vector<Status> statuses;
  if (!keys.empty()) kv_->MultiSet(keys, vals, &statuses);

  // Commit: per-profile meta updates and cleanup, only where values landed.
  for (auto& p : pending) {
    Status failed = Status::OK();
    for (size_t k = p.first_key; k < p.first_key + p.num_keys; ++k) {
      if (!statuses[k].ok()) {
        failed = statuses[k];
        break;
      }
    }
    if (!failed.ok()) {
      // Old meta / old bookkeeping stay in place: the slices that did land
      // get rewritten by the next flush (their checksum no longer matches
      // the remembered one).
      out[p.index] = failed;
      continue;
    }
    if (!p.split) {
      if (p.retire_meta) {
        std::string ignored;
        if (kv_->Get(MetaKey(pids[p.index]), &ignored).ok()) {
          Status del = kv_->Delete(MetaKey(pids[p.index]));
          if (!del.ok()) {
            out[p.index] = del;
            continue;
          }
          ForgetVersion(pids[p.index]);
        }
      }
      continue;
    }
    out[p.index] = CommitSplitMeta(pids[p.index], p.meta_value, p.prior,
                                   std::move(p.new_sums));
  }
  return out;
}

Status Persister::CommitSplitMeta(
    ProfileId pid, const std::string& meta_value,
    const std::unordered_map<uint64_t, uint32_t>& prior,
    std::unordered_map<uint64_t, uint32_t> new_sums) {
  // Version-checked meta update; a mismatch means another node wrote this
  // profile since we last loaded, so refresh the version and retry once.
  KvVersion held = HeldVersion(pid);
  KvVersion new_version = 0;
  Status status = kv_->XSet(MetaKey(pid), meta_value, held, &new_version);
  if (status.IsAborted()) {
    KvEntry current;
    Status get_status = kv_->XGet(MetaKey(pid), &current);
    KvVersion refreshed = 0;
    if (get_status.ok()) {
      refreshed = current.version;
    } else if (!get_status.IsNotFound()) {
      return get_status;
    }
    status = kv_->XSet(MetaKey(pid), meta_value, refreshed, &new_version);
  }
  IPS_RETURN_IF_ERROR(status);
  RememberVersion(pid, new_version);

  // Garbage-collect slice values no longer referenced (compacted/truncated
  // away). Done after the meta switch so readers never dangle.
  std::vector<uint64_t> stale;
  {
    std::lock_guard<std::mutex> lock(version_mu_);
    for (const auto& [key, sum] : prior) {
      if (new_sums.find(key) == new_sums.end()) stale.push_back(key);
    }
    last_slices_[pid] = std::move(new_sums);
  }
  for (uint64_t key : stale) {
    kv_->Delete(SliceKey(pid, key)).ok();  // best effort
  }

  // The bulk representation, if any, is now stale.
  std::string ignored;
  if (kv_->Get(BulkKey(pid), &ignored).ok()) {
    kv_->Delete(BulkKey(pid)).ok();
  }
  return Status::OK();
}

Result<ProfileData> Persister::Load(ProfileId pid, bool* out_degraded) {
  if (out_degraded != nullptr) *out_degraded = false;
  Result<ProfileData> primary =
      LoadFrom(kv_, pid, /*record_bookkeeping=*/true);
  if (primary.ok() || options_.fallback_kv == nullptr ||
      !primary.status().IsUnavailable()) {
    return primary;
  }
  // Primary store outage: retry against the fallback replica. NotFound
  // there is inconclusive (replication lag may not have delivered the
  // profile), so surface the primary outage rather than pretending the
  // profile does not exist.
  Result<ProfileData> fallback =
      LoadFrom(options_.fallback_kv, pid, /*record_bookkeeping=*/false);
  if (!fallback.ok()) return primary;
  // Version / slice state observed on the replica must not gate the next
  // master flush: drop it so the flush rewrites everything.
  ForgetFlushState(pid);
  if (out_degraded != nullptr) *out_degraded = true;
  return fallback;
}

Result<ProfileData> Persister::LoadFrom(KvStore* kv, ProfileId pid,
                                        bool record_bookkeeping) {
  if (options_.mode == PersistenceMode::kSliceSplit) {
    KvEntry meta_entry;
    Status status = kv->XGet(MetaKey(pid), &meta_entry);
    if (status.ok()) {
      if (record_bookkeeping) RememberVersion(pid, meta_entry.version);
      return LoadSplit(kv, pid, meta_entry.value, record_bookkeeping);
    }
    if (!status.IsNotFound()) return status;
    // Fall through: the profile may exist in bulk form (threshold mode or a
    // mode migration).
  }
  return LoadBulk(kv, pid);
}

Result<ProfileData> Persister::LoadBulk(KvStore* kv, ProfileId pid) {
  std::string encoded;
  IPS_RETURN_IF_ERROR(kv->Get(BulkKey(pid), &encoded));
  ScopedSpan decode_span("codec.decode");
  ProfileData profile;
  bool zero_copy = false;
  IPS_RETURN_IF_ERROR(DecodeProfile(encoded, &profile, &zero_copy));
  if (zero_copy && zero_copy_decodes_ != nullptr) {
    zero_copy_decodes_->Increment();
  }
  return profile;
}

Result<ProfileData> Persister::LoadSplit(KvStore* kv, ProfileId pid,
                                         const std::string& meta_value,
                                         bool record_bookkeeping) {
  SliceMeta meta;
  IPS_RETURN_IF_ERROR(DecodeSliceMeta(meta_value, &meta));
  // All referenced slice values in one batched read — a split profile load
  // costs one meta read plus one multi-get, not one round trip per slice.
  std::vector<std::string> keys;
  keys.reserve(meta.entries.size());
  for (const auto& entry : meta.entries) {
    keys.push_back(SliceKey(pid, entry.slice_key));
  }
  std::vector<std::string> values;
  std::vector<Status> statuses;
  kv->MultiGet(keys, &values, &statuses);
  return AssembleSplit(pid, meta, values.data(), statuses.data(),
                       record_bookkeeping);
}

Result<ProfileData> Persister::AssembleSplit(ProfileId pid,
                                             const SliceMeta& meta,
                                             const std::string* slice_values,
                                             const Status* slice_statuses,
                                             bool record_bookkeeping) {
  ProfileData profile(meta.write_granularity_ms);
  profile.set_last_action_ms(meta.last_action_ms);
  // Checksum + uncompress + decode of every slice is codec work.
  ScopedSpan decode_span("codec.decode");
  PersistScratch& scratch = Scratch();
  std::unordered_map<uint64_t, uint32_t> loaded_sums;
  loaded_sums.reserve(meta.entries.size());
  uint64_t zero_copy = 0;
  for (size_t i = 0; i < meta.entries.size(); ++i) {
    IPS_RETURN_IF_ERROR(slice_statuses[i]);
    const std::string& compressed = slice_values[i];
    loaded_sums[meta.entries[i].slice_key] =
        Checksum32(compressed.data(), compressed.size());
    // Raw-stored frames decode straight off the fetched value (no copy of
    // the uncompressed image); compressed ones land in the reused scratch.
    std::string_view raw;
    bool aliased = false;
    IPS_RETURN_IF_ERROR(
        BlockUncompressView(compressed, &scratch.uncompress, &raw, &aliased));
    if (aliased) ++zero_copy;
    Slice slice;
    IPS_RETURN_IF_ERROR(DecodeSlice(raw, &slice));
    profile.mutable_slices().push_back(std::move(slice));
  }
  if (zero_copy_decodes_ != nullptr && zero_copy > 0) {
    zero_copy_decodes_->Increment(static_cast<int64_t>(zero_copy));
  }
  if (record_bookkeeping) {
    std::lock_guard<std::mutex> lock(version_mu_);
    last_slices_[pid] = std::move(loaded_sums);
  }
  if (!profile.CheckInvariants()) {
    return Status::Corruption("loaded profile violates slice invariants");
  }
  profile.RecomputeBytes();  // slices were attached directly
  return profile;
}

std::vector<Result<ProfileData>> Persister::LoadBatch(
    const std::vector<ProfileId>& pids, std::vector<bool>* out_degraded) {
  // Wrapper glue — degraded bookkeeping and the fallback-retry scan — is
  // storage read-path work; it reports as kv.load, suspended around the
  // LoadBatchFrom calls that open their own spans.
  std::optional<ScopedSpan> glue_span;
  glue_span.emplace("kv.load");
  if (out_degraded != nullptr) out_degraded->assign(pids.size(), false);
  glue_span.reset();
  std::vector<Result<ProfileData>> out =
      LoadBatchFrom(kv_, pids, /*record_bookkeeping=*/true);
  glue_span.emplace("kv.load");
  if (options_.fallback_kv == nullptr) return out;

  // Primary-store outages are retried as one batch against the fallback
  // replica (keeping the coalesced round-trip shape even while degraded).
  std::vector<size_t> retry_index;
  std::vector<ProfileId> retry_pids;
  for (size_t i = 0; i < pids.size(); ++i) {
    if (!out[i].ok() && out[i].status().IsUnavailable()) {
      retry_index.push_back(i);
      retry_pids.push_back(pids[i]);
    }
  }
  if (retry_pids.empty()) return out;

  glue_span.reset();
  std::vector<Result<ProfileData>> fallback =
      LoadBatchFrom(options_.fallback_kv, retry_pids,
                    /*record_bookkeeping=*/false);
  glue_span.emplace("kv.load");
  for (size_t j = 0; j < retry_pids.size(); ++j) {
    // As in Load: only a successful fallback read replaces the primary
    // error — NotFound on a lagging replica proves nothing.
    if (!fallback[j].ok()) continue;
    out[retry_index[j]] = std::move(fallback[j]);
    ForgetFlushState(retry_pids[j]);
    if (out_degraded != nullptr) (*out_degraded)[retry_index[j]] = true;
  }
  return out;
}

std::vector<Result<ProfileData>> Persister::LoadBatchFrom(
    KvStore* kv, const std::vector<ProfileId>& pids,
    bool record_bookkeeping) {
  std::vector<Result<ProfileData>> out;

  if (options_.mode == PersistenceMode::kBulk) {
    std::vector<std::string> keys;
    {
      // Result-slot setup and key marshaling are part of the KV read path;
      // spanned separately so the work never nests inside the store's own
      // kv.load span.
      ScopedSpan prep_span("kv.load");
      out.assign(pids.size(),
                 Result<ProfileData>(Status::NotFound("pending")));
      keys.reserve(pids.size());
      for (ProfileId pid : pids) keys.push_back(BulkKey(pid));
    }
    std::vector<std::string> values;
    std::vector<Status> statuses;
    kv->MultiGet(keys, &values, &statuses);
    ScopedSpan decode_span("codec.decode");
    uint64_t zero_copy = 0;
    for (size_t i = 0; i < pids.size(); ++i) {
      if (!statuses[i].ok()) {
        out[i] = statuses[i];
        continue;
      }
      ProfileData profile;
      bool aliased = false;
      Status decoded = DecodeProfile(values[i], &profile, &aliased);
      if (aliased) ++zero_copy;
      out[i] = decoded.ok() ? Result<ProfileData>(std::move(profile))
                            : Result<ProfileData>(decoded);
    }
    if (zero_copy_decodes_ != nullptr && zero_copy > 0) {
      zero_copy_decodes_->Increment(static_cast<int64_t>(zero_copy));
    }
    return out;
  }

  // Slice-split mode: metas go through XGet (the version bookkeeping of the
  // Fig 14 protocol needs them individually), then every referenced slice
  // value across ALL profiles — plus bulk fallbacks for profiles without a
  // meta — is fetched with a single MultiGet.
  out.assign(pids.size(), Result<ProfileData>(Status::NotFound("pending")));
  struct PendingSplit {
    size_t index;
    SliceMeta meta;
    size_t first_key;  // offset of this profile's slice values in `keys`
  };
  std::vector<PendingSplit> splits;
  std::vector<std::pair<size_t, size_t>> bulk_fallbacks;  // (index, key pos)
  std::vector<std::string> keys;
  for (size_t i = 0; i < pids.size(); ++i) {
    KvEntry meta_entry;
    Status status = kv->XGet(MetaKey(pids[i]), &meta_entry);
    if (status.ok()) {
      if (record_bookkeeping) RememberVersion(pids[i], meta_entry.version);
      SliceMeta meta;
      Status decoded = DecodeSliceMeta(meta_entry.value, &meta);
      if (!decoded.ok()) {
        out[i] = decoded;
        continue;
      }
      PendingSplit pending{i, std::move(meta), keys.size()};
      for (const auto& entry : pending.meta.entries) {
        keys.push_back(SliceKey(pids[i], entry.slice_key));
      }
      splits.push_back(std::move(pending));
    } else if (status.IsNotFound()) {
      bulk_fallbacks.emplace_back(i, keys.size());
      keys.push_back(BulkKey(pids[i]));
    } else {
      out[i] = status;
    }
  }

  std::vector<std::string> values;
  std::vector<Status> statuses;
  if (!keys.empty()) kv->MultiGet(keys, &values, &statuses);

  for (auto& pending : splits) {
    out[pending.index] =
        AssembleSplit(pids[pending.index], pending.meta,
                      values.data() + pending.first_key,
                      statuses.data() + pending.first_key,
                      record_bookkeeping);
  }
  if (!bulk_fallbacks.empty()) {
    ScopedSpan decode_span("codec.decode");
    uint64_t zero_copy = 0;
    for (const auto& [index, key_pos] : bulk_fallbacks) {
      if (!statuses[key_pos].ok()) {
        out[index] = statuses[key_pos];
        continue;
      }
      ProfileData profile;
      bool aliased = false;
      Status decoded = DecodeProfile(values[key_pos], &profile, &aliased);
      if (aliased) ++zero_copy;
      out[index] = decoded.ok() ? Result<ProfileData>(std::move(profile))
                                : Result<ProfileData>(decoded);
    }
    if (zero_copy_decodes_ != nullptr && zero_copy > 0) {
      zero_copy_decodes_->Increment(static_cast<int64_t>(zero_copy));
    }
  }
  return out;
}

Status Persister::Erase(ProfileId pid) {
  IPS_RETURN_IF_ERROR(kv_->Delete(BulkKey(pid)));
  KvEntry meta_entry;
  Status status = kv_->XGet(MetaKey(pid), &meta_entry);
  if (status.IsNotFound()) return Status::OK();
  IPS_RETURN_IF_ERROR(status);
  SliceMeta meta;
  IPS_RETURN_IF_ERROR(DecodeSliceMeta(meta_entry.value, &meta));
  for (const auto& entry : meta.entries) {
    IPS_RETURN_IF_ERROR(kv_->Delete(SliceKey(pid, entry.slice_key)));
  }
  IPS_RETURN_IF_ERROR(kv_->Delete(MetaKey(pid)));
  ForgetVersion(pid);
  std::lock_guard<std::mutex> lock(version_mu_);
  last_slices_.erase(pid);
  return Status::OK();
}

}  // namespace ips
