// Per-caller QPS quota enforcement (Sections IV opening and V-b): IPS
// clusters are multi-tenant; each upstream application is identified by a
// caller name and holds a QPS quota. Requests above the quota are rejected
// with ResourceExhausted until usage falls back under the limit. Quotas are
// hot-reconfigurable.
#ifndef IPS_SERVER_QUOTA_H_
#define IPS_SERVER_QUOTA_H_

#include <array>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/clock.h"
#include "common/rate_limiter.h"
#include "common/status.h"

namespace ips {

/// Thread-safe. The bucket map is sharded by caller-name hash so that
/// admission checks from many serving threads never serialize on one global
/// mutex: each Check touches exactly one shard's lock (and the TokenBucket
/// itself is internally synchronized). 16 shards is plenty — caller
/// cardinality is tens of applications, contention comes from request
/// threads, not from distinct callers.
class QuotaManager {
 public:
  /// `default_qps` applies to callers without an explicit quota; 0 means
  /// unlimited for unknown callers.
  QuotaManager(Clock* clock, double default_qps = 0);

  /// Sets (or replaces) a caller's quota. Burst defaults to one second of
  /// traffic.
  void SetQuota(const std::string& caller, double qps, double burst = 0);

  void RemoveQuota(const std::string& caller);

  /// Admission check for one request (optionally weighted, e.g. batched
  /// writes). OK or ResourceExhausted.
  Status Check(const std::string& caller, double cost = 1.0);

  /// Current configured QPS for a caller (default when unset).
  double QuotaFor(const std::string& caller) const;

 private:
  static constexpr size_t kShards = 16;

  struct Shard {
    mutable std::mutex mu;
    /// shared_ptr so a bucket grabbed by an in-flight Check survives a
    /// concurrent RemoveQuota (the race resolves as "checked under the old
    /// quota", never as a dangling pointer).
    std::unordered_map<std::string, std::shared_ptr<TokenBucket>> buckets;
  };

  Shard& ShardFor(const std::string& caller) {
    return shards_[std::hash<std::string>{}(caller) % kShards];
  }
  const Shard& ShardFor(const std::string& caller) const {
    return shards_[std::hash<std::string>{}(caller) % kShards];
  }

  Clock* clock_;
  double default_qps_;
  std::array<Shard, kShards> shards_;
};

}  // namespace ips

#endif  // IPS_SERVER_QUOTA_H_
