// Per-caller QPS quota enforcement (Sections IV opening and V-b): IPS
// clusters are multi-tenant; each upstream application is identified by a
// caller name and holds a QPS quota. Requests above the quota are rejected
// with ResourceExhausted until usage falls back under the limit. Quotas are
// hot-reconfigurable.
#ifndef IPS_SERVER_QUOTA_H_
#define IPS_SERVER_QUOTA_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/clock.h"
#include "common/rate_limiter.h"
#include "common/status.h"

namespace ips {

class QuotaManager {
 public:
  /// `default_qps` applies to callers without an explicit quota; 0 means
  /// unlimited for unknown callers.
  QuotaManager(Clock* clock, double default_qps = 0);

  /// Sets (or replaces) a caller's quota. Burst defaults to one second of
  /// traffic.
  void SetQuota(const std::string& caller, double qps, double burst = 0);

  void RemoveQuota(const std::string& caller);

  /// Admission check for one request (optionally weighted, e.g. batched
  /// writes). OK or ResourceExhausted.
  Status Check(const std::string& caller, double cost = 1.0);

  /// Current configured QPS for a caller (default when unset).
  double QuotaFor(const std::string& caller) const;

 private:
  Clock* clock_;
  double default_qps_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<TokenBucket>> buckets_;
};

}  // namespace ips

#endif  // IPS_SERVER_QUOTA_H_
