#include "server/ips_instance.h"

#include <algorithm>

#include "common/logging.h"
#include "common/trace.h"

namespace ips {

IpsInstance::IpsInstance(IpsInstanceOptions options, KvStore* kv, Clock* clock,
                         MetricsRegistry* metrics)
    : options_(options),
      kv_(kv),
      clock_(clock),
      metrics_(metrics != nullptr ? metrics : &owned_metrics_),
      quota_(clock, options.default_caller_qps),
      overload_(options.overload, clock, metrics_) {
  isolation_enabled_.store(options_.isolation_enabled,
                           std::memory_order_relaxed);
  if (options_.start_background_threads) {
    merger_thread_ = std::thread([this] { MergerLoop(); });
  }
}

IpsInstance::~IpsInstance() {
  shutdown_.store(true, std::memory_order_relaxed);
  merger_cv_.notify_all();
  if (merger_thread_.joinable()) merger_thread_.join();
  DetachConfigRegistry();
  // Drain pending writes, then persist the caches.
  MergeWriteTablesOnce();
  DrainCompactions();
  FlushAll();
}

Status IpsInstance::CreateTable(const TableSchema& schema) {
  IPS_RETURN_IF_ERROR(schema.Validate());
  auto table = std::make_unique<Table>();
  table->schema = schema;
  PersisterOptions persist_options = options_.persistence;
  persist_options.metrics = metrics_;
  table->persister =
      std::make_unique<Persister>(schema.name, kv_, persist_options);
  Persister* persister = table->persister.get();

  GCacheOptions cache_options = options_.cache;
  cache_options.write_granularity_ms = schema.write_granularity_ms;
  FlushFn flush_fn;
  if (options_.persist_writes) {
    flush_fn = [persister](ProfileId pid, const ProfileData& profile) {
      return persister->Flush(pid, profile);
    };
  } else {
    // Non-primary region: durability is the primary region's job; evictions
    // and flushes simply drop the dirty bit.
    flush_fn = [](ProfileId, const ProfileData&) { return Status::OK(); };
  }
  table->cache = std::make_unique<GCache>(
      cache_options, clock_, std::move(flush_fn),
      [persister](ProfileId pid, bool* out_degraded) {
        return persister->Load(pid, out_degraded);
      },
      metrics_);
  // Batch misses load through the persister's coalesced path: one
  // KvStore::MultiGet round trip for the whole miss set.
  table->cache->set_batch_loader(
      [persister](const std::vector<ProfileId>& pids,
                  std::vector<bool>* out_degraded) {
        return persister->LoadBatch(pids, out_degraded);
      });
  // The load broker stacks cross-REQUEST coalescing on top: concurrent
  // requests' misses merge into one LoadBatch round trip and concurrent
  // misses for the same hot pid share a single in-flight load. The instance
  // owns the broker; the cache only borrows it.
  if (options_.enable_load_broker) {
    table->load_broker = std::make_unique<LoadBroker>(
        options_.load_broker,
        [persister](const std::vector<ProfileId>& pids,
                    std::vector<bool>* out_degraded) {
          return persister->LoadBatch(pids, out_degraded);
        },
        clock_, metrics_);
    table->cache->set_load_broker(table->load_broker.get());
  }
  // Dirty-shard flushes drain through the persister's batched path: one
  // KvStore::MultiSet round trip per flush group (the write-side mirror).
  if (options_.persist_writes) {
    table->cache->set_batch_flusher(
        [persister](const std::vector<ProfileId>& pids,
                    const std::vector<const ProfileData*>& profiles) {
          return persister->StoreBatch(pids, profiles);
        });
    // The store broker stacks cross-SHARD coalescing on top: concurrent
    // flush passes' groups merge into one StoreBatch round trip and a hot
    // dirty pid re-flushed mid-store piggybacks on (or requeues behind) the
    // write already on the wire. The instance owns the broker; the cache
    // only borrows it. Like the flusher itself, it exists only where writes
    // are persisted — a non-primary region has nothing to coalesce.
    if (options_.enable_store_broker) {
      table->store_broker = std::make_unique<StoreBroker>(
          options_.store_broker,
          [persister](const std::vector<ProfileId>& pids,
                      const std::vector<const ProfileData*>& profiles) {
            return persister->StoreBatch(pids, profiles);
          },
          clock_, metrics_);
      table->cache->set_store_broker(table->store_broker.get());
    }
  } else {
    table->cache->set_batch_flusher(
        [](const std::vector<ProfileId>& pids,
           const std::vector<const ProfileData*>&) {
          return std::vector<Status>(pids.size(), Status::OK());
        });
  }

  // The compressed L2 victim tier sits between the cache and the persister:
  // eviction demotes written-back entries as the persister's compressed
  // block bytes; a later miss promotes them back for a decode instead of a
  // KV round trip. The instance owns the tier; the cache only borrows it.
  if (options_.enable_victim_cache) {
    table->victim_cache =
        std::make_unique<VictimCache>(options_.victim_cache, metrics_);
    table->cache->set_victim_cache(
        table->victim_cache.get(),
        [persister](const ProfileData& profile, std::string* out) {
          persister->EncodeForCache(profile, out);
        },
        [persister](std::string_view bytes, ProfileData* profile) {
          return persister->DecodeCached(bytes, profile);
        });
  }

  Table* raw = table.get();
  table->compaction = std::make_unique<CompactionManager>(
      options_.compaction, clock_,
      [this, raw](ProfileId pid, bool full) {
        // Snapshot the schema under its lock, then run the whole pass
        // against the copy: neither a hot reload nor another compaction is
        // blocked while this pass merges (the old shape held schema_mu
        // across the pass, serializing all compactions of a table onto one
        // core no matter how many drain workers ran). The pass itself goes
        // through the off-lock mutate path, so serving writes and flushes
        // of the same profile overlap it too; a lost epoch race or an
        // evicted/non-resident pid just abandons the pass — later traffic
        // re-triggers.
        TableSchema schema_copy;
        {
          std::lock_guard<std::mutex> schema_lock(raw->schema_mu);
          schema_copy = raw->schema;
        }
        Compactor compactor(&schema_copy);
        CompactionStats stats;
        const Status pass_status = raw->cache->WithProfileOffLockMutate(
            pid, [&](ProfileData& profile) {
              stats = full ? compactor.FullCompact(profile, clock_->NowMs())
                           : compactor.PartialCompact(profile, clock_->NowMs());
              return stats.AnyWork();
            });
        // Only count committed work: on an abandoned pass (epoch-race retries
        // exhausted, pid evicted mid-pass) `stats` holds the discarded
        // attempt's numbers.
        if (pass_status.ok() && stats.AnyWork()) {
          metrics_->GetCounter("compaction.slices_merged")
              ->Increment(stats.slices_merged);
          metrics_->GetCounter("compaction.slices_truncated")
              ->Increment(stats.slices_truncated);
          metrics_->GetCounter("compaction.features_shrunk")
              ->Increment(stats.features_shrunk);
        }
      },
      metrics_);

  table->write_table = std::make_unique<ProfileTable>(schema, /*shards=*/8);

  std::lock_guard<std::mutex> lock(tables_mu_);
  auto [it, inserted] = tables_.try_emplace(schema.name, std::move(table));
  if (!inserted) {
    return Status::AlreadyExists("table " + schema.name);
  }
  return Status::OK();
}

bool IpsInstance::HasTable(const std::string& table) const {
  std::lock_guard<std::mutex> lock(tables_mu_);
  return tables_.find(table) != tables_.end();
}

Status IpsInstance::ReconfigureTable(const TableSchema& schema) {
  IPS_RETURN_IF_ERROR(schema.Validate());
  Table* t = FindTable(schema.name);
  if (t == nullptr) return Status::NotFound("table " + schema.name);
  std::lock_guard<std::mutex> lock(t->schema_mu);
  if (schema.actions != t->schema.actions) {
    return Status::InvalidArgument(
        "hot reload cannot change the action schema");
  }
  if (schema.write_granularity_ms != t->schema.write_granularity_ms) {
    return Status::InvalidArgument(
        "hot reload cannot change the write granularity");
  }
  t->schema.reduce = schema.reduce;
  t->schema.time_dimensions = schema.time_dimensions;
  t->schema.truncate = schema.truncate;
  t->schema.shrink = schema.shrink;
  metrics_->GetCounter("config.table_reload")->Increment();
  return Status::OK();
}

IpsInstance::Table* IpsInstance::FindTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(tables_mu_);
  auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : it->second.get();
}

const IpsInstance::Table* IpsInstance::FindTable(
    const std::string& table) const {
  std::lock_guard<std::mutex> lock(tables_mu_);
  auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status IpsInstance::AddProfile(const std::string& caller,
                               const std::string& table, ProfileId pid,
                               TimestampMs timestamp, SlotId slot, TypeId type,
                               FeatureId fid, const CountVector& counts) {
  AddRecord record;
  record.timestamp = timestamp;
  record.slot = slot;
  record.type = type;
  record.fid = fid;
  record.counts = counts;
  return AddProfiles(caller, table, pid, {record});
}

Status IpsInstance::CheckDeadline(const CallContext& ctx) {
  if (ctx.Expired(clock_->NowMs())) {
    metrics_->GetCounter("server.deadline_exceeded")->Increment();
    return Status::DeadlineExceeded("server-side deadline expired");
  }
  return Status::OK();
}

Status IpsInstance::AddProfiles(const std::string& caller,
                                const std::string& table, ProfileId pid,
                                const std::vector<AddRecord>& records,
                                const CallContext& ctx) {
  const int64_t begin_ns = MonotonicNanos();
  IPS_ASSIGN_OR_RETURN(MultiAddResult batch,
                       MultiAdd(caller, table, {{pid, records}}, ctx));
  metrics_->GetHistogram("server.add_micros")
      ->Record((MonotonicNanos() - begin_ns) / 1000);
  return batch.statuses[0];
}

Result<MultiAddResult> IpsInstance::MultiAdd(
    const std::string& caller, const std::string& table,
    const std::vector<MultiAddItem>& items, const CallContext& ctx) {
  // Re-install the trace here too: an embedded instance may be written
  // directly, without a Channel hop having installed the context.
  TraceInstallScope trace_install(ctx.trace);
  ScopedSpan server_span("server.add");
  Table* t = nullptr;
  {
    // Same admission shape as MultiQuery: deadline, then the overload
    // controller, then ONE quota charge for the whole batch — a 256-profile
    // ingestion burst is one admission decision, not 256.
    ScopedSpan queue_span("server.queue");
    const int64_t admit_ns = MonotonicNanos();
    IPS_RETURN_IF_ERROR(CheckDeadline(ctx));
    IPS_RETURN_IF_ERROR(
        overload_.Admit(overload_.TierFor(caller, /*is_write=*/true),
                        static_cast<double>(items.size()), ctx,
                        clock_->NowMs()));
    IPS_RETURN_IF_ERROR(quota_.Check(caller));
    if (items.empty()) return Status::InvalidArgument("empty add batch");
    t = FindTable(table);
    if (t == nullptr) return Status::NotFound("table " + table);
    overload_.RecordQueueSample((MonotonicNanos() - admit_ns) / 1000);
  }

  const int64_t begin_ns = MonotonicNanos();
  const bool isolated = isolation_enabled_.load(std::memory_order_relaxed);
  MultiAddResult out;
  out.statuses.assign(items.size(), Status::OK());
  int64_t ok_records = 0;
  int64_t error_items = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].records.empty()) {
      out.statuses[i] = Status::InvalidArgument("empty record batch");
      ++error_items;
      continue;
    }
    Status status = isolated ? AddIsolated(*t, items[i].pid, items[i].records)
                             : AddDirect(*t, items[i].pid, items[i].records);
    out.statuses[i] = status;
    if (status.ok()) {
      ++out.ok_items;
      ok_records += static_cast<int64_t>(items[i].records.size());
    } else {
      ++error_items;
    }
  }

  const int64_t micros = (MonotonicNanos() - begin_ns) / 1000;
  overload_.RecordServiceSample(micros, static_cast<double>(items.size()));
  metrics_->GetHistogram("server.multi_add_micros")->Record(micros);
  metrics_->GetHistogram("server.multi_add_batch")
      ->Record(static_cast<int64_t>(items.size()));
  if (ok_records > 0) {
    metrics_->GetCounter("server.adds")->Increment(ok_records);
  }
  if (error_items > 0) {
    metrics_->GetCounter("server.add_errors")->Increment(error_items);
  }
  return out;
}

Status IpsInstance::AddDirect(Table& t, ProfileId pid,
                              const std::vector<AddRecord>& records) {
  Status status = t.cache->WithProfileMutable(pid, [&](ProfileData& profile) {
    std::lock_guard<std::mutex> schema_lock(t.schema_mu);
    for (const auto& r : records) {
      profile.Add(r.timestamp, r.slot, r.type, r.fid, r.counts,
                  t.schema.reduce)
          .ok();
    }
  });
  if (status.ok()) t.compaction->MaybeTrigger(pid);
  return status;
}

Status IpsInstance::AddIsolated(Table& t, ProfileId pid,
                                const std::vector<AddRecord>& records) {
  // Hard cap on the write table's memory (Section III-F): if the buffer is
  // full, fall back to the direct path rather than grow without bound.
  if (t.write_table_bytes.load(std::memory_order_relaxed) >
      options_.isolation_memory_limit_bytes) {
    metrics_->GetCounter("isolation.overflow")->Increment();
    return AddDirect(t, pid, records);
  }
  size_t added_bytes = 0;
  t.write_table->WithProfileMutable(pid, [&](ProfileData& profile) {
    const size_t before = profile.ApproximateBytes();
    for (const auto& r : records) {
      profile.Add(r.timestamp, r.slot, r.type, r.fid, r.counts,
                  t.schema.reduce)
          .ok();
    }
    added_bytes = profile.ApproximateBytes() - before;
  });
  t.write_table_bytes.fetch_add(added_bytes, std::memory_order_relaxed);
  return Status::OK();
}

size_t IpsInstance::MergeWriteTable(Table& t) {
  // Swap out the accumulated buffer, then fold it into the cached profiles
  // using the table's aggregate function. The swap keeps the write path
  // available during the merge.
  std::vector<std::pair<ProfileId, ProfileData>> pending;
  t.write_table->ForEach([&](ProfileId pid, ProfileData& profile) {
    pending.emplace_back(pid, std::move(profile));
  });
  t.write_table->Clear();
  t.write_table_bytes.store(0, std::memory_order_relaxed);

  for (auto& [pid, buffered] : pending) {
    t.cache
        ->WithProfileMutable(pid,
                             [&](ProfileData& profile) {
                               std::lock_guard<std::mutex> schema_lock(
                                   t.schema_mu);
                               profile.MergeProfile(buffered,
                                                    t.schema.reduce);
                             })
        .ok();
    t.compaction->MaybeTrigger(pid);
  }
  return pending.size();
}

size_t IpsInstance::MergeWriteTablesOnce() {
  std::vector<Table*> tables;
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    tables.reserve(tables_.size());
    for (auto& [name, t] : tables_) tables.push_back(t.get());
  }
  size_t merged = 0;
  for (Table* t : tables) merged += MergeWriteTable(*t);
  if (merged > 0) {
    metrics_->GetCounter("isolation.merged_profiles")->Increment(merged);
  }
  return merged;
}

Result<QueryResult> IpsInstance::Query(const std::string& caller,
                                       const std::string& table,
                                       ProfileId pid, const QuerySpec& spec,
                                       const CallContext& ctx) {
  const int64_t begin_ns = MonotonicNanos();
  IPS_ASSIGN_OR_RETURN(
      MultiQueryResult batch,
      MultiQuery(caller, table, std::span<const ProfileId>(&pid, 1), spec,
                 ctx));

  // Point-read bookkeeping after the batch path returns is server overhead;
  // attribute it so the traced stage sum stays honest.
  ScopedSpan record_span("server.queue");
  const int64_t micros = (MonotonicNanos() - begin_ns) / 1000;
  metrics_->GetHistogram("server.query_micros")->Record(micros);
  metrics_->GetHistogram(batch.cache_hits > 0 ? "server.query_micros_hit"
                                              : "server.query_micros_miss")
      ->Record(micros);

  IPS_RETURN_IF_ERROR(batch.statuses[0]);
  return std::move(batch.results[0]);
}

Result<MultiQueryResult> IpsInstance::MultiQuery(
    const std::string& caller, const std::string& table,
    std::span<const ProfileId> pids, const QuerySpec& spec,
    const CallContext& ctx) {
  // Re-install the trace here too: an embedded instance may be queried
  // directly, without a Channel hop having installed the context.
  TraceInstallScope trace_install(ctx.trace);
  ScopedSpan server_span("server.query");
  Table* t = nullptr;
  QuerySpec effective = spec;
  {
    // "Queueing": everything that admits the request before any per-profile
    // work — deadline check, overload controller, quota, table resolution,
    // schema snapshot.
    ScopedSpan queue_span("server.queue");
    const int64_t admit_ns = MonotonicNanos();
    IPS_RETURN_IF_ERROR(CheckDeadline(ctx));
    IPS_RETURN_IF_ERROR(
        overload_.Admit(overload_.TierFor(caller, /*is_write=*/false),
                        static_cast<double>(pids.size()), ctx,
                        clock_->NowMs()));
    // One quota charge per batch — a 500-candidate request is one admission
    // decision, mirroring the batched write path.
    IPS_RETURN_IF_ERROR(quota_.Check(caller));
    if (pids.empty()) return Status::InvalidArgument("empty pid batch");
    t = FindTable(table);
    if (t == nullptr) return Status::NotFound("table " + table);

    std::lock_guard<std::mutex> schema_lock(t->schema_mu);
    effective.reduce = t->schema.reduce;
    overload_.RecordQueueSample((MonotonicNanos() - admit_ns) / 1000);
  }

  // Per-request setup and (below) result packaging are server overhead like
  // admission: both report under server.queue so the disjoint-stage sum
  // accounts for them. The span is suspended across WithProfiles, which
  // attributes its own stages.
  std::optional<ScopedSpan> overhead_span;
  overhead_span.emplace("server.queue");
  const int64_t begin_ns = MonotonicNanos();
  const TimestampMs now_ms = clock_->NowMs();
  MultiQueryResult out;
  out.results.resize(pids.size());
  out.statuses.assign(pids.size(), Status::OK());

  std::vector<ProfileId> pid_vec(pids.begin(), pids.end());
  std::vector<Status> cache_statuses;
  std::vector<bool> degraded_flags;
  std::vector<Status> exec_statuses(pid_vec.size(), Status::OK());
  // All computes in the batch share this thread's warmed scratch: after the
  // first query on a worker, the compute core runs allocation-free.
  QueryScratch& scratch = QueryScratch::ThreadLocal();
  uint64_t scratch_reuses = 0;
  overhead_span.reset();
  out.cache_hits = t->cache->WithProfiles(
      pid_vec,
      [&](size_t i, const ProfileData& profile) {
        ScopedSpan compute_span("feature.compute");
        if (scratch.uses > 0) ++scratch_reuses;
        Status exec = ExecuteQueryInto(profile, effective, now_ms, &scratch,
                                       &out.results[i]);
        if (!exec.ok()) exec_statuses[i] = exec;
      },
      &cache_statuses, &degraded_flags, ctx.deadline_ms);
  overhead_span.emplace("server.queue");
  if (scratch_reuses > 0) {
    metrics_->GetCounter("query.scratch_reuse")
        ->Increment(static_cast<int64_t>(scratch_reuses));
  }
  for (size_t i = 0; i < pid_vec.size(); ++i) {
    if (degraded_flags[i] && cache_statuses[i].ok() &&
        exec_statuses[i].ok()) {
      out.results[i].degraded = true;
      ++out.degraded;
    }
  }
  if (out.degraded > 0) {
    metrics_->GetCounter("server.degraded_reads")
        ->Increment(static_cast<int64_t>(out.degraded));
  }

  // In synchronous mode (tests, III-D ablation) MaybeTrigger runs the
  // compaction inline and opens its own stage spans — suspend the overhead
  // span there so they never nest inside it. In the async serving config the
  // trigger is admission bookkeeping only, so the status-folding loop stays
  // attributed to server.queue.
  if (t->compaction->synchronous()) overhead_span.reset();
  int64_t ok_count = 0;
  int64_t error_count = 0;
  for (size_t i = 0; i < pid_vec.size(); ++i) {
    if (cache_statuses[i].IsNotFound()) {
      // Unknown profile: an empty result, not an error — recommendation
      // callers treat new users as empty profiles.
      ++ok_count;
      continue;
    }
    if (!cache_statuses[i].ok()) {
      out.statuses[i] = cache_statuses[i];
      ++error_count;
      continue;
    }
    if (!exec_statuses[i].ok()) {
      out.statuses[i] = exec_statuses[i];
      ++error_count;
      continue;
    }
    ++ok_count;
    t->compaction->MaybeTrigger(pid_vec[i]);
  }

  overhead_span.emplace("server.queue");
  const int64_t micros = (MonotonicNanos() - begin_ns) / 1000;
  overload_.RecordServiceSample(micros,
                                static_cast<double>(pid_vec.size()));
  metrics_->GetHistogram("server.multi_query_micros")->Record(micros);
  metrics_->GetHistogram("server.multi_query_batch")
      ->Record(static_cast<int64_t>(pid_vec.size()));
  if (ok_count > 0) {
    metrics_->GetCounter("server.queries")->Increment(ok_count);
  }
  if (error_count > 0) {
    metrics_->GetCounter("server.query_errors")->Increment(error_count);
  }
  return out;
}

Result<QueryResult> IpsInstance::GetProfileTopK(
    const std::string& caller, const std::string& table, ProfileId pid,
    SlotId slot, std::optional<TypeId> type, const TimeRange& range,
    SortBy sort_by, ActionIndex sort_action, size_t k) {
  QuerySpec spec;
  spec.slot = slot;
  spec.type = type;
  spec.time_range = range;
  spec.sort_by = sort_by;
  spec.sort_action = sort_action;
  spec.k = k;
  return Query(caller, table, pid, spec);
}

Result<QueryResult> IpsInstance::GetProfileFilter(
    const std::string& caller, const std::string& table, ProfileId pid,
    SlotId slot, std::optional<TypeId> type, const TimeRange& range,
    const FilterSpec& filter) {
  QuerySpec spec;
  spec.slot = slot;
  spec.type = type;
  spec.time_range = range;
  spec.filter = filter;
  spec.sort_by = SortBy::kFeatureId;
  return Query(caller, table, pid, spec);
}

Result<QueryResult> IpsInstance::GetProfileDecay(
    const std::string& caller, const std::string& table, ProfileId pid,
    SlotId slot, std::optional<TypeId> type, const TimeRange& range,
    const DecaySpec& decay) {
  QuerySpec spec;
  spec.slot = slot;
  spec.type = type;
  spec.time_range = range;
  spec.decay = decay;
  return Query(caller, table, pid, spec);
}

void IpsInstance::SetIsolationEnabled(bool enabled) {
  const bool was =
      isolation_enabled_.exchange(enabled, std::memory_order_relaxed);
  if (was && !enabled) {
    // Turning isolation off: drain buffered writes immediately so nothing
    // sits invisible in the write tables.
    MergeWriteTablesOnce();
  }
  metrics_->GetCounter("isolation.switch")->Increment();
}

void IpsInstance::FlushAll() {
  std::vector<Table*> tables;
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    for (auto& [name, t] : tables_) tables.push_back(t.get());
  }
  for (Table* t : tables) t->cache->FlushAll();
}

void IpsInstance::DrainCompactions() {
  std::vector<Table*> tables;
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    for (auto& [name, t] : tables_) tables.push_back(t.get());
  }
  for (Table* t : tables) t->compaction->Drain();
}

void IpsInstance::SetCompactionEnabled(bool enabled) {
  std::lock_guard<std::mutex> lock(tables_mu_);
  for (auto& [name, t] : tables_) t->compaction->SetEnabled(enabled);
}

Result<size_t> IpsInstance::CompactTableNow(const std::string& table) {
  Table* t = FindTable(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  // Same schema-snapshot + off-lock discipline as the triggered path: the
  // sweep never holds schema_mu or an entry lock across a pass, so it can
  // run against live traffic. Profiles evicted mid-sweep are simply skipped.
  TableSchema schema_copy;
  {
    std::lock_guard<std::mutex> schema_lock(t->schema_mu);
    schema_copy = t->schema;
  }
  Compactor compactor(&schema_copy);
  const std::vector<ProfileId> ids = t->cache->CachedIds();
  size_t compacted = 0;
  for (ProfileId pid : ids) {
    const Status status = t->cache->WithProfileOffLockMutate(
        pid, [&](ProfileData& profile) {
          compactor.FullCompact(profile, clock_->NowMs());
          return true;
        });
    if (status.ok()) ++compacted;
  }
  return compacted;
}

Result<IpsInstance::TableStats> IpsInstance::GetTableStats(
    const std::string& table) const {
  const Table* t = FindTable(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  TableStats stats;
  stats.cached_profiles = t->cache->EntryCount();
  stats.cache_bytes = t->cache->MemoryBytes();
  stats.hit_ratio = t->cache->HitRatio();
  stats.memory_usage_ratio = t->cache->MemoryUsageRatio();
  stats.write_table_profiles = t->write_table->ProfileCount();
  stats.write_table_bytes =
      t->write_table_bytes.load(std::memory_order_relaxed);
  if (t->victim_cache != nullptr) {
    stats.l2_cached_profiles = t->victim_cache->EntryCount();
    stats.l2_bytes = t->victim_cache->MemoryBytes();
  }
  return stats;
}

void IpsInstance::DetachConfigRegistry() {
  if (config_registry_ == nullptr) return;
  for (int64_t id : config_subscriptions_) {
    config_registry_->Unsubscribe(id);
  }
  config_subscriptions_.clear();
  config_registry_ = nullptr;
}

void IpsInstance::AttachConfigRegistry(ConfigRegistry* registry) {
  config_registry_ = registry;

  // Per-caller quotas (Section V-b): a document {"caller": qps, ...};
  // callers absent from the document keep their current quota, a qps of 0
  // removes the explicit quota.
  config_subscriptions_.push_back(registry->Subscribe(
      "ips/" + options_.instance_id + "/quotas",
      [this](const ConfigValue& doc) {
        if (!doc.is_object()) return;
        for (const auto& [caller, qps] : doc.members()) {
          const double rate = qps.AsDouble(0);
          if (rate <= 0) {
            quota_.RemoveQuota(caller);
          } else {
            quota_.SetQuota(caller, rate);
          }
        }
        metrics_->GetCounter("config.quota_reload")->Increment();
      }));

  // Per-caller criticality for the brown-out ladder (same shape as quotas):
  // a document {"caller": "critical"|"read"|"write"|"bulk", ...}. Any other
  // value removes the explicit mark, reverting the caller to the read/write
  // defaults.
  config_subscriptions_.push_back(registry->Subscribe(
      "ips/" + options_.instance_id + "/tiers",
      [this](const ConfigValue& doc) {
        if (!doc.is_object()) return;
        for (const auto& [caller, tier] : doc.members()) {
          std::optional<RequestTier> parsed =
              tier.is_string() ? ParseRequestTier(tier.AsString())
                               : std::nullopt;
          if (parsed.has_value()) {
            overload_.SetCallerTier(caller, *parsed);
          } else {
            overload_.RemoveCallerTier(caller);
          }
        }
        metrics_->GetCounter("config.tier_reload")->Increment();
      }));

  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    for (auto& [name, t] : tables_) names.push_back(name);
  }
  for (const auto& name : names) {
    const std::string key =
        "ips/" + options_.instance_id + "/tables/" + name;
    config_subscriptions_.push_back(
        registry->Subscribe(key, [this](const ConfigValue& doc) {
          Result<TableSchema> schema = ParseTableSchema(doc);
          if (!schema.ok()) {
            IPS_LOG(Warn) << "rejected table config: "
                          << schema.status().ToString();
            return;
          }
          Status status = ReconfigureTable(*schema);
          if (!status.ok()) {
            IPS_LOG(Warn) << "table reconfigure failed: "
                          << status.ToString();
          }
        }));
  }
}

void IpsInstance::MergerLoop() {
  std::unique_lock<std::mutex> lock(merger_mu_);
  while (!shutdown_.load(std::memory_order_relaxed)) {
    merger_cv_.wait_for(
        lock,
        std::chrono::milliseconds(options_.isolation_merge_interval_ms));
    if (shutdown_.load(std::memory_order_relaxed)) return;
    if (!isolation_enabled_.load(std::memory_order_relaxed)) continue;
    lock.unlock();
    MergeWriteTablesOnce();
    lock.lock();
  }
}

}  // namespace ips
