// Feature assembly (Section I): recommendation requests extract tens to
// hundreds of features per user; with IPS they are computed in one place,
// assembled into a flat sample for model serving, and the *same* assembled
// sample is flushed to the training stream — "in parallel, to avoid
// training-serving skew". The assembler owns a hot-reloadable set of named
// FeatureSpecs and runs them against an IpsInstance.
#ifndef IPS_SERVER_FEATURE_ASSEMBLER_H_
#define IPS_SERVER_FEATURE_ASSEMBLER_H_

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "ingest/message_log.h"
#include "query/feature_spec.h"
#include "server/ips_instance.h"

namespace ips {

/// One assembled feature group: the spec's name plus the fids/values the
/// query produced, in rank order.
struct AssembledFeature {
  std::string name;
  std::vector<FeatureId> fids;
  /// Weighted value of the spec's sort action per fid (what a model embeds).
  std::vector<double> values;
};

/// A complete sample for one (user, request).
struct AssembledSample {
  ProfileId uid = 0;
  TimestampMs assembled_at_ms = 0;
  std::vector<AssembledFeature> features;

  /// Total features across groups.
  size_t TotalValues() const;
};

/// Serialization for the training stream.
std::string EncodeSample(const AssembledSample& sample);
bool DecodeSample(const std::string& data, AssembledSample* sample);

struct FeatureAssemblerOptions {
  std::string caller = "feature-assembler";
  /// When set, every assembled sample is also appended to this topic —
  /// the training-data flush that keeps serving and training identical.
  std::string training_topic;
};

class FeatureAssembler {
 public:
  /// `training_log` may be null when no training flush is wanted.
  FeatureAssembler(FeatureAssemblerOptions options, IpsInstance* instance,
                   MessageLog* training_log = nullptr);

  /// Replaces the active feature set. Invalid sets are rejected atomically
  /// (the previous set stays live) — the hot-reload contract.
  Status LoadFeatureSet(std::vector<FeatureSpec> specs);
  Status LoadFeatureSetJson(std::string_view json,
                            const TableSchema* schema = nullptr);

  /// Subscribes to `registry` under `key`; published documents of the form
  /// {"features": [...]} replace the active set.
  void AttachConfigRegistry(ConfigRegistry* registry, const std::string& key,
                            const TableSchema* schema = nullptr);

  /// Runs every active spec for `uid` and returns the assembled sample,
  /// flushing it to the training topic when configured. Individual feature
  /// failures are tolerated (the group is emitted empty) so one bad spec
  /// cannot break serving; hard failures (quota) propagate. Implemented as
  /// a batch of one over AssembleBatch. `ctx` carries the caller's deadline
  /// and trace context into every per-spec MultiQuery.
  Result<AssembledSample> Assemble(ProfileId uid,
                                   const CallContext& ctx = CallContext{});

  /// Batched assembly for a candidate list (ranking requests score tens to
  /// hundreds of candidates at once): ONE MultiQuery per feature spec covers
  /// every uid, so the storage round trips scale with the spec count, not
  /// spec count x candidate count. Samples align with `uids`; per-uid
  /// feature failures yield empty groups, quota rejections fail the whole
  /// batch. Each sample is flushed to the training topic when configured.
  Result<std::vector<AssembledSample>> AssembleBatch(
      std::span<const ProfileId> uids, const CallContext& ctx = CallContext{});

  size_t FeatureCount() const;

 private:
  FeatureAssemblerOptions options_;
  IpsInstance* instance_;
  MessageLog* training_log_;

  mutable std::mutex mu_;
  std::shared_ptr<const std::vector<FeatureSpec>> specs_;
};

}  // namespace ips

#endif  // IPS_SERVER_FEATURE_ASSEMBLER_H_
