// IpsInstance: one server of the compute-cache layer (Section III). It owns
// a set of profile tables, each backed by the GCache write-back cache over a
// persistent key-value store, with asynchronous compaction, per-caller
// quotas, read-write isolation, and hot-reloadable table configuration.
//
// Read-write isolation (Section III-F): when enabled, add_profile requests
// land in a lightweight write-only ProfileTable; a merger thread folds the
// write table into the main (cached) table every few seconds with the
// table's aggregate function. This keeps write traffic off the main table's
// entry locks at the cost of a small data-visibility delay and extra memory,
// both bounded by configuration. A hot switch toggles the feature at runtime.
#ifndef IPS_SERVER_IPS_INSTANCE_H_
#define IPS_SERVER_IPS_INSTANCE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/gcache.h"
#include "cache/load_broker.h"
#include "cache/store_broker.h"
#include "cache/victim_cache.h"
#include "common/call_context.h"
#include "common/clock.h"
#include "common/config.h"
#include "common/metrics.h"
#include "common/status.h"
#include "compaction/compactor.h"
#include "compaction/manager.h"
#include "core/profile_table.h"
#include "core/table_schema.h"
#include "kvstore/kv_store.h"
#include "query/query.h"
#include "server/overload.h"
#include "server/persistence.h"
#include "server/quota.h"

namespace ips {

struct IpsInstanceOptions {
  /// Instance identity (service discovery registration).
  std::string instance_id = "ips-0";
  GCacheOptions cache;
  CompactionManagerOptions compaction;
  PersisterOptions persistence;
  /// Read-path load broker (server-side miss coalescing): concurrent misses
  /// for the same pid share one kv.load (single-flight) and misses arriving
  /// within the collection window merge into one KvStore::MultiGet across
  /// requests. Disable for ablation (bench_hotkey_skew measures both).
  bool enable_load_broker = true;
  LoadBrokerOptions load_broker;
  /// Write-path store broker (server-side flush coalescing): flush groups
  /// from different dirty shards landing within the collection window merge
  /// into one KvStore::MultiSet, and a hot dirty pid re-flushed while its
  /// store is in flight is written at most once per window (identical
  /// snapshots piggyback; changed ones requeue behind the in-flight write).
  /// Only takes effect when the instance persists writes. Disable for
  /// ablation (bench_flush_storm measures both).
  bool enable_store_broker = true;
  StoreBrokerOptions store_broker;
  /// Compressed L2 victim tier between the cache and the persister: entries
  /// evicted from the (L1) GCache are demoted as encoded bytes after their
  /// write-back instead of dropped, and a later miss promotes them back for
  /// the price of a decode rather than a KV round trip. Admission is
  /// frequency-gated (TinyLFU-style sketch) so one-touch scans cannot
  /// pollute the tier. Off by default: the tier changes what a "miss" costs,
  /// which the broker benches measure in isolation; opt in per deployment
  /// (bench_cache_tiers measures both sides).
  bool enable_victim_cache = false;
  VictimCacheOptions victim_cache;
  /// Read-write isolation initial state + merge cadence + memory cap.
  bool isolation_enabled = true;
  int64_t isolation_merge_interval_ms = 2000;
  size_t isolation_memory_limit_bytes = 32 << 20;
  /// Default per-caller QPS when no explicit quota is set (0 = unlimited).
  double default_caller_qps = 0;
  /// Adaptive overload control (queue-aware admission + brown-out), layered
  /// in front of the quota at every admission point. `overload.enabled`
  /// is the master switch (off = quota-only admission, the pre-controller
  /// behaviour and the bench_overload ablation baseline).
  OverloadControllerOptions overload;
  /// When false the instance never writes to the KV store (Section III-G:
  /// in a multi-region deployment only the primary region's instances
  /// persist to the master cluster; the others only read their local
  /// slave). Dirty entries are marked clean without I/O.
  bool persist_writes = true;
  /// When false, no merger thread starts; tests call MergeWriteTablesOnce().
  bool start_background_threads = true;
};

/// One write of the batched add API.
struct AddRecord {
  TimestampMs timestamp = 0;
  SlotId slot = 0;
  TypeId type = 0;
  FeatureId fid = 0;
  CountVector counts;
};

/// One item of the batched write path: every record destined for one
/// profile.
struct MultiAddItem {
  ProfileId pid = 0;
  std::vector<AddRecord> records;
};

/// Result of the batched write path. Entry i aligns with the i-th item;
/// a batch can partially succeed (per-pid statuses), mirroring
/// MultiQueryResult.
struct MultiAddResult {
  std::vector<Status> statuses;
  /// Items whose records were all applied.
  size_t ok_items = 0;
};

/// Result of the batched read path. Entry i aligns with the i-th requested
/// pid. Unknown profiles yield OK + an empty QueryResult, the same contract
/// as single-profile Query (new users are empty profiles, not errors);
/// per-pid statuses carry real failures (storage unavailable, corruption).
struct MultiQueryResult {
  std::vector<Status> statuses;
  std::vector<QueryResult> results;
  /// How many of the pids were served from cache (Table II-style split).
  size_t cache_hits = 0;
  /// How many results are flagged degraded (possibly stale; see
  /// QueryResult::degraded).
  size_t degraded = 0;
};

class IpsInstance {
 public:
  IpsInstance(IpsInstanceOptions options, KvStore* kv, Clock* clock,
              MetricsRegistry* metrics = nullptr);
  ~IpsInstance();

  IpsInstance(const IpsInstance&) = delete;
  IpsInstance& operator=(const IpsInstance&) = delete;

  /// Creates a table. AlreadyExists when the name is taken.
  Status CreateTable(const TableSchema& schema);
  bool HasTable(const std::string& table) const;
  /// Replaces the compaction/truncate/shrink parts of a table's schema at
  /// runtime (the hot-reload path of Section V-b). Actions and granularity
  /// cannot change live.
  Status ReconfigureTable(const TableSchema& schema);

  // --- Write APIs (Section II-B) -------------------------------------

  Status AddProfile(const std::string& caller, const std::string& table,
                    ProfileId pid, TimestampMs timestamp, SlotId slot,
                    TypeId type, FeatureId fid, const CountVector& counts);

  /// Batched variant; one quota charge per record batch.
  Status AddProfiles(const std::string& caller, const std::string& table,
                     ProfileId pid, const std::vector<AddRecord>& records) {
    return AddProfiles(caller, table, pid, records, CallContext{});
  }

  /// Deadline-aware variant: an already-expired context is rejected with
  /// DeadlineExceeded before any work is done. Batch-of-one wrapper over
  /// MultiAdd.
  Status AddProfiles(const std::string& caller, const std::string& table,
                     ProfileId pid, const std::vector<AddRecord>& records,
                     const CallContext& ctx);

  /// Batched write path (the ingestion hot path, mirroring MultiQuery): one
  /// deadline check and ONE quota charge for the whole batch, then each
  /// item's records are applied under its profile's entry lock. Statuses
  /// align with `items`; a batch can partially succeed. The dirty entries it
  /// creates are later drained in batched flushes (one KvStore::MultiSet per
  /// flush group).
  Result<MultiAddResult> MultiAdd(const std::string& caller,
                                  const std::string& table,
                                  const std::vector<MultiAddItem>& items) {
    return MultiAdd(caller, table, items, CallContext{});
  }

  Result<MultiAddResult> MultiAdd(const std::string& caller,
                                  const std::string& table,
                                  const std::vector<MultiAddItem>& items,
                                  const CallContext& ctx);

  // --- Read APIs (Section II-B) --------------------------------------

  Result<QueryResult> GetProfileTopK(const std::string& caller,
                                     const std::string& table, ProfileId pid,
                                     SlotId slot, std::optional<TypeId> type,
                                     const TimeRange& range, SortBy sort_by,
                                     ActionIndex sort_action, size_t k);

  Result<QueryResult> GetProfileFilter(const std::string& caller,
                                       const std::string& table,
                                       ProfileId pid, SlotId slot,
                                       std::optional<TypeId> type,
                                       const TimeRange& range,
                                       const FilterSpec& filter);

  Result<QueryResult> GetProfileDecay(const std::string& caller,
                                      const std::string& table, ProfileId pid,
                                      SlotId slot, std::optional<TypeId> type,
                                      const TimeRange& range,
                                      const DecaySpec& decay);

  /// Fully general query. Implemented as a batch of one over MultiQuery.
  Result<QueryResult> Query(const std::string& caller,
                            const std::string& table, ProfileId pid,
                            const QuerySpec& spec) {
    return Query(caller, table, pid, spec, CallContext{});
  }

  Result<QueryResult> Query(const std::string& caller,
                            const std::string& table, ProfileId pid,
                            const QuerySpec& spec, const CallContext& ctx);

  /// Batched read path (the serving hot path): one quota charge for the
  /// whole batch, hits/misses partitioned against the cache, and all misses
  /// satisfied with a single KvStore::MultiGet. A recommendation request
  /// with hundreds of candidate items pays one storage round trip instead
  /// of one per candidate.
  Result<MultiQueryResult> MultiQuery(const std::string& caller,
                                      const std::string& table,
                                      std::span<const ProfileId> pids,
                                      const QuerySpec& spec) {
    return MultiQuery(caller, table, pids, spec, CallContext{});
  }

  Result<MultiQueryResult> MultiQuery(const std::string& caller,
                                      const std::string& table,
                                      std::span<const ProfileId> pids,
                                      const QuerySpec& spec,
                                      const CallContext& ctx);

  // --- Operations -----------------------------------------------------

  QuotaManager& quota() { return quota_; }
  OverloadController& overload() { return overload_; }

  /// Hot switch for read-write isolation (Section III-F / V-b).
  void SetIsolationEnabled(bool enabled);
  bool IsolationEnabled() const {
    return isolation_enabled_.load(std::memory_order_relaxed);
  }

  /// Merges all tables' write tables into their main tables; returns
  /// profiles merged. Normally driven by the background merger thread.
  size_t MergeWriteTablesOnce();

  /// Flushes every dirty cache entry (shutdown / controlled failover).
  void FlushAll();

  /// Waits for queued compactions.
  void DrainCompactions();

  /// Ops sweep: synchronously runs a full compaction over every cached
  /// profile of `table` (back-fill cleanup, pre-benchmark steady-state).
  /// Returns profiles compacted.
  Result<size_t> CompactTableNow(const std::string& table);

  /// Kill switch for traffic-triggered compaction across all tables (ops:
  /// pause during heavy back-fill, re-enable afterwards).
  void SetCompactionEnabled(bool enabled);

  /// Cache statistics for one table.
  struct TableStats {
    size_t cached_profiles = 0;
    size_t cache_bytes = 0;
    double hit_ratio = 0.0;
    double memory_usage_ratio = 0.0;
    size_t write_table_profiles = 0;
    size_t write_table_bytes = 0;
    /// Victim-tier occupancy; zero when the tier is disabled.
    size_t l2_cached_profiles = 0;
    size_t l2_bytes = 0;
  };
  Result<TableStats> GetTableStats(const std::string& table) const;

  const std::string& instance_id() const { return options_.instance_id; }
  MetricsRegistry* metrics() { return metrics_; }

  /// Subscribes the instance to `registry` under key
  /// "ips/<instance_id>/tables/<table>": published schema documents are
  /// applied via ReconfigureTable. The registry must outlive the instance
  /// unless DetachConfigRegistry is called first.
  void AttachConfigRegistry(ConfigRegistry* registry);

  /// Drops every subscription made by AttachConfigRegistry. Required before
  /// destroying a registry that does not outlive the instance.
  void DetachConfigRegistry();

 private:
  struct Table {
    TableSchema schema;
    std::mutex schema_mu;  // guards schema replacement on hot reload
    std::unique_ptr<Persister> persister;
    /// Miss-coalescing stage between the cache and the persister. Declared
    /// before `cache` so it is destroyed after it (the cache's miss path
    /// holds a non-owning pointer).
    std::unique_ptr<LoadBroker> load_broker;
    /// Flush-coalescing stage between the cache and the persister, the
    /// write-side mirror. Same ordering contract: declared before `cache`
    /// so the cache's shutdown flush can still drain through it.
    std::unique_ptr<StoreBroker> store_broker;
    /// Compressed L2 victim tier (when enabled). Declared before `cache` for
    /// the same reason: the cache demotes into it up to its last eviction.
    std::unique_ptr<VictimCache> victim_cache;
    std::unique_ptr<GCache> cache;
    /// Compaction passes construct a local Compactor over a schema snapshot
    /// (see CreateTable) so no shared compactor instance is needed.
    std::unique_ptr<CompactionManager> compaction;
    /// Isolation write buffer (few shards: it is short-lived and small).
    std::unique_ptr<ProfileTable> write_table;
    std::atomic<size_t> write_table_bytes{0};
  };

  Table* FindTable(const std::string& table);
  const Table* FindTable(const std::string& table) const;

  /// DeadlineExceeded (and the server.deadline_exceeded counter) when the
  /// request's deadline already passed — checked on entry so an expired
  /// request is rejected before any cache/storage work.
  Status CheckDeadline(const CallContext& ctx);

  Status AddDirect(Table& t, ProfileId pid,
                   const std::vector<AddRecord>& records);
  Status AddIsolated(Table& t, ProfileId pid,
                     const std::vector<AddRecord>& records);
  size_t MergeWriteTable(Table& t);

  void MergerLoop();

  IpsInstanceOptions options_;
  KvStore* kv_;
  Clock* clock_;
  MetricsRegistry* metrics_;
  MetricsRegistry owned_metrics_;  // used when none injected
  QuotaManager quota_;
  OverloadController overload_;

  mutable std::mutex tables_mu_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;

  std::atomic<bool> isolation_enabled_{true};
  std::atomic<bool> shutdown_{false};
  std::mutex merger_mu_;
  std::condition_variable merger_cv_;
  std::thread merger_thread_;

  std::vector<int64_t> config_subscriptions_;
  ConfigRegistry* config_registry_ = nullptr;
};

}  // namespace ips

#endif  // IPS_SERVER_IPS_INSTANCE_H_
