#include "server/feature_assembler.h"

#include "codec/coding.h"
#include "common/logging.h"
#include "common/trace.h"

namespace ips {

size_t AssembledSample::TotalValues() const {
  size_t total = 0;
  for (const auto& group : features) total += group.fids.size();
  return total;
}

std::string EncodeSample(const AssembledSample& sample) {
  std::string out;
  PutVarint64(&out, sample.uid);
  PutVarintSigned64(&out, sample.assembled_at_ms);
  PutVarint64(&out, sample.features.size());
  for (const auto& group : sample.features) {
    PutLengthPrefixed(&out, group.name);
    PutVarint64(&out, group.fids.size());
    for (size_t i = 0; i < group.fids.size(); ++i) {
      PutVarint64(&out, group.fids[i]);
      // Fixed-point millis preserve rank order and enough precision for
      // decayed scores.
      PutVarintSigned64(&out,
                        static_cast<int64_t>(group.values[i] * 1000.0));
    }
  }
  return out;
}

bool DecodeSample(const std::string& data, AssembledSample* sample) {
  Decoder dec(data);
  uint64_t num_groups;
  if (!dec.GetVarint64(&sample->uid) ||
      !dec.GetVarintSigned64(&sample->assembled_at_ms) ||
      !dec.GetVarint64(&num_groups)) {
    return false;
  }
  if (num_groups > 1u << 16) return false;
  sample->features.clear();
  sample->features.reserve(num_groups);
  for (uint64_t g = 0; g < num_groups; ++g) {
    AssembledFeature group;
    std::string_view name;
    uint64_t n;
    if (!dec.GetLengthPrefixed(&name) || !dec.GetVarint64(&n)) return false;
    if (n > 1u << 20) return false;
    group.name.assign(name.data(), name.size());
    group.fids.reserve(n);
    group.values.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t fid;
      int64_t value_milli;
      if (!dec.GetVarint64(&fid) || !dec.GetVarintSigned64(&value_milli)) {
        return false;
      }
      group.fids.push_back(fid);
      group.values.push_back(static_cast<double>(value_milli) / 1000.0);
    }
    sample->features.push_back(std::move(group));
  }
  return dec.Empty();
}

FeatureAssembler::FeatureAssembler(FeatureAssemblerOptions options,
                                   IpsInstance* instance,
                                   MessageLog* training_log)
    : options_(std::move(options)),
      instance_(instance),
      training_log_(training_log),
      specs_(std::make_shared<const std::vector<FeatureSpec>>()) {}

Status FeatureAssembler::LoadFeatureSet(std::vector<FeatureSpec> specs) {
  for (const auto& spec : specs) {
    if (!instance_->HasTable(spec.table)) {
      return Status::NotFound("feature " + spec.name +
                              " references unknown table " + spec.table);
    }
    IPS_RETURN_IF_ERROR(spec.query.decay.Validate());
  }
  auto snapshot =
      std::make_shared<const std::vector<FeatureSpec>>(std::move(specs));
  std::lock_guard<std::mutex> lock(mu_);
  specs_ = std::move(snapshot);
  return Status::OK();
}

Status FeatureAssembler::LoadFeatureSetJson(std::string_view json,
                                            const TableSchema* schema) {
  IPS_ASSIGN_OR_RETURN(ConfigValue doc, ParseConfig(json));
  IPS_ASSIGN_OR_RETURN(std::vector<FeatureSpec> specs,
                       ParseFeatureSet(doc, schema));
  return LoadFeatureSet(std::move(specs));
}

void FeatureAssembler::AttachConfigRegistry(ConfigRegistry* registry,
                                            const std::string& key,
                                            const TableSchema* schema) {
  // The schema pointer must outlive the subscription; callers pass the
  // long-lived schema owned by their setup code.
  registry->Subscribe(key, [this, schema](const ConfigValue& doc) {
    Result<std::vector<FeatureSpec>> specs = ParseFeatureSet(doc, schema);
    if (!specs.ok()) {
      IPS_LOG(Warn) << "rejected feature set: "
                    << specs.status().ToString();
      return;
    }
    Status status = LoadFeatureSet(std::move(specs).value());
    if (!status.ok()) {
      IPS_LOG(Warn) << "feature set load failed: " << status.ToString();
    }
  });
}

Result<AssembledSample> FeatureAssembler::Assemble(ProfileId uid,
                                                   const CallContext& ctx) {
  IPS_ASSIGN_OR_RETURN(
      std::vector<AssembledSample> samples,
      AssembleBatch(std::span<const ProfileId>(&uid, 1), ctx));
  return std::move(samples[0]);
}

Result<std::vector<AssembledSample>> FeatureAssembler::AssembleBatch(
    std::span<const ProfileId> uids, const CallContext& ctx) {
  // Umbrella span over every per-spec MultiQuery plus the training flush.
  TraceInstallScope trace_install(ctx.trace);
  ScopedSpan batch_span("assembler.batch");
  std::shared_ptr<const std::vector<FeatureSpec>> specs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    specs = specs_;
  }

  std::vector<AssembledSample> samples(uids.size());
  for (size_t u = 0; u < uids.size(); ++u) {
    samples[u].uid = uids[u];
    samples[u].features.reserve(specs->size());
  }
  if (uids.empty()) return samples;

  for (const auto& spec : *specs) {
    Result<MultiQueryResult> batch = instance_->MultiQuery(
        options_.caller, spec.table, uids, spec.query, ctx);
    if (!batch.ok() && batch.status().IsResourceExhausted()) {
      return batch.status();  // quota: the whole request is rejected
    }
    for (size_t u = 0; u < uids.size(); ++u) {
      AssembledFeature group;
      group.name = spec.name;
      if (batch.ok() && batch->statuses[u].ok()) {
        const QueryResult& result = batch->results[u];
        group.fids.reserve(result.features.size());
        group.values.reserve(result.features.size());
        for (const auto& f : result.features) {
          group.fids.push_back(f.fid);
          group.values.push_back(f.WeightedAt(spec.query.sort_action));
        }
        samples[u].assembled_at_ms =
            std::max(samples[u].assembled_at_ms, TimestampMs{0});
      }
      // Per-feature failures leave the group empty: a degraded sample beats
      // a failed recommendation request.
      samples[u].features.push_back(std::move(group));
    }
  }

  if (training_log_ != nullptr && !options_.training_topic.empty()) {
    for (const auto& sample : samples) {
      training_log_->Append(options_.training_topic, sample.uid,
                            EncodeSample(sample));
    }
  }
  return samples;
}

size_t FeatureAssembler::FeatureCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return specs_->size();
}

}  // namespace ips
