// Service discovery (Section III): IPS instances register themselves with
// Consul when ready, and clients refresh the instance list periodically.
// This in-process registry models the same contract: registration with TTL
// heartbeats, deregistration, and snapshot reads. The TTL makes crashed
// nodes fall out of the view only after a heartbeat gap — exactly the stale-
// view window real deployments see between a crash and client refresh.
#ifndef IPS_CLUSTER_DISCOVERY_H_
#define IPS_CLUSTER_DISCOVERY_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace ips {

struct ServiceEntry {
  std::string instance_id;
  std::string region;
  /// Opaque endpoint handle (index into the deployment's node table).
  uint64_t endpoint = 0;
  TimestampMs last_heartbeat_ms = 0;
};

class DiscoveryService {
 public:
  /// Entries whose heartbeat is older than `ttl_ms` are dropped from
  /// snapshots.
  DiscoveryService(Clock* clock, int64_t ttl_ms = 10'000)
      : clock_(clock), ttl_ms_(ttl_ms) {}

  void Register(const std::string& instance_id, const std::string& region,
                uint64_t endpoint);
  void Deregister(const std::string& instance_id);
  void Heartbeat(const std::string& instance_id);

  /// All live entries, optionally restricted to one region.
  std::vector<ServiceEntry> Snapshot(const std::string& region = "") const;

  size_t LiveCount() const { return Snapshot().size(); }

 private:
  Clock* clock_;
  int64_t ttl_ms_;
  mutable std::mutex mu_;
  std::map<std::string, ServiceEntry> entries_;
};

}  // namespace ips

#endif  // IPS_CLUSTER_DISCOVERY_H_
