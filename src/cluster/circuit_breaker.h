// Per-node circuit breaker. A node that keeps failing is skipped at
// candidate-selection time — before the RPC is issued — instead of every
// request paying a timeout against it first. States:
//
//   Closed    -> normal operation; consecutive failures are counted.
//   Open      -> after `failure_threshold` consecutive failures; requests
//                are rejected locally for `open_cooldown_ms`.
//   Half-open -> cooldown elapsed; the next request is let through as a
//                probe. Success closes the breaker, failure re-opens it and
//                re-arms the cooldown.
//
// Only node faults trip the breaker (Unavailable, DeadlineExceeded). Errors
// where the server demonstrably responded — quota rejections, NotFound,
// InvalidArgument — count as proof of liveness and reset the failure streak.
#ifndef IPS_CLUSTER_CIRCUIT_BREAKER_H_
#define IPS_CLUSTER_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/clock.h"
#include "common/status.h"

namespace ips {

struct CircuitBreakerOptions {
  /// Master switch. When false every AllowRequest returns true and nothing
  /// is recorded.
  bool enabled = true;
  /// Consecutive node faults that open the breaker.
  int failure_threshold = 3;
  /// How long an open breaker rejects before letting a probe through.
  int64_t open_cooldown_ms = 3000;
};

/// Thread-safe. One instance per (client, node) pair, owned by the client's
/// CircuitBreakerRegistry — breaker state is a client-local opinion about a
/// node, not shared cluster state.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerOptions options);

  /// Whether a request may be sent to the node at `now_ms`: true when
  /// closed, or when open but cooled down (the half-open probe).
  bool AllowRequest(TimestampMs now_ms) const;

  /// Records the outcome of a call to the node. `IsNodeFault` classifies
  /// which statuses count as failures.
  void RecordSuccess();
  void RecordFailure(TimestampMs now_ms);

  /// True when `status` indicates the node itself misbehaved (vs the server
  /// answering with an application error).
  static bool IsNodeFault(const Status& status) {
    return status.IsUnavailable() || status.IsDeadlineExceeded();
  }

  State state(TimestampMs now_ms) const;
  int consecutive_failures() const;

 private:
  CircuitBreakerOptions options_;
  mutable std::mutex mu_;
  int consecutive_failures_ = 0;
  bool open_ = false;
  TimestampMs opened_at_ms_ = 0;
};

/// Lazily creates one breaker per node id. Thread-safe; pointers remain
/// valid for the registry's lifetime.
class CircuitBreakerRegistry {
 public:
  explicit CircuitBreakerRegistry(CircuitBreakerOptions options)
      : options_(options) {}

  CircuitBreaker* Get(const std::string& node_id);

  const CircuitBreakerOptions& options() const { return options_; }
  bool enabled() const { return options_.enabled; }

 private:
  CircuitBreakerOptions options_;
  std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
};

}  // namespace ips

#endif  // IPS_CLUSTER_CIRCUIT_BREAKER_H_
