#include "cluster/circuit_breaker.h"

namespace ips {

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(options) {}

bool CircuitBreaker::AllowRequest(TimestampMs now_ms) const {
  if (!options_.enabled) return true;
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return true;
  // Half-open: cooldown elapsed, let a probe through. Several concurrent
  // probes are acceptable (and cheap in the simulation) — the first outcome
  // recorded decides the state.
  return now_ms - opened_at_ms_ >= options_.open_cooldown_ms;
}

void CircuitBreaker::RecordSuccess() {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  open_ = false;
}

void CircuitBreaker::RecordFailure(TimestampMs now_ms) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++consecutive_failures_;
  if (open_) {
    // A half-open probe failed: re-arm the cooldown from now.
    opened_at_ms_ = now_ms;
    return;
  }
  if (consecutive_failures_ >= options_.failure_threshold) {
    open_ = true;
    opened_at_ms_ = now_ms;
  }
}

CircuitBreaker::State CircuitBreaker::state(TimestampMs now_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return State::kClosed;
  return now_ms - opened_at_ms_ >= options_.open_cooldown_ms
             ? State::kHalfOpen
             : State::kOpen;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consecutive_failures_;
}

CircuitBreaker* CircuitBreakerRegistry::Get(const std::string& node_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(node_id);
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(node_id, std::make_unique<CircuitBreaker>(options_))
             .first;
  }
  return it->second.get();
}

}  // namespace ips
