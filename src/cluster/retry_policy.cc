#include "cluster/retry_policy.h"

#include <algorithm>

namespace ips {

RetryPolicy::RetryPolicy(RetryPolicyOptions options)
    : options_(options),
      rng_(options.seed),
      tokens_(options.budget_cap),
      prev_backoff_ms_(options.initial_backoff_ms) {}

void RetryPolicy::OnRequestStart() {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  tokens_ = std::min(options_.budget_cap, tokens_ + options_.budget_per_request);
  // Decorrelated jitter is a per-retry-sequence walk: a fresh request starts
  // from the initial backoff again. Without this reset one failure burst
  // ratchets prev_backoff_ms_ toward the max and every later request's
  // *first* retry inherits a near-max delay.
  prev_backoff_ms_ = options_.initial_backoff_ms;
}

std::optional<int64_t> RetryPolicy::NextRetryDelayMs(const Status& error) {
  if (!options_.enabled) return std::nullopt;
  // A shed response carrying a retry-after hint is server-paced: honor the
  // hint as the backoff and do NOT burn a budget token — the server asked
  // for exactly this retry, and shedding must reduce re-offered load, not
  // convert it into budget exhaustion for real faults. Hint-less throttles
  // (plain quota) remain terminal below via IsRetryable().
  if (error.IsThrottled() && error.has_retry_after()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++throttle_backoffs_;
    // Feed the jitter walk so a transient failure right after a shed does
    // not restart from the minimum delay against a loaded server.
    prev_backoff_ms_ = std::max(prev_backoff_ms_, error.retry_after_ms());
    return error.retry_after_ms();
  }
  if (!error.IsRetryable()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  if (tokens_ < 1.0) {
    ++budget_denials_;
    return std::nullopt;
  }
  tokens_ -= 1.0;
  ++retries_granted_;
  const int64_t hi =
      std::min(options_.max_backoff_ms,
               std::max(options_.initial_backoff_ms, prev_backoff_ms_ * 3));
  const int64_t delay = rng_.UniformRange(options_.initial_backoff_ms, hi);
  prev_backoff_ms_ = delay;
  return delay;
}

double RetryPolicy::budget_tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tokens_;
}

int64_t RetryPolicy::retries_granted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retries_granted_;
}

int64_t RetryPolicy::budget_denials() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_denials_;
}

int64_t RetryPolicy::throttle_backoffs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return throttle_backoffs_;
}

}  // namespace ips
