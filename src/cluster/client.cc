#include "cluster/client.h"

#include <atomic>
#include <map>
#include <thread>
#include <unordered_set>

namespace ips {

IpsClient::IpsClient(IpsClientOptions options, Deployment* deployment)
    : options_(std::move(options)),
      deployment_(deployment),
      metrics_(deployment->metrics()) {
  RefreshView();
}

void IpsClient::RefreshView() {
  std::lock_guard<std::mutex> lock(mu_);
  rings_.clear();
  for (const auto& region : deployment_->region_names()) {
    std::vector<std::string> members;
    for (const auto& entry : deployment_->discovery().Snapshot(region)) {
      members.push_back(entry.instance_id);
    }
    rings_[region].SetMembers(members);
  }
  last_refresh_ms_ = deployment_->clock()->NowMs();
}

void IpsClient::MaybeRefresh() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const TimestampMs now = deployment_->clock()->NowMs();
    if (last_refresh_ms_ >= 0 &&
        now - last_refresh_ms_ < options_.refresh_interval_ms) {
      return;
    }
  }
  RefreshView();
}

std::vector<std::string> IpsClient::ReadCandidates(ProfileId pid,
                                                   const std::string& region,
                                                   int attempts) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rings_.find(region);
  if (it == rings_.end()) return {};
  return it->second.LookupN(pid, static_cast<size_t>(attempts));
}

Status IpsClient::AddProfile(const std::string& table, ProfileId pid,
                             TimestampMs timestamp, SlotId slot, TypeId type,
                             FeatureId fid, const CountVector& counts) {
  AddRecord record;
  record.timestamp = timestamp;
  record.slot = slot;
  record.type = type;
  record.fid = fid;
  record.counts = counts;
  return AddProfiles(table, pid, {record});
}

Status IpsClient::AddProfiles(const std::string& table, ProfileId pid,
                              const std::vector<AddRecord>& records) {
  return AddProfilesAs(options_.caller, table, pid, records);
}

bool IpsClient::HasTableAnywhere(const std::string& table) {
  MaybeRefresh();
  for (const auto& region : deployment_->region_names()) {
    for (auto* node : deployment_->NodesInRegion(region)) {
      if (!node->IsDown() && node->instance().HasTable(table)) return true;
    }
  }
  return false;
}

Status IpsClient::AddProfilesAs(const std::string& caller,
                                const std::string& table, ProfileId pid,
                                const std::vector<AddRecord>& records) {
  MaybeRefresh();
  metrics_->GetCounter("client.write_requests")->Increment();

  // Multi-region writing: every region gets the record on its owning node.
  size_t regions_ok = 0;
  Status last_error = Status::Unavailable("no live instance");
  for (const auto& region : deployment_->region_names()) {
    Status region_status = Status::Unavailable("no live instance");
    const auto candidates =
        ReadCandidates(pid, region, options_.max_write_attempts);
    for (const auto& node_id : candidates) {
      IpsNode* node = deployment_->FindNode(node_id);
      if (node == nullptr) continue;
      region_status = node->Call(
          options_.request_bytes, /*response_bytes=*/64,
          [&](IpsInstance& instance) {
            return instance.AddProfiles(caller, table, pid, records);
          });
      if (region_status.ok()) break;
      // A quota rejection is a server decision, not a node fault: stop
      // hammering successors (they enforce the same quota).
      if (region_status.IsResourceExhausted()) break;
    }
    if (region_status.ok()) {
      ++regions_ok;
    } else {
      last_error = region_status;
      metrics_->GetCounter("client.write_region_errors")->Increment();
    }
  }
  if (regions_ok == 0) {
    metrics_->GetCounter("client.write_errors")->Increment();
    // Surface the representative cause: callers distinguish quota pacing
    // (back off and retry) from unavailability (fail over / alert).
    return last_error;
  }
  return Status::OK();
}

Result<QueryResult> IpsClient::Query(const std::string& table, ProfileId pid,
                                     const QuerySpec& spec) {
  MaybeRefresh();
  metrics_->GetCounter("client.read_requests")->Increment();

  // Region preference: local first, then failover regions in order.
  std::vector<std::string> regions;
  if (!options_.local_region.empty()) regions.push_back(options_.local_region);
  for (const auto& r : options_.failover_regions) regions.push_back(r);
  if (regions.empty()) regions = deployment_->region_names();

  Status last_error = Status::Unavailable("no live instance");
  for (const auto& region : regions) {
    const auto candidates =
        ReadCandidates(pid, region, options_.max_read_attempts);
    for (const auto& node_id : candidates) {
      IpsNode* node = deployment_->FindNode(node_id);
      if (node == nullptr) continue;
      Result<QueryResult> query_result = Status::Unavailable("unset");
      Status call_status = node->Call(
          options_.request_bytes, options_.response_bytes,
          [&](IpsInstance& instance) {
            query_result = instance.Query(options_.caller, table, pid, spec);
            return query_result.ok() ? Status::OK() : query_result.status();
          });
      if (call_status.ok() && query_result.ok()) {
        return query_result;
      }
      last_error = call_status.ok() ? query_result.status() : call_status;
      // Quota rejections are not retried: the server told us to back off.
      if (last_error.IsResourceExhausted()) break;
    }
    if (last_error.IsResourceExhausted()) break;
  }
  metrics_->GetCounter("client.read_errors")->Increment();
  return last_error;
}

Result<MultiQueryResult> IpsClient::MultiQuery(const std::string& table,
                                               std::span<const ProfileId> pids,
                                               const QuerySpec& spec) {
  if (pids.empty()) return Status::InvalidArgument("empty pid batch");
  MaybeRefresh();
  metrics_->GetCounter("client.multi_read_requests")->Increment();
  metrics_->GetCounter("client.multi_read_pids")
      ->Increment(static_cast<int64_t>(pids.size()));

  // Deduplicate while preserving first-seen order: duplicate candidates cost
  // one lookup and fan back out on reassembly.
  std::vector<ProfileId> unique;
  std::vector<size_t> slot_of(pids.size());
  {
    std::unordered_map<ProfileId, size_t> seen;
    for (size_t i = 0; i < pids.size(); ++i) {
      auto [it, inserted] = seen.try_emplace(pids[i], unique.size());
      if (inserted) unique.push_back(pids[i]);
      slot_of[i] = it->second;
    }
  }

  struct SlotState {
    bool done = false;
    Status status = Status::Unavailable("no live instance");
    QueryResult result;
  };
  std::vector<SlotState> slots(unique.size());
  std::atomic<size_t> cache_hits{0};
  bool quota_stop = false;

  // Region preference: local first, then failover regions in order.
  std::vector<std::string> regions;
  if (!options_.local_region.empty()) regions.push_back(options_.local_region);
  for (const auto& r : options_.failover_regions) regions.push_back(r);
  if (regions.empty()) regions = deployment_->region_names();

  for (const auto& region : regions) {
    if (quota_stop) break;
    // Ring candidates for every unfinished slot, computed once per region.
    std::vector<std::vector<std::string>> candidates(unique.size());
    for (size_t s = 0; s < unique.size(); ++s) {
      if (!slots[s].done) {
        candidates[s] =
            ReadCandidates(unique[s], region, options_.max_read_attempts);
      }
    }
    for (int attempt = 0; attempt < options_.max_read_attempts && !quota_stop;
         ++attempt) {
      // Group unfinished slots by this attempt's ring owner. std::map keeps
      // the scatter order deterministic.
      std::map<std::string, std::vector<size_t>> by_node;
      for (size_t s = 0; s < unique.size(); ++s) {
        if (slots[s].done) continue;
        if (static_cast<size_t>(attempt) < candidates[s].size()) {
          by_node[candidates[s][attempt]].push_back(s);
        }
      }
      if (by_node.empty()) break;

      // Scatter: one sub-batch RPC per owning node, in parallel. Each worker
      // writes a disjoint set of slots, so no lock is needed.
      std::atomic<bool> saw_quota{false};
      std::vector<std::thread> workers;
      workers.reserve(by_node.size());
      for (auto& group : by_node) {
        IpsNode* node = deployment_->FindNode(group.first);
        if (node == nullptr) continue;
        const std::vector<size_t>* slot_ids = &group.second;
        workers.emplace_back([&, node, slot_ids] {
          std::vector<ProfileId> sub;
          sub.reserve(slot_ids->size());
          for (size_t s : *slot_ids) sub.push_back(unique[s]);
          Result<MultiQueryResult> batch = Status::Unavailable("unset");
          Status call_status = node->Call(
              options_.request_bytes + sub.size() * sizeof(ProfileId),
              options_.response_bytes * sub.size(),
              [&](IpsInstance& instance) {
                batch = instance.MultiQuery(
                    options_.caller, table,
                    std::span<const ProfileId>(sub.data(), sub.size()), spec);
                return batch.ok() ? Status::OK() : batch.status();
              });
          if (call_status.ok() && batch.ok()) {
            cache_hits.fetch_add(batch->cache_hits,
                                 std::memory_order_relaxed);
            for (size_t j = 0; j < slot_ids->size(); ++j) {
              SlotState& slot = slots[(*slot_ids)[j]];
              slot.status = batch->statuses[j];
              if (slot.status.ok()) {
                slot.done = true;
                slot.result = std::move(batch->results[j]);
              }
            }
          } else {
            // Batch-level failure (node down, quota, unknown table): every
            // slot in the sub-batch shares the cause.
            Status error = call_status.ok() ? batch.status() : call_status;
            if (error.IsResourceExhausted()) {
              saw_quota.store(true, std::memory_order_relaxed);
            }
            for (size_t s : *slot_ids) slots[s].status = error;
          }
        });
      }
      for (auto& worker : workers) worker.join();
      // Quota rejections are not retried: the server told us to back off,
      // and ring successors enforce the same per-caller budget.
      if (saw_quota.load(std::memory_order_relaxed)) quota_stop = true;
    }
  }

  // Gather: expand unique slots back to input order.
  MultiQueryResult out;
  out.results.resize(pids.size());
  out.statuses.assign(pids.size(), Status::OK());
  out.cache_hits = cache_hits.load(std::memory_order_relaxed);
  int64_t failed = 0;
  for (size_t i = 0; i < pids.size(); ++i) {
    SlotState& slot = slots[slot_of[i]];
    if (slot.done) {
      out.results[i] = slot.result;
    } else {
      out.statuses[i] = slot.status;
      ++failed;
    }
  }
  if (failed > 0) {
    metrics_->GetCounter("client.multi_read_errors")->Increment(failed);
  }
  return out;
}

Result<QueryResult> IpsClient::GetProfileTopK(
    const std::string& table, ProfileId pid, SlotId slot,
    std::optional<TypeId> type, const TimeRange& range, SortBy sort_by,
    ActionIndex sort_action, size_t k) {
  QuerySpec spec;
  spec.slot = slot;
  spec.type = type;
  spec.time_range = range;
  spec.sort_by = sort_by;
  spec.sort_action = sort_action;
  spec.k = k;
  return Query(table, pid, spec);
}

int64_t IpsClient::requests() const {
  return metrics_->GetCounter("client.read_requests")->Value() +
         metrics_->GetCounter("client.write_requests")->Value();
}

int64_t IpsClient::errors() const {
  return metrics_->GetCounter("client.read_errors")->Value() +
         metrics_->GetCounter("client.write_errors")->Value();
}

double IpsClient::ErrorRate() const {
  const int64_t total = requests();
  return total == 0 ? 0.0
                    : static_cast<double>(errors()) /
                          static_cast<double>(total);
}

}  // namespace ips
