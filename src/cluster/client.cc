#include "cluster/client.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <optional>
#include <thread>
#include <unordered_set>

#include "common/trace.h"

namespace ips {

size_t EstimateAddPayloadBytes(const std::vector<AddRecord>& records) {
  // Fixed envelope (caller, table, pid, batch framing) plus the encoded
  // fields of every record. Counts dominate for wide action vectors.
  size_t bytes = 64;
  for (const auto& r : records) {
    bytes += sizeof(r.timestamp) + sizeof(r.slot) + sizeof(r.type) +
             sizeof(r.fid) + r.counts.size() * sizeof(int64_t);
  }
  return bytes;
}

IpsClient::IpsClient(IpsClientOptions options, Deployment* deployment)
    : options_(std::move(options)),
      deployment_(deployment),
      metrics_(deployment->metrics()),
      retry_policy_(options_.retry),
      breakers_(options_.breaker) {
  RefreshView();
}

void IpsClient::RefreshView() {
  std::lock_guard<std::mutex> lock(mu_);
  rings_.clear();
  for (const auto& region : deployment_->region_names()) {
    std::vector<std::string> members;
    for (const auto& entry : deployment_->discovery().Snapshot(region)) {
      members.push_back(entry.instance_id);
    }
    rings_[region].SetMembers(members);
  }
  last_refresh_ms_ = deployment_->clock()->NowMs();
}

void IpsClient::MaybeRefresh() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const TimestampMs now = deployment_->clock()->NowMs();
    if (last_refresh_ms_ >= 0 &&
        now - last_refresh_ms_ < options_.refresh_interval_ms) {
      return;
    }
  }
  RefreshView();
}

std::vector<std::string> IpsClient::ReadCandidates(ProfileId pid,
                                                   const std::string& region,
                                                   int attempts) {
  std::vector<std::string> successors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = rings_.find(region);
    if (it == rings_.end()) return {};
    // Probe the ring a little deeper than `attempts` so filtering open
    // breakers still leaves a full candidate list when possible.
    const size_t probe =
        static_cast<size_t>(attempts) + (breakers_.enabled() ? 2 : 0);
    successors = it->second.LookupN(pid, probe);
  }
  if (!breakers_.enabled()) {
    if (successors.size() > static_cast<size_t>(attempts)) {
      successors.resize(static_cast<size_t>(attempts));
    }
    return successors;
  }
  const TimestampMs now = deployment_->clock()->NowMs();
  std::vector<std::string> usable;
  usable.reserve(static_cast<size_t>(attempts));
  int64_t skipped = 0;
  for (const auto& node_id : successors) {
    if (usable.size() >= static_cast<size_t>(attempts)) break;
    if (breakers_.Get(node_id)->AllowRequest(now)) {
      usable.push_back(node_id);
    } else {
      ++skipped;
    }
  }
  if (skipped > 0) {
    metrics_->GetCounter("client.breaker_skips")->Increment(skipped);
  }
  if (usable.empty() && !successors.empty()) {
    // Every successor's breaker is open. Refusing to try at all would turn
    // a flapping cluster into a guaranteed failure, so fall back to plain
    // ring order — the calls double as half-open probes.
    successors.resize(
        std::min(successors.size(), static_cast<size_t>(attempts)));
    return successors;
  }
  return usable;
}

bool IpsClient::PrepareRetry(const Status& last_error, const CallContext& ctx) {
  const auto delay = retry_policy_.NextRetryDelayMs(last_error);
  if (!delay.has_value()) {
    // Distinguish "error is terminal" from "budget said no": only the
    // latter is a policy intervention worth a counter.
    if (retry_policy_.enabled() && last_error.IsRetryable()) {
      metrics_->GetCounter("client.retry_budget_exhausted")->Increment();
    }
    return false;
  }
  const int64_t sleep_ms = *delay;
  if (ctx.has_deadline()) {
    const int64_t remaining = ctx.RemainingMs(deployment_->clock()->NowMs());
    // The backoff must leave headroom for the attempt itself: sleeping the
    // full remaining budget lands exactly on the deadline, guaranteeing a
    // dead-on-arrival attempt whose DeadlineExceeded outcome would then be
    // charged to a healthy node's breaker. Fail with the real error now.
    if (remaining <= sleep_ms) return false;
  }
  if (last_error.IsThrottled() && last_error.has_retry_after()) {
    metrics_->GetCounter("client.throttle_backoffs")->Increment();
  }
  metrics_->GetCounter("client.retries")->Increment();
  if (sleep_ms > 0) deployment_->clock()->SleepMs(sleep_ms);
  return true;
}

void IpsClient::RecordOutcome(const std::string& node_id,
                              const Status& status) {
  if (!breakers_.enabled()) return;
  CircuitBreaker* breaker = breakers_.Get(node_id);
  if (CircuitBreaker::IsNodeFault(status)) {
    breaker->RecordFailure(deployment_->clock()->NowMs());
  } else {
    breaker->RecordSuccess();
  }
}

Status IpsClient::AddProfile(const std::string& table, ProfileId pid,
                             TimestampMs timestamp, SlotId slot, TypeId type,
                             FeatureId fid, const CountVector& counts) {
  AddRecord record;
  record.timestamp = timestamp;
  record.slot = slot;
  record.type = type;
  record.fid = fid;
  record.counts = counts;
  return AddProfiles(table, pid, {record});
}

Status IpsClient::AddProfiles(const std::string& table, ProfileId pid,
                              const std::vector<AddRecord>& records) {
  return AddProfilesAs(options_.caller, table, pid, records);
}

bool IpsClient::HasTableAnywhere(const std::string& table) {
  MaybeRefresh();
  for (const auto& region : deployment_->region_names()) {
    for (auto* node : deployment_->NodesInRegion(region)) {
      if (!node->IsDown() && node->instance().HasTable(table)) return true;
    }
  }
  return false;
}

Status IpsClient::AddProfilesAs(const std::string& caller,
                                const std::string& table, ProfileId pid,
                                const std::vector<AddRecord>& records,
                                const CallContext& ctx, WriteAck* out_ack) {
  MaybeRefresh();
  metrics_->GetCounter("client.write_requests")->Increment();
  retry_policy_.OnRequestStart();

  // The transport cost model is size-proportional: charge the encoded size
  // of the record batch, not a fixed per-request constant.
  const size_t request_bytes = EstimateAddPayloadBytes(records);

  // Multi-region writing: every region gets the record on its owning node.
  // The retry policy gates *successor* attempts within a region; the region
  // fan-out itself is the write contract, not a retry.
  size_t regions_ok = 0;
  bool deadline_hit = false;
  Status last_error = Status::Unavailable("no live instance");
  for (const auto& region : deployment_->region_names()) {
    if (deadline_hit) break;
    Status region_status = Status::Unavailable("no live instance");
    const auto candidates =
        ReadCandidates(pid, region, options_.max_write_attempts);
    bool first_in_region = true;
    for (const auto& node_id : candidates) {
      IpsNode* node = deployment_->FindNode(node_id);
      if (node == nullptr) continue;
      if (ctx.Expired(deployment_->clock()->NowMs())) {
        metrics_->GetCounter("client.deadline_exceeded")->Increment();
        region_status = Status::DeadlineExceeded("client deadline expired");
        deadline_hit = true;
        break;
      }
      if (!first_in_region && retry_policy_.enabled() &&
          !PrepareRetry(region_status, ctx)) {
        break;
      }
      first_in_region = false;
      region_status = node->Call(
          ctx, request_bytes, /*response_bytes=*/64,
          [&](IpsInstance& instance) {
            return instance.AddProfiles(caller, table, pid, records, ctx);
          });
      RecordOutcome(node_id, region_status);
      if (region_status.ok()) break;
      // A hint-less quota rejection is a server decision, not a node fault:
      // stop hammering successors (they enforce the same quota). A load-shed
      // WITH a retry-after hint may continue — the next attempt's
      // PrepareRetry paces it by the hint without burning budget.
      if (region_status.IsResourceExhausted() &&
          !region_status.has_retry_after()) {
        break;
      }
    }
    if (region_status.ok()) {
      ++regions_ok;
    } else {
      last_error = region_status;
      metrics_->GetCounter("client.write_region_errors")->Increment();
    }
  }
  // A deadline can expire before later regions were even attempted; they
  // still count as not-acked — the ack reports coverage of the full
  // deployment, not of the subset we got around to.
  const size_t regions_total = deployment_->region_names().size();
  if (out_ack != nullptr) {
    out_ack->regions_ok = regions_ok;
    out_ack->regions_total = regions_total;
  }
  if (regions_ok == 0) {
    metrics_->GetCounter("client.write_errors")->Increment();
    // Surface the representative cause: callers distinguish quota pacing
    // (back off and retry) from unavailability (fail over / alert).
    return last_error;
  }
  if (regions_ok < regions_total) {
    // Partial multi-region write: acknowledged (weak-consistency contract)
    // but NOT silent — the missed regions serve stale reads until repair.
    metrics_->GetCounter("client.write_partial_regions")->Increment();
  }
  return Status::OK();
}

Result<MultiAddResult> IpsClient::MultiAddAs(
    const std::string& caller, const std::string& table,
    const std::vector<MultiAddItem>& items, const CallContext& ctx) {
  if (items.empty()) return Status::InvalidArgument("empty add batch");
  MaybeRefresh();
  metrics_->GetCounter("client.multi_write_requests")->Increment();
  metrics_->GetCounter("client.multi_write_pids")
      ->Increment(static_cast<int64_t>(items.size()));
  retry_policy_.OnRequestStart();

  // Root span covering the whole multi-region scatter-gather; workers pass
  // the derived context to node->Call so per-node spans parent to it.
  TraceInstallScope trace_install(ctx.trace);
  ScopedSpan root_span("client.multi_add");
  CallContext call_ctx = ctx;
  call_ctx.trace = CurrentTrace();

  struct ItemState {
    size_t regions_ok = 0;
    bool done_region = false;  // acknowledged in the region being processed
    Status status = Status::Unavailable("no live instance");
  };
  std::vector<ItemState> states(items.size());
  bool stop_all = false;

  // Multi-region writing, one region at a time: within a region the items
  // are grouped by ring owner and each group goes out as ONE MultiAdd RPC,
  // workers in parallel (they write disjoint item states — no lock). The
  // region fan-out itself is the write contract, not a retry; the retry
  // policy gates successor rounds *within* a region, like AddProfilesAs.
  const std::vector<std::string> regions = deployment_->region_names();
  for (const auto& region : regions) {
    if (stop_all) break;
    std::vector<std::vector<std::string>> candidates(items.size());
    for (size_t s = 0; s < items.size(); ++s) {
      states[s].done_region = false;
      candidates[s] =
          ReadCandidates(items[s].pid, region, options_.max_write_attempts);
    }
    bool quota_stop = false;
    bool first_in_region = true;
    for (int attempt = 0;
         attempt < options_.max_write_attempts && !quota_stop; ++attempt) {
      const TimestampMs round_now = deployment_->clock()->NowMs();
      if (ctx.Expired(round_now)) {
        metrics_->GetCounter("client.deadline_exceeded")->Increment();
        for (auto& state : states) {
          if (!state.done_region && state.regions_ok == 0) {
            state.status = Status::DeadlineExceeded("client deadline expired");
          }
        }
        stop_all = true;
        break;
      }
      // Group unfinished items by this attempt's ring owner. std::map keeps
      // the scatter order deterministic.
      std::map<std::string, std::vector<size_t>> by_node;
      for (size_t s = 0; s < items.size(); ++s) {
        if (states[s].done_region) continue;
        if (static_cast<size_t>(attempt) < candidates[s].size()) {
          by_node[candidates[s][attempt]].push_back(s);
        }
      }
      if (by_node.empty()) break;

      // Successor rounds need a grant from the retry policy; refusal stops
      // this region's retries but later regions still get their fan-out.
      if (!first_in_region && retry_policy_.enabled()) {
        Status round_error = Status::Unavailable("no live instance");
        for (const auto& state : states) {
          if (!state.done_region) {
            round_error = state.status;
            break;
          }
        }
        if (!PrepareRetry(round_error, ctx)) break;
      }
      first_in_region = false;

      std::atomic<bool> saw_quota{false};
      std::vector<std::thread> workers;
      workers.reserve(by_node.size());
      for (auto& group : by_node) {
        IpsNode* node = deployment_->FindNode(group.first);
        if (node == nullptr) continue;
        if (breakers_.enabled() &&
            !breakers_.Get(group.first)->AllowRequest(round_now)) {
          metrics_->GetCounter("client.breaker_skips")
              ->Increment(static_cast<int64_t>(group.second.size()));
          for (size_t s : group.second) {
            states[s].status = Status::Unavailable("circuit breaker open");
          }
          continue;
        }
        const std::string* node_id = &group.first;
        const std::vector<size_t>* item_ids = &group.second;
        workers.emplace_back([&, node, node_id, item_ids] {
          std::vector<MultiAddItem> sub;
          sub.reserve(item_ids->size());
          size_t request_bytes = 0;
          for (size_t s : *item_ids) {
            sub.push_back(items[s]);
            request_bytes += EstimateAddPayloadBytes(items[s].records);
          }
          Result<MultiAddResult> batch = Status::Unavailable("unset");
          Status call_status = node->Call(
              call_ctx, request_bytes,
              /*response_bytes=*/64 * sub.size(),
              [&](IpsInstance& instance) {
                batch = instance.MultiAdd(caller, table, sub, call_ctx);
                return batch.ok() ? Status::OK() : batch.status();
              });
          if (call_status.ok() && batch.ok()) {
            RecordOutcome(*node_id, Status::OK());
            for (size_t j = 0; j < item_ids->size(); ++j) {
              ItemState& state = states[(*item_ids)[j]];
              if (batch->statuses[j].ok()) {
                state.done_region = true;
              } else {
                state.status = batch->statuses[j];
              }
            }
          } else {
            // Batch-level failure (node down, quota, unknown table): every
            // item in the sub-batch shares the cause.
            Status error = call_status.ok() ? batch.status() : call_status;
            RecordOutcome(*node_id, error);
            // Hint-less quota rejections stop the region's retries below; a
            // load-shed WITH a retry-after hint is re-offered on the next
            // round, paced by PrepareRetry honoring the hint.
            if (error.IsResourceExhausted() && !error.has_retry_after()) {
              saw_quota.store(true, std::memory_order_relaxed);
            }
            for (size_t s : *item_ids) states[s].status = error;
          }
        });
      }
      for (auto& worker : workers) worker.join();
      // Quota rejections are not retried within the region: successors
      // enforce the same per-caller budget.
      if (saw_quota.load(std::memory_order_relaxed)) quota_stop = true;
    }
    for (auto& state : states) {
      if (state.done_region) ++state.regions_ok;
    }
  }

  // Gather: an item is acknowledged when at least one region accepted it
  // (the weak-consistency write contract); partial region coverage is
  // surfaced through the counter rather than silently dropped.
  MultiAddResult out;
  out.statuses.assign(items.size(), Status::OK());
  int64_t failed = 0;
  int64_t partial = 0;
  for (size_t s = 0; s < items.size(); ++s) {
    if (states[s].regions_ok == 0) {
      out.statuses[s] = states[s].status;
      ++failed;
    } else {
      ++out.ok_items;
      if (states[s].regions_ok < regions.size()) ++partial;
    }
  }
  if (failed > 0) {
    metrics_->GetCounter("client.multi_write_errors")->Increment(failed);
  }
  if (partial > 0) {
    metrics_->GetCounter("client.write_partial_regions")->Increment(partial);
  }
  return out;
}

Result<QueryResult> IpsClient::Query(const std::string& table, ProfileId pid,
                                     const QuerySpec& spec,
                                     const CallContext& ctx) {
  // Root span for the whole client-side request (attempts, backoff, RPC).
  // Children recorded below (rpc.transfer, server.query, ...) parent to it
  // via the derived context handed to node->Call.
  TraceInstallScope trace_install(ctx.trace);
  ScopedSpan root_span("client.query");
  CallContext call_ctx = ctx;
  call_ctx.trace = CurrentTrace();

  // Client-side dispatch machinery — discovery refresh, routing, retry
  // policy, outcome bookkeeping — is real per-request work. It reports as
  // rpc.dispatch so the disjoint-stage sum accounts for it; the span is
  // suspended around node->Call so it never overlaps rpc.transfer or any
  // server-side stage.
  std::optional<ScopedSpan> dispatch_span;
  dispatch_span.emplace("rpc.dispatch");
  MaybeRefresh();
  metrics_->GetCounter("client.read_requests")->Increment();
  retry_policy_.OnRequestStart();

  // The result slot and handler are built once, inside the dispatch span, and
  // reused across attempts: the std::function allocation would otherwise land
  // in the untraced window while the span is suspended around node->Call.
  Result<QueryResult> query_result = Status::Unavailable("unset");
  const std::function<Status(IpsInstance&)> handler =
      [&](IpsInstance& instance) {
        query_result =
            instance.Query(options_.caller, table, pid, spec, call_ctx);
        return query_result.ok() ? Status::OK() : query_result.status();
      };

  // Region preference: local first, then failover regions in order.
  std::vector<std::string> regions;
  if (!options_.local_region.empty()) regions.push_back(options_.local_region);
  for (const auto& r : options_.failover_regions) regions.push_back(r);
  if (regions.empty()) regions = deployment_->region_names();

  Status last_error = Status::Unavailable("no live instance");
  bool first_attempt = true;
  // Server-paced (retry-after) re-offers allowed for this request. The cap
  // keeps a deadline-less request from pacing against a shedding server
  // forever; with a deadline, PrepareRetry's headroom check bounds it too.
  int throttle_retries = options_.max_read_attempts;
  for (const auto& region : regions) {
    const auto candidates =
        ReadCandidates(pid, region, options_.max_read_attempts);
    for (size_t ci = 0; ci < candidates.size();) {
      const std::string& node_id = candidates[ci];
      IpsNode* node = deployment_->FindNode(node_id);
      if (node == nullptr) {
        ++ci;
        continue;
      }
      if (ctx.Expired(deployment_->clock()->NowMs())) {
        metrics_->GetCounter("client.deadline_exceeded")->Increment();
        metrics_->GetCounter("client.read_errors")->Increment();
        return Status::DeadlineExceeded("client deadline expired");
      }
      // Attempts after the first need a grant from the retry policy:
      // terminal errors and an exhausted budget both stop the loop.
      if (!first_attempt && retry_policy_.enabled() &&
          !PrepareRetry(last_error, ctx)) {
        metrics_->GetCounter("client.read_errors")->Increment();
        return last_error;
      }
      first_attempt = false;
      query_result = Status::Unavailable("unset");
      dispatch_span.reset();
      Status call_status = node->Call(call_ctx, options_.request_bytes,
                                      options_.response_bytes, handler);
      dispatch_span.emplace("rpc.dispatch");
      if (call_status.ok() && query_result.ok()) {
        RecordOutcome(node_id, Status::OK());
        if (query_result->degraded) {
          metrics_->GetCounter("client.degraded_reads")->Increment();
        }
        return query_result;
      }
      last_error = call_status.ok() ? query_result.status() : call_status;
      RecordOutcome(node_id, last_error);
      if (last_error.IsThrottled()) {
        // A load-shed with a retry-after hint means "come back to ME after
        // the hint" — re-offer to the SAME node after the server-paced
        // backoff (PrepareRetry grants the hint without burning budget).
        // A hint-less quota rejection stays terminal: successors enforce
        // the same per-caller budget.
        if (last_error.has_retry_after() && throttle_retries > 0) {
          --throttle_retries;
          continue;
        }
        break;
      }
      ++ci;
    }
    if (last_error.IsResourceExhausted()) break;
  }
  metrics_->GetCounter("client.read_errors")->Increment();
  return last_error;
}

Result<MultiQueryResult> IpsClient::MultiQuery(const std::string& table,
                                               std::span<const ProfileId> pids,
                                               const QuerySpec& spec,
                                               const CallContext& ctx) {
  if (pids.empty()) return Status::InvalidArgument("empty pid batch");
  MaybeRefresh();
  metrics_->GetCounter("client.multi_read_requests")->Increment();
  metrics_->GetCounter("client.multi_read_pids")
      ->Increment(static_cast<int64_t>(pids.size()));
  retry_policy_.OnRequestStart();

  // Root span covering the whole scatter-gather. Workers pass the derived
  // context to node->Call, which re-installs it on the worker thread, so the
  // parallel per-node spans all parent to this root.
  TraceInstallScope trace_install(ctx.trace);
  ScopedSpan root_span("client.multi_query");
  CallContext call_ctx = ctx;
  call_ctx.trace = CurrentTrace();

  // Deduplicate while preserving first-seen order: duplicate candidates cost
  // one lookup and fan back out on reassembly.
  std::vector<ProfileId> unique;
  std::vector<size_t> slot_of(pids.size());
  {
    std::unordered_map<ProfileId, size_t> seen;
    for (size_t i = 0; i < pids.size(); ++i) {
      auto [it, inserted] = seen.try_emplace(pids[i], unique.size());
      if (inserted) unique.push_back(pids[i]);
      slot_of[i] = it->second;
    }
  }

  struct SlotState {
    bool done = false;
    Status status = Status::Unavailable("no live instance");
    QueryResult result;
  };
  std::vector<SlotState> slots(unique.size());
  std::atomic<size_t> cache_hits{0};
  bool quota_stop = false;
  bool stop_all = false;

  // Region preference: local first, then failover regions in order.
  std::vector<std::string> regions;
  if (!options_.local_region.empty()) regions.push_back(options_.local_region);
  for (const auto& r : options_.failover_regions) regions.push_back(r);
  if (regions.empty()) regions = deployment_->region_names();

  bool first_round = true;
  for (const auto& region : regions) {
    if (quota_stop || stop_all) break;
    // Ring candidates for every unfinished slot, computed once per region.
    std::vector<std::vector<std::string>> candidates(unique.size());
    for (size_t s = 0; s < unique.size(); ++s) {
      if (!slots[s].done) {
        candidates[s] =
            ReadCandidates(unique[s], region, options_.max_read_attempts);
      }
    }
    for (int attempt = 0; attempt < options_.max_read_attempts && !quota_stop;
         ++attempt) {
      const TimestampMs round_now = deployment_->clock()->NowMs();
      if (ctx.Expired(round_now)) {
        metrics_->GetCounter("client.deadline_exceeded")->Increment();
        for (auto& slot : slots) {
          if (!slot.done) {
            slot.status = Status::DeadlineExceeded("client deadline expired");
          }
        }
        stop_all = true;
        break;
      }
      // Group unfinished slots by this attempt's ring owner. std::map keeps
      // the scatter order deterministic.
      std::map<std::string, std::vector<size_t>> by_node;
      for (size_t s = 0; s < unique.size(); ++s) {
        if (slots[s].done) continue;
        if (static_cast<size_t>(attempt) < candidates[s].size()) {
          by_node[candidates[s][attempt]].push_back(s);
        }
      }
      if (by_node.empty()) break;

      // Rounds after the first need a grant from the retry policy. The
      // representative error is the first unfinished slot's status from the
      // previous round.
      if (!first_round && retry_policy_.enabled()) {
        Status round_error = Status::Unavailable("no live instance");
        for (const auto& slot : slots) {
          if (!slot.done) {
            round_error = slot.status;
            break;
          }
        }
        if (!PrepareRetry(round_error, ctx)) {
          stop_all = true;
          break;
        }
      }
      first_round = false;

      // Scatter: one sub-batch RPC per owning node, in parallel. Each worker
      // writes a disjoint set of slots, so no lock is needed. Nodes whose
      // breaker re-opened since candidate selection are skipped here; their
      // slots stay unfinished and move to the next ring successor.
      std::atomic<bool> saw_quota{false};
      std::vector<std::thread> workers;
      workers.reserve(by_node.size());
      for (auto& group : by_node) {
        IpsNode* node = deployment_->FindNode(group.first);
        if (node == nullptr) continue;
        if (breakers_.enabled() &&
            !breakers_.Get(group.first)->AllowRequest(round_now)) {
          metrics_->GetCounter("client.breaker_skips")
              ->Increment(static_cast<int64_t>(group.second.size()));
          for (size_t s : group.second) {
            slots[s].status = Status::Unavailable("circuit breaker open");
          }
          continue;
        }
        const std::string* node_id = &group.first;
        const std::vector<size_t>* slot_ids = &group.second;
        workers.emplace_back([&, node, node_id, slot_ids] {
          std::vector<ProfileId> sub;
          sub.reserve(slot_ids->size());
          for (size_t s : *slot_ids) sub.push_back(unique[s]);
          Result<MultiQueryResult> batch = Status::Unavailable("unset");
          Status call_status = node->Call(
              call_ctx,
              options_.request_bytes + sub.size() * sizeof(ProfileId),
              options_.response_bytes * sub.size(),
              [&](IpsInstance& instance) {
                batch = instance.MultiQuery(
                    options_.caller, table,
                    std::span<const ProfileId>(sub.data(), sub.size()), spec,
                    call_ctx);
                return batch.ok() ? Status::OK() : batch.status();
              });
          if (call_status.ok() && batch.ok()) {
            RecordOutcome(*node_id, Status::OK());
            cache_hits.fetch_add(batch->cache_hits,
                                 std::memory_order_relaxed);
            for (size_t j = 0; j < slot_ids->size(); ++j) {
              SlotState& slot = slots[(*slot_ids)[j]];
              slot.status = batch->statuses[j];
              if (slot.status.ok()) {
                slot.done = true;
                slot.result = std::move(batch->results[j]);
              }
            }
          } else {
            // Batch-level failure (node down, quota, unknown table): every
            // slot in the sub-batch shares the cause.
            Status error = call_status.ok() ? batch.status() : call_status;
            RecordOutcome(*node_id, error);
            // Hint-less quota rejections stop the scatter below; a load-shed
            // WITH a retry-after hint is re-offered on the next round, paced
            // by PrepareRetry honoring the hint.
            if (error.IsResourceExhausted() && !error.has_retry_after()) {
              saw_quota.store(true, std::memory_order_relaxed);
            }
            for (size_t s : *slot_ids) slots[s].status = error;
          }
        });
      }
      for (auto& worker : workers) worker.join();
      // Quota rejections are not retried: the server told us to back off,
      // and ring successors enforce the same per-caller budget.
      if (saw_quota.load(std::memory_order_relaxed)) quota_stop = true;
    }
  }

  // Gather: expand unique slots back to input order.
  MultiQueryResult out;
  out.results.resize(pids.size());
  out.statuses.assign(pids.size(), Status::OK());
  out.cache_hits = cache_hits.load(std::memory_order_relaxed);
  int64_t failed = 0;
  for (size_t i = 0; i < pids.size(); ++i) {
    SlotState& slot = slots[slot_of[i]];
    if (slot.done) {
      out.results[i] = slot.result;
      if (slot.result.degraded) ++out.degraded;
    } else {
      out.statuses[i] = slot.status;
      ++failed;
    }
  }
  if (out.degraded > 0) {
    metrics_->GetCounter("client.degraded_reads")
        ->Increment(static_cast<int64_t>(out.degraded));
  }
  if (failed > 0) {
    metrics_->GetCounter("client.multi_read_errors")->Increment(failed);
  }
  return out;
}

Result<QueryResult> IpsClient::GetProfileTopK(
    const std::string& table, ProfileId pid, SlotId slot,
    std::optional<TypeId> type, const TimeRange& range, SortBy sort_by,
    ActionIndex sort_action, size_t k) {
  QuerySpec spec;
  spec.slot = slot;
  spec.type = type;
  spec.time_range = range;
  spec.sort_by = sort_by;
  spec.sort_action = sort_action;
  spec.k = k;
  return Query(table, pid, spec);
}

int64_t IpsClient::requests() const {
  return metrics_->GetCounter("client.read_requests")->Value() +
         metrics_->GetCounter("client.write_requests")->Value();
}

int64_t IpsClient::errors() const {
  return metrics_->GetCounter("client.read_errors")->Value() +
         metrics_->GetCounter("client.write_errors")->Value();
}

double IpsClient::ErrorRate() const {
  const int64_t total = requests();
  return total == 0 ? 0.0
                    : static_cast<double>(errors()) /
                          static_cast<double>(total);
}

}  // namespace ips
