#include "cluster/rpc.h"

#include <thread>

namespace ips {

namespace {

void BurnMicros(int64_t us) {
  if (us <= 0) return;
  if (us >= 1000) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
    return;
  }
  const int64_t deadline = MonotonicNanos() + us * 1000;
  while (MonotonicNanos() < deadline) {
    // spin
  }
}

}  // namespace

int64_t Channel::DrawOneWayDelayUs(size_t payload_bytes) {
  int64_t delay = options_.base_latency_us;
  if (options_.tail_latency_us > 0) {
    std::lock_guard<std::mutex> lock(rng_mu_);
    delay += static_cast<int64_t>(
        rng_.Exponential(static_cast<double>(options_.tail_latency_us)));
  }
  if (options_.per_kib_us > 0) {
    delay +=
        options_.per_kib_us * static_cast<int64_t>(payload_bytes / 1024);
  }
  return delay;
}

Status Channel::Call(size_t request_bytes, size_t response_bytes,
                     const std::function<Status()>& handler) {
  if (partitioned_.load(std::memory_order_relaxed)) {
    return Status::Unavailable("network partition");
  }
  {
    std::lock_guard<std::mutex> lock(rng_mu_);
    if (options_.drop_probability > 0.0 &&
        rng_.Bernoulli(options_.drop_probability)) {
      return Status::Unavailable("request dropped");
    }
  }
  BurnMicros(DrawOneWayDelayUs(request_bytes));
  Status status = handler();
  BurnMicros(DrawOneWayDelayUs(response_bytes));
  return status;
}

void Channel::SetDropProbability(double p) {
  std::lock_guard<std::mutex> lock(rng_mu_);
  options_.drop_probability = p;
}

}  // namespace ips
