#include "cluster/rpc.h"

#include <optional>
#include <thread>

#include "common/trace.h"

namespace ips {

namespace {

void BurnMicros(int64_t us) {
  if (us <= 0) return;
  if (us >= 1000) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
    return;
  }
  const int64_t deadline = MonotonicNanos() + us * 1000;
  while (MonotonicNanos() < deadline) {
    // spin
  }
}

}  // namespace

int64_t Channel::DrawOneWayDelayUs(size_t payload_bytes) {
  int64_t delay = options_.base_latency_us;
  if (options_.tail_latency_us > 0) {
    std::lock_guard<std::mutex> lock(rng_mu_);
    delay += static_cast<int64_t>(
        rng_.Exponential(static_cast<double>(options_.tail_latency_us)));
  }
  if (options_.per_kib_us > 0) {
    delay +=
        options_.per_kib_us * static_cast<int64_t>(payload_bytes / 1024);
  }
  return delay;
}

Status Channel::Call(const CallContext& ctx, size_t request_bytes,
                     size_t response_bytes,
                     const std::function<Status()>& handler) {
  // Scatter-gather clients dispatch Call on worker threads, so the trace
  // context must be (re)installed here for the spans below and for every
  // layer the handler reaches.
  TraceInstallScope trace_install(ctx.trace);
  // Each leg's span covers the whole transport path — fault/deadline
  // checks and the delay draw, not just the burn — suspended around the
  // handler so it stays disjoint from the server-side stages.
  std::optional<ScopedSpan> transfer;
  transfer.emplace("rpc.transfer");
  if (partitioned_.load(std::memory_order_relaxed)) {
    return Status::Unavailable("network partition");
  }
  {
    std::lock_guard<std::mutex> lock(rng_mu_);
    if (options_.drop_probability > 0.0 &&
        rng_.Bernoulli(options_.drop_probability)) {
      return Status::Unavailable("request dropped");
    }
  }
  const bool enforce = clock_ != nullptr && ctx.has_deadline();
  if (enforce && ctx.Expired(clock_->NowMs())) {
    return Status::DeadlineExceeded("deadline expired before send");
  }
  const int64_t request_delay_us = DrawOneWayDelayUs(request_bytes);
  if (enforce &&
      request_delay_us / 1000 >= ctx.RemainingMs(clock_->NowMs())) {
    // The request would reach the server after the caller stopped waiting;
    // fail fast instead of burning the latency.
    return Status::DeadlineExceeded("request latency exceeds deadline");
  }
  BurnMicros(request_delay_us);
  transfer.reset();
  Status status = handler();
  transfer.emplace("rpc.transfer");
  const int64_t response_delay_us = DrawOneWayDelayUs(response_bytes);
  if (enforce &&
      response_delay_us / 1000 >= ctx.RemainingMs(clock_->NowMs())) {
    // The server did the work, but the reply lands too late to matter.
    return Status::DeadlineExceeded("response latency exceeds deadline");
  }
  BurnMicros(response_delay_us);
  return status;
}

void Channel::SetDropProbability(double p) {
  std::lock_guard<std::mutex> lock(rng_mu_);
  options_.drop_probability = p;
}

}  // namespace ips
