#include "cluster/deployment.h"

namespace ips {

IpsNode::IpsNode(std::string node_id, std::string region,
                 IpsInstanceOptions instance_options, KvStore* kv,
                 Clock* clock, ChannelOptions channel_options,
                 MetricsRegistry* metrics)
    : node_id_(std::move(node_id)), region_(std::move(region)) {
  instance_options.instance_id = node_id_;
  instance_ = std::make_unique<IpsInstance>(instance_options, kv, clock,
                                            metrics);
  channel_options.seed = Fnv1a(node_id_) | 1;
  channel_ = std::make_unique<Channel>(channel_options, clock);
}

Status IpsNode::Call(const CallContext& ctx, size_t request_bytes,
                     size_t response_bytes,
                     const std::function<Status(IpsInstance&)>& handler) {
  if (down_.load(std::memory_order_relaxed)) {
    return Status::Unavailable("node " + node_id_ + " down");
  }
  return channel_->Call(ctx, request_bytes, response_bytes, [&] {
    if (down_.load(std::memory_order_relaxed)) {
      return Status::Unavailable("node " + node_id_ + " down");
    }
    return handler(*instance_);
  });
}

Deployment::Deployment(DeploymentOptions options, Clock* clock,
                       MetricsRegistry* metrics)
    : options_(std::move(options)),
      clock_(clock),
      metrics_(metrics != nullptr ? metrics : &owned_metrics_),
      discovery_(clock, options_.discovery_ttl_ms) {
  // One replicated KV for the whole deployment: primary region(s) write the
  // master, the i-th non-primary region reads slave i.
  ReplicatedKvOptions kv_options = options_.kv;
  size_t num_secondary = 0;
  for (const auto& r : options_.regions) {
    if (!r.is_primary) ++num_secondary;
  }
  kv_options.num_slaves = std::max<size_t>(1, num_secondary);
  kv_ = std::make_unique<ReplicatedKv>(kv_options, clock);

  size_t slave_index = 0;
  uint64_t endpoint = 0;
  for (const auto& region : options_.regions) {
    region_names_.push_back(region.name);
    const size_t region_slave = region.is_primary ? 0 : slave_index;
    KvStore* region_kv =
        region.is_primary ? kv_->master() : kv_->slave(slave_index++);
    IpsInstanceOptions instance_options = options_.instance;
    // Only primary-region instances persist to the master KV cluster
    // (Fig 15); secondary regions read their local slave and never write.
    instance_options.persist_writes = region.is_primary;
    // Degraded reads: when the region's own KV cluster is unavailable,
    // loads fall back to the other side of the replication pair (master ->
    // slave, slave -> master) and are flagged stale-tolerant.
    instance_options.persistence.fallback_kv =
        options_.enable_degraded_fallback
            ? kv_->read_fallback(region.is_primary, region_slave)
            : nullptr;
    for (size_t i = 0; i < region.num_nodes; ++i) {
      const std::string node_id =
          region.name + "/ips-" + std::to_string(i);
      auto node = std::make_unique<IpsNode>(node_id, region.name,
                                            instance_options, region_kv,
                                            clock, options_.channel,
                                            metrics_);
      discovery_.Register(node_id, region.name, endpoint++);
      nodes_.push_back(std::move(node));
    }
  }
}

Status Deployment::CreateTableEverywhere(const TableSchema& schema) {
  for (auto& node : nodes_) {
    IPS_RETURN_IF_ERROR(node->instance().CreateTable(schema));
  }
  return Status::OK();
}

std::vector<IpsNode*> Deployment::NodesInRegion(const std::string& region) {
  std::vector<IpsNode*> out;
  for (auto& node : nodes_) {
    if (node->region() == region) out.push_back(node.get());
  }
  return out;
}

IpsNode* Deployment::FindNode(const std::string& node_id) {
  for (auto& node : nodes_) {
    if (node->node_id() == node_id) return node.get();
  }
  return nullptr;
}

void Deployment::FailRegion(const std::string& region) {
  for (auto& node : nodes_) {
    if (node->region() == region) {
      node->SetDown(true);
      discovery_.Deregister(node->node_id());
    }
  }
}

void Deployment::RecoverRegion(const std::string& region) {
  for (auto& node : nodes_) {
    if (node->region() == region) {
      node->SetDown(false);
      discovery_.Register(node->node_id(), node->region(), 0);
    }
  }
}

void Deployment::HeartbeatAll() {
  for (auto& node : nodes_) {
    if (!node->IsDown()) discovery_.Heartbeat(node->node_id());
  }
}

}  // namespace ips
