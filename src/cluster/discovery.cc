#include "cluster/discovery.h"

namespace ips {

void DiscoveryService::Register(const std::string& instance_id,
                                const std::string& region,
                                uint64_t endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceEntry entry;
  entry.instance_id = instance_id;
  entry.region = region;
  entry.endpoint = endpoint;
  entry.last_heartbeat_ms = clock_->NowMs();
  entries_[instance_id] = entry;
}

void DiscoveryService::Deregister(const std::string& instance_id) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(instance_id);
}

void DiscoveryService::Heartbeat(const std::string& instance_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(instance_id);
  if (it != entries_.end()) {
    it->second.last_heartbeat_ms = clock_->NowMs();
  }
}

std::vector<ServiceEntry> DiscoveryService::Snapshot(
    const std::string& region) const {
  const TimestampMs now = clock_->NowMs();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ServiceEntry> out;
  for (const auto& [id, entry] : entries_) {
    if (now - entry.last_heartbeat_ms > ttl_ms_) continue;
    if (!region.empty() && entry.region != region) continue;
    out.push_back(entry);
  }
  return out;
}

}  // namespace ips
