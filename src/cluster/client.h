// Unified IPS client (Section III): the single library every upstream
// application uses. It refreshes the instance list from service discovery
// periodically, routes each profile id with consistent hashing, retries
// failed calls on ring successors, prefers the local region for reads, and
// fans writes out to every region (Fig 15). Client-observed errors feed the
// error-rate metric of Fig 17.
#ifndef IPS_CLUSTER_CLIENT_H_
#define IPS_CLUSTER_CLIENT_H_

#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/circuit_breaker.h"
#include "cluster/consistent_hash.h"
#include "cluster/deployment.h"
#include "cluster/retry_policy.h"
#include "common/call_context.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "query/query.h"

namespace ips {

struct IpsClientOptions {
  std::string caller = "default";
  std::string local_region;
  /// Region preference order after the local one (failover targets).
  std::vector<std::string> failover_regions;
  /// Attempts per read, each on the next ring successor.
  int max_read_attempts = 2;
  /// Attempts per write per region.
  int max_write_attempts = 2;
  /// Discovery view refresh interval (simulated time).
  int64_t refresh_interval_ms = 2000;
  /// Estimated request/response payloads for the transport cost model.
  size_t request_bytes = 256;
  size_t response_bytes = 2048;
  /// Deadline applied to requests whose caller passes no explicit
  /// CallContext; 0 disables (no deadline).
  int64_t default_timeout_ms = 0;
  /// Retry classification / backoff / budget. Attempts beyond the first are
  /// granted by this policy; disabling it restores blind successor loops.
  RetryPolicyOptions retry;
  /// Per-node circuit breaking, consulted during candidate selection.
  CircuitBreakerOptions breaker;
};

/// Per-region outcome of a multi-region write. A write is acknowledged when
/// at least one region accepted it, but regions_ok < regions_total means
/// some region silently missed the update (its readers serve stale data
/// until replication repair) — callers that care must check `complete()`.
struct WriteAck {
  size_t regions_ok = 0;
  size_t regions_total = 0;
  bool complete() const { return regions_ok == regions_total; }
};

/// Estimated wire size of an encoded add-record batch: the size-proportional
/// transport cost model (Table II) has to see the real payload, not a fixed
/// per-request constant, or large writes are charged like small ones.
size_t EstimateAddPayloadBytes(const std::vector<AddRecord>& records);

class IpsClient {
 public:
  IpsClient(IpsClientOptions options, Deployment* deployment);

  /// Write path: the record is sent to the owning instance in *every*
  /// region (multi-region writing). Succeeds when at least one region
  /// acknowledged; per-region failures are counted but tolerated, matching
  /// the weak-consistency contract.
  Status AddProfile(const std::string& table, ProfileId pid,
                    TimestampMs timestamp, SlotId slot, TypeId type,
                    FeatureId fid, const CountVector& counts);

  Status AddProfiles(const std::string& table, ProfileId pid,
                     const std::vector<AddRecord>& records);

  /// AddProfiles under an explicit caller identity (e.g. a bulk-import job
  /// writing under its own quota while sharing the client plumbing).
  Status AddProfilesAs(const std::string& caller, const std::string& table,
                       ProfileId pid, const std::vector<AddRecord>& records) {
    return AddProfilesAs(caller, table, pid, records, DefaultContext());
  }

  /// `out_ack`, when non-null, reports how many regions accepted the write;
  /// a partial multi-region write still returns OK (weak-consistency
  /// contract) but is visible through the ack and the
  /// `client.write_partial_regions` counter.
  Status AddProfilesAs(const std::string& caller, const std::string& table,
                       ProfileId pid, const std::vector<AddRecord>& records,
                       const CallContext& ctx, WriteAck* out_ack = nullptr);

  /// Batched write path (mirror of MultiQuery): items are grouped by owning
  /// instance on each region's ring and each group goes out as ONE MultiAdd
  /// RPC — sub-batches fan out to their owners in parallel, per region, and
  /// per-item statuses reassemble in input order. An item is OK when at
  /// least one region accepted it; items accepted by only some regions bump
  /// `client.write_partial_regions`. Retries regroup unfinished items by
  /// ring successor within each region under the usual retry policy /
  /// breaker gates.
  Result<MultiAddResult> MultiAdd(const std::string& table,
                                  const std::vector<MultiAddItem>& items) {
    return MultiAddAs(options_.caller, table, items, DefaultContext());
  }

  Result<MultiAddResult> MultiAdd(const std::string& table,
                                  const std::vector<MultiAddItem>& items,
                                  const CallContext& ctx) {
    return MultiAddAs(options_.caller, table, items, ctx);
  }

  Result<MultiAddResult> MultiAddAs(const std::string& caller,
                                    const std::string& table,
                                    const std::vector<MultiAddItem>& items,
                                    const CallContext& ctx);

  /// True when some live node in any region has the table (pre-flight check
  /// for batch jobs).
  bool HasTableAnywhere(const std::string& table);

  /// Read path: local region first, ring successor retries, then failover
  /// regions. Attempts after the first are granted by the retry policy
  /// (classification + budget) and separated by jittered backoff; nodes
  /// with an open circuit breaker are skipped at candidate selection.
  Result<QueryResult> Query(const std::string& table, ProfileId pid,
                            const QuerySpec& spec) {
    return Query(table, pid, spec, DefaultContext());
  }

  Result<QueryResult> Query(const std::string& table, ProfileId pid,
                            const QuerySpec& spec, const CallContext& ctx);

  /// Batched read path (the serving hot path): pids are deduplicated,
  /// grouped by owning instance on the consistent-hash ring, and each group
  /// goes out as ONE MultiQuery RPC — sub-batches fan out to their owners in
  /// parallel and reassemble in input order with per-pid statuses. Retries
  /// regroup unfinished pids by ring successor, then failover regions, same
  /// policy as single-profile Query. Duplicate pids share one lookup but
  /// each occurrence gets its own result slot.
  Result<MultiQueryResult> MultiQuery(const std::string& table,
                                      std::span<const ProfileId> pids,
                                      const QuerySpec& spec) {
    return MultiQuery(table, pids, spec, DefaultContext());
  }

  Result<MultiQueryResult> MultiQuery(const std::string& table,
                                      std::span<const ProfileId> pids,
                                      const QuerySpec& spec,
                                      const CallContext& ctx);

  Result<QueryResult> GetProfileTopK(const std::string& table, ProfileId pid,
                                     SlotId slot, std::optional<TypeId> type,
                                     const TimeRange& range, SortBy sort_by,
                                     ActionIndex sort_action, size_t k);

  /// Forces a discovery refresh now (tests; normally interval-driven).
  void RefreshView();

  /// Observability: client-side request/error counters.
  int64_t requests() const;
  int64_t errors() const;
  double ErrorRate() const;

  /// Fault-tolerance state (tests / observability).
  RetryPolicy& retry_policy() { return retry_policy_; }
  CircuitBreakerRegistry& breakers() { return breakers_; }

 private:
  /// Ordered candidate node ids for `pid` reads in `region`: ring
  /// successors, with open-breaker nodes filtered out (the ring is probed
  /// deeper to keep `attempts` usable candidates; if breakers reject every
  /// successor the unfiltered list is returned as a last resort).
  std::vector<std::string> ReadCandidates(ProfileId pid,
                                          const std::string& region,
                                          int attempts);
  void MaybeRefresh();

  CallContext DefaultContext() const {
    return CallContext::WithTimeout(*deployment_->clock(),
                                    options_.default_timeout_ms);
  }

  /// Gate for every attempt after the first: classifies `last_error`,
  /// withdraws retry budget and sleeps the jittered backoff (clamped to the
  /// deadline). False when the request must stop retrying.
  bool PrepareRetry(const Status& last_error, const CallContext& ctx);

  /// Records a call outcome on the node's breaker.
  void RecordOutcome(const std::string& node_id, const Status& status);

  IpsClientOptions options_;
  Deployment* deployment_;
  MetricsRegistry* metrics_;
  RetryPolicy retry_policy_;
  CircuitBreakerRegistry breakers_;

  std::mutex mu_;
  /// region -> ring over that region's live instances.
  std::unordered_map<std::string, ConsistentHashRing> rings_;
  TimestampMs last_refresh_ms_ = -1;
};

}  // namespace ips

#endif  // IPS_CLUSTER_CLIENT_H_
