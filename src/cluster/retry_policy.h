// Client-side retry policy (the replacement for the bare fixed-attempt
// loops): retryable-vs-terminal classification on StatusCode, exponential
// backoff with decorrelated jitter, and a token-bucket retry *budget* so a
// broad outage cannot turn every client into a retry storm against the
// survivors. The paper's availability result (Fig 17) depends on failed
// nodes being routed around quickly but without amplifying load.
#ifndef IPS_CLUSTER_RETRY_POLICY_H_
#define IPS_CLUSTER_RETRY_POLICY_H_

#include <cstdint>
#include <mutex>
#include <optional>

#include "common/random.h"
#include "common/status.h"

namespace ips {

struct RetryPolicyOptions {
  /// Master switch. When false the client keeps the seed behaviour: blind
  /// successor attempts with no backoff, budget or classification.
  bool enabled = true;
  /// First backoff draw is uniform in [initial, initial * 3].
  int64_t initial_backoff_ms = 5;
  /// Hard cap on any single backoff.
  int64_t max_backoff_ms = 1000;
  /// Retry tokens deposited per request start; a retry withdraws 1.0. At
  /// 0.1 the sustained retry rate is capped at ~10% of offered load.
  double budget_per_request = 0.1;
  /// Token ceiling (also the initial balance, so a cold client can absorb a
  /// failure burst).
  double budget_cap = 100.0;
  uint64_t seed = 23;
};

/// Thread-safe. One instance per client; all of the client's requests share
/// the budget, which is the point — the budget bounds the *client's* total
/// retry amplification, not each request's.
class RetryPolicy {
 public:
  explicit RetryPolicy(RetryPolicyOptions options);

  const RetryPolicyOptions& options() const { return options_; }
  bool enabled() const { return options_.enabled; }

  /// Deposits budget for one incoming request. Call once per logical
  /// request (not per attempt).
  void OnRequestStart();

  /// Decides whether the previous attempt's `error` may be retried. Returns
  /// the backoff to sleep before the retry, or nullopt when the error is
  /// terminal or the retry budget is exhausted. Withdraws one budget token
  /// on success.
  ///
  /// Backoff is "decorrelated jitter": each delay is drawn uniform in
  /// [initial, 3 * previous], capped at max_backoff_ms — spreading retries
  /// in time so synchronized failures do not produce synchronized retries.
  ///
  /// Throttle decisions with a retry-after hint (the overload controller's
  /// shed responses) are the one exception to "ResourceExhausted is
  /// terminal": the server itself named the backoff that makes a retry
  /// useful, so the hint is granted as the delay WITHOUT withdrawing a
  /// budget token — the client is complying with server pacing, not
  /// amplifying load. A plain quota rejection (no hint) stays terminal.
  std::optional<int64_t> NextRetryDelayMs(const Status& error);

  /// Cumulative count of server-paced (retry-after) backoffs granted.
  int64_t throttle_backoffs() const;

  /// Remaining budget tokens (observability / tests).
  double budget_tokens() const;

  /// Cumulative counts (observability / tests).
  int64_t retries_granted() const;
  int64_t budget_denials() const;

 private:
  RetryPolicyOptions options_;
  mutable std::mutex mu_;
  Rng rng_;
  double tokens_;
  int64_t prev_backoff_ms_;
  int64_t retries_granted_ = 0;
  int64_t budget_denials_ = 0;
  int64_t throttle_backoffs_ = 0;
};

}  // namespace ips

#endif  // IPS_CLUSTER_RETRY_POLICY_H_
