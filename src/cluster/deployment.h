// Multi-region deployment (Section III-G, Fig 15). Each region runs a set of
// IPS instances over a region-local key-value cluster: exactly one region
// binds its instances to the *master* KV cluster, every other region binds
// to a read-only *slave* replica lagging asynchronously. Upstream writers
// send to all regions; readers stay in their local region. When a region
// fails, its traffic is redirected to surviving regions within the client's
// failover policy — and a node recovering from a failover may load stale
// data from its slave, the weak-consistency behaviour the paper accepts.
#ifndef IPS_CLUSTER_DEPLOYMENT_H_
#define IPS_CLUSTER_DEPLOYMENT_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "cluster/discovery.h"
#include "cluster/rpc.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "kvstore/replicated_kv.h"
#include "server/ips_instance.h"

namespace ips {

/// One IPS server process plus its simulated network path.
class IpsNode {
 public:
  IpsNode(std::string node_id, std::string region,
          IpsInstanceOptions instance_options, KvStore* kv, Clock* clock,
          ChannelOptions channel_options, MetricsRegistry* metrics);

  const std::string& node_id() const { return node_id_; }
  const std::string& region() const { return region_; }
  IpsInstance& instance() { return *instance_; }
  Channel& channel() { return *channel_; }

  /// Crash/restart injection. A down node fails every call with Unavailable
  /// and, on restart, comes back with a cold cache (the process died).
  void SetDown(bool down) { down_.store(down, std::memory_order_relaxed); }
  bool IsDown() const { return down_.load(std::memory_order_relaxed); }

  /// Routes a request through the simulated network into the instance.
  Status Call(size_t request_bytes, size_t response_bytes,
              const std::function<Status(IpsInstance&)>& handler) {
    return Call(CallContext{}, request_bytes, response_bytes, handler);
  }

  /// Deadline-aware variant: the context is enforced by the channel (time
  /// spent on the wire) and should also be checked by the handler's
  /// instance call.
  Status Call(const CallContext& ctx, size_t request_bytes,
              size_t response_bytes,
              const std::function<Status(IpsInstance&)>& handler);

 private:
  std::string node_id_;
  std::string region_;
  std::unique_ptr<IpsInstance> instance_;
  std::unique_ptr<Channel> channel_;
  std::atomic<bool> down_{false};
};

struct RegionOptions {
  std::string name;
  size_t num_nodes = 2;
  bool is_primary = false;  // binds to the master KV cluster
};

struct DeploymentOptions {
  std::vector<RegionOptions> regions;
  IpsInstanceOptions instance;
  ChannelOptions channel;
  ReplicatedKvOptions kv;
  /// Discovery heartbeat TTL.
  int64_t discovery_ttl_ms = 10'000;
  /// Wire each region's Persister to the other side of its replication pair
  /// for degraded reads during a KV outage. Off = loads fail hard when the
  /// region's own store is down (ablation baseline for the availability
  /// bench).
  bool enable_degraded_fallback = true;
};

/// Owns the regions, nodes, replicated KV and the discovery service.
class Deployment {
 public:
  Deployment(DeploymentOptions options, Clock* clock,
             MetricsRegistry* metrics = nullptr);

  /// Creates `schema`'s table on every node.
  Status CreateTableEverywhere(const TableSchema& schema);

  DiscoveryService& discovery() { return discovery_; }
  ReplicatedKv& kv() { return *kv_; }
  Clock* clock() { return clock_; }
  MetricsRegistry* metrics() { return metrics_; }

  const std::vector<std::string>& region_names() const {
    return region_names_;
  }
  std::vector<IpsNode*> NodesInRegion(const std::string& region);
  IpsNode* FindNode(const std::string& node_id);

  /// Fails / recovers a whole region (all nodes down + deregistered).
  void FailRegion(const std::string& region);
  void RecoverRegion(const std::string& region);

  /// Heartbeats every live node (driven by the simulation loop).
  void HeartbeatAll();

 private:
  DeploymentOptions options_;
  Clock* clock_;
  MetricsRegistry* metrics_;
  MetricsRegistry owned_metrics_;
  std::unique_ptr<ReplicatedKv> kv_;
  DiscoveryService discovery_;
  std::vector<std::string> region_names_;
  std::vector<std::unique_ptr<IpsNode>> nodes_;
};

}  // namespace ips

#endif  // IPS_CLUSTER_DEPLOYMENT_H_
