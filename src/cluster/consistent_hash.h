// ID-based consistent-hash ring (Section III): the IPS client routes each
// profile id to the instance owning its hash range, so every instance serves
// a stable fraction of the cluster's data and nodes can join/leave with
// minimal key movement.
#ifndef IPS_CLUSTER_CONSISTENT_HASH_H_
#define IPS_CLUSTER_CONSISTENT_HASH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/types.h"

namespace ips {

class ConsistentHashRing {
 public:
  /// `virtual_nodes` replicas per member smooth the load distribution.
  explicit ConsistentHashRing(int virtual_nodes = 128)
      : virtual_nodes_(virtual_nodes) {}

  void AddNode(const std::string& node_id);
  void RemoveNode(const std::string& node_id);
  bool HasNode(const std::string& node_id) const;

  /// Replaces the membership in one step (client view refresh).
  void SetMembers(const std::vector<std::string>& node_ids);

  /// Owner of `pid`; empty string when the ring is empty.
  const std::string& Lookup(ProfileId pid) const;

  /// Owner plus the next `count - 1` distinct successors (retry targets).
  std::vector<std::string> LookupN(ProfileId pid, size_t count) const;

  size_t NodeCount() const { return members_.size(); }
  const std::vector<std::string>& members() const { return members_; }

 private:
  int virtual_nodes_;
  std::map<uint64_t, std::string> ring_;
  std::vector<std::string> members_;
};

}  // namespace ips

#endif  // IPS_CLUSTER_CONSISTENT_HASH_H_
