#include "cluster/consistent_hash.h"

#include <algorithm>

#include "common/hash.h"

namespace ips {

namespace {

const std::string& EmptyString() {
  static const std::string* const kEmpty = new std::string();
  return *kEmpty;
}

}  // namespace

void ConsistentHashRing::AddNode(const std::string& node_id) {
  if (HasNode(node_id)) return;
  members_.push_back(node_id);
  std::sort(members_.begin(), members_.end());
  for (int v = 0; v < virtual_nodes_; ++v) {
    const uint64_t point =
        HashCombine(Fnv1a(node_id), Mix64(static_cast<uint64_t>(v)));
    ring_.emplace(point, node_id);
  }
}

void ConsistentHashRing::RemoveNode(const std::string& node_id) {
  auto it = std::find(members_.begin(), members_.end(), node_id);
  if (it == members_.end()) return;
  members_.erase(it);
  for (auto ring_it = ring_.begin(); ring_it != ring_.end();) {
    if (ring_it->second == node_id) {
      ring_it = ring_.erase(ring_it);
    } else {
      ++ring_it;
    }
  }
}

bool ConsistentHashRing::HasNode(const std::string& node_id) const {
  return std::find(members_.begin(), members_.end(), node_id) !=
         members_.end();
}

void ConsistentHashRing::SetMembers(const std::vector<std::string>& node_ids) {
  ring_.clear();
  members_.clear();
  for (const auto& id : node_ids) AddNode(id);
}

const std::string& ConsistentHashRing::Lookup(ProfileId pid) const {
  if (ring_.empty()) return EmptyString();
  const uint64_t point = Mix64(pid);
  auto it = ring_.lower_bound(point);
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

std::vector<std::string> ConsistentHashRing::LookupN(ProfileId pid,
                                                     size_t count) const {
  std::vector<std::string> out;
  if (ring_.empty() || count == 0) return out;
  const uint64_t point = Mix64(pid);
  auto it = ring_.lower_bound(point);
  const size_t distinct = std::min(count, members_.size());
  while (out.size() < distinct) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
    ++it;
  }
  return out;
}

}  // namespace ips
