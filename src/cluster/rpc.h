// Simulated RPC transport. Production IPS speaks a C++ Thrift RPC between
// layers; here the "network" is an in-process channel that charges a latency
// (base + exponential tail + payload-proportional cost, mirroring the
// paper's ~3 ms size-proportional transmission overhead in Table II) and can
// drop requests or be partitioned — the levers behind the availability
// experiment (Fig 17).
#ifndef IPS_CLUSTER_RPC_H_
#define IPS_CLUSTER_RPC_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>

#include "common/call_context.h"
#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"

namespace ips {

struct ChannelOptions {
  /// One-way base latency in microseconds.
  int64_t base_latency_us = 0;
  /// Mean of the exponential one-way tail in microseconds.
  int64_t tail_latency_us = 0;
  /// Extra microseconds per KiB of payload in either direction.
  int64_t per_kib_us = 0;
  /// Probability a call is dropped (Unavailable) before reaching the server.
  double drop_probability = 0.0;
  uint64_t seed = 7;
};

/// One simulated network path to a server. Thread-safe.
///
/// When constructed with a Clock, the channel enforces call deadlines: a
/// request whose drawn network latency would land past the deadline fails
/// with DeadlineExceeded *without burning that latency* — the caller walked
/// away, so nobody pays for the rest of the exchange.
class Channel {
 public:
  explicit Channel(ChannelOptions options, Clock* clock = nullptr)
      : options_(options), clock_(clock) {
    rng_.Seed(options.seed);
  }

  /// Invokes `handler` with simulated network cost around it.
  /// `request_bytes`/`response_bytes` drive the size-proportional part;
  /// response size may be unknown upfront, in which case the caller passes
  /// an estimate (feature responses are small and bounded by K).
  Status Call(size_t request_bytes, size_t response_bytes,
              const std::function<Status()>& handler) {
    return Call(CallContext{}, request_bytes, response_bytes, handler);
  }

  /// Deadline-aware variant. Deadlines require a Clock; without one the
  /// context is carried but not enforced at the transport.
  Status Call(const CallContext& ctx, size_t request_bytes,
              size_t response_bytes, const std::function<Status()>& handler);

  /// Severs / restores the path (network partition injection).
  void SetPartitioned(bool partitioned) {
    partitioned_.store(partitioned, std::memory_order_relaxed);
  }
  bool IsPartitioned() const {
    return partitioned_.load(std::memory_order_relaxed);
  }

  void SetDropProbability(double p);

 private:
  int64_t DrawOneWayDelayUs(size_t payload_bytes);

  ChannelOptions options_;
  Clock* clock_;
  std::atomic<bool> partitioned_{false};
  std::mutex rng_mu_;
  Rng rng_;
};

}  // namespace ips

#endif  // IPS_CLUSTER_RPC_H_
