// Unit tests for the fault-tolerance primitives of the request layer:
// CallContext deadlines, the retry policy (classification, decorrelated
// jitter backoff, token-bucket budget) and the per-node circuit breaker.
#include "cluster/circuit_breaker.h"
#include "cluster/retry_policy.h"
#include "common/call_context.h"

#include <algorithm>
#include <limits>
#include <optional>

#include <gtest/gtest.h>

#include "cluster/client.h"
#include "cluster/deployment.h"
#include "common/clock.h"
#include "core/table_schema.h"
#include "server/overload.h"

namespace ips {
namespace {

constexpr int64_t kMinute = kMillisPerMinute;
constexpr int64_t kDay = kMillisPerDay;

// --- CallContext ------------------------------------------------------

TEST(CallContextTest, DefaultHasNoDeadline) {
  CallContext ctx;
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.Expired(0));
  EXPECT_FALSE(ctx.Expired(std::numeric_limits<TimestampMs>::max() - 1));
  EXPECT_EQ(ctx.RemainingMs(12345), CallContext::kNoDeadline);
}

TEST(CallContextTest, ExpiryAndRemainingBudget) {
  CallContext ctx = CallContext::WithDeadline(1000);
  ASSERT_TRUE(ctx.has_deadline());
  EXPECT_FALSE(ctx.Expired(999));
  EXPECT_TRUE(ctx.Expired(1000));  // deadline instant counts as expired
  EXPECT_TRUE(ctx.Expired(5000));
  EXPECT_EQ(ctx.RemainingMs(400), 600);
  EXPECT_EQ(ctx.RemainingMs(1000), 0);
  EXPECT_EQ(ctx.RemainingMs(9999), 0);  // clamped, never negative
}

TEST(CallContextTest, WithTimeoutIsRelativeToClock) {
  ManualClock clock(5000);
  CallContext ctx = CallContext::WithTimeout(clock, 250);
  EXPECT_EQ(ctx.deadline_ms, 5250);
  // Non-positive timeout = the disabled default: no deadline at all.
  EXPECT_FALSE(CallContext::WithTimeout(clock, 0).has_deadline());
  EXPECT_FALSE(CallContext::WithTimeout(clock, -5).has_deadline());
}

// --- RetryPolicy ------------------------------------------------------

RetryPolicyOptions SmallBudget() {
  RetryPolicyOptions options;
  options.initial_backoff_ms = 5;
  options.max_backoff_ms = 100;
  options.budget_cap = 3.0;
  options.budget_per_request = 0.1;
  return options;
}

TEST(RetryPolicyTest, TerminalErrorsAreNeverGranted) {
  RetryPolicy policy(SmallBudget());
  EXPECT_FALSE(policy.NextRetryDelayMs(Status::OK()).has_value());
  EXPECT_FALSE(
      policy.NextRetryDelayMs(Status::ResourceExhausted("quota")).has_value());
  EXPECT_FALSE(
      policy.NextRetryDelayMs(Status::InvalidArgument("bug")).has_value());
  EXPECT_FALSE(
      policy.NextRetryDelayMs(Status::DeadlineExceeded("late")).has_value());
  EXPECT_FALSE(policy.NextRetryDelayMs(Status::NotFound("gone")).has_value());
  EXPECT_EQ(policy.retries_granted(), 0);
  // None of those touched the budget.
  EXPECT_DOUBLE_EQ(policy.budget_tokens(), SmallBudget().budget_cap);
}

TEST(RetryPolicyTest, RetryableErrorsAreGrantedWithBoundedBackoff) {
  RetryPolicy policy(SmallBudget());
  int64_t prev = SmallBudget().initial_backoff_ms;
  for (int i = 0; i < 2; ++i) {
    auto delay = policy.NextRetryDelayMs(Status::Unavailable("down"));
    ASSERT_TRUE(delay.has_value());
    EXPECT_GE(*delay, SmallBudget().initial_backoff_ms);
    EXPECT_LE(*delay, std::min<int64_t>(SmallBudget().max_backoff_ms,
                                        std::max<int64_t>(prev * 3, 15)));
    EXPECT_LE(*delay, SmallBudget().max_backoff_ms);
    prev = *delay;
  }
  // Aborted (a lost version race) is the other retryable code.
  EXPECT_TRUE(policy.NextRetryDelayMs(Status::Aborted("race")).has_value());
  EXPECT_EQ(policy.retries_granted(), 3);
}

TEST(RetryPolicyTest, BackoffNeverExceedsCap) {
  RetryPolicyOptions options = SmallBudget();
  options.max_backoff_ms = 20;
  options.budget_cap = 1000.0;
  RetryPolicy policy(options);
  for (int i = 0; i < 100; ++i) {
    auto delay = policy.NextRetryDelayMs(Status::Unavailable("down"));
    ASSERT_TRUE(delay.has_value());
    EXPECT_GE(*delay, options.initial_backoff_ms);
    EXPECT_LE(*delay, options.max_backoff_ms);
  }
}

TEST(RetryPolicyTest, BudgetExhaustsAndRefills) {
  RetryPolicy policy(SmallBudget());  // 3 tokens, retry costs 1
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(
        policy.NextRetryDelayMs(Status::Unavailable("down")).has_value());
  }
  // Bucket empty: a retryable error is denied, and the denial is counted.
  EXPECT_FALSE(
      policy.NextRetryDelayMs(Status::Unavailable("down")).has_value());
  EXPECT_EQ(policy.budget_denials(), 1);
  // Request starts deposit 0.1 each; 12 comfortably clear one full token
  // (10 exact deposits can land a hair under 1.0 in floating point).
  for (int i = 0; i < 12; ++i) policy.OnRequestStart();
  EXPECT_TRUE(
      policy.NextRetryDelayMs(Status::Unavailable("down")).has_value());
}

TEST(RetryPolicyTest, BudgetDepositsClampAtCap) {
  RetryPolicy policy(SmallBudget());
  for (int i = 0; i < 1000; ++i) policy.OnRequestStart();
  EXPECT_DOUBLE_EQ(policy.budget_tokens(), SmallBudget().budget_cap);
}

TEST(RetryPolicyTest, DisabledPolicyGrantsNothing) {
  RetryPolicyOptions options = SmallBudget();
  options.enabled = false;
  RetryPolicy policy(options);
  EXPECT_FALSE(
      policy.NextRetryDelayMs(Status::Unavailable("down")).has_value());
  EXPECT_EQ(policy.budget_denials(), 0);  // not a budget decision
  // A disabled policy also ignores server pacing hints.
  EXPECT_FALSE(
      policy.NextRetryDelayMs(Status::Overloaded("shed", 40)).has_value());
  EXPECT_EQ(policy.throttle_backoffs(), 0);
}

TEST(RetryPolicyTest, ThrottleWithHintIsServerPacedAndBudgetFree) {
  RetryPolicy policy(SmallBudget());
  // A shed response names its own backoff: the grant is exactly the hint
  // and costs no budget token (complying with server pacing is not load
  // amplification).
  auto delay = policy.NextRetryDelayMs(Status::Overloaded("shed", 40));
  ASSERT_TRUE(delay.has_value());
  EXPECT_EQ(*delay, 40);
  EXPECT_DOUBLE_EQ(policy.budget_tokens(), SmallBudget().budget_cap);
  EXPECT_EQ(policy.throttle_backoffs(), 1);
  // A hint-less quota rejection stays terminal: retrying a quota breach
  // repeats deterministically.
  EXPECT_FALSE(
      policy.NextRetryDelayMs(Status::ResourceExhausted("quota")).has_value());
  EXPECT_EQ(policy.throttle_backoffs(), 1);
}

TEST(RetryPolicyTest, ThrottleHintGrantedEvenWithEmptyBudget) {
  RetryPolicy policy(SmallBudget());  // 3 tokens
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        policy.NextRetryDelayMs(Status::Unavailable("down")).has_value());
  }
  EXPECT_FALSE(
      policy.NextRetryDelayMs(Status::Unavailable("down")).has_value());
  // Budget empty, but server-paced backoff is still honored: the server
  // asked for exactly this retry.
  auto delay = policy.NextRetryDelayMs(Status::Overloaded("shed", 15));
  ASSERT_TRUE(delay.has_value());
  EXPECT_EQ(*delay, 15);
}

// --- CircuitBreaker ---------------------------------------------------

CircuitBreakerOptions BreakerOptions() {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.open_cooldown_ms = 1000;
  return options;
}

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures) {
  CircuitBreaker breaker(BreakerOptions());
  EXPECT_EQ(breaker.state(0), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(10);
  breaker.RecordFailure(20);
  EXPECT_TRUE(breaker.AllowRequest(30));  // still closed at 2 failures
  breaker.RecordFailure(30);
  EXPECT_EQ(breaker.state(30), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest(31));
}

TEST(CircuitBreakerTest, SuccessResetsTheStreak) {
  CircuitBreaker breaker(BreakerOptions());
  breaker.RecordFailure(10);
  breaker.RecordFailure(20);
  breaker.RecordSuccess();
  breaker.RecordFailure(30);
  breaker.RecordFailure(40);
  EXPECT_TRUE(breaker.AllowRequest(50));  // streak restarted at the success
  EXPECT_EQ(breaker.state(50), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenProbeAfterCooldown) {
  CircuitBreaker breaker(BreakerOptions());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(100);
  EXPECT_FALSE(breaker.AllowRequest(100 + 999));
  // Cooldown elapsed: the breaker lets a probe through.
  EXPECT_TRUE(breaker.AllowRequest(100 + 1000));
  EXPECT_EQ(breaker.state(100 + 1000), CircuitBreaker::State::kHalfOpen);
  // Probe succeeds: closed again.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(100 + 1001), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest(100 + 1001));
}

TEST(CircuitBreakerTest, FailedProbeRearmsTheCooldown) {
  CircuitBreaker breaker(BreakerOptions());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(100);
  ASSERT_TRUE(breaker.AllowRequest(1100));  // probe
  breaker.RecordFailure(1100);              // probe failed
  EXPECT_FALSE(breaker.AllowRequest(1101));
  EXPECT_FALSE(breaker.AllowRequest(1100 + 999));  // full fresh cooldown
  EXPECT_TRUE(breaker.AllowRequest(1100 + 1000));
}

TEST(CircuitBreakerTest, NodeFaultClassification) {
  // Only statuses that indicate the node itself misbehaved trip the breaker;
  // an answered request — even an error — is proof of liveness.
  EXPECT_TRUE(CircuitBreaker::IsNodeFault(Status::Unavailable("down")));
  EXPECT_TRUE(CircuitBreaker::IsNodeFault(Status::DeadlineExceeded("late")));
  EXPECT_FALSE(CircuitBreaker::IsNodeFault(Status::OK()));
  EXPECT_FALSE(CircuitBreaker::IsNodeFault(Status::ResourceExhausted("q")));
  EXPECT_FALSE(CircuitBreaker::IsNodeFault(Status::NotFound("x")));
  EXPECT_FALSE(CircuitBreaker::IsNodeFault(Status::InvalidArgument("x")));
}

TEST(CircuitBreakerTest, DisabledBreakerAllowsEverything) {
  CircuitBreakerOptions options = BreakerOptions();
  options.enabled = false;
  CircuitBreaker breaker(options);
  for (int i = 0; i < 10; ++i) breaker.RecordFailure(i);
  EXPECT_TRUE(breaker.AllowRequest(11));
}

TEST(CircuitBreakerRegistryTest, OneBreakerPerNode) {
  CircuitBreakerRegistry registry(BreakerOptions());
  CircuitBreaker* a = registry.Get("node-a");
  CircuitBreaker* b = registry.Get("node-b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, registry.Get("node-a"));  // stable pointer
  for (int i = 0; i < 3; ++i) a->RecordFailure(10);
  EXPECT_FALSE(a->AllowRequest(11));
  EXPECT_TRUE(b->AllowRequest(11));  // isolation between nodes
}

// --- Overload shedding, client side end to end ------------------------

DeploymentOptions ShedDeploymentOptions() {
  DeploymentOptions options;
  options.regions = {{"lf", 2, /*is_primary=*/true}};
  options.instance.start_background_threads = false;
  options.instance.cache.start_background_threads = false;
  options.instance.compaction.synchronous = true;
  options.instance.isolation_enabled = false;
  return options;
}

TEST(OverloadShedClientTest, RetryAfterHonoredWithoutBurningBudget) {
  ManualClock clock(100 * kDay);
  Deployment deployment(ShedDeploymentOptions(), &clock);
  ASSERT_TRUE(
      deployment.CreateTableEverywhere(DefaultTableSchema("profiles")).ok());
  // Force every node into brown-out level 3: reads and writes shed with a
  // retry-after hint; only critical-marked callers get through.
  for (auto* node : deployment.NodesInRegion("lf")) {
    node->instance().overload().SetLevelOverride(3);
  }
  IpsClientOptions copts;
  copts.caller = "ranker";
  copts.local_region = "lf";
  IpsClient client(copts, &deployment);
  const double budget_before = client.retry_policy().budget_tokens();

  auto read = client.GetProfileTopK("profiles", 7, 1, std::nullopt,
                                    TimeRange::Current(kDay),
                                    SortBy::kActionCount, 0, 10);
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsThrottled());
  EXPECT_TRUE(read.status().has_retry_after());

  Status write = client.AddProfile("profiles", 7, clock.NowMs() - kMinute, 1,
                                   1, 42, CountVector{1});
  ASSERT_FALSE(write.ok());
  EXPECT_TRUE(write.IsThrottled());
  EXPECT_TRUE(write.has_retry_after());

  // The client re-offered each request only at server pace (hint-granted
  // backoffs observed) and spent zero retry-budget tokens doing it: shed
  // traffic slows down instead of amplifying.
  EXPECT_GT(client.retry_policy().throttle_backoffs(), 0);
  EXPECT_GE(client.retry_policy().budget_tokens(), budget_before);
  EXPECT_EQ(client.retry_policy().budget_denials(), 0);
}

TEST(OverloadShedClientTest, CriticalCallerRidesThroughBrownOut) {
  ManualClock clock(100 * kDay);
  Deployment deployment(ShedDeploymentOptions(), &clock);
  ASSERT_TRUE(
      deployment.CreateTableEverywhere(DefaultTableSchema("profiles")).ok());
  for (auto* node : deployment.NodesInRegion("lf")) {
    node->instance().overload().SetLevelOverride(3);
    node->instance().overload().SetCallerTier("checkout",
                                              RequestTier::kCritical);
  }
  IpsClientOptions copts;
  copts.caller = "checkout";
  copts.local_region = "lf";
  IpsClient client(copts, &deployment);
  // Level 3 sheds bulk/write/read but critical reads still serve (an empty
  // profile is a successful read).
  auto read = client.GetProfileTopK("profiles", 7, 1, std::nullopt,
                                    TimeRange::Current(kDay),
                                    SortBy::kActionCount, 0, 10);
  EXPECT_TRUE(read.ok()) << read.status().ToString();
}

}  // namespace
}  // namespace ips
