#include "query/feature_spec.h"

#include <gtest/gtest.h>

#include "common/clock.h"

namespace ips {
namespace {

TableSchema Schema() {
  TableSchema schema = DefaultTableSchema("user_profile");
  schema.actions = {"click", "like", "share"};
  return schema;
}

TEST(FeatureSpecTest, ParsesFullSpecWithNamedActions) {
  TableSchema schema = Schema();
  auto spec = ParseFeatureSpecJson(R"({
    "name": "top_sports_7d",
    "table": "user_profile",
    "slot": 1,
    "type": 10,
    "window": {"kind": "CURRENT", "span": "7d"},
    "sort": {"by": "count", "action": "like"},
    "k": 20,
    "decay": {"function": "EXP", "factor": 0.9, "unit": "1d"},
    "filter": {"op": "count_at_least", "action": "click", "operand": 2}
  })",
                                   &schema);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->name, "top_sports_7d");
  EXPECT_EQ(spec->table, "user_profile");
  EXPECT_EQ(spec->query.slot, 1u);
  ASSERT_TRUE(spec->query.type.has_value());
  EXPECT_EQ(*spec->query.type, 10u);
  EXPECT_EQ(spec->query.time_range.kind(), TimeRangeKind::kCurrent);
  EXPECT_EQ(spec->query.time_range.span_ms(), 7 * kMillisPerDay);
  EXPECT_EQ(spec->query.sort_by, SortBy::kActionCount);
  EXPECT_EQ(spec->query.sort_action, 1u);  // "like"
  EXPECT_EQ(spec->query.k, 20u);
  EXPECT_EQ(spec->query.decay.function, DecayFunction::kExponential);
  EXPECT_DOUBLE_EQ(spec->query.decay.factor, 0.9);
  EXPECT_EQ(spec->query.filter.op, FilterOp::kCountAtLeast);
  EXPECT_EQ(spec->query.filter.action, 0u);  // "click"
  EXPECT_EQ(spec->query.filter.operand, 2);
}

TEST(FeatureSpecTest, MinimalSpecDefaults) {
  auto spec = ParseFeatureSpecJson(
      R"({"name": "f", "table": "t", "slot": 3})");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec->query.type.has_value());  // whole slot
  EXPECT_EQ(spec->query.k, 0u);                // unlimited
  EXPECT_EQ(spec->query.decay.function, DecayFunction::kNone);
  EXPECT_EQ(spec->query.filter.op, FilterOp::kNone);
}

TEST(FeatureSpecTest, RelativeAndAbsoluteWindows) {
  auto relative = ParseFeatureSpecJson(R"({
    "name": "f", "table": "t", "slot": 1,
    "window": {"kind": "RELATIVE", "span": "30d"}})");
  ASSERT_TRUE(relative.ok());
  EXPECT_EQ(relative->query.time_range.kind(), TimeRangeKind::kRelative);

  auto absolute = ParseFeatureSpecJson(R"({
    "name": "f", "table": "t", "slot": 1,
    "window": {"kind": "ABSOLUTE", "from": 1000, "to": 2000}})");
  ASSERT_TRUE(absolute.ok());
  EXPECT_EQ(absolute->query.time_range.kind(), TimeRangeKind::kAbsolute);
}

TEST(FeatureSpecTest, SortVariants) {
  auto by_time = ParseFeatureSpecJson(R"({
    "name": "f", "table": "t", "slot": 1, "sort": {"by": "time"}})");
  ASSERT_TRUE(by_time.ok());
  EXPECT_EQ(by_time->query.sort_by, SortBy::kTimestamp);

  auto by_fid = ParseFeatureSpecJson(R"({
    "name": "f", "table": "t", "slot": 1, "sort": {"by": "fid"}})");
  ASSERT_TRUE(by_fid.ok());
  EXPECT_EQ(by_fid->query.sort_by, SortBy::kFeatureId);
}

TEST(FeatureSpecTest, FidFilters) {
  auto spec = ParseFeatureSpecJson(R"({
    "name": "f", "table": "t", "slot": 1,
    "filter": {"op": "fid_in", "fids": [5, 3, 9]}})");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->query.filter.op, FilterOp::kFidIn);
  EXPECT_EQ(spec->query.filter.fids.size(), 3u);
}

class FeatureSpecRejectTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FeatureSpecRejectTest, MalformedSpecRejected) {
  TableSchema schema = Schema();
  auto spec = ParseFeatureSpecJson(GetParam(), &schema);
  EXPECT_FALSE(spec.ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    BadSpecs, FeatureSpecRejectTest,
    ::testing::Values(
        R"({"table": "user_profile", "slot": 1})",             // no name
        R"({"name": "f", "slot": 1})",                         // no table
        R"({"name": "f", "table": "user_profile"})",           // no slot
        R"({"name": "f", "table": "other", "slot": 1})",       // wrong table
        R"({"name": "f", "table": "user_profile", "slot": 1,
            "sort": {"by": "count", "action": "bogus"}})",     // bad action
        R"({"name": "f", "table": "user_profile", "slot": 1,
            "sort": {"by": "zorp"}})",                          // bad sort
        R"({"name": "f", "table": "user_profile", "slot": 1,
            "window": {"kind": "SOMETIMES", "span": "1d"}})",   // bad window
        R"({"name": "f", "table": "user_profile", "slot": 1,
            "decay": {"function": "EXP", "factor": 7.0}})",     // bad decay
        R"({"name": "f", "table": "user_profile", "slot": 1,
            "filter": {"op": "fid_in", "fids": []}})",          // empty fids
        R"({"name": "f", "table": "user_profile", "slot": 1,
            "filter": {"op": "contains"}})"));                  // bad op

TEST(FeatureSpecTest, ActionNameWithoutSchemaRejected) {
  auto spec = ParseFeatureSpecJson(R"({
    "name": "f", "table": "t", "slot": 1,
    "sort": {"by": "count", "action": "like"}})");
  EXPECT_FALSE(spec.ok());
  // Numeric indices always work.
  auto numeric = ParseFeatureSpecJson(R"({
    "name": "f", "table": "t", "slot": 1,
    "sort": {"by": "count", "action": 1}})");
  EXPECT_TRUE(numeric.ok());
}

TEST(FeatureSpecTest, ActionIndexOutOfRangeRejectedWithSchema) {
  TableSchema schema = Schema();  // 3 actions
  auto spec = ParseFeatureSpecJson(R"({
    "name": "f", "table": "user_profile", "slot": 1,
    "sort": {"by": "count", "action": 9}})",
                                   &schema);
  EXPECT_FALSE(spec.ok());
}

TEST(FeatureSpecTest, FeatureSetParsesAndRejectsDuplicates) {
  auto good = ParseConfig(R"({"features": [
    {"name": "a", "table": "t", "slot": 1},
    {"name": "b", "table": "t", "slot": 2}
  ]})");
  ASSERT_TRUE(good.ok());
  auto specs = ParseFeatureSet(*good);
  ASSERT_TRUE(specs.ok());
  EXPECT_EQ(specs->size(), 2u);

  auto dup = ParseConfig(R"({"features": [
    {"name": "a", "table": "t", "slot": 1},
    {"name": "a", "table": "t", "slot": 2}
  ]})");
  ASSERT_TRUE(dup.ok());
  EXPECT_FALSE(ParseFeatureSet(*dup).ok());

  auto empty = ParseConfig(R"({"features": []})");
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(ParseFeatureSet(*empty).ok());
}

}  // namespace
}  // namespace ips
