#include "baseline/lambda_profile.h"

#include <gtest/gtest.h>

#include "common/clock.h"
#include "kvstore/mem_kv_store.h"

namespace ips {
namespace {

constexpr int64_t kDay = kMillisPerDay;
constexpr int64_t kHour = kMillisPerHour;

class LambdaTest : public ::testing::Test {
 protected:
  LambdaTest()
      : clock_(100 * kDay), service_(Options(), &kv_, &content_, &clock_) {
    // A tiny content catalog: items 1-10 in slot 1, 11-20 in slot 2.
    for (FeatureId item = 1; item <= 10; ++item) content_.Put(item, 1, 1);
    for (FeatureId item = 11; item <= 20; ++item) content_.Put(item, 2, 1);
  }

  static LambdaOptions Options() {
    LambdaOptions options;
    options.long_term_top_n = 5;
    options.short_term_capacity = 10;
    options.num_actions = 2;
    return options;
  }

  ManualClock clock_;
  MemKvStore kv_;
  ContentStore content_;
  LambdaProfileService service_;
};

TEST_F(LambdaTest, ContentStoreLookup) {
  SlotId slot;
  TypeId type;
  ASSERT_TRUE(content_.Lookup(5, &slot, &type).ok());
  EXPECT_EQ(slot, 1u);
  EXPECT_TRUE(content_.Lookup(999, &slot, &type).IsNotFound());
  EXPECT_EQ(content_.size(), 20u);
}

TEST_F(LambdaTest, LongTermEmptyBeforeBatch) {
  ASSERT_TRUE(service_
                  .RecordAction(1, 5, clock_.NowMs(), CountVector{1, 0})
                  .ok());
  // The defining weakness: nothing visible until the daily batch runs.
  auto result = service_.QueryLongTerm(1, 1, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  EXPECT_EQ(service_.pending_log_records(), 1u);
}

TEST_F(LambdaTest, BatchMakesLongTermVisible) {
  ASSERT_TRUE(service_
                  .RecordAction(1, 5, clock_.NowMs(), CountVector{3, 1})
                  .ok());
  EXPECT_EQ(service_.RunDailyBatch(clock_.NowMs()), 1u);
  EXPECT_EQ(service_.pending_log_records(), 0u);
  auto result = service_.QueryLongTerm(1, 1, 10);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].fid, 5u);
  EXPECT_EQ((*result)[0].counts[0], 3);
}

TEST_F(LambdaTest, BatchAccumulatesAcrossDays) {
  service_.RecordAction(1, 5, clock_.NowMs(), CountVector{1, 0}).ok();
  service_.RunDailyBatch(clock_.NowMs());
  clock_.AdvanceMs(kDay);
  service_.RecordAction(1, 5, clock_.NowMs(), CountVector{2, 0}).ok();
  service_.RunDailyBatch(clock_.NowMs());
  auto result = service_.QueryLongTerm(1, 1, 10);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].counts[0], 3);
}

TEST_F(LambdaTest, LongTermTopNTruncatesPerSlot) {
  for (FeatureId item = 1; item <= 10; ++item) {
    service_
        .RecordAction(1, item, clock_.NowMs(),
                      CountVector{static_cast<int64_t>(item), 0})
        .ok();
  }
  service_.RunDailyBatch(clock_.NowMs());
  auto result = service_.QueryLongTerm(1, 1, 100);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 5u);  // top_n = 5
  EXPECT_EQ((*result)[0].fid, 10u);
  EXPECT_EQ((*result)[4].fid, 6u);
}

TEST_F(LambdaTest, ShortTermFreshButCostsLookups) {
  for (FeatureId item : {1, 2, 1, 15, 1}) {
    service_.RecordAction(7, item, clock_.NowMs(), CountVector{1, 0}).ok();
  }
  size_t lookups = 0;
  auto result = service_.QueryShortTerm(7, 1, 10, &lookups);
  ASSERT_TRUE(result.ok());
  // Fresh without any batch run — but it cost one content lookup per recent
  // click (including the slot-2 item that gets filtered).
  EXPECT_EQ(lookups, 5u);
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].fid, 1u);
  EXPECT_EQ((*result)[0].counts[0], 3);
}

TEST_F(LambdaTest, ShortTermCapacityEvictsOldest) {
  for (FeatureId item = 1; item <= 10; ++item) {
    service_.RecordAction(3, 1, clock_.NowMs(), CountVector{1, 0}).ok();
  }
  // Capacity is 10; push two more, the oldest two fall off.
  service_.RecordAction(3, 2, clock_.NowMs(), CountVector{1, 0}).ok();
  service_.RecordAction(3, 2, clock_.NowMs(), CountVector{1, 0}).ok();
  auto result = service_.QueryShortTerm(3, 1, 10, nullptr);
  ASSERT_TRUE(result.ok());
  int64_t total = 0;
  for (const auto& f : *result) total += f.counts[0];
  EXPECT_EQ(total, 10);  // never more than capacity
}

TEST_F(LambdaTest, UnknownUserQueriesAreEmpty) {
  auto lt = service_.QueryLongTerm(999, 1, 10);
  ASSERT_TRUE(lt.ok());
  EXPECT_TRUE(lt->empty());
  auto st = service_.QueryShortTerm(999, 1, 10, nullptr);
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st->empty());
}

TEST_F(LambdaTest, FreshnessGapIsADay) {
  // Demonstrates the staleness window the paper's IPS removes: an action at
  // 09:00 is invisible to long-term queries until the next batch.
  const TimestampMs morning = clock_.NowMs();
  service_.RecordAction(1, 5, morning, CountVector{1, 0}).ok();
  clock_.AdvanceMs(12 * kHour);  // same day, still no batch
  auto result = service_.QueryLongTerm(1, 1, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  clock_.AdvanceMs(12 * kHour);  // midnight batch
  service_.RunDailyBatch(clock_.NowMs());
  result = service_.QueryLongTerm(1, 1, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
  EXPECT_EQ(clock_.NowMs() - morning, kDay);
}

TEST_F(LambdaTest, ActionsOnUnknownContentDropped) {
  service_.RecordAction(1, 9999, clock_.NowMs(), CountVector{1, 0}).ok();
  service_.RunDailyBatch(clock_.NowMs());
  auto result = service_.QueryLongTerm(1, 1, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

}  // namespace
}  // namespace ips
