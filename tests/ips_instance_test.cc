#include "server/ips_instance.h"

#include <algorithm>
#include <optional>
#include <thread>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "kvstore/mem_kv_store.h"

namespace ips {
namespace {

constexpr int64_t kMinute = kMillisPerMinute;
constexpr int64_t kDay = kMillisPerDay;

IpsInstanceOptions ManualInstanceOptions() {
  IpsInstanceOptions options;
  options.start_background_threads = false;
  options.cache.start_background_threads = false;
  options.cache.write_granularity_ms = kMinute;
  options.compaction.synchronous = true;
  options.compaction.min_interval_ms = 0;
  options.isolation_enabled = false;
  return options;
}

TableSchema TestSchema(const std::string& name = "profiles") {
  TableSchema schema = DefaultTableSchema(name);
  schema.write_granularity_ms = kMinute;
  return schema;
}

class IpsInstanceTest : public ::testing::Test {
 protected:
  IpsInstanceTest()
      : clock_(100 * kDay),
        instance_(ManualInstanceOptions(), &kv_, &clock_) {
    EXPECT_TRUE(instance_.CreateTable(TestSchema()).ok());
  }

  Result<QueryResult> TopK(ProfileId pid, SlotId slot, size_t k,
                           int64_t window = kDay) {
    return instance_.GetProfileTopK("test", "profiles", pid, slot,
                                    std::nullopt, TimeRange::Current(window),
                                    SortBy::kActionCount, 0, k);
  }

  MemKvStore kv_;
  ManualClock clock_;
  IpsInstance instance_;
};

TEST_F(IpsInstanceTest, CreateTableTwiceFails) {
  EXPECT_TRUE(instance_.CreateTable(TestSchema()).IsAlreadyExists());
  EXPECT_TRUE(instance_.HasTable("profiles"));
  EXPECT_FALSE(instance_.HasTable("nope"));
}

TEST_F(IpsInstanceTest, AddToUnknownTableFails) {
  EXPECT_TRUE(instance_
                  .AddProfile("test", "nope", 1, clock_.NowMs(), 1, 1, 1,
                              CountVector{1})
                  .IsNotFound());
}

TEST_F(IpsInstanceTest, AddThenQueryRoundTrips) {
  const TimestampMs now = clock_.NowMs();
  ASSERT_TRUE(instance_
                  .AddProfile("test", "profiles", 7, now - kMinute, 1, 2,
                              1001, CountVector{3, 1})
                  .ok());
  auto result = TopK(7, 1, 10);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->features.size(), 1u);
  EXPECT_EQ(result->features[0].fid, 1001u);
  EXPECT_EQ(result->features[0].counts[0], 3);
}

TEST_F(IpsInstanceTest, QueryUnknownProfileIsEmptyNotError) {
  auto result = TopK(424242, 1, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->features.empty());
}

TEST_F(IpsInstanceTest, BatchedAddAllRecorded) {
  const TimestampMs now = clock_.NowMs();
  std::vector<AddRecord> records;
  for (int i = 0; i < 10; ++i) {
    AddRecord r;
    r.timestamp = now - (i + 1) * kMinute;
    r.slot = 1;
    r.type = 1;
    r.fid = static_cast<FeatureId>(i + 1);
    r.counts = CountVector{1};
    records.push_back(r);
  }
  ASSERT_TRUE(instance_.AddProfiles("test", "profiles", 5, records).ok());
  auto result = TopK(5, 1, 100);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->features.size(), 10u);
}

TEST_F(IpsInstanceTest, EmptyBatchRejected) {
  EXPECT_TRUE(
      instance_.AddProfiles("test", "profiles", 1, {}).IsInvalidArgument());
}

TEST_F(IpsInstanceTest, QuotaRejectsOverLimit) {
  instance_.quota().SetQuota("greedy", 5.0);
  const TimestampMs now = clock_.NowMs();
  int ok_count = 0;
  for (int i = 0; i < 20; ++i) {
    if (instance_
            .AddProfile("greedy", "profiles", 1, now, 1, 1, 1,
                        CountVector{1})
            .ok()) {
      ++ok_count;
    }
  }
  EXPECT_EQ(ok_count, 5);
  // Other callers unaffected.
  EXPECT_TRUE(instance_
                  .AddProfile("polite", "profiles", 1, now, 1, 1, 1,
                              CountVector{1})
                  .ok());
}

TEST_F(IpsInstanceTest, MultiQueryAlignsResultsWithPids) {
  const TimestampMs now = clock_.NowMs();
  ASSERT_TRUE(instance_
                  .AddProfile("test", "profiles", 1, now - kMinute, 1, 1, 11,
                              CountVector{1})
                  .ok());
  ASSERT_TRUE(instance_
                  .AddProfile("test", "profiles", 2, now - kMinute, 1, 1, 22,
                              CountVector{1})
                  .ok());

  QuerySpec spec;
  spec.slot = 1;
  spec.time_range = TimeRange::Current(kDay);
  spec.k = 10;
  const std::vector<ProfileId> pids = {1, 424242, 2};
  auto batch = instance_.MultiQuery("test", "profiles", pids, spec);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->results.size(), 3u);
  ASSERT_EQ(batch->statuses.size(), 3u);
  for (const auto& status : batch->statuses) EXPECT_TRUE(status.ok());
  ASSERT_EQ(batch->results[0].features.size(), 1u);
  EXPECT_EQ(batch->results[0].features[0].fid, 11u);
  // Unknown profile: empty result, same contract as single-profile Query.
  EXPECT_TRUE(batch->results[1].features.empty());
  ASSERT_EQ(batch->results[2].features.size(), 1u);
  EXPECT_EQ(batch->results[2].features[0].fid, 22u);
}

TEST_F(IpsInstanceTest, MultiQueryEmptyBatchRejected) {
  QuerySpec spec;
  spec.slot = 1;
  spec.time_range = TimeRange::Current(kDay);
  auto batch =
      instance_.MultiQuery("test", "profiles", std::vector<ProfileId>{}, spec);
  EXPECT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsInvalidArgument());
}

TEST_F(IpsInstanceTest, MultiQueryColdCacheIssuesOneKvMultiGet) {
  // The tentpole acceptance check: a 256-candidate batch on a cold cache
  // costs exactly ONE KvStore::MultiGet and zero point reads (bulk mode).
  const TimestampMs now = clock_.NowMs();
  std::vector<ProfileId> pids;
  for (ProfileId pid = 1; pid <= 256; ++pid) {
    ASSERT_TRUE(instance_
                    .AddProfile("test", "profiles", pid, now - kMinute, 1, 1,
                                pid, CountVector{1})
                    .ok());
    pids.push_back(pid);
  }
  instance_.FlushAll();

  // A fresh instance over the same KV store starts with a cold cache.
  IpsInstance fresh(ManualInstanceOptions(), &kv_, &clock_);
  ASSERT_TRUE(fresh.CreateTable(TestSchema()).ok());
  const int64_t multi_gets_before = kv_.MultiGetCalls();
  const int64_t point_reads_before = kv_.PointReadCalls();

  QuerySpec spec;
  spec.slot = 1;
  spec.time_range = TimeRange::Current(kDay);
  spec.k = 10;
  auto batch = fresh.MultiQuery("test", "profiles", pids, spec);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->cache_hits, 0u);
  for (size_t i = 0; i < pids.size(); ++i) {
    ASSERT_TRUE(batch->statuses[i].ok());
    ASSERT_EQ(batch->results[i].features.size(), 1u);
    EXPECT_EQ(batch->results[i].features[0].fid, pids[i]);
  }
  EXPECT_EQ(kv_.MultiGetCalls() - multi_gets_before, 1);
  EXPECT_EQ(kv_.PointReadCalls() - point_reads_before, 0);

  // The batch is now cached: a repeat is all hits and touches the KV store
  // not at all.
  const int64_t multi_gets_warm = kv_.MultiGetCalls();
  auto warm = fresh.MultiQuery("test", "profiles", pids, spec);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->cache_hits, pids.size());
  EXPECT_EQ(kv_.MultiGetCalls(), multi_gets_warm);
}

TEST_F(IpsInstanceTest, MultiQueryChargesQuotaOncePerBatch) {
  instance_.quota().SetQuota("batcher", 3.0);
  const TimestampMs now = clock_.NowMs();
  for (ProfileId pid = 1; pid <= 10; ++pid) {
    ASSERT_TRUE(instance_
                    .AddProfile("test", "profiles", pid, now - kMinute, 1, 1,
                                pid, CountVector{1})
                    .ok());
  }
  QuerySpec spec;
  spec.slot = 1;
  spec.time_range = TimeRange::Current(kDay);
  const std::vector<ProfileId> pids = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  // Each 10-pid batch is one admission decision: 3 batches fit a 3.0 quota,
  // the 4th is rejected wholesale.
  for (int i = 0; i < 3; ++i) {
    auto batch = instance_.MultiQuery("batcher", "profiles", pids, spec);
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
  }
  auto rejected = instance_.MultiQuery("batcher", "profiles", pids, spec);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted());
}

TEST_F(IpsInstanceTest, MultiQueryDuplicatePidsEachGetResults) {
  const TimestampMs now = clock_.NowMs();
  ASSERT_TRUE(instance_
                  .AddProfile("test", "profiles", 9, now - kMinute, 1, 1, 99,
                              CountVector{1})
                  .ok());
  QuerySpec spec;
  spec.slot = 1;
  spec.time_range = TimeRange::Current(kDay);
  const std::vector<ProfileId> pids = {9, 9, 9};
  auto batch = instance_.MultiQuery("test", "profiles", pids, spec);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < pids.size(); ++i) {
    ASSERT_TRUE(batch->statuses[i].ok());
    ASSERT_EQ(batch->results[i].features.size(), 1u);
    EXPECT_EQ(batch->results[i].features[0].fid, 99u);
  }
}

TEST_F(IpsInstanceTest, MultiAddAlignsStatusesWithItems) {
  const TimestampMs now = clock_.NowMs();
  auto make_item = [&](ProfileId pid, FeatureId fid) {
    MultiAddItem item;
    item.pid = pid;
    AddRecord r;
    r.timestamp = now - kMinute;
    r.slot = 1;
    r.type = 1;
    r.fid = fid;
    r.counts = CountVector{1};
    item.records.push_back(r);
    return item;
  };
  // Item 1 has no records: it must fail alone, without sinking the batch.
  std::vector<MultiAddItem> items = {make_item(1, 11), MultiAddItem{2, {}},
                                     make_item(3, 33)};
  auto batch = instance_.MultiAdd("test", "profiles", items);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->statuses.size(), 3u);
  EXPECT_TRUE(batch->statuses[0].ok());
  EXPECT_TRUE(batch->statuses[1].IsInvalidArgument());
  EXPECT_TRUE(batch->statuses[2].ok());
  EXPECT_EQ(batch->ok_items, 2u);
  auto result = TopK(1, 1, 10);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->features.size(), 1u);
  EXPECT_EQ(result->features[0].fid, 11u);
  result = TopK(3, 1, 10);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->features.size(), 1u);
  EXPECT_EQ(result->features[0].fid, 33u);
}

TEST_F(IpsInstanceTest, MultiAddChargesQuotaOncePerBatch) {
  instance_.quota().SetQuota("batcher", 3.0);
  const TimestampMs now = clock_.NowMs();
  std::vector<MultiAddItem> items;
  for (ProfileId pid = 1; pid <= 10; ++pid) {
    MultiAddItem item;
    item.pid = pid;
    AddRecord r;
    r.timestamp = now - kMinute;
    r.slot = 1;
    r.type = 1;
    r.fid = pid;
    r.counts = CountVector{1};
    item.records.push_back(r);
    items.push_back(item);
  }
  // Each 10-item batch is one admission decision: 3 batches fit a 3.0
  // quota, the 4th is rejected wholesale.
  for (int i = 0; i < 3; ++i) {
    auto batch = instance_.MultiAdd("batcher", "profiles", items);
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
  }
  auto rejected = instance_.MultiAdd("batcher", "profiles", items);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted());
}

TEST_F(IpsInstanceTest, MultiAddEmptyBatchRejected) {
  auto batch = instance_.MultiAdd("test", "profiles", {});
  ASSERT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsInvalidArgument());
}

TEST_F(IpsInstanceTest, MultiAddUnknownTableFails) {
  MultiAddItem item;
  item.pid = 1;
  AddRecord r;
  r.timestamp = clock_.NowMs();
  r.slot = 1;
  r.type = 1;
  r.fid = 1;
  r.counts = CountVector{1};
  item.records.push_back(r);
  auto batch = instance_.MultiAdd("test", "nope", {item});
  ASSERT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsNotFound());
}

TEST_F(IpsInstanceTest, MultiAddFlushIssuesOneKvMultiSetPerBatch) {
  // The write-side acceptance check: a MultiAdd batch drained by FlushAll
  // rides batched flushes — KvStore::MultiSet round trips, zero point
  // writes (bulk mode).
  const TimestampMs now = clock_.NowMs();
  std::vector<MultiAddItem> items;
  for (ProfileId pid = 1; pid <= 64; ++pid) {
    MultiAddItem item;
    item.pid = pid;
    AddRecord r;
    r.timestamp = now - kMinute;
    r.slot = 1;
    r.type = 1;
    r.fid = pid;
    r.counts = CountVector{1};
    item.records.push_back(r);
    items.push_back(item);
  }
  auto batch = instance_.MultiAdd("test", "profiles", items);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->ok_items, 64u);
  const int64_t multi_sets_before = kv_.MultiSetCalls();
  const int64_t point_writes_before = kv_.PointWriteCalls();
  instance_.FlushAll();
  EXPECT_GE(kv_.MultiSetCalls() - multi_sets_before, 1);
  // 64 dirty profiles with the default flush_batch_max of 64: at most one
  // MultiSet per flush group per dirty shard, far fewer than one per
  // profile. (Sanitized builds clamp the group's lock fan-in, hence the
  // cap-derived group count.)
  const GCacheOptions cache_defaults = ManualInstanceOptions().cache;
  const size_t group_max =
      std::min(cache_defaults.flush_batch_max, GCache::FlushGroupLockCap());
  const size_t groups_per_shard = (64 + group_max - 1) / group_max;
  EXPECT_LE(
      kv_.MultiSetCalls() - multi_sets_before,
      static_cast<int64_t>(cache_defaults.dirty_shards * groups_per_shard));
  EXPECT_EQ(kv_.PointWriteCalls() - point_writes_before, 0);
  // And the batch is durable: a fresh instance reads it back from the KV.
  IpsInstance fresh(ManualInstanceOptions(), &kv_, &clock_);
  ASSERT_TRUE(fresh.CreateTable(TestSchema()).ok());
  auto result = fresh.GetProfileTopK("test", "profiles", 64, 1, std::nullopt,
                                     TimeRange::Current(kDay),
                                     SortBy::kActionCount, 0, 10);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->features.size(), 1u);
  EXPECT_EQ(result->features[0].fid, 64u);
}

TEST_F(IpsInstanceTest, IsolationDelaysVisibilityUntilMerge) {
  instance_.SetIsolationEnabled(true);
  const TimestampMs now = clock_.NowMs();
  ASSERT_TRUE(instance_
                  .AddProfile("test", "profiles", 9, now - kMinute, 1, 1,
                              77, CountVector{1})
                  .ok());
  // Not yet merged: invisible to queries.
  auto before = TopK(9, 1, 10);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->features.empty());
  auto stats = instance_.GetTableStats("profiles");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->write_table_profiles, 1u);

  EXPECT_EQ(instance_.MergeWriteTablesOnce(), 1u);
  auto after = TopK(9, 1, 10);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->features.size(), 1u);
  EXPECT_EQ(after->features[0].fid, 77u);
  stats = instance_.GetTableStats("profiles");
  EXPECT_EQ(stats->write_table_profiles, 0u);
}

TEST_F(IpsInstanceTest, IsolationHotSwitchOffDrainsBuffer) {
  instance_.SetIsolationEnabled(true);
  const TimestampMs now = clock_.NowMs();
  ASSERT_TRUE(instance_
                  .AddProfile("test", "profiles", 3, now - kMinute, 1, 1,
                              55, CountVector{1})
                  .ok());
  instance_.SetIsolationEnabled(false);  // must merge synchronously
  auto result = TopK(3, 1, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->features.size(), 1u);
}

TEST_F(IpsInstanceTest, IsolationAggregatesAcrossMerge) {
  instance_.SetIsolationEnabled(true);
  const TimestampMs now = clock_.NowMs();
  // Write the same (slot, type, fid) twice pre-merge and once post-merge.
  ASSERT_TRUE(instance_
                  .AddProfile("test", "profiles", 4, now - kMinute, 1, 1, 8,
                              CountVector{1})
                  .ok());
  ASSERT_TRUE(instance_
                  .AddProfile("test", "profiles", 4, now - kMinute, 1, 1, 8,
                              CountVector{2})
                  .ok());
  instance_.MergeWriteTablesOnce();
  ASSERT_TRUE(instance_
                  .AddProfile("test", "profiles", 4, now - kMinute, 1, 1, 8,
                              CountVector{4})
                  .ok());
  instance_.MergeWriteTablesOnce();
  auto result = TopK(4, 1, 10);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->features.size(), 1u);
  EXPECT_EQ(result->features[0].counts[0], 7);
}

TEST_F(IpsInstanceTest, DataSurvivesRestartThroughKv) {
  const TimestampMs now = clock_.NowMs();
  ASSERT_TRUE(instance_
                  .AddProfile("test", "profiles", 11, now - kMinute, 2, 1,
                              99, CountVector{6})
                  .ok());
  instance_.FlushAll();
  // A new instance over the same KV (restart / failover takeover).
  IpsInstance fresh(ManualInstanceOptions(), &kv_, &clock_);
  ASSERT_TRUE(fresh.CreateTable(TestSchema()).ok());
  auto result = fresh.GetProfileTopK("test", "profiles", 11, 2, std::nullopt,
                                     TimeRange::Current(kDay),
                                     SortBy::kActionCount, 0, 10);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->features.size(), 1u);
  EXPECT_EQ(result->features[0].fid, 99u);
  EXPECT_EQ(result->features[0].counts[0], 6);
}

TEST_F(IpsInstanceTest, HotReloadChangesCompactionPolicy) {
  TableSchema updated = TestSchema();
  updated.truncate.max_slices = 3;
  ASSERT_TRUE(instance_.ReconfigureTable(updated).ok());
  // Action schema changes are rejected.
  TableSchema bad = TestSchema();
  bad.actions.push_back("extra");
  EXPECT_TRUE(instance_.ReconfigureTable(bad).IsInvalidArgument());
  // Granularity changes rejected.
  TableSchema bad2 = TestSchema();
  bad2.write_granularity_ms = 5 * kMinute;
  EXPECT_TRUE(instance_.ReconfigureTable(bad2).IsInvalidArgument());
  // Unknown table.
  TableSchema other = TestSchema("other");
  EXPECT_TRUE(instance_.ReconfigureTable(other).IsNotFound());
}

TEST_F(IpsInstanceTest, ConfigRegistryDrivesHotReload) {
  ConfigRegistry registry;
  instance_.AttachConfigRegistry(&registry);
  const std::string key =
      "ips/" + instance_.instance_id() + "/tables/profiles";
  // Valid reload.
  ASSERT_TRUE(registry
                  .PublishJson(key, R"({
                    "name": "profiles",
                    "actions": ["click", "like", "share", "comment"],
                    "write_granularity": "1m",
                    "truncate": {"max_slices": 7}
                  })")
                  .ok());
  EXPECT_GE(instance_.metrics()->GetCounter("config.table_reload")->Value(),
            1);
  // Malformed reload: rejected, old config stays.
  ASSERT_TRUE(registry.PublishJson(key, R"({"name": "profiles"})").ok());
  // (rejected internally: empty actions mismatch; reload count unchanged)
  EXPECT_EQ(instance_.metrics()->GetCounter("config.table_reload")->Value(),
            1);
  // The registry is a local and dies before the fixture's instance_.
  instance_.DetachConfigRegistry();
}

TEST_F(IpsInstanceTest, QuotaHotReloadViaConfigRegistry) {
  ConfigRegistry registry;
  instance_.AttachConfigRegistry(&registry);
  const std::string key = "ips/" + instance_.instance_id() + "/quotas";
  ASSERT_TRUE(registry.PublishJson(key, R"({"feed": 3, "ads": 50})").ok());
  EXPECT_DOUBLE_EQ(instance_.quota().QuotaFor("feed"), 3.0);
  EXPECT_DOUBLE_EQ(instance_.quota().QuotaFor("ads"), 50.0);
  // The new quota is live: "feed" gets 3 requests then rejections.
  const TimestampMs now = clock_.NowMs();
  int ok_count = 0;
  for (int i = 0; i < 10; ++i) {
    if (instance_
            .AddProfile("feed", "profiles", 1, now, 1, 1, 1, CountVector{1})
            .ok()) {
      ++ok_count;
    }
  }
  EXPECT_EQ(ok_count, 3);
  // Publishing 0 removes the explicit quota (back to unlimited default).
  ASSERT_TRUE(registry.PublishJson(key, R"({"feed": 0})").ok());
  EXPECT_TRUE(instance_
                  .AddProfile("feed", "profiles", 1, now, 1, 1, 1,
                              CountVector{1})
                  .ok());
  // The registry is a local and dies before the fixture's instance_.
  instance_.DetachConfigRegistry();
}

TEST_F(IpsInstanceTest, QuotaHotReloadPreservesDrainedUsage) {
  ConfigRegistry registry;
  instance_.AttachConfigRegistry(&registry);
  const std::string key = "ips/" + instance_.instance_id() + "/quotas";
  auto add_as = [&](const std::string& caller) {
    return instance_.AddProfile(caller, "profiles", 1, clock_.NowMs(), 1, 1,
                                1, CountVector{1});
  };

  // Drain the caller dry under the old quota...
  ASSERT_TRUE(registry.PublishJson(key, R"({"feed": 4})").ok());
  while (add_as("feed").ok()) {
  }
  // ...then reconfigure mid-flight: the drained state carries over (no free
  // burst from a config push) and the bucket refills at the NEW rate.
  ASSERT_TRUE(registry.PublishJson(key, R"({"feed": 2})").ok());
  EXPECT_TRUE(add_as("feed").IsResourceExhausted());
  clock_.AdvanceMs(5000);
  int granted = 0;
  for (int i = 0; i < 10; ++i) {
    if (add_as("feed").ok()) ++granted;
  }
  EXPECT_EQ(granted, 2);  // burst cap = one second of the new rate
  instance_.DetachConfigRegistry();
}

TEST_F(IpsInstanceTest, QuotaHotReloadMixedRemovalDocument) {
  ConfigRegistry registry;
  instance_.AttachConfigRegistry(&registry);
  const std::string key = "ips/" + instance_.instance_id() + "/quotas";
  const TimestampMs now = clock_.NowMs();
  auto add_as = [&](const std::string& caller) {
    return instance_.AddProfile(caller, "profiles", 1, now, 1, 1, 1,
                                CountVector{1});
  };

  ASSERT_TRUE(registry.PublishJson(key, R"({"feed": 1})").ok());
  ASSERT_TRUE(add_as("feed").ok());
  ASSERT_TRUE(add_as("feed").IsResourceExhausted());

  // One document mixes removal ("feed": 0), a no-op removal of a caller
  // that never had a quota, and a fresh explicit quota.
  ASSERT_TRUE(
      registry.PublishJson(key, R"({"feed": 0, "ghost": 0, "ads": 1})").ok());
  EXPECT_TRUE(add_as("feed").ok());   // removed: unlimited default again
  EXPECT_TRUE(add_as("ghost").ok());  // still unlimited, removal was a no-op
  EXPECT_TRUE(add_as("ads").ok());
  EXPECT_TRUE(add_as("ads").IsResourceExhausted());

  // A non-numeric value fails safe to removal, never to a 0-qps lockout.
  ASSERT_TRUE(registry.PublishJson(key, R"({"ads": "lots"})").ok());
  EXPECT_TRUE(add_as("ads").ok());
  instance_.DetachConfigRegistry();
}

TEST_F(IpsInstanceTest, TierHotReloadViaConfigRegistry) {
  ConfigRegistry registry;
  instance_.AttachConfigRegistry(&registry);
  const std::string key = "ips/" + instance_.instance_id() + "/tiers";
  ASSERT_TRUE(
      registry
          .PublishJson(key, R"({"checkout": "critical", "backfill": "bulk"})")
          .ok());
  EXPECT_EQ(instance_.overload().TierFor("checkout", /*is_write=*/false),
            RequestTier::kCritical);
  EXPECT_EQ(instance_.overload().TierFor("backfill", /*is_write=*/true),
            RequestTier::kBulk);
  EXPECT_GE(instance_.metrics()->GetCounter("config.tier_reload")->Value(), 1);
  // Unknown tier names and non-string values remove the mark: callers fall
  // back to the read/write defaults instead of keeping a stale tier.
  ASSERT_TRUE(
      registry.PublishJson(key, R"({"checkout": "turbo", "backfill": 3})")
          .ok());
  EXPECT_EQ(instance_.overload().TierFor("checkout", false),
            RequestTier::kRead);
  EXPECT_EQ(instance_.overload().TierFor("backfill", true),
            RequestTier::kWrite);
  instance_.DetachConfigRegistry();
}

TEST_F(IpsInstanceTest, BrownOutShedsAtAdmission) {
  const TimestampMs now = clock_.NowMs();
  // Level 2 sheds writes (and bulk) but still serves reads.
  instance_.overload().SetLevelOverride(2);
  Status write = instance_.AddProfile("test", "profiles", 1, now, 1, 1, 1,
                                      CountVector{1});
  ASSERT_TRUE(write.IsThrottled()) << write.ToString();
  EXPECT_TRUE(write.has_retry_after());
  EXPECT_TRUE(TopK(1, 1, 10).ok());
  EXPECT_GE(
      instance_.metrics()->GetCounter("admission.shed_brownout")->Value(), 1);
  // Level 3 sheds normal reads too.
  instance_.overload().SetLevelOverride(3);
  auto read = TopK(1, 1, 10);
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsThrottled());
  EXPECT_TRUE(read.status().has_retry_after());
  // Back to automatic control: healthy instance serves everything again.
  instance_.overload().SetLevelOverride(-1);
  EXPECT_TRUE(TopK(1, 1, 10).ok());
  EXPECT_TRUE(instance_
                  .AddProfile("test", "profiles", 1, now, 1, 1, 1,
                              CountVector{1})
                  .ok());
}

TEST_F(IpsInstanceTest, CompactionTriggeredByTraffic) {
  const TimestampMs base = clock_.NowMs() - 2 * kDay;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(instance_
                    .AddProfile("test", "profiles", 20, base + i * kMinute,
                                1, 1, static_cast<FeatureId>(i % 10 + 1),
                                CountVector{1})
                    .ok());
  }
  instance_.DrainCompactions();
  // The ladder must have consolidated day-old minute slices.
  auto stats = instance_.GetTableStats("profiles");
  ASSERT_TRUE(stats.ok());
  const int64_t merged =
      instance_.metrics()->GetCounter("compaction.slices_merged")->Value();
  EXPECT_GT(merged, 0);
}

TEST_F(IpsInstanceTest, CompactTableNowSweepsEveryCachedProfile) {
  const TimestampMs base = clock_.NowMs() - 2 * kDay;
  for (ProfileId pid = 1; pid <= 3; ++pid) {
    for (int i = 0; i < 90; ++i) {
      ASSERT_TRUE(instance_
                      .AddProfile("test", "profiles", pid,
                                  base + i * kMinute, 1, 1,
                                  static_cast<FeatureId>(i + 1),
                                  CountVector{1})
                      .ok());
    }
  }
  // Pause traffic-triggered compaction so the sweep does the work.
  instance_.SetCompactionEnabled(false);
  auto swept = instance_.CompactTableNow("profiles");
  ASSERT_TRUE(swept.ok());
  EXPECT_EQ(*swept, 3u);
  // Day-old minute slices must have been consolidated by the ladder.
  auto result = TopK(1, 1, 0, 30 * kDay);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->slices_scanned, 30u);
  EXPECT_TRUE(instance_.CompactTableNow("nope").status().IsNotFound());
}

TEST_F(IpsInstanceTest, CompactionKillSwitchStopsTriggers) {
  instance_.SetCompactionEnabled(false);
  const TimestampMs base = clock_.NowMs() - 2 * kDay;
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(instance_
                    .AddProfile("test", "profiles", 8, base + i * kMinute,
                                1, 1, static_cast<FeatureId>(i + 1),
                                CountVector{1})
                    .ok());
  }
  instance_.DrainCompactions();
  EXPECT_EQ(
      instance_.metrics()->GetCounter("compaction.slices_merged")->Value(),
      0);
  // Re-enable: the next touch triggers consolidation again.
  instance_.SetCompactionEnabled(true);
  TopK(8, 1, 0, 30 * kDay).ok();
  instance_.DrainCompactions();
  EXPECT_GT(
      instance_.metrics()->GetCounter("compaction.slices_merged")->Value(),
      0);
}

TEST_F(IpsInstanceTest, TableStatsReflectCache) {
  const TimestampMs now = clock_.NowMs();
  for (ProfileId pid = 1; pid <= 5; ++pid) {
    ASSERT_TRUE(instance_
                    .AddProfile("test", "profiles", pid, now - kMinute, 1, 1,
                                1, CountVector{1})
                    .ok());
  }
  auto stats = instance_.GetTableStats("profiles");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->cached_profiles, 5u);
  EXPECT_GT(stats->cache_bytes, 0u);
  EXPECT_TRUE(instance_.GetTableStats("nope").status().IsNotFound());
}

TEST_F(IpsInstanceTest, ServerLatencyMetricsSplitHitMiss) {
  const TimestampMs now = clock_.NowMs();
  ASSERT_TRUE(instance_
                  .AddProfile("test", "profiles", 1, now - kMinute, 1, 1, 1,
                              CountVector{1})
                  .ok());
  TopK(1, 1, 10).ok();  // hit (just written)
  instance_.FlushAll();
  EXPECT_GT(
      instance_.metrics()->GetHistogram("server.query_micros_hit")->count(),
      0);
}

TEST(IpsInstanceBackgroundTest, MergerThreadRunsAutomatically) {
  MemKvStore kv;
  SystemClock* clock = SystemClock::Instance();
  IpsInstanceOptions options;
  options.cache.start_background_threads = false;
  options.compaction.synchronous = true;
  options.isolation_enabled = true;
  options.isolation_merge_interval_ms = 20;
  options.start_background_threads = true;
  IpsInstance instance(options, &kv, clock);
  TableSchema schema = DefaultTableSchema("t");
  ASSERT_TRUE(instance.CreateTable(schema).ok());
  const TimestampMs now = clock->NowMs();
  ASSERT_TRUE(
      instance.AddProfile("c", "t", 1, now, 1, 1, 5, CountVector{1}).ok());
  // Wait for the background merge to surface the write.
  bool visible = false;
  for (int i = 0; i < 200 && !visible; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    auto result = instance.GetProfileTopK("c", "t", 1, 1, std::nullopt,
                                          TimeRange::Current(kDay),
                                          SortBy::kActionCount, 0, 10);
    visible = result.ok() && !result->features.empty();
  }
  EXPECT_TRUE(visible);
}

}  // namespace
}  // namespace ips
